"""Inter-node network model.

The paper assumes a "high bandwidth network" where bandwidth "is not
our key bottleneck" (§2.1) — the default simulator therefore charges
nothing for data movement.  Real deployments still pay *something* per
hop, and operator placement changes how many hops a pipeline crosses,
so :class:`NetworkModel` lets experiments quantify that: when a batch's
next operator lives on a different node, its arrival there is delayed
by a fixed per-transfer latency plus a size-proportional serialization
term.  The network-sensitivity ablation bench sweeps these knobs to
confirm the paper's assumption holds in the simulated regime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import ensure_positive

__all__ = ["NetworkModel"]


@dataclass(frozen=True)
class NetworkModel:
    """Per-transfer cost of shipping a batch between nodes.

    ``transfer_seconds(n)`` = ``latency_seconds`` +
    ``n · bytes_per_tuple / bandwidth_bytes_per_second``.

    Defaults model a commodity datacenter link: 0.5 ms latency, 64-byte
    tuples, 1 Gbit/s effective per-flow bandwidth.
    """

    latency_seconds: float = 0.0005
    bytes_per_tuple: float = 64.0
    bandwidth_bytes_per_second: float = 125_000_000.0  # 1 Gbit/s

    def __post_init__(self) -> None:
        if self.latency_seconds < 0:
            raise ValueError(
                f"latency_seconds must be >= 0, got {self.latency_seconds}"
            )
        ensure_positive(self.bytes_per_tuple, "bytes_per_tuple")
        ensure_positive(
            self.bandwidth_bytes_per_second, "bandwidth_bytes_per_second"
        )

    def transfer_seconds(self, tuples: float) -> float:
        """Seconds to move ``tuples`` tuples across one link."""
        if tuples < 0:
            raise ValueError(f"tuples must be >= 0, got {tuples}")
        return (
            self.latency_seconds
            + tuples * self.bytes_per_tuple / self.bandwidth_bytes_per_second
        )

    def scaled(self, factor: float) -> "NetworkModel":
        """This link degraded ``factor``× (latency up, bandwidth down).

        Used by fault injection's ``degrade`` events: the simulator
        swaps its live network model for a scaled copy for the
        degradation window.  ``factor=1.0`` returns an equivalent
        healthy model.
        """
        ensure_positive(factor, "factor")
        return NetworkModel(
            latency_seconds=self.latency_seconds * factor,
            bytes_per_tuple=self.bytes_per_tuple,
            bandwidth_bytes_per_second=self.bandwidth_bytes_per_second / factor,
        )

    @classmethod
    def zero(cls) -> "NetworkModel":
        """A free network (the paper's §2.1 assumption, made explicit)."""
        return cls(
            latency_seconds=0.0,
            bytes_per_tuple=1e-12,
            bandwidth_bytes_per_second=1e18,
        )
