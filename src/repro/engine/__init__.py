"""Discrete-event simulated distributed stream processing substrate.

Stands in for the paper's D-CAPE testbed (§6): a shared-nothing cluster
of capacity-limited nodes executing pipelined query operators over
batched stream tuples, with queueing, operator migration, and a
statistics monitor.  Simulated time is in seconds; all randomness is
seeded, so runs are exactly reproducible.

* :mod:`repro.engine.events` — the event loop.
* :mod:`repro.engine.batches` — tuple batches (the paper's "rusters").
* :mod:`repro.engine.node` — single-server simulated machines.
* :mod:`repro.engine.monitor` — the runtime statistics monitor.
* :mod:`repro.engine.metrics` — per-run measurement collection.
* :mod:`repro.engine.faults` — deterministic fault injection.
* :mod:`repro.engine.system` — the simulator wiring it all together.
"""

from repro.engine.batches import Batch
from repro.engine.events import EventLoop
from repro.engine.faults import FaultEvent, FaultSchedule
from repro.engine.metrics import SimulationReport
from repro.engine.monitor import StatisticsMonitor
from repro.engine.network import NetworkModel
from repro.engine.node import SimNode
from repro.engine.system import RoutingDecision, StreamSimulator
from repro.engine.trace import SimulationTrace, TraceEvent

__all__ = [
    "Batch",
    "EventLoop",
    "FaultEvent",
    "FaultSchedule",
    "NetworkModel",
    "RoutingDecision",
    "SimNode",
    "SimulationReport",
    "SimulationTrace",
    "StatisticsMonitor",
    "StreamSimulator",
    "TraceEvent",
]
