"""Simulated cluster machines.

Each node is a single-server FIFO queue with a CPU capacity in cost
units per second: a job of ``work`` cost units takes ``work/capacity``
seconds of service.  The node keeps an ``available_at`` horizon — jobs
start at the max of their arrival, the node's horizon, and any
operator-level suspension (used by DYN migrations) — and accumulates
busy time for utilization accounting.
"""

from __future__ import annotations

from repro.util.validation import ensure_positive

__all__ = ["SimNode"]


class SimNode:
    """One machine: capacity, FIFO service horizon, busy-time ledger."""

    def __init__(self, node_id: int, capacity: float) -> None:
        ensure_positive(capacity, f"capacity of node {node_id}")
        self._node_id = node_id
        self._capacity = capacity
        self._available_at = 0.0
        self._busy_seconds = 0.0
        self._jobs = 0

    @property
    def node_id(self) -> int:
        """Index of this node in the cluster."""
        return self._node_id

    @property
    def capacity(self) -> float:
        """Processing capacity in cost units per second."""
        return self._capacity

    @property
    def available_at(self) -> float:
        """Earliest time a newly arriving job could start service."""
        return self._available_at

    @property
    def busy_seconds(self) -> float:
        """Cumulative service time scheduled on this node."""
        return self._busy_seconds

    @property
    def jobs_served(self) -> int:
        """Number of jobs scheduled on this node."""
        return self._jobs

    def service_seconds(self, work: float) -> float:
        """Seconds of service a job of ``work`` cost units needs."""
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work}")
        return work / self._capacity

    def submit(self, arrival: float, work: float, not_before: float = 0.0) -> float:
        """Enqueue a job; returns its completion time.

        The job starts at ``max(arrival, available_at, not_before)``
        (``not_before`` models operator suspension during migration) and
        occupies the server for ``work/capacity`` seconds.
        """
        start = max(arrival, self._available_at, not_before)
        service = self.service_seconds(work)
        self._available_at = start + service
        self._busy_seconds += service
        self._jobs += 1
        return self._available_at

    def utilization(self, horizon: float) -> float:
        """Busy fraction over ``[0, horizon]`` (may exceed 1 under backlog).

        A value above 1.0 means the node has scheduled more service time
        than wall-clock elapsed — an unbounded queue, the §6.5 overload
        signature.
        """
        ensure_positive(horizon, "horizon")
        return self._busy_seconds / horizon

    def suspend_until(self, time: float) -> None:
        """Block the server until ``time`` (migration stall on this node)."""
        if time > self._available_at:
            self._available_at = time

    def __repr__(self) -> str:
        return (
            f"SimNode(id={self._node_id}, capacity={self._capacity:.3g}, "
            f"busy={self._busy_seconds:.3f}s, jobs={self._jobs})"
        )
