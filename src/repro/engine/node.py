"""Simulated cluster machines.

Each node is a single-server FIFO queue with a CPU capacity in cost
units per second: a job of ``work`` cost units takes ``work/capacity``
seconds of service.  The node keeps an ``available_at`` horizon — jobs
start at the max of their arrival, the node's horizon, and any
operator-level suspension (used by DYN migrations) — and accumulates
busy time for utilization accounting.

Fault injection adds two degradation states: a node may be *slowed*
(``speed_factor`` scales its effective capacity for jobs submitted
while the slowdown holds) or *offline* after a crash.  A crash wipes
the queued backlog — work in service is lost, which the simulator
detects via ``crash_epoch`` and accounts as dropped batches — and the
node refuses submissions until :meth:`SimNode.recover`.
"""

from __future__ import annotations

from repro.util.validation import ensure_positive

__all__ = ["SimNode"]


class SimNode:
    """One machine: capacity, FIFO service horizon, busy-time ledger."""

    def __init__(self, node_id: int, capacity: float) -> None:
        ensure_positive(capacity, f"capacity of node {node_id}")
        self._node_id = node_id
        self._capacity = capacity
        self._available_at = 0.0
        self._busy_seconds = 0.0
        self._jobs = 0
        self._speed = 1.0
        self._online = True
        self._offline_since: float | None = None
        self._crash_epoch = 0

    @property
    def node_id(self) -> int:
        """Index of this node in the cluster."""
        return self._node_id

    @property
    def capacity(self) -> float:
        """Processing capacity in cost units per second."""
        return self._capacity

    @property
    def available_at(self) -> float:
        """Earliest time a newly arriving job could start service."""
        return self._available_at

    @property
    def busy_seconds(self) -> float:
        """Cumulative service time scheduled on this node."""
        return self._busy_seconds

    @property
    def jobs_served(self) -> int:
        """Number of jobs scheduled on this node."""
        return self._jobs

    @property
    def online(self) -> bool:
        """False while the node is crashed."""
        return self._online

    @property
    def offline_since(self) -> float | None:
        """Start of the current outage, or ``None`` when online."""
        return self._offline_since

    @property
    def crash_epoch(self) -> int:
        """Crash counter; a job whose epoch changed mid-service is lost."""
        return self._crash_epoch

    @property
    def speed_factor(self) -> float:
        """Current capacity multiplier (1.0 = healthy, <1 = throttled)."""
        return self._speed

    @property
    def effective_capacity(self) -> float:
        """Capacity after any active slowdown."""
        return self._capacity * self._speed

    def set_speed(self, factor: float) -> None:
        """Throttle (or restore) the node's capacity.

        Only affects jobs submitted after the change — work already on
        the FIFO horizon keeps its computed completion time, the same
        approximation the horizon model makes for queueing itself.
        """
        ensure_positive(factor, f"speed factor of node {self._node_id}")
        self._speed = factor

    def fail(self, time: float) -> None:
        """Crash the node: wipe its backlog and refuse new work.

        Jobs whose completion was already scheduled are detected as
        lost by the simulator through the epoch bump; the busy-time
        ledger keeps the service it had scheduled (utilization reports
        cover work *scheduled*, not work that survived).
        """
        if not self._online:
            return
        self._online = False
        self._offline_since = time
        self._crash_epoch += 1
        self._available_at = time

    def recover(self, time: float) -> None:
        """Bring a crashed node back with an empty queue."""
        if self._online:
            return
        self._online = True
        self._offline_since = None
        self._available_at = max(self._available_at, time)

    def service_seconds(self, work: float) -> float:
        """Seconds of service a job of ``work`` cost units needs now."""
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work}")
        return work / self.effective_capacity

    def submit(self, arrival: float, work: float, not_before: float = 0.0) -> float:
        """Enqueue a job; returns its completion time.

        The job starts at ``max(arrival, available_at, not_before)``
        (``not_before`` models operator suspension during migration) and
        occupies the server for ``work/effective_capacity`` seconds.
        Submitting to an offline node is a simulator bug — callers must
        stall or reroute batches for crashed nodes.
        """
        if not self._online:
            raise RuntimeError(
                f"node {self._node_id} is offline; the simulator must stall "
                f"or reroute instead of submitting"
            )
        start = max(arrival, self._available_at, not_before)
        service = self.service_seconds(work)
        self._available_at = start + service
        self._busy_seconds += service
        self._jobs += 1
        return self._available_at

    def utilization(self, horizon: float) -> float:
        """Busy fraction over ``[0, horizon]`` (may exceed 1 under backlog).

        A value above 1.0 means the node has scheduled more service time
        than wall-clock elapsed — an unbounded queue, the §6.5 overload
        signature.
        """
        ensure_positive(horizon, "horizon")
        return self._busy_seconds / horizon

    def suspend_until(self, time: float) -> None:
        """Block the server until ``time`` (migration stall on this node)."""
        if time > self._available_at:
            self._available_at = time

    def __repr__(self) -> str:
        state = "online" if self._online else "OFFLINE"
        return (
            f"SimNode(id={self._node_id}, capacity={self._capacity:.3g}, "
            f"busy={self._busy_seconds:.3f}s, jobs={self._jobs}, {state})"
        )
