"""Per-run measurements: latency, throughput timeline, overheads.

The §6.5 experiments report average tuple processing time (Figures 15a,
16a, 16b), cumulative tuples produced over time (Figure 15b), and the
runtime overhead beyond query processing.  :class:`SimulationReport`
collects exactly those, per batch, as the simulator runs — plus, when
fault injection is active, the failure ledger (dropped batches, node
downtime, partition windows, monitor dropouts) that the chaos benches
compare head-to-head.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["SimulationReport"]


@dataclass
class SimulationReport:
    """Mutable measurement ledger filled in by the simulator.

    Latency entries are weighted by each batch's *input* tuples (the
    tuples that were processed), matching the paper's "average tuple
    processing time"; the throughput timeline counts *output* tuples
    (Figure 15b's "total number of tuples produced").
    """

    duration: float
    batches_injected: int = 0
    batches_completed: int = 0
    tuples_in: float = 0.0
    tuples_out: float = 0.0
    overhead_seconds: float = 0.0
    network_seconds: float = 0.0
    migrations: int = 0
    migration_stall_seconds: float = 0.0
    plan_switches: int = 0
    node_busy_seconds: list[float] = field(default_factory=list)
    processing_seconds: float = 0.0
    # -- failure accounting (fault injection) --------------------------
    #: Batches killed by faults (crash mid-service, partition drops).
    batches_dropped: int = 0
    #: Expected tuples lost with those batches (at their current stage).
    tuples_dropped: float = 0.0
    #: Batches neither completed nor dropped at the horizon (stalled or
    #: still queued); set at the end of the run from the live ledger.
    batches_in_flight: int = 0
    #: Stage submissions parked because the target node was offline.
    batch_stalls: int = 0
    #: Fault events applied during the run.
    fault_events: int = 0
    #: Node crash events applied (recoveries are not counted separately).
    node_crashes: int = 0
    #: Total node-seconds spent offline within the run.
    node_downtime_seconds: float = 0.0
    #: Seconds the network was partitioned within the run.
    partition_seconds: float = 0.0
    #: Monitor sampling rounds lost to dropout faults.
    monitor_samples_dropped: int = 0
    #: ``on_fault`` hooks that raised :class:`~repro.engine.faults.
    #: FaultError` — the strategy failed to degrade, but the run (and
    #: this ledger) survived.
    fault_hook_errors: int = 0
    #: (completion time, input-tuple weight, latency seconds) per batch.
    _completions: list[tuple[float, float, float]] = field(default_factory=list)

    def record_batch(
        self,
        created_at: float,
        completed_at: float,
        input_tuples: float,
        output_tuples: float,
    ) -> None:
        """Record one batch finishing its plan end-to-end."""
        if completed_at < created_at:
            raise ValueError("batch completed before it was created")
        self.batches_completed += 1
        self.tuples_out += output_tuples
        self._completions.append(
            (completed_at, input_tuples, completed_at - created_at)
        )

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------

    @property
    def avg_tuple_latency_ms(self) -> float:
        """Tuple-weighted average end-to-end latency in milliseconds.

        NaN when nothing completed — an honest signal of a total stall
        rather than a misleading zero.
        """
        total_weight = sum(w for _, w, _ in self._completions)
        if total_weight == 0:
            return math.nan
        weighted = sum(w * latency for _, w, latency in self._completions)
        return 1000.0 * weighted / total_weight

    def latency_percentile_ms(self, percentile: float) -> float:
        """Latency percentile (per batch, unweighted) in milliseconds."""
        if not 0 <= percentile <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {percentile}")
        if not self._completions:
            return math.nan
        latencies = sorted(latency for _, _, latency in self._completions)
        rank = (percentile / 100.0) * (len(latencies) - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        frac = rank - lo
        return 1000.0 * (latencies[lo] * (1 - frac) + latencies[hi] * frac)

    def produced_timeline(
        self, interval_seconds: float = 60.0, *, weights: str = "output"
    ) -> list[tuple[float, float]]:
        """Cumulative tuples produced by each interval boundary.

        Returns ``[(t, cumulative_by_t), ...]`` covering the run — the
        Figure 15b series.  ``weights="output"`` counts result tuples;
        ``weights="input"`` counts processed source tuples.
        """
        if interval_seconds <= 0:
            raise ValueError(f"interval must be > 0, got {interval_seconds}")
        if weights not in ("output", "input"):
            raise ValueError(f"weights must be 'output' or 'input', got {weights!r}")
        completions = sorted(self._completions)
        outputs = self._outputs_sorted() if weights == "output" else None
        series: list[tuple[float, float]] = []
        cumulative = 0.0
        i = 0
        events = outputs if outputs is not None else [
            (t, w) for t, w, _ in completions
        ]
        boundary = interval_seconds
        while boundary <= self.duration + 1e-9:
            while i < len(events) and events[i][0] <= boundary:
                cumulative += events[i][1]
                i += 1
            series.append((boundary, cumulative))
            boundary += interval_seconds
        return series

    #: (completion time, output tuples) per batch, for the timeline.
    _output_events: list[tuple[float, float]] = field(default_factory=list)

    def record_output(self, completed_at: float, output_tuples: float) -> None:
        """Record a batch's output contribution for the throughput timeline."""
        self._output_events.append((completed_at, output_tuples))

    def _outputs_sorted(self) -> list[tuple[float, float]]:
        return sorted(self._output_events)

    @property
    def overhead_fraction(self) -> float:
        """Runtime overhead relative to query-processing time (§6.5).

        Overhead covers plan classification (RLD) and migration stalls
        (DYN); ROD has none.  NaN when no processing happened.
        """
        if self.processing_seconds <= 0:
            return math.nan
        return (
            self.overhead_seconds + self.migration_stall_seconds
        ) / self.processing_seconds

    def utilization(self) -> list[float]:
        """Per-node busy fraction over the run's duration."""
        if self.duration <= 0:
            return []
        return [busy / self.duration for busy in self.node_busy_seconds]

    # ------------------------------------------------------------------
    # Failure metrics
    # ------------------------------------------------------------------

    @property
    def drop_fraction(self) -> float:
        """Share of injected batches lost to faults (0 when none ran)."""
        if self.batches_injected == 0:
            return 0.0
        return self.batches_dropped / self.batches_injected

    @property
    def availability(self) -> float:
        """Fraction of node-seconds the cluster was online.

        1.0 for a fault-free run; ``1 - downtime/(nodes × duration)``
        otherwise.  NaN before the run finishes (node count unknown).
        """
        n_nodes = len(self.node_busy_seconds)
        if n_nodes == 0 or self.duration <= 0:
            return math.nan
        return 1.0 - self.node_downtime_seconds / (n_nodes * self.duration)

    def conservation_holds(self) -> bool:
        """Batch accounting identity: injected = completed + dropped + in flight."""
        return (
            self.batches_injected
            == self.batches_completed + self.batches_dropped + self.batches_in_flight
        )

    def to_dict(self) -> dict[str, object]:
        """Summary as JSON-compatible primitives (dashboards, exports).

        Contains the headline aggregates, not the per-batch ledgers;
        use :meth:`produced_timeline` for series data.
        """
        avg = self.avg_tuple_latency_ms
        p95 = self.latency_percentile_ms(95)
        overhead = self.overhead_fraction
        availability = self.availability
        return {
            "duration": self.duration,
            "batches_injected": self.batches_injected,
            "batches_completed": self.batches_completed,
            "tuples_in": self.tuples_in,
            "tuples_out": self.tuples_out,
            "avg_tuple_latency_ms": None if math.isnan(avg) else avg,
            "p95_latency_ms": None if math.isnan(p95) else p95,
            "overhead_seconds": self.overhead_seconds,
            "network_seconds": self.network_seconds,
            "migrations": self.migrations,
            "migration_stall_seconds": self.migration_stall_seconds,
            "plan_switches": self.plan_switches,
            "processing_seconds": self.processing_seconds,
            "overhead_fraction": None if math.isnan(overhead) else overhead,
            "node_utilization": self.utilization(),
            "batches_dropped": self.batches_dropped,
            "tuples_dropped": self.tuples_dropped,
            "batches_in_flight": self.batches_in_flight,
            "batch_stalls": self.batch_stalls,
            "fault_events": self.fault_events,
            "node_crashes": self.node_crashes,
            "node_downtime_seconds": self.node_downtime_seconds,
            "partition_seconds": self.partition_seconds,
            "monitor_samples_dropped": self.monitor_samples_dropped,
            "fault_hook_errors": self.fault_hook_errors,
            "drop_fraction": self.drop_fraction,
            "availability": None if math.isnan(availability) else availability,
        }
