"""Tuple batches — the simulator's unit of work.

The paper's executor groups tuples into "rusters" (Table 2: minimum
ruster size 100 tuples) and assigns a logical plan per batch, so the
simulator moves *batches* rather than individual tuples.  A batch's
``size`` is a float: selectivities thin (or joins fan out) the expected
tuple count as it traverses its plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.query.plans import LogicalPlan

__all__ = ["Batch"]


@dataclass
class Batch:
    """A group of tuples flowing through one logical plan.

    Attributes
    ----------
    batch_id:
        Monotone id, assigned at the source.
    created_at:
        Simulated source timestamp (latency is measured from here).
    initial_size:
        Tuples in the batch when it entered the system.
    size:
        Current expected tuple count (mutated by operator selectivity).
    plan:
        The logical plan routing this batch (set by the strategy).
    stage:
        Index into ``plan.order`` of the next operator to apply.
    """

    batch_id: int
    created_at: float
    initial_size: float
    size: float = field(default=0.0)
    plan: LogicalPlan | None = None
    stage: int = 0

    def __post_init__(self) -> None:
        if self.initial_size <= 0:
            raise ValueError(f"batch size must be > 0, got {self.initial_size}")
        if self.size <= 0.0:
            self.size = self.initial_size

    @property
    def next_op(self) -> int | None:
        """Operator id of the next stage, or ``None`` when finished."""
        if self.plan is None:
            raise RuntimeError(f"batch {self.batch_id} has no plan assigned")
        if self.stage >= len(self.plan.order):
            return None
        return self.plan.order[self.stage]

    def advance(self, selectivity: float) -> None:
        """Apply one operator: thin the batch and move to the next stage."""
        if selectivity < 0:
            raise ValueError(f"selectivity must be >= 0, got {selectivity}")
        self.size *= selectivity
        self.stage += 1

    @property
    def done(self) -> bool:
        """True once every operator of the plan has been applied."""
        return self.plan is not None and self.stage >= len(self.plan.order)
