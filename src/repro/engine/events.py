"""Minimal discrete-event loop.

A binary-heap agenda of (time, sequence, action) entries.  The sequence
number makes simultaneous events fire in scheduling order, which keeps
whole simulations deterministic under a fixed seed.
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = ["EventLoop"]


class EventLoop:
    """Time-ordered execution of scheduled zero-argument actions."""

    def __init__(self) -> None:
        self._agenda: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still on the agenda."""
        return len(self._agenda)

    @property
    def processed(self) -> int:
        """Total events executed so far."""
        return self._processed

    def schedule(self, time: float, action: Callable[[], None]) -> None:
        """Enqueue ``action`` to run at simulated ``time``.

        Scheduling into the past raises: it would silently reorder
        causality, which is always a simulation bug.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time:.6f}s before current time "
                f"{self._now:.6f}s"
            )
        heapq.heappush(self._agenda, (time, self._sequence, action))
        self._sequence += 1

    def run_until(self, end_time: float) -> None:
        """Execute events in time order up to and including ``end_time``.

        Events scheduled past ``end_time`` stay on the agenda; the clock
        is left at ``end_time`` (or the last event's time if larger than
        the previous clock but no event remains).
        """
        while self._agenda and self._agenda[0][0] <= end_time:
            time, _, action = heapq.heappop(self._agenda)
            self._now = time
            self._processed += 1
            action()
        if end_time > self._now:
            self._now = end_time
