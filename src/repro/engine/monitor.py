"""Runtime statistics monitor (§3 "Statistic monitor").

Each machine in the paper's DSPS periodically samples operator
selectivities and stream rates and ships them to the executor.  The
simulated monitor samples the workload's ground-truth statistics with
multiplicative observation noise and smooths them with an exponential
moving average — so strategies see realistic, slightly stale estimates
rather than the simulator's exact internals.

Fault injection can *suspend* the monitor (sample dropout): while
suspended, sampling rounds are counted as dropped and the last
estimates stay frozen, so strategies decide on increasingly stale
statistics — the real-world failure mode of a lossy telemetry path.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.query.model import Query
from repro.query.statistics import StatPoint, rate_param
from repro.util.rng import derive_rng
from repro.util.validation import ensure_in_range, ensure_positive

__all__ = ["GroundTruth", "StatisticsMonitor"]


class GroundTruth(Protocol):
    """What the monitor observes: time-varying true statistics."""

    def rate(self, time: float) -> float:
        """True driving input rate (tuples/second) at ``time``."""
        ...

    def selectivity(self, op_id: int, time: float) -> float:
        """True selectivity of operator ``op_id`` at ``time``."""
        ...


class StatisticsMonitor:
    """Noisy, smoothed view of the workload's true statistics.

    Parameters
    ----------
    query:
        Supplies the operator ids to monitor.
    truth:
        The ground-truth statistics source (normally the workload).
    noise:
        Multiplicative observation noise: each sample is scaled by
        ``1 + Normal(0, noise)``.  Zero for an oracle monitor.
    smoothing:
        EWMA coefficient on the *new* sample (1.0 = no memory).
    seed:
        Noise reproducibility.
    """

    def __init__(
        self,
        query: Query,
        truth: GroundTruth,
        *,
        noise: float = 0.05,
        smoothing: float = 0.5,
        seed: int | np.random.Generator | None = 11,
    ) -> None:
        if noise < 0:
            raise ValueError(f"noise must be >= 0, got {noise}")
        ensure_in_range(smoothing, "smoothing", 0.0, 1.0, inclusive=True)
        ensure_positive(smoothing, "smoothing")
        self._query = query
        self._truth = truth
        self._noise = noise
        self._smoothing = smoothing
        self._rng = derive_rng(seed)
        self._estimates: dict[str, float] = {}
        self._samples = 0
        self._suspended = False
        self._samples_dropped = 0

    @property
    def samples_taken(self) -> int:
        """Number of sampling rounds performed."""
        return self._samples

    @property
    def samples_dropped(self) -> int:
        """Sampling rounds skipped while suspended (fault injection)."""
        return self._samples_dropped

    @property
    def suspended(self) -> bool:
        """True while a monitor-dropout fault is active."""
        return self._suspended

    def suspend(self) -> None:
        """Stop updating estimates; subsequent samples are dropped."""
        self._suspended = True

    def resume(self) -> None:
        """Resume normal sampling after a dropout."""
        self._suspended = False

    def _observe(self, true_value: float) -> float:
        if self._noise == 0:
            return true_value
        factor = 1.0 + self._rng.normal(0.0, self._noise)
        return max(true_value * factor, 1e-9)

    def sample(self, time: float) -> StatPoint:
        """Take one sampling round at ``time`` and return the estimates.

        While suspended (monitor-dropout fault), the round is counted
        as dropped and the previous estimates are returned unchanged —
        except for the very first round, which always primes the
        estimates so strategies have *something* to decide on.
        """
        if self._suspended and self._estimates:
            self._samples_dropped += 1
            return self.current()
        observations = {rate_param(): self._observe(self._truth.rate(time))}
        for op in self._query.operators:
            observations[op.selectivity_param] = self._observe(
                self._truth.selectivity(op.op_id, time)
            )
        alpha = self._smoothing
        for name, value in observations.items():
            previous = self._estimates.get(name)
            if previous is None:
                self._estimates[name] = value
            else:
                self._estimates[name] = alpha * value + (1 - alpha) * previous
        self._samples += 1
        return self.current()

    def current(self) -> StatPoint:
        """Latest smoothed estimates; raises before the first sample."""
        if not self._estimates:
            raise RuntimeError("monitor has no samples yet; call sample() first")
        return StatPoint(self._estimates)
