"""Runtime statistics monitor (§3 "Statistic monitor").

Each machine in the paper's DSPS periodically samples operator
selectivities and stream rates and ships them to the executor.  The
simulated monitor samples the workload's ground-truth statistics with
multiplicative observation noise and smooths them with an exponential
moving average — so strategies see realistic, slightly stale estimates
rather than the simulator's exact internals.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.query.model import Query
from repro.query.statistics import StatPoint, rate_param
from repro.util.rng import derive_rng
from repro.util.validation import ensure_in_range, ensure_positive

__all__ = ["GroundTruth", "StatisticsMonitor"]


class GroundTruth(Protocol):
    """What the monitor observes: time-varying true statistics."""

    def rate(self, time: float) -> float:
        """True driving input rate (tuples/second) at ``time``."""
        ...

    def selectivity(self, op_id: int, time: float) -> float:
        """True selectivity of operator ``op_id`` at ``time``."""
        ...


class StatisticsMonitor:
    """Noisy, smoothed view of the workload's true statistics.

    Parameters
    ----------
    query:
        Supplies the operator ids to monitor.
    truth:
        The ground-truth statistics source (normally the workload).
    noise:
        Multiplicative observation noise: each sample is scaled by
        ``1 + Normal(0, noise)``.  Zero for an oracle monitor.
    smoothing:
        EWMA coefficient on the *new* sample (1.0 = no memory).
    seed:
        Noise reproducibility.
    """

    def __init__(
        self,
        query: Query,
        truth: GroundTruth,
        *,
        noise: float = 0.05,
        smoothing: float = 0.5,
        seed: int | np.random.Generator | None = 11,
    ) -> None:
        if noise < 0:
            raise ValueError(f"noise must be >= 0, got {noise}")
        ensure_in_range(smoothing, "smoothing", 0.0, 1.0, inclusive=True)
        ensure_positive(smoothing, "smoothing")
        self._query = query
        self._truth = truth
        self._noise = noise
        self._smoothing = smoothing
        self._rng = derive_rng(seed)
        self._estimates: dict[str, float] = {}
        self._samples = 0

    @property
    def samples_taken(self) -> int:
        """Number of sampling rounds performed."""
        return self._samples

    def _observe(self, true_value: float) -> float:
        if self._noise == 0:
            return true_value
        factor = 1.0 + self._rng.normal(0.0, self._noise)
        return max(true_value * factor, 1e-9)

    def sample(self, time: float) -> StatPoint:
        """Take one sampling round at ``time`` and return the estimates."""
        observations = {rate_param(): self._observe(self._truth.rate(time))}
        for op in self._query.operators:
            observations[op.selectivity_param] = self._observe(
                self._truth.selectivity(op.op_id, time)
            )
        alpha = self._smoothing
        for name, value in observations.items():
            previous = self._estimates.get(name)
            if previous is None:
                self._estimates[name] = value
            else:
                self._estimates[name] = alpha * value + (1 - alpha) * previous
        self._samples += 1
        return self.current()

    def current(self) -> StatPoint:
        """Latest smoothed estimates; raises before the first sample."""
        if not self._estimates:
            raise RuntimeError("monitor has no samples yet; call sample() first")
        return StatPoint(self._estimates)
