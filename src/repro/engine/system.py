"""The distributed stream processing simulator.

Wires sources, nodes, the monitor, and a load-distribution strategy
into one discrete-event run:

* A Poisson source emits tuple batches at the workload's (time-varying)
  rate; each batch is routed to a logical plan by the strategy — for
  RLD that is the online classifier, for ROD/DYN the single compiled
  plan.
* Each plan stage is a job on the node hosting that operator under the
  *current* placement; nodes are single-server FIFO queues, so overload
  shows up as queueing latency exactly as in a real engine.
* Strategies get a periodic tick and may call :meth:`StreamSimulator.
  migrate` (the DYN baseline does); migration suspends the moved
  operator for a state-proportional pause.
* An optional :class:`~repro.engine.faults.FaultSchedule` injects
  infrastructure failures mid-run: node crashes (queued work lost, new
  stages stall until recovery or migration), slowdowns, network
  degradation and partitions, and monitor dropouts.  Strategies with an
  ``on_fault(simulator, event)`` method are notified after each event
  and may degrade gracefully (RLD reroutes, DYN force-migrates).

Everything observable — batch latencies, produced-tuple timeline,
overheads, migrations, and the failure ledger — lands in a
:class:`SimulationReport`.
"""

from __future__ import annotations

from typing import Mapping, NamedTuple, Protocol

import numpy as np

from repro.core.physical import Cluster, PhysicalPlan
from repro.engine.batches import Batch
from repro.engine.events import EventLoop
from repro.engine.faults import FaultError, FaultEvent, FaultSchedule
from repro.engine.metrics import SimulationReport
from repro.engine.monitor import GroundTruth, StatisticsMonitor
from repro.engine.network import NetworkModel
from repro.engine.node import SimNode
from repro.engine.trace import SimulationTrace, TraceEvent
from repro.query.model import Query
from repro.query.plans import LogicalPlan
from repro.query.statistics import StatPoint
from repro.util.rng import derive_rng
from repro.util.validation import ensure_positive

__all__ = ["RoutingDecision", "LoadDistributionStrategy", "StreamSimulator"]


class RoutingDecision(NamedTuple):
    """A strategy's per-batch answer: the plan plus routing overhead."""

    plan: LogicalPlan
    overhead_seconds: float = 0.0


class LoadDistributionStrategy(Protocol):
    """What the simulator needs from RLD / ROD / DYN (see repro.runtime).

    Strategies *may* additionally define ``on_fault(simulator, event)``;
    when present, the simulator calls it after applying each injected
    :class:`~repro.engine.faults.FaultEvent` so the strategy can react
    (RLD reroutes around dead bottlenecks, DYN force-migrates off
    crashed nodes).  Strategies without the hook — like ROD — simply
    suffer the failure.
    """

    name: str

    @property
    def placement(self) -> PhysicalPlan:
        """Initial operator→node assignment."""
        ...

    def route(self, time: float, stats: StatPoint) -> RoutingDecision:
        """Pick the logical plan for a batch arriving at ``time``."""
        ...

    def on_tick(self, simulator: "StreamSimulator", time: float) -> None:
        """Periodic hook (DYN uses it to rebalance via migration)."""
        ...


class StreamSimulator:
    """One simulated run of a query under a load-distribution strategy.

    Parameters
    ----------
    query, cluster:
        The workload's query and the machines executing it.
    strategy:
        RLD / ROD / DYN (anything satisfying the strategy protocol).
    workload:
        Ground-truth statistics source: ``rate(t)`` and
        ``selectivity(op_id, t)``.
    batch_size:
        Tuples per ruster (Table 2: 100).
    monitor:
        Statistics monitor; defaults to a lightly noisy one.
    monitor_period / tick_period:
        Sampling and strategy-tick intervals in seconds.
    migration_seconds_per_state:
        Pause per unit of operator state when migrating (further
        scaled by the current rate relative to the estimate).
    seed:
        Reproducibility of arrivals and monitor noise.
    network:
        Optional :class:`~repro.engine.network.NetworkModel`; when set,
        a batch moving between operators on *different* nodes is
        delayed by the model's transfer time (default: free network,
        the paper's §2.1 assumption).
    trace:
        Optional :class:`~repro.engine.trace.SimulationTrace` capturing
        a per-event audit trail (arrivals, stages, completions,
        migrations, faults); leave ``None`` for long runs.
    faults:
        Optional :class:`~repro.engine.faults.FaultSchedule` of timed
        infrastructure failures replayed during the run.  If the
        schedule contains network-degradation events and no ``network``
        was given, a default :class:`NetworkModel` is attached so the
        degradation has a link to degrade.
    """

    def __init__(
        self,
        query: Query,
        cluster: Cluster,
        strategy: LoadDistributionStrategy,
        workload: GroundTruth,
        *,
        batch_size: float = 100.0,
        monitor: StatisticsMonitor | None = None,
        monitor_period: float = 1.0,
        tick_period: float = 5.0,
        migration_seconds_per_state: float = 1.0,
        network: NetworkModel | None = None,
        seed: int | np.random.Generator | None = 17,
        trace: SimulationTrace | None = None,
        faults: FaultSchedule | None = None,
    ) -> None:
        ensure_positive(batch_size, "batch_size")
        ensure_positive(monitor_period, "monitor_period")
        ensure_positive(tick_period, "tick_period")
        if faults is not None:
            faults.validate_for(cluster.n_nodes)
            if network is None and faults.needs_network:
                network = NetworkModel()
        self._query = query
        self._cluster = cluster
        self._strategy = strategy
        self._workload = workload
        self._batch_size = batch_size
        self._monitor_period = monitor_period
        self._tick_period = tick_period
        self._migration_unit = migration_seconds_per_state
        self._rng = derive_rng(seed)
        self._monitor = monitor or StatisticsMonitor(query, workload)
        self._trace = trace
        self._network = network

        self._nodes = [
            SimNode(i, capacity) for i, capacity in enumerate(cluster.capacities)
        ]
        placement = strategy.placement
        self._placement: dict[int, int] = {
            op_id: placement.node_of(op_id) for op_id in query.operator_ids
        }
        self._op_ready_at: dict[int, float] = {
            op_id: 0.0 for op_id in query.operator_ids
        }
        self._ops = {op.op_id: op for op in query.operators}

        self._loop = EventLoop()
        self._batch_nodes: dict[int, int] = {}
        self._report: SimulationReport | None = None
        self._next_batch_id = 0
        self._last_plan: LogicalPlan | None = None
        self._duration = 0.0

        # Fault-injection state.
        self._faults = faults
        self._network_base = self._network
        self._partitioned = False
        self._partition_since = 0.0
        #: Batches whose next stage targets an offline node, awaiting
        #: recovery (or a migration that re-homes the operator).
        self._stalled: list[Batch] = []
        #: crash_epoch of the serving node at stage-submit time, per
        #: batch — a changed epoch at completion means the work died
        #: with the node.
        self._stage_epoch: dict[int, int] = {}
        #: Live batch ids: injected, not yet completed or dropped.
        self._active: set[int] = set()

    # ------------------------------------------------------------------
    # Introspection for strategies (DYN reads these to rebalance)
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> list[SimNode]:
        """The simulated machines."""
        return self._nodes

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._loop.now

    @property
    def query(self) -> Query:
        """The query under execution."""
        return self._query

    @property
    def current_placement(self) -> Mapping[int, int]:
        """Live operator→node mapping (mutated by migrations)."""
        return dict(self._placement)

    @property
    def monitor(self) -> StatisticsMonitor:
        """The statistics monitor."""
        return self._monitor

    @property
    def active_batches(self) -> int:
        """Batches injected but neither completed nor dropped yet."""
        return len(self._active)

    @property
    def partitioned(self) -> bool:
        """True while a network-partition fault is active."""
        return self._partitioned

    @property
    def report(self) -> SimulationReport:
        """The in-progress (or final) measurement report."""
        if self._report is None:
            raise RuntimeError("run() has not been called yet")
        return self._report

    # ------------------------------------------------------------------
    # Migration (the DYN baseline's lever)
    # ------------------------------------------------------------------

    def migrate(self, op_id: int, target_node: int) -> float:
        """Move an operator to another node, paying a suspension pause.

        The operator cannot serve jobs until its window state has been
        drained and re-built on the target.  Window state grows with
        the stream rate, so the pause is ``state_size ×
        migration_seconds_per_state`` scaled by the current rate
        relative to the compile-time estimate — migrating under load is
        exactly when it hurts most (§6.5 "the state sizes of the moving
        operators").  Returns the pause length.
        """
        if not 0 <= target_node < len(self._nodes):
            raise ValueError(f"no node {target_node} in a {len(self._nodes)}-node cluster")
        if self._placement[op_id] == target_node:
            return 0.0
        rate_ratio = max(
            self._workload.rate(self._loop.now) / self._query.driving_rate, 0.1
        )
        pause = self._ops[op_id].state_size * self._migration_unit * rate_ratio
        now = self._loop.now
        self._placement[op_id] = target_node
        self._op_ready_at[op_id] = max(self._op_ready_at[op_id], now + pause)
        report = self.report
        report.migrations += 1
        report.migration_stall_seconds += pause
        if self._trace is not None:
            self._trace.record(
                TraceEvent(
                    time=now,
                    kind="migration",
                    op_id=op_id,
                    node=target_node,
                    detail=f"pause={pause:.3f}s",
                )
            )
        # A migration may re-home an operator that stalled batches were
        # waiting on (its old node crashed); give them another shot.
        self._redispatch_stalled(now)
        return pause

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def _schedule_arrival(self, time: float) -> None:
        rate = self._workload.rate(time)
        if rate <= 0:
            raise ValueError(f"workload rate must be > 0 (got {rate} at t={time})")
        mean_gap = self._batch_size / rate
        gap = float(self._rng.exponential(mean_gap))
        next_time = time + gap
        if next_time <= self._duration:
            self._loop.schedule(next_time, lambda: self._on_arrival(next_time))

    def _on_arrival(self, time: float) -> None:
        self._schedule_arrival(time)
        batch = Batch(
            batch_id=self._next_batch_id,
            created_at=time,
            initial_size=self._batch_size,
        )
        self._next_batch_id += 1
        self._active.add(batch.batch_id)
        report = self.report
        report.batches_injected += 1
        report.tuples_in += batch.initial_size

        decision = self._strategy.route(time, self._monitor.current())
        batch.plan = decision.plan
        if self._last_plan is not None and decision.plan != self._last_plan:
            report.plan_switches += 1
        self._last_plan = decision.plan
        report.overhead_seconds += decision.overhead_seconds
        if self._trace is not None:
            self._trace.record(
                TraceEvent(
                    time=time,
                    kind="arrival",
                    batch_id=batch.batch_id,
                    plan_label=decision.plan.label,
                    size=batch.size,
                )
            )
        self._submit_stage(batch, time + decision.overhead_seconds)

    def _submit_stage(self, batch: Batch, time: float) -> None:
        op_id = batch.next_op
        if op_id is None:
            self._complete(batch, time)
            return
        node = self._nodes[self._placement[op_id]]
        if not node.online:
            # The operator's host is down: park the batch until the
            # node recovers or the operator migrates elsewhere.
            self._stalled.append(batch)
            self.report.batch_stalls += 1
            if self._trace is not None:
                self._trace.record(
                    TraceEvent(
                        time=time,
                        kind="stall",
                        batch_id=batch.batch_id,
                        op_id=op_id,
                        node=node.node_id,
                        size=batch.size,
                    )
                )
            return
        previous_node = self._batch_nodes.get(batch.batch_id)
        crosses_nodes = previous_node is not None and previous_node != node.node_id
        if crosses_nodes and self._partitioned:
            self._drop(batch, time, f"partition blocks {previous_node}->{node.node_id}")
            return
        if self._network is not None and crosses_nodes:
            delay = self._network.transfer_seconds(batch.size)
            time += delay
            self.report.network_seconds += delay
        self._batch_nodes[batch.batch_id] = node.node_id
        work = batch.size * self._ops[op_id].cost_per_tuple
        self.report.processing_seconds += node.service_seconds(work)
        done = node.submit(time, work, not_before=self._op_ready_at[op_id])
        self._stage_epoch[batch.batch_id] = node.crash_epoch
        if self._trace is not None:
            self._trace.record(
                TraceEvent(
                    time=time,
                    kind="stage",
                    batch_id=batch.batch_id,
                    op_id=op_id,
                    node=node.node_id,
                    size=batch.size,
                    detail=f"done={done:.3f}",
                )
            )
        self._loop.schedule(done, lambda: self._finish_stage(batch))

    def _finish_stage(self, batch: Batch) -> None:
        now = self._loop.now
        serving = self._nodes[self._batch_nodes[batch.batch_id]]
        epoch = self._stage_epoch.pop(batch.batch_id, serving.crash_epoch)
        if epoch != serving.crash_epoch:
            # The node crashed after this stage started service: the
            # in-flight work died with its queue.
            self._drop(batch, now, f"node {serving.node_id} crashed mid-service")
            return
        op_id = batch.next_op
        assert op_id is not None
        selectivity = self._workload.selectivity(op_id, now)
        batch.advance(selectivity)
        if batch.done:
            self._complete(batch, now)
        else:
            self._submit_stage(batch, now)

    def _drop(self, batch: Batch, time: float, reason: str) -> None:
        """Kill a batch mid-flight (crash or partition) and account it."""
        self._batch_nodes.pop(batch.batch_id, None)
        self._stage_epoch.pop(batch.batch_id, None)
        self._active.discard(batch.batch_id)
        report = self.report
        report.batches_dropped += 1
        report.tuples_dropped += batch.size
        if self._trace is not None:
            self._trace.record(
                TraceEvent(
                    time=time,
                    kind="drop",
                    batch_id=batch.batch_id,
                    size=batch.size,
                    detail=reason,
                )
            )

    def _redispatch_stalled(self, time: float) -> None:
        """Retry every parked batch; still-offline targets re-park."""
        if not self._stalled:
            return
        pending, self._stalled = self._stalled, []
        for batch in pending:
            self._submit_stage(batch, time)

    def _complete(self, batch: Batch, time: float) -> None:
        self._batch_nodes.pop(batch.batch_id, None)
        self._active.discard(batch.batch_id)
        self.report.record_batch(
            created_at=batch.created_at,
            completed_at=time,
            input_tuples=batch.initial_size,
            output_tuples=batch.size,
        )
        self.report.record_output(time, batch.size)
        if self._trace is not None:
            self._trace.record(
                TraceEvent(
                    time=time,
                    kind="complete",
                    batch_id=batch.batch_id,
                    size=batch.size,
                    detail=f"latency={time - batch.created_at:.3f}s",
                )
            )

    def _on_monitor(self, time: float) -> None:
        self._monitor.sample(time)
        next_time = time + self._monitor_period
        if next_time <= self._duration:
            self._loop.schedule(next_time, lambda: self._on_monitor(next_time))

    def _on_tick(self, time: float) -> None:
        self._strategy.on_tick(self, time)
        next_time = time + self._tick_period
        if next_time <= self._duration:
            self._loop.schedule(next_time, lambda: self._on_tick(next_time))

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def _apply_fault(self, event: FaultEvent) -> None:
        now = self._loop.now
        report = self.report
        report.fault_events += 1
        if event.kind == "crash":
            node = self._nodes[event.node]
            if node.online:
                node.fail(now)
                report.node_crashes += 1
        elif event.kind == "recover":
            node = self._nodes[event.node]
            if not node.online:
                assert node.offline_since is not None
                report.node_downtime_seconds += now - node.offline_since
                node.recover(now)
                self._redispatch_stalled(now)
        elif event.kind == "slowdown":
            self._nodes[event.node].set_speed(event.factor)
        elif event.kind == "degrade":
            if self._network_base is not None:
                self._network = (
                    self._network_base
                    # repro-lint: disable=no-float-eq -- factor 1.0 is the exact no-op sentinel the fault schedule emits on heal; it is assigned, never computed
                    if event.factor == 1.0
                    else self._network_base.scaled(event.factor)
                )
        elif event.kind == "partition":
            if not self._partitioned:
                self._partitioned = True
                self._partition_since = now
        elif event.kind == "heal":
            if self._partitioned:
                self._partitioned = False
                report.partition_seconds += now - self._partition_since
        elif event.kind == "monitor_dropout":
            self._monitor.suspend()
        elif event.kind == "monitor_restore":
            self._monitor.resume()
        if self._trace is not None:
            self._trace.record(
                TraceEvent(
                    time=now,
                    kind="fault",
                    node=event.node,
                    detail=event.describe(),
                )
            )
        on_fault = getattr(self._strategy, "on_fault", None)
        if on_fault is not None:
            try:
                on_fault(self, event)
            except FaultError as exc:
                # The sanctioned hook failure: the strategy could not
                # degrade gracefully, but the run (and its accounting)
                # must survive the fault it was injected to measure.
                report.fault_hook_errors += 1
                if self._trace is not None:
                    self._trace.record(
                        TraceEvent(
                            time=now,
                            kind="fault_hook_error",
                            node=event.node,
                            detail=str(exc),
                        )
                    )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(self, duration: float) -> SimulationReport:
        """Simulate ``duration`` seconds and return the report.

        Batches still in flight at the horizon are *not* counted — under
        overload the produced-tuple timeline flattens, which is the
        §6.5 stall signature the figures rely on.
        """
        ensure_positive(duration, "duration")
        self._duration = duration
        self._report = SimulationReport(duration=duration)
        self._monitor.sample(0.0)
        self._loop.schedule(self._tick_period, lambda: self._on_tick(self._tick_period))
        if self._monitor_period <= duration:
            self._loop.schedule(
                self._monitor_period, lambda: self._on_monitor(self._monitor_period)
            )
        if self._faults is not None:
            for fault in self._faults.events:
                if fault.time <= duration:
                    self._loop.schedule(
                        fault.time, lambda f=fault: self._apply_fault(f)
                    )
        self._schedule_arrival(0.0)
        self._loop.run_until(duration)
        self._report.node_busy_seconds = [node.busy_seconds for node in self._nodes]
        # Close out failure windows still open at the horizon.
        for node in self._nodes:
            if not node.online and node.offline_since is not None:
                self._report.node_downtime_seconds += duration - node.offline_since
        if self._partitioned:
            self._report.partition_seconds += duration - self._partition_since
        self._report.batches_in_flight = len(self._active)
        self._report.monitor_samples_dropped = self._monitor.samples_dropped
        return self._report
