"""Deterministic fault injection for the simulated DSPS.

The paper's robustness story is told under *statistics drift*; real
stream processors also face *infrastructure failure* — machines crash
and come back, CPUs get throttled by co-tenants, links degrade or
partition, and the statistics monitor itself loses samples.  This
module defines a :class:`FaultSchedule`: an immutable, time-ordered
list of :class:`FaultEvent` rows that :class:`~repro.engine.system.
StreamSimulator` replays during a run.

Fault semantics (implemented by the simulator and
:class:`~repro.engine.node.SimNode`):

``crash`` / ``recover``
    The node goes offline; its queued work is lost (batches in service
    there are *dropped*), and new stage submissions stall until the
    node recovers or the operator migrates away.
``slowdown``
    The node's effective capacity is scaled by ``factor`` (restore by
    scheduling a second ``slowdown`` with ``factor=1.0``).
``degrade`` / ``partition`` / ``heal``
    Network degradation multiplies inter-node transfer time by
    ``factor``; a partition *drops* any batch attempting a cross-node
    hop until ``heal``.
``monitor_dropout`` / ``monitor_restore``
    The statistics monitor stops sampling; strategies keep seeing the
    last (increasingly stale) estimates.

Everything is deterministic: a schedule is plain data, and
:meth:`FaultSchedule.random` derives all randomness from the seeded
RNG plumbing in :mod:`repro.util.rng`, so a chaos run is exactly
reproducible from ``(seed, schedule)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.util.rng import derive_rng
from repro.util.validation import ensure_positive

__all__ = [
    "FAULT_KINDS",
    "FaultError",
    "FaultEvent",
    "FaultSchedule",
    "monitor_dropout",
    "network_degradation",
    "network_partition",
    "node_crash",
    "node_slowdown",
]


class FaultError(Exception):
    """The one exception an ``on_fault`` hook may raise.

    A strategy's fault hook runs in the middle of the simulator's fault
    accounting; an arbitrary exception escaping it unwinds the event
    loop and turns a survived fault into a dead run.  Hooks that cannot
    degrade gracefully wrap the cause in ``FaultError`` — the simulator
    catches exactly this type, counts it in
    ``SimulationReport.fault_hook_errors``, and keeps the run alive.
    Deliberately a direct ``Exception`` subclass (not ``RuntimeError``)
    so a strategy's own ``except RuntimeError`` cleanup can never
    swallow the sanctioned signal by accident.  The static side of the
    same contract is the ``fault-hook-raises`` audit pass.
    """

#: Every fault kind the simulator understands.
FAULT_KINDS = frozenset(
    {
        "crash",
        "recover",
        "slowdown",
        "degrade",
        "partition",
        "heal",
        "monitor_dropout",
        "monitor_restore",
    }
)

#: Kinds that target one node (``FaultEvent.node`` is required).
NODE_KINDS = frozenset({"crash", "recover", "slowdown"})

#: Kinds that parameterize a severity (``FaultEvent.factor`` matters).
FACTOR_KINDS = frozenset({"slowdown", "degrade"})


@dataclass(frozen=True)
class FaultEvent:
    """One timed infrastructure event.

    Attributes
    ----------
    time:
        Simulated second at which the event fires.
    kind:
        One of :data:`FAULT_KINDS`.
    node:
        Target node index, required for the node kinds
        (``crash`` / ``recover`` / ``slowdown``).
    factor:
        Severity for ``slowdown`` (capacity multiplier, ``1.0``
        restores full speed) and ``degrade`` (transfer-time
        multiplier, ``1.0`` heals); ignored elsewhere.
    """

    time: float
    kind: str
    node: int | None = None
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}"
            )
        if self.kind in NODE_KINDS:
            if self.node is None or self.node < 0:
                raise ValueError(f"{self.kind!r} fault requires a node index >= 0")
        ensure_positive(self.factor, "factor")

    def describe(self) -> str:
        """Human-readable one-liner (traces and CLI output)."""
        parts = [f"{self.kind}@{self.time:g}s"]
        if self.node is not None:
            parts.append(f"node={self.node}")
        if self.kind in FACTOR_KINDS:
            parts.append(f"factor={self.factor:g}")
        return " ".join(parts)


# ----------------------------------------------------------------------
# Paired-event builders (fault + its reversal)
# ----------------------------------------------------------------------


def node_crash(time: float, node: int, duration: float) -> tuple[FaultEvent, ...]:
    """A node failing at ``time`` and rejoining after ``duration``."""
    ensure_positive(duration, "duration")
    return (
        FaultEvent(time=time, kind="crash", node=node),
        FaultEvent(time=time + duration, kind="recover", node=node),
    )


def node_slowdown(
    time: float, node: int, factor: float, duration: float
) -> tuple[FaultEvent, ...]:
    """A node running at ``factor`` of its capacity for ``duration``."""
    ensure_positive(duration, "duration")
    return (
        FaultEvent(time=time, kind="slowdown", node=node, factor=factor),
        FaultEvent(time=time + duration, kind="slowdown", node=node, factor=1.0),
    )


def network_degradation(
    time: float, factor: float, duration: float
) -> tuple[FaultEvent, ...]:
    """Inter-node transfers slowed ``factor``× for ``duration``."""
    ensure_positive(duration, "duration")
    return (
        FaultEvent(time=time, kind="degrade", factor=factor),
        FaultEvent(time=time + duration, kind="degrade", factor=1.0),
    )


def network_partition(time: float, duration: float) -> tuple[FaultEvent, ...]:
    """Cross-node hops dropped for ``duration`` seconds."""
    ensure_positive(duration, "duration")
    return (
        FaultEvent(time=time, kind="partition"),
        FaultEvent(time=time + duration, kind="heal"),
    )


def monitor_dropout(time: float, duration: float) -> tuple[FaultEvent, ...]:
    """Statistics sampling suspended for ``duration`` seconds."""
    ensure_positive(duration, "duration")
    return (
        FaultEvent(time=time, kind="monitor_dropout"),
        FaultEvent(time=time + duration, kind="monitor_restore"),
    )


class FaultSchedule:
    """An immutable, time-ordered fault plan for one simulated run.

    Construct it from explicit events, from the paired builders above,
    from a seeded random generator (:meth:`random`), or from the CLI
    spec grammar (:meth:`parse`).  Schedules are stateless and can be
    shared across simulators — :func:`~repro.runtime.comparison.
    compare_strategies` replays one schedule against every strategy so
    robustness-under-failure is compared on identical chaos.
    """

    def __init__(self, events: Iterable[FaultEvent]) -> None:
        self._events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: e.time)
        )

    @property
    def events(self) -> tuple[FaultEvent, ...]:
        """All events, sorted by time (stable for simultaneous events)."""
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return self._events == other._events

    def __repr__(self) -> str:
        return f"FaultSchedule({len(self._events)} events)"

    @property
    def needs_network(self) -> bool:
        """True when any event assumes a network model (``degrade``)."""
        return any(event.kind == "degrade" for event in self._events)

    def validate_for(self, n_nodes: int) -> None:
        """Raise if any node-targeted event is outside ``[0, n_nodes)``."""
        for event in self._events:
            if event.node is not None and event.node >= n_nodes:
                raise ValueError(
                    f"fault {event.describe()} targets node {event.node} "
                    f"but the cluster has {n_nodes} nodes"
                )

    def describe(self) -> str:
        """Multi-line human-readable listing."""
        return "\n".join(event.describe() for event in self._events)

    # ------------------------------------------------------------------
    # Seeded chaos generation
    # ------------------------------------------------------------------

    @classmethod
    def random(
        cls,
        n_nodes: int,
        duration: float,
        seed: int | np.random.Generator | None,
        *,
        crashes: int = 1,
        slowdowns: int = 1,
        partitions: int = 0,
        dropouts: int = 1,
        degradations: int = 0,
        min_outage_fraction: float = 0.05,
        max_outage_fraction: float = 0.2,
    ) -> "FaultSchedule":
        """A reproducible random chaos schedule over ``[0, duration]``.

        All draws come from :func:`repro.util.rng.derive_rng`, so the
        same ``seed`` always yields the same schedule.  Fault start
        times land in the first 70% of the run so their recovery (and
        the post-recovery drain) stays observable within the horizon.
        """
        ensure_positive(n_nodes, "n_nodes")
        ensure_positive(duration, "duration")
        if not 0 < min_outage_fraction <= max_outage_fraction < 1:
            raise ValueError(
                "need 0 < min_outage_fraction <= max_outage_fraction < 1, got "
                f"{min_outage_fraction}..{max_outage_fraction}"
            )
        rng = derive_rng(seed)

        def start() -> float:
            return float(rng.uniform(0.05, 0.7)) * duration

        def outage() -> float:
            return float(
                rng.uniform(min_outage_fraction, max_outage_fraction) * duration
            )

        events: list[FaultEvent] = []
        for _ in range(crashes):
            events.extend(node_crash(start(), int(rng.integers(n_nodes)), outage()))
        for _ in range(slowdowns):
            factor = float(rng.uniform(0.2, 0.8))
            events.extend(
                node_slowdown(start(), int(rng.integers(n_nodes)), factor, outage())
            )
        for _ in range(partitions):
            events.extend(network_partition(start(), outage()))
        for _ in range(dropouts):
            events.extend(monitor_dropout(start(), outage()))
        for _ in range(degradations):
            factor = float(rng.uniform(2.0, 10.0))
            events.extend(network_degradation(start(), factor, outage()))
        return cls(events)

    # ------------------------------------------------------------------
    # CLI spec grammar
    # ------------------------------------------------------------------

    @classmethod
    def parse(
        cls,
        spec: str,
        *,
        n_nodes: int,
        duration: float,
        seed: int | None = None,
    ) -> "FaultSchedule":
        """Parse a ``--faults`` spec string into a schedule.

        Two forms:

        ``random[:key=value...]``
            Seeded chaos via :meth:`random`; keys are its counters,
            e.g. ``random:crashes=2:partitions=1``.

        ``entry[,entry...]`` where entry is ``kind@time[:key=value...]``
            Explicit events.  ``for=<seconds>`` expands a fault into
            its fault/reversal pair::

                crash@60:node=1:for=30,partition@120:for=10
                slowdown@40:node=0:factor=0.5:for=60,dropout@20:for=100

            One-way kinds (``recover``, ``heal``, ``monitor_restore``)
            are accepted for hand-built asymmetric schedules.
        """
        spec = spec.strip()
        if not spec:
            raise ValueError("empty --faults spec")
        if spec == "random" or spec.startswith("random:"):
            count_keys = ("crashes", "slowdowns", "partitions", "dropouts", "degradations")
            fraction_keys = ("min_outage_fraction", "max_outage_fraction")
            kwargs: dict[str, float] = {}
            for token in spec.split(":")[1:]:
                key, _, value = token.partition("=")
                if not value:
                    raise ValueError(f"bad random-spec token {token!r}; use key=value")
                try:
                    if key in count_keys:
                        kwargs[key] = int(value)
                    elif key in fraction_keys:
                        kwargs[key] = float(value)
                    else:
                        raise ValueError(
                            f"unknown random-spec key {key!r}; expected one of "
                            f"{sorted(count_keys + fraction_keys)}"
                        )
                except ValueError as exc:
                    if "random-spec" in str(exc):
                        raise
                    raise ValueError(
                        f"bad random-spec value {value!r} for {key!r}"
                    ) from exc
            return cls.random(n_nodes, duration, seed, **kwargs)

        events: list[FaultEvent] = []
        for entry in spec.split(","):
            events.extend(cls._parse_entry(entry.strip()))
        schedule = cls(events)
        schedule.validate_for(n_nodes)
        return schedule

    @staticmethod
    def _parse_entry(entry: str) -> tuple[FaultEvent, ...]:
        kind, at, rest = entry.partition("@")
        if not at:
            raise ValueError(f"bad fault entry {entry!r}; expected kind@time[:...]")
        fields = rest.split(":")
        time = float(fields[0])
        params: dict[str, float] = {}
        for token in fields[1:]:
            key, eq, value = token.partition("=")
            if not eq:
                raise ValueError(f"bad fault option {token!r}; use key=value")
            params[key] = float(value)
        node = int(params.pop("node")) if "node" in params else None
        factor = params.pop("factor", 1.0)
        hold = params.pop("for", None)
        if params:
            raise ValueError(f"unknown fault options {sorted(params)} in {entry!r}")

        alias = {"dropout": "monitor_dropout", "restore": "monitor_restore"}
        kind = alias.get(kind, kind)
        if hold is None:
            return (FaultEvent(time=time, kind=kind, node=node, factor=factor),)
        if kind == "crash":
            return node_crash(time, _require_node(node, entry), hold)
        if kind == "slowdown":
            return node_slowdown(time, _require_node(node, entry), factor, hold)
        if kind == "degrade":
            return network_degradation(time, factor, hold)
        if kind == "partition":
            return network_partition(time, hold)
        if kind == "monitor_dropout":
            return monitor_dropout(time, hold)
        raise ValueError(f"'for=' makes no sense on one-way fault {kind!r}")


def _require_node(node: int | None, entry: str) -> int:
    if node is None:
        raise ValueError(f"fault entry {entry!r} requires node=<index>")
    return node
