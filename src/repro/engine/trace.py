"""Structured event tracing for simulations.

Pass a :class:`SimulationTrace` to :class:`~repro.engine.system.
StreamSimulator` to capture a per-event audit trail of a run: batch
arrivals with routing decisions, per-stage node service, completions,
and migrations.  Intended for debugging strategies and for the example
applications' narratives — production-length runs should leave tracing
off (every event is a Python object).

Events are plain dataclass rows; :meth:`SimulationTrace.filter` and
:meth:`SimulationTrace.summary` cover the common queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["TraceEvent", "SimulationTrace"]


@dataclass(frozen=True)
class TraceEvent:
    """One simulator event.

    ``kind`` is one of ``arrival``, ``stage``, ``complete``,
    ``migration``, or — under fault injection — ``fault`` (an injected
    event fired), ``stall`` (a stage parked on an offline node), and
    ``drop`` (a batch killed by a crash or partition); the remaining
    fields are populated as applicable.
    """

    time: float
    kind: str
    batch_id: int | None = None
    op_id: int | None = None
    node: int | None = None
    plan_label: str | None = None
    size: float | None = None
    detail: str = ""


class SimulationTrace:
    """Append-only event log with bounded memory.

    ``max_events`` caps memory; once full, further events are counted
    but not stored (the ``dropped`` counter says how many).
    """

    def __init__(self, max_events: int = 100_000) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self._max = max_events
        self._events: list[TraceEvent] = []
        self._dropped = 0

    def record(self, event: TraceEvent) -> None:
        """Append an event (or count it as dropped past the cap)."""
        if len(self._events) >= self._max:
            self._dropped += 1
            return
        self._events.append(event)

    @property
    def events(self) -> list[TraceEvent]:
        """All stored events, in simulation order."""
        return list(self._events)

    @property
    def dropped(self) -> int:
        """Events discarded after the cap was reached."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._events)

    def filter(
        self,
        *,
        kind: str | None = None,
        batch_id: int | None = None,
        op_id: int | None = None,
    ) -> Iterator[TraceEvent]:
        """Iterate events matching all given criteria."""
        for event in self._events:
            if kind is not None and event.kind != kind:
                continue
            if batch_id is not None and event.batch_id != batch_id:
                continue
            if op_id is not None and event.op_id != op_id:
                continue
            yield event

    def batch_journey(self, batch_id: int) -> list[TraceEvent]:
        """Every event touching one batch, arrival to completion."""
        return list(self.filter(batch_id=batch_id))

    def summary(self) -> dict[str, int]:
        """Event counts by kind (plus drops)."""
        counts: dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        if self._dropped:
            counts["dropped"] = self._dropped
        return counts
