"""Plan cost model and cost-surface fitting (§2.3).

The cost of a pipeline plan at a statistics point is the classic
cascaded-selectivity form

    cost(lp, pnt) = λ · Σ_k  c_{π(k)} · Π_{j<k} σ_{π(j)}

— per-second CPU work summed over the operators in plan order, where an
operator's input cardinality is the driving rate λ thinned (or fanned
out) by all earlier operators' selectivities.  This is *multilinear* in
the uncertain parameters, exactly the polynomial family the paper fits
("cost(p, pnt) = c1·σi + c2·σj + c3·σi·σj + c4" for 2-D).

Two views are provided:

* :class:`PlanCostModel` — exact analytic costs, per-operator loads (the
  input to physical-plan feasibility), and gradients (the input to the
  §4.2 weight function).
* :class:`PlanCostSurface` — a fitted multilinear surface obtained from
  sampled (point, cost) observations via least squares, the paper's
  "standard surface-fitting techniques", for when costs come from
  measurements rather than a formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Mapping, Sequence

import numpy as np

from repro.query.model import Query
from repro.query.plans import LogicalPlan
from repro.query.statistics import StatPoint, rate_param
from repro.util.types import FloatArray

__all__ = [
    "PlanCostModel",
    "PlanCostSurface",
    "multilinear_features",
    "fit_cost_surface",
    "surface_for_plan",
]


class PlanCostModel:
    """Exact analytic cost model for one query's logical plans.

    The model resolves each statistic from the :class:`StatPoint` when
    present and falls back to the operator/query default estimate, so
    callers may supply points over any subset of parameters (e.g. only
    the two uncertain dimensions of a 2-D parameter space).
    """

    def __init__(self, query: Query) -> None:
        self._query = query
        self._ops = {op.op_id: op for op in query.operators}
        self._rate_name = rate_param()

    @property
    def query(self) -> Query:
        """The query this model prices."""
        return self._query

    def _selectivity(self, op_id: int, point: Mapping[str, float]) -> float:
        op = self._ops[op_id]
        return float(point.get(op.selectivity_param, op.selectivity))

    def _rate(self, point: Mapping[str, float]) -> float:
        return float(point.get(self._rate_name, self._query.driving_rate))

    def plan_cost(self, plan: LogicalPlan, point: Mapping[str, float]) -> float:
        """Total per-second cost of ``plan`` at ``point``."""
        rate = self._rate(point)
        carried = 1.0
        total = 0.0
        for op_id in plan:
            op = self._ops[op_id]
            total += op.cost_per_tuple * carried
            carried *= self._selectivity(op_id, point)
        return rate * total

    def operator_load(
        self, plan: LogicalPlan, op_id: int, point: Mapping[str, float]
    ) -> float:
        """Per-second load that ``op_id`` places on its host under ``plan``.

        This is the operator's share of :meth:`plan_cost`: rate into the
        operator times its per-tuple cost.  Physical feasibility (Def. 3)
        sums these per machine and compares against the node's resources.
        """
        rate = self._rate(point)
        carried = 1.0
        for earlier in plan.prefix_before(op_id):
            carried *= self._selectivity(earlier, point)
        return rate * self._ops[op_id].cost_per_tuple * carried

    def operator_loads(
        self, plan: LogicalPlan, point: Mapping[str, float]
    ) -> dict[int, float]:
        """Per-operator loads for all operators of ``plan`` at ``point``."""
        rate = self._rate(point)
        carried = 1.0
        loads: dict[int, float] = {}
        for op_id in plan:
            op = self._ops[op_id]
            loads[op_id] = rate * op.cost_per_tuple * carried
            carried *= self._selectivity(op_id, point)
        return loads

    def gradient(
        self, plan: LogicalPlan, point: Mapping[str, float]
    ) -> dict[str, float]:
        """Analytic partial derivatives of plan cost w.r.t. each parameter.

        Returns a mapping over the parameters *present in* ``point``.
        Because the cost is multilinear, ∂cost/∂σ_i is the cost of the
        suffix after operator i with σ_i factored out, and ∂cost/∂λ is
        cost/λ.  Used by the §4.2 slope-based weight function.
        """
        grads: dict[str, float] = {}
        cost = self.plan_cost(plan, point)
        rate = self._rate(point)
        if self._rate_name in point:
            grads[self._rate_name] = cost / rate
        # Partial w.r.t. σ_{π(k)}: rate · Π_{j<k, j≠k} σ · Σ over suffix.
        order = tuple(plan)
        for k, op_id in enumerate(order):
            name = self._ops[op_id].selectivity_param
            if name not in point:
                continue
            prefix_product = 1.0
            for earlier in order[:k]:
                prefix_product *= self._selectivity(earlier, point)
            suffix = 0.0
            carried = 1.0
            for later in order[k + 1 :]:
                suffix += self._ops[later].cost_per_tuple * carried
                carried *= self._selectivity(later, point)
            grads[name] = rate * prefix_product * suffix
        return grads

    def slope(self, plan: LogicalPlan, point: Mapping[str, float]) -> float:
        """Euclidean norm of the cost gradient at ``point``.

        The scalar "slope of the plan's cost function" used by the §4.2
        weight assignment: high slope means the point is near the margin
        of the plan's robust region.
        """
        grads = self.gradient(plan, point)
        return float(np.sqrt(sum(g * g for g in grads.values())))

    # ------------------------------------------------------------------
    # Batch (vectorized) evaluation over dense point matrices
    # ------------------------------------------------------------------
    #
    # Each batch method evaluates one plan at every row of a
    # ``(n_points, len(names))`` value matrix in a handful of NumPy
    # column operations.  The accumulation order deliberately mirrors
    # the scalar loops above operation for operation, so batch results
    # are bitwise identical to calling the scalar method per row —
    # the equivalence the hypothesis suite pins down.

    def _column(
        self, param: str, default: float, names: Sequence[str], values: FloatArray
    ) -> FloatArray | float:
        """The values of ``param`` across the batch.

        Returns the matching matrix column when the parameter is one of
        ``names``, else the scalar default — the same "resolve from the
        point, fall back to the estimate" rule as the scalar path.
        """
        try:
            position = list(names).index(param)
        except ValueError:
            return default
        return values[:, position]

    def plan_costs(
        self, plan: LogicalPlan, values: FloatArray, names: Sequence[str]
    ) -> FloatArray:
        """Total per-second cost of ``plan`` at every point of a batch.

        ``values`` is a ``(n_points, len(names))`` matrix whose columns
        are the parameters listed in ``names`` (e.g. a
        :meth:`~repro.core.parameter_space.ParameterSpace.grid_matrix`);
        parameters not present fall back to their defaults, exactly as
        in :meth:`plan_cost`.  Returns an ``(n_points,)`` cost vector.
        """
        values = np.asarray(values, dtype=float)
        names = list(names)
        rate = self._column(self._rate_name, self._query.driving_rate, names, values)
        carried = np.ones(values.shape[0])
        total = np.zeros(values.shape[0])
        for op_id in plan:
            op = self._ops[op_id]
            total += op.cost_per_tuple * carried
            carried = carried * self._column(
                op.selectivity_param, op.selectivity, names, values
            )
        return rate * total

    def operator_loads_batch(
        self, plan: LogicalPlan, values: FloatArray, names: Sequence[str]
    ) -> dict[int, FloatArray]:
        """Per-operator loads of ``plan`` at every point of a batch.

        The batch counterpart of :meth:`operator_loads`: a mapping from
        operator id to its ``(n_points,)`` load vector.
        """
        values = np.asarray(values, dtype=float)
        names = list(names)
        rate = self._column(self._rate_name, self._query.driving_rate, names, values)
        carried = np.ones(values.shape[0])
        loads: dict[int, FloatArray] = {}
        for op_id in plan:
            op = self._ops[op_id]
            loads[op_id] = rate * op.cost_per_tuple * carried
            carried = carried * self._column(
                op.selectivity_param, op.selectivity, names, values
            )
        return loads

    def gradients_batch(
        self, plan: LogicalPlan, values: FloatArray, names: Sequence[str]
    ) -> FloatArray:
        """Partial derivatives of plan cost at every point of a batch.

        Returns an ``(n_points, len(names))`` matrix whose column ``j``
        is ∂cost/∂``names[j]``; a parameter that does not influence the
        cost (neither the rate nor any operator's selectivity) gets a
        zero column — the batch analogue of :meth:`gradient` returning
        no entry for it.
        """
        values = np.asarray(values, dtype=float)
        names = list(names)
        n_points = values.shape[0]
        rate = self._column(self._rate_name, self._query.driving_rate, names, values)
        grads = np.zeros((n_points, len(names)))

        order = tuple(plan)
        sels = [
            self._column(
                self._ops[op_id].selectivity_param,
                self._ops[op_id].selectivity,
                names,
                values,
            )
            for op_id in order
        ]
        if self._rate_name in names:
            # ∂cost/∂λ = cost/λ, computed as the scalar path does (full
            # cost divided by the rate) so the two agree bitwise.
            carried = np.ones(n_points)
            total = np.zeros(n_points)
            for k, op_id in enumerate(order):
                total = total + self._ops[op_id].cost_per_tuple * carried
                carried = carried * sels[k]
            grads[:, names.index(self._rate_name)] = (rate * total) / rate
        for k, op_id in enumerate(order):
            name = self._ops[op_id].selectivity_param
            if name not in names:
                continue
            prefix_product = np.ones(n_points)
            for j in range(k):
                prefix_product = prefix_product * sels[j]
            suffix = np.zeros(n_points)
            carried = np.ones(n_points)
            for later in range(k + 1, len(order)):
                suffix = suffix + self._ops[order[later]].cost_per_tuple * carried
                carried = carried * sels[later]
            grads[:, names.index(name)] = rate * prefix_product * suffix
        return grads

    def slopes_batch(
        self, plan: LogicalPlan, values: FloatArray, names: Sequence[str]
    ) -> FloatArray:
        """Euclidean gradient norms at every point of a batch."""
        grads = self.gradients_batch(plan, values, names)
        return np.sqrt(np.sum(grads * grads, axis=1))


def multilinear_features(values: Sequence[float]) -> FloatArray:
    """Feature vector of all subset products of ``values``.

    For values ``(x, y)`` the features are ``[1, x, y, x·y]`` — the 2-D
    cost family of §2.3.  For ``d`` values there are ``2^d`` features,
    ordered by subset size then lexicographically, matching the
    coefficient layout of :class:`PlanCostSurface`.
    """
    d = len(values)
    features = np.empty(2**d)
    idx = 0
    for size in range(d + 1):
        for subset in combinations(range(d), size):
            product = 1.0
            for j in subset:
                product *= values[j]
            features[idx] = product
            idx += 1
    return features


@dataclass(frozen=True)
class PlanCostSurface:
    """A fitted multilinear cost surface over named dimensions.

    ``dimensions`` are the parameter names (in feature order) and
    ``coefficients`` the fitted weights over all subset-product features.
    """

    dimensions: tuple[str, ...]
    coefficients: FloatArray

    def __post_init__(self) -> None:
        expected = 2 ** len(self.dimensions)
        if len(self.coefficients) != expected:
            raise ValueError(
                f"need {expected} coefficients for {len(self.dimensions)} dimensions, "
                f"got {len(self.coefficients)}"
            )

    def evaluate(self, point: Mapping[str, float]) -> float:
        """Surface value at ``point`` (must cover all dimensions)."""
        values = [float(point[name]) for name in self.dimensions]
        return float(self.coefficients @ multilinear_features(values))

    def gradient(self, point: Mapping[str, float]) -> dict[str, float]:
        """Analytic surface gradient at ``point``, per dimension."""
        values = [float(point[name]) for name in self.dimensions]
        grads: dict[str, float] = {}
        for i, name in enumerate(self.dimensions):
            # d/dx_i of each subset product is the product over the
            # subset minus {i} when i is in the subset, else zero.
            total = 0.0
            idx = 0
            for size in range(len(values) + 1):
                for subset in combinations(range(len(values)), size):
                    if i in subset:
                        product = 1.0
                        for j in subset:
                            if j != i:
                                product *= values[j]
                        total += self.coefficients[idx] * product
                    idx += 1
            grads[name] = total
        return grads


def fit_cost_surface(
    dimensions: Sequence[str],
    points: Sequence[Mapping[str, float]],
    costs: Sequence[float],
) -> PlanCostSurface:
    """Least-squares fit of a multilinear surface to observed costs.

    ``points`` are statistics points covering at least ``2^d`` distinct
    parameter combinations; ``costs`` the corresponding measured plan
    costs.  Raises ``ValueError`` when the system is underdetermined.
    """
    dimensions = tuple(dimensions)
    if len(points) != len(costs):
        raise ValueError(
            f"points ({len(points)}) and costs ({len(costs)}) lengths differ"
        )
    n_features = 2 ** len(dimensions)
    if len(points) < n_features:
        raise ValueError(
            f"need at least {n_features} samples to fit {len(dimensions)} "
            f"dimensions, got {len(points)}"
        )
    design = np.vstack(
        [
            multilinear_features([float(p[name]) for name in dimensions])
            for p in points
        ]
    )
    target = np.asarray(costs, dtype=float)
    coefficients, *_ = np.linalg.lstsq(design, target, rcond=None)
    return PlanCostSurface(dimensions, coefficients)


def surface_for_plan(
    model: PlanCostModel,
    plan: LogicalPlan,
    dimensions: Sequence[str],
    sample_points: Sequence[StatPoint],
) -> PlanCostSurface:
    """Fit a surface to a plan's *analytic* costs at the given samples.

    Convenience bridging the exact model and the fitted representation;
    for multilinear true costs the fit is exact up to rounding, which
    the test suite verifies.
    """
    costs = [model.plan_cost(plan, p) for p in sample_points]
    return fit_cost_surface(dimensions, sample_points, costs)
