"""Query model, logical plans, cost model, and the black-box point optimizer.

This package implements the paper's §2.1 distributed query-plan basics:

* :mod:`repro.query.model` — streams, operators (with per-tuple cost,
  selectivity, and state size), and select-project-join queries whose
  logical plans are operator orderings.
* :mod:`repro.query.statistics` — named statistics (operator selectivities
  and stream input rates), point estimates, and uncertainty levels.
* :mod:`repro.query.plans` — logical plans, validity with respect to the
  join graph, and plan enumeration.
* :mod:`repro.query.cost` — the multilinear plan cost model of §2.3 and
  least-squares cost-surface fitting.
* :mod:`repro.query.optimizer` — optimal plan-at-a-point optimizers with
  optimizer-call accounting (the unit of cost in Figures 10–12).
"""

from repro.query.estimation import (
    calibrate_workload,
    estimate_from_samples,
    uncertainty_level_for,
)
from repro.query.cost import (
    PlanCostModel,
    PlanCostSurface,
    fit_cost_surface,
    multilinear_features,
)
from repro.query.model import JoinGraph, Operator, Query, StreamSchema
from repro.query.optimizer import (
    DPOptimizer,
    ExhaustiveOrderOptimizer,
    PointOptimizer,
    RankOrderOptimizer,
    make_optimizer,
)
from repro.query.plans import LogicalPlan, enumerate_plans, is_valid_order
from repro.query.statistics import (
    StatisticsEstimate,
    StatPoint,
    rate_param,
    selectivity_param,
)

__all__ = [
    "DPOptimizer",
    "ExhaustiveOrderOptimizer",
    "JoinGraph",
    "LogicalPlan",
    "Operator",
    "PlanCostModel",
    "PlanCostSurface",
    "PointOptimizer",
    "Query",
    "RankOrderOptimizer",
    "StatPoint",
    "StatisticsEstimate",
    "StreamSchema",
    "calibrate_workload",
    "enumerate_plans",
    "estimate_from_samples",
    "uncertainty_level_for",
    "fit_cost_surface",
    "is_valid_order",
    "make_optimizer",
    "multilinear_features",
    "rate_param",
    "selectivity_param",
]
