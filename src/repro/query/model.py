"""Streams, operators, and select-project-join queries (§2.1).

A continuous query is modelled — as in the paper's running examples Q1
and Q2 — as a *pipeline* of commutative operators (window-join and
predicate operators) applied to a driving input stream.  A logical plan
is an ordering of these operators; operator orderings may be constrained
by a join graph (an N-way join can only probe a stream once the running
intermediate result shares an attribute with it).

Each operator carries the two statistics the optimizer cares about
(per-tuple processing cost ``cost_per_tuple`` and default selectivity
estimate ``selectivity``) plus a ``state_size`` used by the DYN baseline
to price operator migration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.query.statistics import (
    StatisticsEstimate,
    StatPoint,
    rate_param,
    selectivity_param,
)
from repro.util.validation import ensure_non_empty, ensure_positive

__all__ = ["StreamSchema", "Operator", "JoinGraph", "Query"]


@dataclass(frozen=True)
class StreamSchema:
    """A named input stream with its attributes and base arrival rate.

    ``base_rate`` is the estimated arrival rate in tuples/second used as
    the single-point estimate for the stream's rate parameter.
    """

    name: str
    attributes: tuple[str, ...] = ()
    base_rate: float = 100.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("stream name must not be empty")
        ensure_positive(self.base_rate, f"base_rate of stream {self.name!r}")


@dataclass(frozen=True)
class Operator:
    """One commutative query operator in the pipeline.

    Attributes
    ----------
    op_id:
        Unique small integer identifying the operator within its query.
    name:
        Human-readable label (``"op1"``, ``"match_news"``, ...).
    cost_per_tuple:
        CPU cost units to process one input tuple (the paper's ``c_i``).
    selectivity:
        Default estimate of output/input cardinality ratio (``δ_i``).
        Join operators may have selectivity > 1 (fan-out).
    state_size:
        Abstract size of the operator's window state; the DYN baseline's
        migration pause is proportional to it.
    stream:
        Name of the stream this operator probes (for join operators), or
        ``None`` for pure predicates over the driving stream.
    """

    op_id: int
    name: str
    cost_per_tuple: float
    selectivity: float
    state_size: float = 1.0
    stream: str | None = None

    def __post_init__(self) -> None:
        if self.op_id < 0:
            raise ValueError(f"op_id must be >= 0, got {self.op_id}")
        ensure_positive(self.cost_per_tuple, f"cost_per_tuple of {self.name!r}")
        ensure_positive(self.selectivity, f"selectivity of {self.name!r}")
        ensure_positive(self.state_size, f"state_size of {self.name!r}")

    @property
    def selectivity_param(self) -> str:
        """Parameter-space name of this operator's selectivity."""
        return selectivity_param(self.op_id)


class JoinGraph:
    """Connectivity constraints between operators of an N-way join.

    ``edges`` contains unordered pairs of operator ids.  An ordering of
    the operators is *valid* when every operator after the first is
    adjacent to at least one earlier operator, i.e. the prefix always
    induces a connected subgraph.  An empty join graph (the default for
    predicate pipelines) imposes no constraint.
    """

    def __init__(self, edges: Iterable[tuple[int, int]] = ()) -> None:
        adjacency: dict[int, set[int]] = {}
        for a, b in edges:
            if a == b:
                raise ValueError(f"self-loop on operator {a} is not a join edge")
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)
        self._adjacency = {k: frozenset(v) for k, v in adjacency.items()}

    @property
    def is_unconstrained(self) -> bool:
        """True when the graph has no edges (any ordering is valid)."""
        return not self._adjacency

    def neighbors(self, op_id: int) -> frozenset[int]:
        """Operator ids adjacent to ``op_id`` (empty if unconstrained)."""
        return self._adjacency.get(op_id, frozenset())

    def allows_after(self, op_id: int, placed: Iterable[int]) -> bool:
        """True if ``op_id`` may follow the already-ordered ``placed`` ops."""
        if self.is_unconstrained:
            return True
        placed = set(placed)
        if not placed:
            return True
        return bool(self.neighbors(op_id) & placed)

    @classmethod
    def chain(cls, op_ids: Iterable[int]) -> "JoinGraph":
        """A linear chain join graph over the given operator ids."""
        ids = list(op_ids)
        return cls(zip(ids, ids[1:]))

    @classmethod
    def star(cls, center: int, leaves: Iterable[int]) -> "JoinGraph":
        """A star join graph: every leaf joins the center operator."""
        return cls((center, leaf) for leaf in leaves)

    def __repr__(self) -> str:
        n_edges = sum(len(v) for v in self._adjacency.values()) // 2
        return f"JoinGraph(edges={n_edges}, unconstrained={self.is_unconstrained})"


@dataclass(frozen=True)
class Query:
    """A continuous SPJ query: a set of commutative operators over streams.

    Attributes
    ----------
    name:
        Query label (``"Q1"``, ``"Q2"``).
    operators:
        The full operator set ``OP``; plan = ordering of these.
    streams:
        The input streams referenced by the operators.
    join_graph:
        Ordering constraints; defaults to unconstrained.
    window_seconds:
        Sliding-window length for the join state (documentation and
        state-size scaling only; the cost model is window-agnostic).
    """

    name: str
    operators: tuple[Operator, ...]
    streams: tuple[StreamSchema, ...] = ()
    join_graph: JoinGraph = field(default_factory=JoinGraph)
    window_seconds: float = 60.0

    def __post_init__(self) -> None:
        ensure_non_empty(self.operators, "operators")
        ids = [op.op_id for op in self.operators]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate operator ids in query {self.name!r}: {ids}")
        ensure_positive(self.window_seconds, "window_seconds")

    def __len__(self) -> int:
        return len(self.operators)

    @property
    def operator_ids(self) -> tuple[int, ...]:
        """All operator ids, in declaration order."""
        return tuple(op.op_id for op in self.operators)

    def operator(self, op_id: int) -> Operator:
        """Look up an operator by id; raises ``KeyError`` if absent."""
        for op in self.operators:
            if op.op_id == op_id:
                return op
        raise KeyError(f"query {self.name!r} has no operator with id {op_id}")

    @property
    def driving_rate(self) -> float:
        """Estimated driving input rate (first stream, or 100 tup/s)."""
        if self.streams:
            return self.streams[0].base_rate
        return 100.0

    def default_estimates(
        self, uncertainty: Mapping[str, int] | None = None
    ) -> StatisticsEstimate:
        """Bundle the operators' default statistics into an estimate ``E``.

        Includes every operator selectivity plus the driving input rate.
        ``uncertainty`` optionally assigns levels to a subset of them.
        """
        estimates: dict[str, float] = {rate_param(): self.driving_rate}
        for op in self.operators:
            estimates[op.selectivity_param] = op.selectivity
        return StatisticsEstimate(estimates, uncertainty or {})

    def estimate_point(self) -> StatPoint:
        """The single-point estimate as a :class:`StatPoint`."""
        return self.default_estimates().point
