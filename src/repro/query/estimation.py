"""Deriving statistics estimates — and uncertainty levels — from data.

§2.2: "the uncertainty level U is computed based on how statistic
estimates E are derived.  For example, if a value of E is available
from the representative training data set, then U = 1 denotes low
uncertainty."  This module implements that derivation: given observed
samples of each statistic, the point estimate is the sample mean and
the integer uncertainty level is the smallest ``u`` whose Algorithm 1
band ``±0.1·u·e`` covers the desired number of sample standard
deviations.

Two entry points:

* :func:`estimate_from_samples` — from raw per-parameter sample lists
  (e.g. collected by a :class:`~repro.engine.monitor.StatisticsMonitor`).
* :func:`calibrate_workload` — convenience: sample a workload's ground
  truth over a horizon and estimate from that, useful to bootstrap an
  RLD compile from a training window.
"""

from __future__ import annotations

import math
from typing import Mapping, Protocol, Sequence

import numpy as np

from repro.query.statistics import UNCERTAINTY_UNIT_STEP, StatisticsEstimate
from repro.util.validation import ensure_positive

__all__ = ["estimate_from_samples", "calibrate_workload", "uncertainty_level_for"]

#: Algorithm 1 supports any integer level; 5 is the largest the paper
#: evaluates (Figure 10), so it is our default ceiling.
DEFAULT_MAX_LEVEL = 5


class _SamplableWorkload(Protocol):
    """The slice of a workload that calibration needs: ground truth at t.

    Structural so the query layer does not import ``repro.workloads``
    (the strictly-typed packages form a closed import set).
    """

    def stat_point(self, time: float) -> Mapping[str, float]: ...


def uncertainty_level_for(
    mean: float,
    std: float,
    *,
    coverage_sigmas: float = 2.0,
    max_level: int = DEFAULT_MAX_LEVEL,
) -> int:
    """Smallest integer level whose band covers ``coverage_sigmas``·σ.

    Level ``u`` spans ``±0.1·u·mean`` (Algorithm 1); we want that span
    to contain ``coverage_sigmas`` standard deviations of the observed
    fluctuation.  A statistic with no observed variation gets level 0
    (exact); anything needing more than ``max_level`` is clamped —
    the caller's fluctuations exceed what the space can model, the
    situation §2.2 flags as requiring migration after all.
    """
    ensure_positive(mean, "mean")
    if std < 0:
        raise ValueError(f"std must be >= 0, got {std}")
    ensure_positive(coverage_sigmas, "coverage_sigmas")
    if max_level < 0:
        raise ValueError(f"max_level must be >= 0, got {max_level}")
    if std <= mean * 1e-9:
        return 0  # numerically constant: no variance evidence
    needed = coverage_sigmas * std / (UNCERTAINTY_UNIT_STEP * mean)
    return min(max(1, math.ceil(needed)), max_level)


def estimate_from_samples(
    samples: Mapping[str, Sequence[float]],
    *,
    coverage_sigmas: float = 2.0,
    max_level: int = DEFAULT_MAX_LEVEL,
) -> StatisticsEstimate:
    """Point estimates + uncertainty levels from per-parameter samples.

    Each parameter's estimate is its sample mean; its level follows
    :func:`uncertainty_level_for`.  Parameters with a single sample are
    treated as exact (there is no variance evidence either way).
    """
    if not samples:
        raise ValueError("samples must not be empty")
    estimates: dict[str, float] = {}
    levels: dict[str, int] = {}
    for name, values in samples.items():
        data = np.asarray(list(values), dtype=float)
        if data.size == 0:
            raise ValueError(f"no samples for parameter {name!r}")
        if np.any(data <= 0):
            raise ValueError(
                f"parameter {name!r} has non-positive samples; statistics "
                "(rates, selectivities) must be positive"
            )
        mean = float(data.mean())
        estimates[name] = mean
        if data.size >= 2:
            level = uncertainty_level_for(
                mean,
                float(data.std(ddof=1)),
                coverage_sigmas=coverage_sigmas,
                max_level=max_level,
            )
            if level > 0:
                levels[name] = level
    return StatisticsEstimate(estimates, levels)


def calibrate_workload(
    workload: _SamplableWorkload,
    *,
    duration: float,
    n_samples: int = 200,
    coverage_sigmas: float = 2.0,
    max_level: int = DEFAULT_MAX_LEVEL,
) -> StatisticsEstimate:
    """Sample a workload's ground truth and estimate from the window.

    ``workload`` is anything with ``stat_point(t)`` (normally a
    :class:`~repro.workloads.generators.Workload`).  Samples are taken
    at ``n_samples`` evenly spaced times over ``[0, duration)`` — the
    "representative training data set" of §2.2.
    """
    ensure_positive(duration, "duration")
    if n_samples < 2:
        raise ValueError(f"n_samples must be >= 2, got {n_samples}")
    collected: dict[str, list[float]] = {}
    for k in range(n_samples):
        time = duration * k / n_samples
        point = workload.stat_point(time)
        for name, value in point.items():
            collected.setdefault(name, []).append(float(value))
    return estimate_from_samples(
        collected, coverage_sigmas=coverage_sigmas, max_level=max_level
    )
