"""Black-box plan-at-a-point optimizers with call accounting.

The RLD optimizer treats "the standard query optimizer of a DSPS as a
black box" (§3): given a statistics point it returns the cheapest
logical plan at that point.  Optimizer calls are the paper's unit of
compile-time expense — Figures 10–12 plot *numbers of optimizer calls* —
so every implementation here counts its :meth:`~PointOptimizer.optimize`
invocations.

Three implementations cover the price/fidelity spectrum:

* :class:`RankOrderOptimizer` — O(n log n) rank ordering, optimal for
  unconstrained pipelines of independent operators.
* :class:`DPOptimizer` — Held–Karp dynamic program over operator
  subsets, O(2^n·n), optimal for *any* join graph (the subset product of
  selectivities is order-independent, so subset DP is exact).
* :class:`ExhaustiveOrderOptimizer` — brute force over all valid
  orderings; the ground-truth oracle for the test suite.

All three break cost ties toward the lexicographically smallest
ordering, so the identity of "the optimal plan at pnt" is deterministic
— a requirement for counting distinct robust plans reproducibly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping

from repro.query.cost import PlanCostModel
from repro.query.model import Query
from repro.query.plans import LogicalPlan, enumerate_plans

__all__ = [
    "PointOptimizer",
    "RankOrderOptimizer",
    "DPOptimizer",
    "ExhaustiveOrderOptimizer",
    "make_optimizer",
]

#: Relative tolerance under which two plan costs count as tied.
_COST_TIE_RTOL = 1e-12


class PointOptimizer(ABC):
    """Return the optimal logical plan at a statistics point.

    Subclasses implement :meth:`_find_best`; this base class provides
    call counting, optional memoization, and cost evaluation.  With
    ``memoize=True`` repeated queries at an identical point skip the
    search but are *still counted* as optimizer calls, preserving the
    call-count semantics of the paper's figures.
    """

    def __init__(self, query: Query, *, memoize: bool = False) -> None:
        self._query = query
        self._cost_model = PlanCostModel(query)
        self._memoize = memoize
        self._cache: dict[object, LogicalPlan] = {}
        self._call_count = 0

    @property
    def query(self) -> Query:
        """The query being optimized."""
        return self._query

    @property
    def cost_model(self) -> PlanCostModel:
        """The cost model shared by this optimizer."""
        return self._cost_model

    @property
    def call_count(self) -> int:
        """Number of :meth:`optimize` invocations since the last reset."""
        return self._call_count

    def reset_calls(self) -> None:
        """Zero the optimizer-call counter (start of a new experiment)."""
        self._call_count = 0

    def plan_cost(self, plan: LogicalPlan, point: Mapping[str, float]) -> float:
        """Cost of ``plan`` at ``point`` — not counted as an optimizer call."""
        return self._cost_model.plan_cost(plan, point)

    def peek(self, point: Mapping[str, float]) -> LogicalPlan:
        """Cheapest plan at ``point`` *without* charging an optimizer call.

        The escape hatch for speculative evaluation (the parallel
        compile pipeline): pool workers pre-solve points with ``peek``
        and the serial replay charges the call at the moment the
        algorithm actually asks, preserving the paper's call-count
        semantics exactly.
        """
        return self._find_best(point)

    def optimize(self, point: Mapping[str, float]) -> LogicalPlan:
        """Cheapest plan at ``point`` (counted as one optimizer call)."""
        self._call_count += 1
        if self._memoize:
            key = frozenset(point.items())
            cached = self._cache.get(key)
            if cached is not None:
                return cached
            best = self._find_best(point)
            self._cache[key] = best
            return best
        return self._find_best(point)

    @abstractmethod
    def _find_best(self, point: Mapping[str, float]) -> LogicalPlan:
        """Search for the cheapest valid plan at ``point``."""


def _prefer(candidate: tuple[float, tuple[int, ...]],
            incumbent: tuple[float, tuple[int, ...]] | None) -> bool:
    """True when ``candidate`` (cost, order) beats ``incumbent``.

    Strictly cheaper wins; within relative tolerance the lexicographically
    smaller ordering wins, giving deterministic plan identity.
    """
    if incumbent is None:
        return True
    cand_cost, cand_order = candidate
    inc_cost, inc_order = incumbent
    scale = max(abs(cand_cost), abs(inc_cost), 1.0)
    if cand_cost < inc_cost - _COST_TIE_RTOL * scale:
        return True
    if cand_cost > inc_cost + _COST_TIE_RTOL * scale:
        return False
    return cand_order < inc_order


class RankOrderOptimizer(PointOptimizer):
    """Rank ordering for unconstrained operator pipelines.

    Sorting operators by rank ``(σ_i − 1) / c_i`` ascending minimises the
    cascaded-selectivity cost for independent commutative operators —
    the textbook result for predicate ordering, valid for σ > 1 (join
    fan-out) as well.  Raises at construction for constrained queries,
    where rank ordering is not applicable.
    """

    def __init__(self, query: Query, *, memoize: bool = False) -> None:
        if not query.join_graph.is_unconstrained:
            raise ValueError(
                "RankOrderOptimizer requires an unconstrained join graph; "
                "use DPOptimizer for constrained queries"
            )
        super().__init__(query, memoize=memoize)

    def _find_best(self, point: Mapping[str, float]) -> LogicalPlan:
        def rank(op_id: int) -> tuple[float, int]:
            op = self._query.operator(op_id)
            sel = float(point.get(op.selectivity_param, op.selectivity))
            # Tie-break equal ranks by op id for deterministic identity.
            return ((sel - 1.0) / op.cost_per_tuple, op_id)

        order = tuple(sorted(self._query.operator_ids, key=rank))
        return LogicalPlan(order)


class DPOptimizer(PointOptimizer):
    """Held–Karp subset dynamic program, optimal under any join graph.

    ``dp[mask]`` holds the cheapest (cost, order) processing exactly the
    operator set ``mask``.  Appending operator ``o`` to ``mask`` adds
    ``c_o · λ · Π_{i∈mask} σ_i`` — the subset product is independent of
    order, so the DP is exact.  Complexity O(2^n·n), practical to n≈20.
    """

    def _find_best(self, point: Mapping[str, float]) -> LogicalPlan:
        query = self._query
        ids = sorted(query.operator_ids)
        n = len(ids)
        ops = [query.operator(i) for i in ids]
        sels = [
            float(point.get(op.selectivity_param, op.selectivity)) for op in ops
        ]
        costs = [op.cost_per_tuple for op in ops]
        graph = query.join_graph

        # Subset selectivity products, built incrementally.
        product = [1.0] * (1 << n)
        for mask in range(1, 1 << n):
            low_bit = mask & -mask
            j = low_bit.bit_length() - 1
            product[mask] = product[mask ^ low_bit] * sels[j]

        dp: list[tuple[float, tuple[int, ...]] | None] = [None] * (1 << n)
        dp[0] = (0.0, ())
        for mask in range(1 << n):
            state = dp[mask]
            if state is None:
                continue
            base_cost, base_order = state
            placed = [ids[j] for j in range(n) if mask >> j & 1]
            for j in range(n):
                if mask >> j & 1:
                    continue
                if placed and not graph.allows_after(ids[j], placed):
                    continue
                new_mask = mask | (1 << j)
                candidate = (
                    base_cost + costs[j] * product[mask],
                    base_order + (ids[j],),
                )
                if _prefer(candidate, dp[new_mask]):
                    dp[new_mask] = candidate

        final = dp[(1 << n) - 1]
        if final is None:
            raise ValueError(
                f"query {query.name!r} has no valid complete ordering "
                "(disconnected join graph?)"
            )
        return LogicalPlan(final[1])


class ExhaustiveOrderOptimizer(PointOptimizer):
    """Brute force over all valid orderings — the test-suite oracle.

    Factorial complexity; intended for queries of at most ~8 operators.
    """

    def _find_best(self, point: Mapping[str, float]) -> LogicalPlan:
        best: tuple[float, tuple[int, ...]] | None = None
        for plan in enumerate_plans(self._query):
            candidate = (self.plan_cost(plan, point), plan.order)
            if _prefer(candidate, best):
                best = candidate
        assert best is not None  # enumerate_plans yields >= 1 plan
        return LogicalPlan(best[1])


def make_optimizer(query: Query, *, memoize: bool = False) -> PointOptimizer:
    """Pick the cheapest exact optimizer applicable to ``query``.

    Rank ordering when the join graph is unconstrained, otherwise the
    Held–Karp dynamic program.  Both are exact, so this factory never
    trades optimality for speed.
    """
    if query.join_graph.is_unconstrained:
        return RankOrderOptimizer(query, memoize=memoize)
    return DPOptimizer(query, memoize=memoize)
