"""Logical plans (operator orderings) and plan enumeration.

A logical plan ``lp`` is an ordering of all the query's operators —
``op3 → op2 → op1`` in the paper's Example 1.  Plans are value objects:
two plans with the same ordering are equal and hash equal, which is how
the partitioning algorithms count *distinct* robust plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Iterable, Iterator

from repro.query.model import Query

__all__ = ["LogicalPlan", "is_valid_order", "enumerate_plans", "count_valid_orders"]


@dataclass(frozen=True, order=True)
class LogicalPlan:
    """An operator ordering for a query.

    ``order`` lists operator ids from first-applied to last-applied.
    The dataclass ordering (lexicographic on ``order``) gives searches a
    deterministic tie-break so repeated runs find identical plan sets.
    """

    order: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(set(self.order)) != len(self.order):
            raise ValueError(f"plan ordering contains duplicates: {self.order}")
        if not self.order:
            raise ValueError("plan ordering must not be empty")

    def __len__(self) -> int:
        return len(self.order)

    def __iter__(self) -> Iterator[int]:
        return iter(self.order)

    @property
    def label(self) -> str:
        """Readable arrow form, e.g. ``"op3->op2->op1"``."""
        return "->".join(f"op{i}" for i in self.order)

    def position(self, op_id: int) -> int:
        """0-based position of ``op_id`` in this plan; raises if absent."""
        try:
            return self.order.index(op_id)
        except ValueError:
            raise KeyError(f"operator {op_id} not in plan {self.label}") from None

    def prefix_before(self, op_id: int) -> tuple[int, ...]:
        """Operator ids applied before ``op_id`` under this plan."""
        return self.order[: self.position(op_id)]


def is_valid_order(query: Query, order: Iterable[int]) -> bool:
    """True if ``order`` is a complete, join-graph-valid ordering.

    Validity requires (a) the ordering is a permutation of the query's
    operator ids and (b) every operator after the first is adjacent in
    the join graph to some earlier operator (always true when the join
    graph is unconstrained).
    """
    order = tuple(order)
    if sorted(order) != sorted(query.operator_ids):
        return False
    placed: list[int] = []
    for op_id in order:
        if placed and not query.join_graph.allows_after(op_id, placed):
            return False
        placed.append(op_id)
    return True


def enumerate_plans(query: Query, limit: int | None = None) -> Iterator[LogicalPlan]:
    """Yield valid logical plans for ``query`` in lexicographic order.

    Enumeration is a backtracking walk honoring the join graph, so for
    constrained queries it never materialises invalid permutations.  An
    optional ``limit`` caps the number of yielded plans (useful in tests
    against queries with huge plan spaces).
    """
    ids = sorted(query.operator_ids)
    graph = query.join_graph
    yielded = 0

    if graph.is_unconstrained:
        for perm in permutations(ids):
            yield LogicalPlan(perm)
            yielded += 1
            if limit is not None and yielded >= limit:
                return
        return

    prefix: list[int] = []
    remaining = set(ids)

    def extend() -> Iterator[LogicalPlan]:
        nonlocal yielded
        if limit is not None and yielded >= limit:
            return
        if not remaining:
            yielded += 1
            yield LogicalPlan(tuple(prefix))
            return
        for op_id in sorted(remaining):
            if prefix and not graph.allows_after(op_id, prefix):
                continue
            prefix.append(op_id)
            remaining.remove(op_id)
            yield from extend()
            prefix.pop()
            remaining.add(op_id)

    yield from extend()


def count_valid_orders(query: Query, cap: int = 1_000_000) -> int:
    """Count valid orderings, stopping at ``cap`` to bound work."""
    count = 0
    for _ in enumerate_plans(query, limit=cap):
        count += 1
    return count
