"""Named statistics, point estimates, and uncertainty levels.

The paper's optimizer statistics are operator selectivities and stream
input rates (§2.2).  We address them by string name so a parameter space
can be built over any subset of them:

* ``selectivity_param(op_id)`` → ``"sel:<op_id>"``
* ``rate_param()`` / ``rate_param(stream)`` → ``"rate"`` / ``"rate:<stream>"``

A :class:`StatPoint` is an immutable mapping from parameter name to value
— one point ``pnt`` in the parameter space ``S``.  A
:class:`StatisticsEstimate` couples the single-point estimates ``E`` with
per-parameter integer uncertainty levels ``U`` (Algorithm 1's inputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Iterator, Mapping

from repro.util.validation import ensure_non_empty, ensure_positive

__all__ = [
    "selectivity_param",
    "rate_param",
    "StatPoint",
    "StatisticsEstimate",
    "UNCERTAINTY_UNIT_STEP",
]

#: Algorithm 1's unit step Δ: an uncertainty level of ``u`` widens an
#: estimate ``e`` to the interval ``[e·(1 − Δ·u), e·(1 + Δ·u)]``.
UNCERTAINTY_UNIT_STEP = 0.1


def selectivity_param(op_id: int) -> str:
    """Parameter name for the selectivity of operator ``op_id``."""
    return f"sel:{op_id}"


def rate_param(stream: str | None = None) -> str:
    """Parameter name for a stream input rate.

    With no argument this names the query's driving input rate; with a
    stream name it names that stream's rate.
    """
    if stream is None:
        return "rate"
    return f"rate:{stream}"


class StatPoint(Mapping[str, float]):
    """An immutable point in statistics space: parameter name → value.

    Supports the mapping protocol plus :meth:`replacing` for building a
    nearby point, which is how searches walk the parameter space.
    """

    __slots__ = ("_values",)

    def __init__(self, values: Mapping[str, float]) -> None:
        self._values = MappingProxyType(dict(values))

    def __getitem__(self, name: str) -> float:
        return self._values[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:.4g}" for k, v in sorted(self._values.items()))
        return f"StatPoint({inner})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, StatPoint):
            return dict(self._values) == dict(other._values)
        if isinstance(other, Mapping):
            return dict(self._values) == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._values.items()))

    def replacing(self, **overrides: float) -> "StatPoint":
        """Return a copy with keyword-named parameters replaced.

        Keyword names use ``__`` in place of ``:`` since parameter names
        are not identifiers, e.g. ``point.replacing(sel__3=0.5)``.
        """
        merged = dict(self._values)
        for key, value in overrides.items():
            merged[key.replace("__", ":")] = value
        return StatPoint(merged)

    def updated(self, values: Mapping[str, float]) -> "StatPoint":
        """Return a copy with the given parameter mapping merged in."""
        merged = dict(self._values)
        merged.update(values)
        return StatPoint(merged)


@dataclass(frozen=True)
class StatisticsEstimate:
    """Point estimates ``E`` with uncertainty levels ``U`` (§2.2).

    ``estimates`` maps parameter names to single-point estimates and
    ``uncertainty`` maps the *uncertain* subset of those names to integer
    uncertainty levels.  Parameters present in ``estimates`` but not in
    ``uncertainty`` are treated as exact (level 0) and do not become
    dimensions of the parameter space.
    """

    estimates: Mapping[str, float]
    uncertainty: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        ensure_non_empty(self.estimates, "estimates")
        for name, value in self.estimates.items():
            ensure_positive(value, f"estimate {name!r}")
        for name, level in self.uncertainty.items():
            if name not in self.estimates:
                raise ValueError(f"uncertainty given for unknown parameter {name!r}")
            if not isinstance(level, int) or level < 0:
                raise ValueError(
                    f"uncertainty level for {name!r} must be a non-negative int, got {level!r}"
                )
        object.__setattr__(self, "estimates", MappingProxyType(dict(self.estimates)))
        object.__setattr__(self, "uncertainty", MappingProxyType(dict(self.uncertainty)))

    @property
    def point(self) -> StatPoint:
        """The single-point estimate as a :class:`StatPoint`."""
        return StatPoint(self.estimates)

    def uncertain_parameters(self) -> tuple[str, ...]:
        """Names of parameters with a non-zero uncertainty level, sorted."""
        return tuple(sorted(n for n, u in self.uncertainty.items() if u > 0))

    def bounds(self, name: str) -> tuple[float, float]:
        """Algorithm 1 bounds ``(lo, hi)`` for one parameter.

        ``lo = e·(1 − Δ·u)`` and ``hi = e·(1 + Δ·u)`` with Δ = 0.1; an
        exact parameter (level 0) returns a degenerate ``(e, e)``.
        """
        estimate = self.estimates[name]
        level = self.uncertainty.get(name, 0)
        delta = UNCERTAINTY_UNIT_STEP * level
        return estimate * (1.0 - delta), estimate * (1.0 + delta)

    def with_uncertainty(self, **levels: int) -> "StatisticsEstimate":
        """Return a copy with updated uncertainty levels.

        Keyword names use ``__`` in place of ``:``,
        e.g. ``est.with_uncertainty(sel__1=2, rate=3)``.
        """
        merged = dict(self.uncertainty)
        for key, level in levels.items():
            merged[key.replace("__", ":")] = level
        return StatisticsEstimate(dict(self.estimates), merged)
