"""repro — Robust Load Distribution (RLD) for distributed stream processing.

A complete reproduction of *Robust Distributed Stream Processing*
(Lei, Rundensteiner & Guttman; WPI-CS-TR-12-07 / ICDE 2013):

* :mod:`repro.query` — queries, logical plans, cost model, point optimizer.
* :mod:`repro.core` — parameter space, ERP/WRP robust logical solutions,
  GreedyPhy/OptPrune robust physical plans, the RLD optimizer facade.
* :mod:`repro.engine` — discrete-event simulated distributed stream
  processing substrate (nodes, queues, batches, monitor, migration).
* :mod:`repro.runtime` — the RLD runtime strategy plus ROD and DYN
  baselines, and runtime metrics.
* :mod:`repro.workloads` — synthetic stream generators (stock/news and
  sensor), fluctuation profiles, and the paper's Q1/Q2 queries.

Quickstart::

    from repro import Cluster, RLDOptimizer
    from repro.workloads import build_q1

    query = build_q1()
    estimate = query.default_estimates(
        {op.selectivity_param: 3 for op in query.operators} | {"rate": 2}
    )
    cluster = Cluster.homogeneous(n_nodes=4, capacity=380.0)
    solution = RLDOptimizer(query, cluster).solve(estimate)
    print(solution.summary())
"""

from repro.core import (
    Cluster,
    EarlyTerminatedRobustPartitioning,
    ExhaustiveSearch,
    NormalOccurrenceModel,
    ParameterSpace,
    PhysicalPlan,
    PlanLoadTable,
    RLDConfig,
    RLDOptimizer,
    RLDSolution,
    RandomSearch,
    RobustLogicalSolution,
    RobustnessChecker,
    WeightedRobustPartitioning,
    exhaustive_physical,
    greedy_phy,
    opt_prune,
)
from repro.query import (
    JoinGraph,
    LogicalPlan,
    Operator,
    PlanCostModel,
    Query,
    StatisticsEstimate,
    StatPoint,
    StreamSchema,
    make_optimizer,
)

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "EarlyTerminatedRobustPartitioning",
    "ExhaustiveSearch",
    "JoinGraph",
    "LogicalPlan",
    "NormalOccurrenceModel",
    "Operator",
    "ParameterSpace",
    "PhysicalPlan",
    "PlanCostModel",
    "PlanLoadTable",
    "Query",
    "RLDConfig",
    "RLDOptimizer",
    "RLDSolution",
    "RandomSearch",
    "RobustLogicalSolution",
    "RobustnessChecker",
    "StatPoint",
    "StatisticsEstimate",
    "StreamSchema",
    "WeightedRobustPartitioning",
    "exhaustive_physical",
    "greedy_phy",
    "make_optimizer",
    "opt_prune",
    "__version__",
]
