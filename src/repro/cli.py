"""Command-line interface: compile, inspect, and simulate RLD solutions.

Three subcommands, mirroring the library's workflow::

    python -m repro compile  --query q1 --nodes 4 --capacity 380 --level 3
    python -m repro diagram  --query q1 --dims sel:1 sel:3 --level 4
    python -m repro simulate --query q1 --nodes 4 --capacity 380 --level 3 \
        --duration 300 --strategies ROD DYN RLD

``compile`` prints the robust logical solution and physical plan;
``diagram`` renders the 2-D plan diagram of a space as ASCII;
``simulate`` runs the §6.5 strategy comparison and prints the table;
``lint`` runs the :mod:`repro.analysis` invariant checker over the
tree (``repro lint --format json`` for machine consumption, exit code
1 on findings — the gate ``make lint`` and CI run).
``simulate --faults`` additionally injects infrastructure failures
(see :meth:`repro.engine.faults.FaultSchedule.parse` for the grammar;
``--faults random`` generates seeded chaos)::

    python -m repro simulate --query q1 --faults "crash@60:node=1:for=30"
    python -m repro simulate --query q1 --faults random:crashes=2

All commands are deterministic under ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.core import Cluster, ParallelConfig, RLDConfig, RLDOptimizer, ParameterSpace
from repro.core.diagram import compute_plan_diagram
from repro.engine.faults import FaultSchedule
from repro.query import make_optimizer
from repro.query.model import Query
from repro.runtime.comparison import build_standard_strategies, compare_strategies
from repro.workloads import build_nway, build_q1, build_q2, stock_workload

__all__ = ["main", "build_parser"]


def _load_query(name: str) -> Query:
    """Resolve a query spec: ``q1``, ``q2``, or ``nway:<k>``."""
    if name == "q1":
        return build_q1()
    if name == "q2":
        return build_q2()
    if name.startswith("nway:"):
        return build_nway(int(name.split(":", 1)[1]))
    raise SystemExit(f"unknown query {name!r}; use q1, q2, or nway:<k>")


def _estimate(query: Query, level: int, rate_level: int, dims: Sequence[str] | None):
    if dims:
        uncertainty = {d: level for d in dims}
    else:
        uncertainty = {op.selectivity_param: level for op in query.operators}
        if rate_level > 0:
            uncertainty["rate"] = rate_level
    return query.default_estimates(uncertainty)


def _cmd_compile(args: argparse.Namespace) -> int:
    query = _load_query(args.query)
    estimate = _estimate(query, args.level, args.rate_level, args.dims)
    cluster = Cluster.homogeneous(args.nodes, args.capacity)
    try:
        config = RLDConfig(
            epsilon=args.epsilon,
            physical_algorithm=args.algorithm,
            parallel=ParallelConfig(jobs=args.jobs),
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    solution = RLDOptimizer(query, cluster, config=config).solve(estimate)
    print(solution.summary())
    print(
        f"\noptimizer calls : {solution.partitioning.optimizer_calls}"
        f" (early stop: {solution.partitioning.terminated_early})"
    )
    print(f"physical compile: {solution.physical.compile_seconds * 1000:.2f} ms")
    weights = solution.load_table
    for plan in solution.logical.plans:
        marker = "*" if plan in set(solution.supported_plans) else " "
        print(f" {marker} weight {weights.weight_of(plan):.4f}  {plan.label}")
    if args.profile:
        _print_profile(solution)
    return 0 if solution.feasible else 1


_STAGE_LABELS = {
    "partitioning": "partitioning (ERP)",
    "robustness": "robustness (weights + loads)",
    "physical": "physical mapping",
}


def _print_profile(solution) -> None:
    """Per-stage compile-time breakdown from the pipeline's StageTimer."""
    # `workers:` entries are cumulative busy seconds across worker
    # processes — concurrent with the wall-clock stages, so they are
    # reported separately and excluded from the total.
    stages = {
        name: seconds
        for name, seconds in solution.stage_seconds.items()
        if not name.startswith("workers:")
    }
    workers = {
        name: seconds
        for name, seconds in solution.stage_seconds.items()
        if name.startswith("workers:")
    }
    total = sum(stages.values())
    print("\ncompile-time profile:")
    for name, seconds in stages.items():
        share = 100.0 * seconds / total if total > 0 else 0.0
        label = _STAGE_LABELS.get(name, name)
        print(f"  {label:<30} {seconds * 1000:>10.2f} ms  ({share:5.1f}%)")
    print(f"  {'total':<30} {total * 1000:>10.2f} ms")
    for name, seconds in workers.items():
        stage = name.removeprefix("workers:")
        label = f"worker busy ({stage})"
        print(f"  {label:<30} {seconds * 1000:>10.2f} ms  (concurrent)")
    tensor_ms = solution.logical.tensor_build_seconds * 1000
    print(f"  {'cost-tensor build (within robustness)':<40} {tensor_ms:.2f} ms")


def _cmd_diagram(args: argparse.Namespace) -> int:
    query = _load_query(args.query)
    if len(args.dims or ()) != 2:
        raise SystemExit("diagram requires exactly two --dims (a 2-D space)")
    estimate = _estimate(query, args.level, 0, args.dims)
    space = ParameterSpace.from_estimates(
        estimate, points_per_level=args.points_per_level
    )
    diagram = compute_plan_diagram(space, make_optimizer(query))
    if args.reduce_epsilon is not None:
        diagram = diagram.reduce(args.reduce_epsilon)
        print(f"(reduced at epsilon={args.reduce_epsilon})\n")
    print(diagram.render())
    print(f"\n{diagram.cardinality} distinct plans over {space.n_points} cells")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    query = _load_query(args.query)
    estimate = _estimate(query, args.level, args.rate_level, args.dims)
    cluster = Cluster.homogeneous(args.nodes, args.capacity)
    strategies = build_standard_strategies(
        query,
        cluster,
        estimate=estimate,
        rld_config=RLDConfig(epsilon=args.epsilon),
    )
    workload = stock_workload(
        query, uncertainty_level=args.level, regime_period=args.regime_period
    ).scaled(args.rate_scale)
    faults = None
    if args.faults:
        try:
            faults = FaultSchedule.parse(
                args.faults,
                n_nodes=args.nodes,
                duration=args.duration,
                seed=args.fault_seed if args.fault_seed is not None else args.seed,
            )
        except ValueError as exc:
            raise SystemExit(f"invalid --faults spec: {exc}") from exc
        print(f"fault schedule ({len(faults)} events):")
        for event in faults:
            print(f"  {event.describe()}")
        print()
    comparison = compare_strategies(
        query,
        cluster,
        workload,
        strategies,
        duration=args.duration,
        seed=args.seed,
        strategy_order=tuple(args.strategies),
        faults=faults,
    )
    header = (
        f"{'strategy':>8} | {'avg ms':>9} | {'p95 ms':>9} | {'tuples out':>11} "
        f"| {'migrations':>10} | {'switches':>8} | {'overhead':>8}"
    )
    if faults is not None:
        header += f" | {'dropped':>7} | {'downtime':>8}"
    print(header)
    print("-" * len(header))
    for name, report in comparison.reports.items():
        row = (
            f"{name:>8} | {report.avg_tuple_latency_ms:>9.1f} "
            f"| {report.latency_percentile_ms(95):>9.1f} "
            f"| {report.tuples_out:>11.0f} | {report.migrations:>10} "
            f"| {report.plan_switches:>8} | {report.overhead_fraction:>8.3f}"
        )
        if faults is not None:
            row += (
                f" | {report.batches_dropped:>7} "
                f"| {report.node_downtime_seconds:>7.1f}s"
            )
        print(row)
    return 0


def _analysis_paths(args: argparse.Namespace) -> tuple[Path, list[Path]]:
    """Resolve ``--root`` and the requested paths; exit on missing ones."""
    root = Path(args.root).resolve()
    paths = [root / p for p in (args.paths or ["src/repro"])]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        raise SystemExit(f"no such path(s): {', '.join(missing)}")
    return root, paths


def _emit_report(report, args: argparse.Namespace, root: Path) -> int:
    """Apply ``--diff`` filtering, render, and return the exit code."""
    from repro.analysis import render_json, render_text

    if args.diff is not None:
        from repro.analysis.diff import changed_files, filter_report

        try:
            report = filter_report(report, changed_files(root, args.diff))
        except ValueError as exc:
            raise SystemExit(str(exc)) from exc
    print(render_json(report) if args.format == "json" else render_text(report))
    return report.exit_code


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import LintRunner
    from repro.analysis.rules import default_rules, resolve_rules

    rules = default_rules()
    if args.list_rules:
        width = max(len(rule.name) for rule in rules)
        for rule in rules:
            print(f"{rule.name:<{width}}  {rule.description}")
        return 0
    try:
        rules = resolve_rules(rules, args.disable or ())
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    root, paths = _analysis_paths(args)
    report = LintRunner(rules, root=root).run(paths)
    return _emit_report(report, args, root)


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.analysis import AuditRunner
    from repro.analysis.audit import all_passes
    from repro.analysis.rules import resolve_rules

    passes = all_passes()
    if args.list_passes:
        width = max(len(p.name) for p in passes)
        for audit_pass in passes:
            print(f"{audit_pass.name:<{width}}  {audit_pass.description}")
        return 0
    try:
        passes = resolve_rules(passes, args.disable or ())
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    root, paths = _analysis_paths(args)
    report = AuditRunner(passes, root=root).run(paths)
    return _emit_report(report, args, root)


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Robust Load Distribution: compile, inspect, simulate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--query", default="q1", help="q1, q2, or nway:<k>")
        p.add_argument("--level", type=int, default=3, help="selectivity uncertainty level")
        p.add_argument("--rate-level", type=int, default=2, help="rate uncertainty level (0 = exact)")
        p.add_argument("--dims", nargs="*", default=None, help="explicit uncertain parameter names")
        p.add_argument("--epsilon", type=float, default=0.2, help="Def. 1 robustness threshold")

    p_compile = sub.add_parser("compile", help="compile an RLD solution")
    common(p_compile)
    p_compile.add_argument("--nodes", type=int, default=4)
    p_compile.add_argument("--capacity", type=float, default=380.0)
    p_compile.add_argument(
        "--algorithm", default="optprune", choices=("optprune", "greedy", "exhaustive")
    )
    p_compile.add_argument(
        "--profile",
        action="store_true",
        help="print a per-stage compile-time breakdown",
    )
    p_compile.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the parallel compile pipeline "
        "(default 1 = serial; any value yields bitwise-identical "
        "solutions — see docs/architecture.md 'Parallel compile')",
    )
    p_compile.set_defaults(handler=_cmd_compile)

    p_diagram = sub.add_parser("diagram", help="render a 2-D plan diagram")
    common(p_diagram)
    p_diagram.add_argument("--points-per-level", type=int, default=4)
    p_diagram.add_argument(
        "--reduce-epsilon", type=float, default=None, help="apply diagram reduction"
    )
    p_diagram.set_defaults(handler=_cmd_diagram)

    p_sim = sub.add_parser("simulate", help="run the strategy comparison")
    common(p_sim)
    p_sim.add_argument("--nodes", type=int, default=4)
    p_sim.add_argument("--capacity", type=float, default=380.0)
    p_sim.add_argument("--duration", type=float, default=300.0)
    p_sim.add_argument("--seed", type=int, default=17)
    p_sim.add_argument("--rate-scale", type=float, default=1.0)
    p_sim.add_argument("--regime-period", type=float, default=60.0)
    p_sim.add_argument(
        "--strategies", nargs="+", default=["ROD", "DYN", "RLD"]
    )
    p_sim.add_argument(
        "--faults",
        default=None,
        help=(
            "fault schedule: 'random[:crashes=N:...]' for seeded chaos, or "
            "explicit events like 'crash@60:node=1:for=30,partition@120:for=10'"
        ),
    )
    p_sim.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="seed for '--faults random' (defaults to --seed)",
    )
    p_sim.set_defaults(handler=_cmd_simulate)

    def analysis_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "paths",
            nargs="*",
            help="files/directories relative to --root (default: src/repro)",
        )
        p.add_argument(
            "--format", choices=("text", "json"), default="text", help="output format"
        )
        p.add_argument(
            "--root",
            default=".",
            help="repository root that rule path scopes are resolved against",
        )
        p.add_argument(
            "--disable",
            nargs="*",
            metavar="RULE",
            help="rule names to skip for this run",
        )
        p.add_argument(
            "--diff",
            metavar="REV",
            default=None,
            help=(
                "report only findings in files changed since REV "
                "(git diff + untracked); analysis still covers everything"
            ),
        )

    p_lint = sub.add_parser(
        "lint", help="run the repro-lint invariant checker (repro.analysis)"
    )
    analysis_common(p_lint)
    p_lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    p_lint.set_defaults(handler=_cmd_lint)

    p_audit = sub.add_parser(
        "audit",
        help=(
            "run the whole-program audit passes (call-graph, aliasing, "
            "fault-path, RNG discipline)"
        ),
    )
    analysis_common(p_audit)
    p_audit.add_argument(
        "--list-passes",
        action="store_true",
        help="print the audit-pass catalog and exit",
    )
    p_audit.set_defaults(handler=_cmd_audit)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
