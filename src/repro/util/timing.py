"""Wall-clock stage accounting for the compile pipeline.

:class:`StageTimer` accumulates seconds per named stage; the RLD
optimizer threads one through its pipeline so ``repro compile
--profile`` can print a partitioning / robustness / physical-mapping
breakdown without every stage re-inventing ``time.perf_counter`` pairs.
:class:`Stopwatch` is the single-interval form for ``compile_seconds``
style measurements.

This module is the *only* place outside benchmarks allowed to read the
host clock: the ``no-wallclock`` lint rule (see
:mod:`repro.analysis.checks.wallclock`) allowlists exactly this file,
so every timing need in the simulation/compile packages must route
through here.  Keeping one home makes the determinism boundary
auditable — wall-clock readings may feed *profiles*, never *results*.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["StageTimer", "Stopwatch"]


class Stopwatch:
    """Measures one elapsed interval from construction (or :meth:`restart`).

    The ``start = perf_counter() ... elapsed = perf_counter() - start``
    idiom as an object, so compile passes record their
    ``compile_seconds`` without touching :mod:`time` directly::

        watch = Stopwatch()
        ...                      # do the work
        result.compile_seconds = watch.seconds
    """

    def __init__(self) -> None:
        self._start = time.perf_counter()

    @property
    def seconds(self) -> float:
        """Seconds elapsed since construction or the last restart."""
        return time.perf_counter() - self._start

    def restart(self) -> None:
        """Reset the interval origin to now."""
        self._start = time.perf_counter()


class StageTimer:
    """Accumulates wall-clock seconds under named stages.

    Stages may be entered repeatedly; their durations add up.  Insertion
    order is preserved, so a profile prints in pipeline order.
    """

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Context manager timing one stage entry."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self._seconds[name] = (
                self._seconds.get(name, 0.0) + time.perf_counter() - start
            )

    def add(self, name: str, seconds: float) -> None:
        """Credit externally-measured seconds to a stage."""
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    @property
    def seconds(self) -> dict[str, float]:
        """Stage name → accumulated seconds, in insertion order."""
        return dict(self._seconds)

    @property
    def total(self) -> float:
        """Sum over all stages."""
        return sum(self._seconds.values())
