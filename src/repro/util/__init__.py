"""Small shared utilities: seeded randomness, validation, math helpers.

These modules carry no domain knowledge; everything stream-processing
specific lives in :mod:`repro.query`, :mod:`repro.core`,
:mod:`repro.engine`, :mod:`repro.runtime`, and :mod:`repro.workloads`.
"""

from repro.util.rng import SeedSequenceFactory, derive_rng
from repro.util.timing import StageTimer
from repro.util.validation import (
    ensure_in_range,
    ensure_non_empty,
    ensure_positive,
    ensure_probability,
)

__all__ = [
    "SeedSequenceFactory",
    "StageTimer",
    "derive_rng",
    "ensure_in_range",
    "ensure_non_empty",
    "ensure_positive",
    "ensure_probability",
]
