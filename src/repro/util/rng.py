"""Deterministic random-number plumbing.

Every stochastic component in the library (workload generators, the RS
baseline search, the event simulator) accepts either an integer seed or a
:class:`numpy.random.Generator`.  Centralising the conversion here keeps
experiments reproducible: the same seed always yields the same streams,
the same fluctuation schedule, and the same sampled search points.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["derive_rng", "SeedSequenceFactory"]


def derive_rng(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed_or_rng``.

    ``None`` produces a freshly seeded generator (non-reproducible, for
    interactive use); an ``int`` produces a deterministic generator; an
    existing generator is passed through unchanged so that callers can
    share one stream of entropy across components.
    """
    if seed_or_rng is None:
        return np.random.default_rng()
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    if isinstance(seed_or_rng, (int, np.integer)):
        return np.random.default_rng(int(seed_or_rng))
    raise TypeError(
        f"expected int seed, numpy Generator, or None; got {type(seed_or_rng).__name__}"
    )


class SeedSequenceFactory:
    """Hand out independent child generators from one root seed.

    A simulation wires together many stochastic parts (one per stream
    source, one for the fluctuation schedule, one for the monitor's
    sampling jitter).  Giving each part its own child of a single root
    :class:`numpy.random.SeedSequence` keeps them statistically
    independent while the whole run stays reproducible from one integer.

    Example::

        factory = SeedSequenceFactory(42)
        rng_a = factory.child()   # independent stream
        rng_b = factory.child()   # independent of rng_a
    """

    def __init__(self, root_seed: int | None = None) -> None:
        self._sequence = np.random.SeedSequence(root_seed)
        self._children: Iterator[np.random.SeedSequence] | None = None
        self._spawned = 0

    @property
    def root_entropy(self) -> int:
        """The root entropy, usable to re-create an identical factory."""
        entropy = self._sequence.entropy
        if isinstance(entropy, (list, tuple)):
            return int(entropy[0])
        return int(entropy)

    @property
    def spawned(self) -> int:
        """Number of child generators handed out so far."""
        return self._spawned

    def child(self) -> np.random.Generator:
        """Return the next independent child generator."""
        (child_sequence,) = self._sequence.spawn(1)
        self._spawned += 1
        return np.random.default_rng(child_sequence)
