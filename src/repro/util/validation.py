"""Argument-validation helpers shared across the library.

The public API raises ``ValueError`` with a consistent message format for
out-of-domain arguments, so user errors fail fast at construction time
rather than surfacing as NaNs deep inside a simulation or search.
"""

from __future__ import annotations

from typing import Sized

__all__ = [
    "ensure_positive",
    "ensure_in_range",
    "ensure_probability",
    "ensure_non_empty",
]


def ensure_positive(value: float, name: str) -> float:
    """Return ``value`` if strictly positive, else raise ``ValueError``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def ensure_in_range(
    value: float, name: str, lo: float, hi: float, *, inclusive: bool = True
) -> float:
    """Return ``value`` if inside ``[lo, hi]`` (or ``(lo, hi)``), else raise."""
    if inclusive:
        ok = lo <= value <= hi
        bounds = f"[{lo}, {hi}]"
    else:
        ok = lo < value < hi
        bounds = f"({lo}, {hi})"
    if not ok:
        raise ValueError(f"{name} must be in {bounds}, got {value!r}")
    return value


def ensure_probability(value: float, name: str) -> float:
    """Return ``value`` if it is a valid probability in ``[0, 1]``."""
    return ensure_in_range(value, name, 0.0, 1.0)


def ensure_non_empty(collection: Sized, name: str) -> Sized:
    """Return ``collection`` if it has at least one element, else raise."""
    if len(collection) == 0:
        raise ValueError(f"{name} must not be empty")
    return collection
