"""Typed NumPy array aliases for the strictly-typed packages.

``mypy --strict`` enables ``disallow_any_generics``, which rejects the
bare generic ``np.ndarray`` in annotations.  These aliases are the
repo-wide spellings: precise about *dtype* (where the determinism and
parity contracts live — float64 cost tensors, intp index vectors) while
leaving the shape parameter open, since NumPy's typing cannot yet
express shapes usefully.

Use :data:`FloatArray` for cost/load/value tensors, :data:`IntArray`
for index/rank vectors, :data:`BoolArray` for masks, and
:data:`AnyArray` only at boundaries that genuinely accept any dtype.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["AnyArray", "BoolArray", "FloatArray", "IntArray"]

#: Float64 tensor — the dtype of every cost/load/grid value.
FloatArray = np.ndarray[Any, np.dtype[np.float64]]

#: Index/rank vector (np.intp, the dtype argmin and fancy indexing use).
IntArray = np.ndarray[Any, np.dtype[np.intp]]

#: Boolean mask.
BoolArray = np.ndarray[Any, np.dtype[np.bool_]]

#: Any-dtype escape hatch for genuinely polymorphic boundaries.
AnyArray = np.ndarray[Any, np.dtype[Any]]
