"""Robust logical solutions: plan sets covering the parameter space.

A *robust logical solution* ``LP_i`` (Def. 2 / §2.4) is a set of
logical plans such that for (almost) every point of the parameter
space, at least one plan in the set is ε-robust there.  Beyond holding
the plans, this class provides the two derived artifacts the rest of
the pipeline needs:

* the **plan-cell partition** — each grid point assigned to the plan
  that is cheapest there, which is both the runtime classifier's
  routing table and the "robust region" used for plan weights; and
* **plan weights** — the occurrence-probability mass of each plan's
  region (§5.2 Example 4), the priority order in which GreedyPhy and
  OptPrune try to support plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.core.cost_tensor import CostTensorCache, lexicographic_argmin
from repro.core.occurrence import NormalOccurrenceModel
from repro.core.parameter_space import GridIndex, ParameterSpace, Region
from repro.query.cost import PlanCostModel
from repro.query.model import Query
from repro.query.plans import LogicalPlan
from repro.util.rng import derive_rng
from repro.query.statistics import StatPoint

__all__ = ["RobustLogicalSolution", "PlanDiscovery"]

#: Above this many grid points, per-cell scans switch to a deterministic
#: uniform sample (high-dimensional spaces are exponentially large).
MAX_EXACT_GRID_POINTS = 20_000

#: Sample size used for large grids.
GRID_SAMPLE_SIZE = 4_096


@dataclass(frozen=True)
class PlanDiscovery:
    """One distinct plan with the optimizer-call count at its discovery.

    The discovery log is the raw series behind Figure 11: coverage as a
    function of the optimizer-call budget.
    """

    plan: LogicalPlan
    at_call: int


class RobustLogicalSolution:
    """A set of robust logical plans over one parameter space.

    Parameters
    ----------
    query:
        The query the plans order.
    space:
        The parameter space the solution covers.
    plans:
        The distinct robust logical plans (order preserved, de-duplicated).
    verified_regions:
        Optional mapping from plan to the regions in which partitioning
        *verified* its Def. 1 robustness (WRP/ERP produce these).
    discoveries:
        Optional discovery log (plan, optimizer-call count) pairs.
    """

    def __init__(
        self,
        query: Query,
        space: ParameterSpace,
        plans: Iterable[LogicalPlan],
        *,
        verified_regions: Mapping[LogicalPlan, list[Region]] | None = None,
        discoveries: Iterable[PlanDiscovery] = (),
    ) -> None:
        unique: list[LogicalPlan] = []
        seen: set[LogicalPlan] = set()
        for plan in plans:
            if plan not in seen:
                seen.add(plan)
                unique.append(plan)
        if not unique:
            raise ValueError("a robust logical solution needs at least one plan")
        self._query = query
        self._space = space
        self._plans = tuple(unique)
        self._cost_model = PlanCostModel(query)
        self._verified_regions = {
            plan: list(regions) for plan, regions in (verified_regions or {}).items()
        }
        self._discoveries = tuple(discoveries)
        self._cells_cache: dict[LogicalPlan, set[GridIndex]] | None = None
        self._tensor_cache: CostTensorCache | None = None

    @property
    def query(self) -> Query:
        """The underlying query."""
        return self._query

    @property
    def space(self) -> ParameterSpace:
        """The parameter space this solution covers."""
        return self._space

    @property
    def plans(self) -> tuple[LogicalPlan, ...]:
        """The distinct robust logical plans, in discovery order."""
        return self._plans

    @property
    def cost_model(self) -> PlanCostModel:
        """Cost model shared by routing and weighting."""
        return self._cost_model

    @property
    def cost_cache(self) -> CostTensorCache:
        """The shared dense cost/load tensor cache over this plan set.

        Lazily built; on spaces above :data:`MAX_EXACT_GRID_POINTS` the
        per-cell scans below use the sampled-matrix path instead, so
        accessing this on a huge space is the caller's (memory)
        decision.
        """
        if self._tensor_cache is None:
            self._tensor_cache = CostTensorCache(
                self._space, self._cost_model, self._plans
            )
        return self._tensor_cache

    @property
    def tensor_build_seconds(self) -> float:
        """Seconds spent building dense cost/load tensors so far.

        0.0 when no per-cell scan has forced the cache yet; used by the
        CLI's ``compile --profile`` breakdown.
        """
        if self._tensor_cache is None:
            return 0.0
        return self._tensor_cache.build_seconds

    @property
    def discoveries(self) -> tuple[PlanDiscovery, ...]:
        """Discovery log: (plan, optimizer-call count) per distinct plan."""
        return self._discoveries

    def verified_regions_of(self, plan: LogicalPlan) -> list[Region]:
        """Regions where partitioning verified the plan's robustness."""
        return list(self._verified_regions.get(plan, []))

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, plan: LogicalPlan) -> bool:
        return plan in set(self._plans)

    # ------------------------------------------------------------------
    # Routing (the runtime classifier's decision function)
    # ------------------------------------------------------------------

    def best_plan_at(self, point: Mapping[str, float]) -> LogicalPlan:
        """Cheapest plan in the solution at ``point``.

        This is the online classifier's decision (§3 "Robust load
        executor"): given the latest runtime statistics, route the next
        batch through the matching robust logical plan.  Ties break
        toward the lexicographically smaller ordering.
        """
        return min(
            self._plans,
            key=lambda plan: (self._cost_model.plan_cost(plan, point), plan.order),
        )

    def _representative_indices(self) -> list[GridIndex]:
        """Grid indices scanned by per-cell operations.

        The full grid when it is small; otherwise a deterministic
        uniform sample of :data:`GRID_SAMPLE_SIZE` indices (always
        including the space corners), since high-dimensional grids are
        exponentially large.
        """
        if self._space.n_points <= MAX_EXACT_GRID_POINTS:
            return list(self._space.grid_indices())
        rng = derive_rng(20121107)  # fixed: results must be stable
        shape = self._space.shape
        sample = {
            tuple(int(rng.integers(0, s)) for s in shape)
            for _ in range(GRID_SAMPLE_SIZE)
        }
        full = self._space.full_region()
        sample.add(full.lo)
        sample.add(full.hi)
        return sorted(sample)

    @property
    def uses_sampled_grid(self) -> bool:
        """True when per-cell scans run on a sample, not the full grid."""
        return self._space.n_points > MAX_EXACT_GRID_POINTS

    def plan_cells(self) -> dict[LogicalPlan, set[GridIndex]]:
        """Partition of (representative) grid points by cheapest plan.

        Every scanned grid point is assigned to exactly one plan — each
        plan's effective region of responsibility at runtime.  On
        spaces larger than :data:`MAX_EXACT_GRID_POINTS` the scan uses
        the deterministic sample of :meth:`_representative_indices`.

        Computed as one argmin over the dense cost tensor (with the
        same ``(cost, plan.order)`` tie-break as :meth:`best_plan_at`)
        rather than a scalar cost call per (plan, point) pair.
        """
        if self._cells_cache is None:
            indices = self._representative_indices()
            if self.uses_sampled_grid:
                # Batch-evaluate only the sampled rows; never build the
                # full (exponentially large) grid tensor.
                matrix = self._space.points_matrix(indices)
                names = list(self._space.names)
                costs = np.vstack(
                    [
                        self._cost_model.plan_costs(plan, matrix, names)
                        for plan in self._plans
                    ]
                )
                best = lexicographic_argmin([costs], self.cost_cache.plan_ranks)
            else:
                # Exact grids scan every index in row-major order, which
                # is exactly the cost tensor's column order.
                best = self.cost_cache.best_plan_per_point()
            cells: dict[LogicalPlan, set[GridIndex]] = {p: set() for p in self._plans}
            for index, plan_index in zip(indices, best):
                cells[self._plans[plan_index]].add(index)
            self._cells_cache = cells
        return {plan: set(cells) for plan, cells in self._cells_cache.items()}

    # ------------------------------------------------------------------
    # Plan weights (§5.2)
    # ------------------------------------------------------------------

    def plan_weights(
        self, occurrence: NormalOccurrenceModel | None = None
    ) -> dict[LogicalPlan, float]:
        """Occurrence-probability weight of each plan's region.

        ``weight(lp) = Σ_{pnt ∈ area(lp)} Pr(pnt)`` with ``Pr`` from the
        normal occurrence model (§5.2).  Defaults to a fresh model with
        means at the estimate point.
        """
        model = occurrence or NormalOccurrenceModel(self._space)
        cells = self.plan_cells()
        scanned = sum(len(c) for c in cells.values())
        # Unbiased estimator on sampled grids: scale each plan's sampled
        # mass by (grid points / points scanned); exact grids scale by 1.
        scale = self._space.n_points / scanned if scanned else 1.0
        return {
            plan: scale * sum(model.cell_probability(index) for index in plan_cells)
            for plan, plan_cells in cells.items()
        }

    def area_fractions(self) -> dict[LogicalPlan, float]:
        """Fraction of scanned grid points in each plan's cell set."""
        cells = self.plan_cells()
        scanned = sum(len(c) for c in cells.values())
        if scanned == 0:
            return {plan: 0.0 for plan in self._plans}
        return {plan: len(c) / scanned for plan, c in cells.items()}

    # ------------------------------------------------------------------
    # Worst-case operator loads (input to physical planning)
    # ------------------------------------------------------------------

    def worst_case_loads(self, plan: LogicalPlan) -> dict[int, float]:
        """Max per-operator load of ``plan`` over its region cells.

        The physical plan must fit each supported plan's operators on
        their machines at *any* point of the plan's region, so
        feasibility uses the per-operator maximum over the region.
        Falls back to the whole-space top corner for a plan with no
        cells of its own (possible when another plan dominates it
        everywhere).
        """
        cells = self.plan_cells().get(plan, set())
        if not cells:
            point = self._space.full_region().pnt_hi
            return dict(self._cost_model.operator_loads(plan, point))
        matrix = self._space.points_matrix(sorted(cells))
        batch = self._cost_model.operator_loads_batch(
            plan, matrix, list(self._space.names)
        )
        return {
            op_id: float(batch[op_id].max())
            for op_id in self._query.operator_ids
        }

    def expected_loads(
        self, plan: LogicalPlan, occurrence: NormalOccurrenceModel | None = None
    ) -> dict[int, float]:
        """Occurrence-weighted mean per-operator load over a plan's cells.

        The *typical* load profile the plan imposes at runtime —
        distinct from :meth:`worst_case_loads`, whose independent
        per-operator maxima describe a point that never actually occurs.
        Placement balancing wants typical loads; feasibility wants the
        worst case.
        """
        model = occurrence or NormalOccurrenceModel(self._space)
        cells = self.plan_cells().get(plan, set())
        if not cells:
            point = self._space.point_at(
                tuple(s // 2 for s in self._space.shape)
            )
            return self._cost_model.operator_loads(plan, point)
        ordered = sorted(cells)
        weights = np.fromiter(
            (model.cell_probability(index) for index in ordered),
            dtype=float,
            count=len(ordered),
        )
        matrix = self._space.points_matrix(ordered)
        batch = self._cost_model.operator_loads_batch(
            plan, matrix, list(self._space.names)
        )
        mass = float(weights.sum())
        if mass <= 0:
            # Degenerate: cells carry no occurrence mass; plain mean.
            return {
                op_id: float(batch[op_id].mean())
                for op_id in self._query.operator_ids
            }
        return {
            op_id: float(batch[op_id] @ weights) / mass
            for op_id in self._query.operator_ids
        }

    def __repr__(self) -> str:
        labels = ", ".join(plan.label for plan in self._plans[:4])
        suffix = ", ..." if len(self._plans) > 4 else ""
        return (
            f"RobustLogicalSolution({len(self._plans)} plans over "
            f"{self._space.n_points} grid points: {labels}{suffix})"
        )
