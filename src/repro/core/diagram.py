"""Plan diagrams over the parameter space (§7's parametric-QO lens).

A *plan diagram* (Reddy & Haritsa, VLDB'05) is the partition of a
parameter space by which plan is optimal at each point.  The paper
positions RLD against plan-diagram *reduction* — merging plans whose
costs are "close enough" (Harish et al., PVLDB'08) — so this module
provides both artifacts for analysis and debugging:

* :func:`compute_plan_diagram` — the exact diagram of a space under a
  black-box optimizer (one call per grid cell; this is the expensive
  object ERP exists to avoid computing).
* :meth:`PlanDiagram.reduce` — greedy ε-reduction: repeatedly swallow
  the smallest-area plan into a surviving plan that ε-covers every cell
  it owns, mirroring the plan-diagram-reduction semantics.
* :meth:`PlanDiagram.render` — a fixed-width ASCII map of a 2-D
  diagram, one letter per grid cell, for inspection in terminals and
  docstrings (the textual analogue of the paper's Figure 3/6/8 plots).
"""

from __future__ import annotations

from dataclasses import dataclass
from string import ascii_uppercase, ascii_lowercase

from repro.core.parameter_space import GridIndex, ParameterSpace
from repro.query.cost import PlanCostModel
from repro.query.optimizer import PointOptimizer
from repro.query.plans import LogicalPlan

__all__ = ["PlanDiagram", "compute_plan_diagram"]

#: Cell glyphs for rendering: 52 distinct letters, then '#'.
_GLYPHS = ascii_uppercase + ascii_lowercase


@dataclass(frozen=True)
class PlanDiagram:
    """Which plan is optimal at each grid cell, with its cost there."""

    space: ParameterSpace
    assignment: dict[GridIndex, LogicalPlan]
    optimal_costs: dict[GridIndex, float]
    cost_model: PlanCostModel

    @property
    def plans(self) -> tuple[LogicalPlan, ...]:
        """Distinct plans of the diagram, largest region first."""
        areas: dict[LogicalPlan, int] = {}
        for plan in self.assignment.values():
            areas[plan] = areas.get(plan, 0) + 1
        return tuple(
            sorted(areas, key=lambda plan: (-areas[plan], plan.order))
        )

    @property
    def cardinality(self) -> int:
        """Number of distinct optimal plans in the space."""
        return len(set(self.assignment.values()))

    def area_of(self, plan: LogicalPlan) -> float:
        """Fraction of grid cells where ``plan`` is optimal."""
        owned = sum(1 for p in self.assignment.values() if p == plan)
        return owned / self.space.n_points

    def reduce(self, epsilon: float) -> "PlanDiagram":
        """Greedy ε-reduction of the diagram.

        Repeatedly retire the smallest-area plan whose every cell can
        be served by some single surviving plan within ``(1 + ε)`` of
        the optimal cost there; the swallowing plan takes over the
        cells.  This is the plan-diagram-reduction operation the paper
        contrasts ERP against: it needs the *full* diagram up front,
        which is exactly the cost ERP avoids.
        """
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        assignment = dict(self.assignment)
        threshold = 1.0 + epsilon

        def cells_of(plan: LogicalPlan) -> list[GridIndex]:
            return [idx for idx, p in assignment.items() if p == plan]

        changed = True
        while changed:
            changed = False
            survivors = sorted(
                set(assignment.values()),
                key=lambda plan: (
                    sum(1 for p in assignment.values() if p == plan),
                    plan.order,
                ),
            )
            for victim in survivors:
                victim_cells = cells_of(victim)
                for heir in survivors:
                    if heir == victim:
                        continue
                    fits = all(
                        self.cost_model.plan_cost(heir, self.space.point_at(idx))
                        <= threshold * self.optimal_costs[idx] * (1 + 1e-12)
                        for idx in victim_cells
                    )
                    if fits:
                        for idx in victim_cells:
                            assignment[idx] = heir
                        changed = True
                        break
                if changed:
                    break
        return PlanDiagram(self.space, assignment, dict(self.optimal_costs), self.cost_model)

    def render(self, *, legend: bool = True) -> str:
        """ASCII map of a 2-D diagram (first dim = rows, second = columns).

        Raises for spaces that are not 2-D — higher-dimensional
        diagrams have no faithful flat rendering.
        """
        if self.space.n_dims != 2:
            raise ValueError(
                f"render() supports 2-D spaces only, got {self.space.n_dims}-D"
            )
        glyph_of: dict[LogicalPlan, str] = {}
        for i, plan in enumerate(self.plans):
            glyph_of[plan] = _GLYPHS[i] if i < len(_GLYPHS) else "#"
        rows_steps, cols_steps = self.space.shape
        lines = []
        # Render with the second dimension on x and the first on y,
        # origin (lo, lo) at the bottom-left like the paper's figures.
        for row in reversed(range(rows_steps)):
            line = "".join(
                glyph_of[self.assignment[(row, col)]] for col in range(cols_steps)
            )
            lines.append(line)
        if legend:
            lines.append("")
            for plan in self.plans:
                lines.append(
                    f"{glyph_of[plan]} = {plan.label}  "
                    f"(area {self.area_of(plan):.1%})"
                )
        return "\n".join(lines)


def compute_plan_diagram(
    space: ParameterSpace, optimizer: PointOptimizer
) -> PlanDiagram:
    """Exact plan diagram: one optimizer call per grid cell.

    This is the §7 baseline artifact — "it would be extremely expensive
    to compute such diagram" is the paper's motivation for ERP — so use
    it for analysis on small spaces, not inside the compile path.
    """
    assignment: dict[GridIndex, LogicalPlan] = {}
    optimal_costs: dict[GridIndex, float] = {}
    for index in space.grid_indices():
        point = space.point_at(index)
        plan = optimizer.optimize(point)
        assignment[index] = plan
        optimal_costs[index] = optimizer.plan_cost(plan, point)
    return PlanDiagram(space, assignment, optimal_costs, optimizer.cost_model)
