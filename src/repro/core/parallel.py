"""Multiprocess compile pipeline with bitwise-serial determinism.

The two compile-time hot spots of Figures 12–13 — ERP's weighted space
partitioning and OptPrune's branch-and-bound — are embarrassingly
parallel *except* for their sequential control decisions (the aging
counter, the incumbent bound, call accounting).  This module shards the
expensive leaf work across a process pool while replaying every control
decision exactly as the serial algorithms would, so ``--jobs N`` is
guaranteed to produce bit-for-bit the same :class:`RLDSolution` as
``--jobs 1`` for every ``N``.

**ERP — speculative corner prefetch.**  ERP's cost is dominated by
black-box optimizer calls at region corners.  Workers *pre-solve*
corner points (fed the read-only ``grid_matrix`` through
``multiprocessing.shared_memory``, so no worker rebuilds the grid) and
the results are installed into a :class:`SpeculativeOptimizer` wrapping
the real optimizer.  The serial loop then runs unchanged: when it asks
for a corner the wrapper serves the precomputed plan but still charges
the optimizer call at that moment, so call budgets, discovery logs,
and the aging counter fire at exactly the serial step.  Speculation can
only waste worker time, never change an answer.

**OptPrune — path-ranked prefix sharding.**  The serial DFS visits
completions in lexicographic order of their candidate-index paths, and
its outcome is a pure function of that ordered completion sequence
(strictly-improving completions are recorded; the first recorded
completion reaching the perfect-score threshold aborts).  We expand the
root into DFS prefixes (each tagged with its path), shard them across
workers that replicate the serial candidate loop, and merge every
recorded completion back in path order through the *same*
record/abort scan — yielding the serial incumbent exactly.  Workers
share the incumbent bound through a ``multiprocessing.Value`` (fork
start method) and prune with strict ``<`` only, which cannot eliminate
any completion the merge scan needs:

* a completion with the global maximum score is never pruned (the
  shared bound never exceeds the maximum, and the comparison is
  strict), and
* scores at or above the perfect-score threshold are never published,
  so threshold-crossing completions are never pruned either.

Feasible-configuration tables travel to workers as packed int64 arrays
in shared memory; per-worker busy seconds are returned with each chunk
and folded into the compile :class:`~repro.util.timing.StageTimer` as
``workers:<stage>`` entries.
"""

from __future__ import annotations

import ctypes
import multiprocessing
import multiprocessing.shared_memory
from dataclasses import dataclass
from multiprocessing.pool import Pool
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence, cast

import numpy as np

from repro.core.parameter_space import GridIndex, ParameterSpace, Region
from repro.core.physical import PlanLoadTable
from repro.query.optimizer import PointOptimizer
from repro.query.plans import LogicalPlan
from repro.query.statistics import StatPoint
from repro.util.timing import Stopwatch
from repro.util.types import AnyArray

if TYPE_CHECKING:
    from repro.core.robustness import RobustnessChecker

__all__ = [
    "ParallelConfig",
    "ParallelContext",
    "SharedArray",
    "SpeculativeOptimizer",
    "CornerPrefetcher",
    "candidates_by_first",
    "parallel_opt_prune_search",
    "parallel_opt_prune_hetero_search",
]

#: DFS-prefix fan-out per worker for the OptPrune tree shard: expansion
#: stops once the frontier holds this many prefixes per job.
_PREFIXES_PER_JOB = 8

#: Worker search nodes between locked refreshes of the shared bound.
_BOUND_REFRESH_NODES = 256


@dataclass(frozen=True)
class ParallelConfig:
    """Worker-pool settings for the parallel compile pipeline.

    ``jobs`` is the number of worker processes; ``1`` disables the pool
    entirely and runs the untouched serial path.  ``start_method``
    overrides the multiprocessing start method (``None`` prefers
    ``fork`` where available — the incumbent-bound ``Value`` can only
    be shared under ``fork``; other methods stay deterministic but
    prune with the static greedy bound only).  ``chunks_per_job``
    controls task granularity: each pool map splits its work into
    ``jobs * chunks_per_job`` chunks so stragglers rebalance.
    """

    jobs: int = 1
    start_method: str | None = None
    chunks_per_job: int = 2

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.chunks_per_job < 1:
            raise ValueError(
                f"chunks_per_job must be >= 1, got {self.chunks_per_job}"
            )
        if self.start_method is not None:
            available = multiprocessing.get_all_start_methods()
            if self.start_method not in available:
                raise ValueError(
                    f"start_method {self.start_method!r} not available; "
                    f"choose from {available}"
                )

    @property
    def enabled(self) -> bool:
        """True when a worker pool would actually be used."""
        return self.jobs > 1


@dataclass(frozen=True)
class SharedArraySpec:
    """Pickle-friendly handle a worker needs to attach a shared array."""

    name: str
    shape: tuple[int, ...]
    dtype: str


class SharedArray:
    """A read-only ndarray in POSIX shared memory.

    The parent :meth:`create`\\ s the segment (copying the source array
    in once); workers :meth:`attach` by name and receive a read-only
    view, so large precomputed tensors — the parameter-space
    ``grid_matrix``, OptPrune's packed feasible-configuration table —
    cross the process boundary without per-task pickling.  Only the
    owner unlinks the segment on :meth:`close`.
    """

    def __init__(
        self,
        shm: multiprocessing.shared_memory.SharedMemory,
        array: AnyArray,
        spec: SharedArraySpec,
        *,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._array = array
        self._spec = spec
        self._owner = owner
        self._closed = False

    @classmethod
    def create(cls, source: AnyArray) -> "SharedArray":
        """Copy ``source`` into a fresh shared-memory segment."""
        arr = np.ascontiguousarray(source)
        shm = multiprocessing.shared_memory.SharedMemory(
            create=True, size=max(int(arr.nbytes), 1)
        )
        view: AnyArray = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        view.setflags(write=False)
        spec = SharedArraySpec(shm.name, tuple(arr.shape), arr.dtype.str)
        return cls(shm, view, spec, owner=True)

    @classmethod
    def attach(cls, spec: SharedArraySpec) -> "SharedArray":
        """Attach to an existing segment; the view is read-only."""
        shm = multiprocessing.shared_memory.SharedMemory(name=spec.name)
        # Pool workers share the parent's resource-tracker process, and
        # its name cache is a set — the worker-side register is
        # idempotent and the parent's unlink clears the entry exactly
        # once, so no bpo-38119 unregister workaround is needed here.
        view: AnyArray = np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf
        )
        view.setflags(write=False)
        return cls(shm, view, spec, owner=False)

    @property
    def array(self) -> AnyArray:
        """The shared, read-only ndarray view."""
        return self._array

    @property
    def spec(self) -> SharedArraySpec:
        """The handle workers use to attach."""
        return self._spec

    def close(self) -> None:
        """Detach; the owning side also unlinks the segment."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass


def _split_chunks(items: Sequence[Any], n_chunks: int) -> list[list[Any]]:
    """Round-robin ``items`` into at most ``n_chunks`` non-empty lists.

    Round-robin keeps each chunk sorted whenever ``items`` is sorted —
    the property the OptPrune merge relies on for path-ordered worker
    chains — and spreads expensive early items across workers.
    """
    count = min(len(items), n_chunks)
    return [list(items[i::count]) for i in range(count)]


# ---------------------------------------------------------------------------
# Worker-process state.
#
# Pool workers receive their immutable inputs once, through the pool
# initializer, and stash them in this per-process slot; each map task
# then carries only its small work list.  The dict is written exactly
# once per worker process, before any task runs.
_WORKER_STATE: dict[str, Any] = {}  # repro-lint: disable=no-module-mutable-state -- per-worker-process slot filled once by the pool initializer before any task executes; never shared across processes


def _erp_worker_init(
    optimizer: PointOptimizer, names: tuple[str, ...], spec: SharedArraySpec
) -> None:
    """Pool initializer for ERP corner prefetch workers."""
    _WORKER_STATE["erp_optimizer"] = optimizer
    _WORKER_STATE["erp_names"] = names
    _WORKER_STATE["erp_grid"] = SharedArray.attach(spec)


def _erp_solve_chunk(
    flats: Sequence[int],
) -> tuple[list[tuple[int, tuple[int, ...]]], float]:
    """Solve one chunk of grid points; returns (flat, order) pairs + busy s.

    Points are rebuilt from shared ``grid_matrix`` rows, whose values
    are bitwise-identical to ``Dimension.value`` by construction, so
    the worker optimizes exactly the point the serial path would.
    ``peek`` leaves call accounting untouched — the parent charges the
    call when (and only when) the serial loop requests the corner.
    """
    watch = Stopwatch()
    optimizer = cast(PointOptimizer, _WORKER_STATE["erp_optimizer"])
    names = cast("tuple[str, ...]", _WORKER_STATE["erp_names"])
    grid = cast(SharedArray, _WORKER_STATE["erp_grid"]).array
    results: list[tuple[int, tuple[int, ...]]] = []
    for flat in flats:
        row = grid[flat]
        point = StatPoint(
            {name: float(value) for name, value in zip(names, row)}
        )
        results.append((flat, optimizer.peek(point).order))
    return results, watch.seconds


class SpeculativeOptimizer(PointOptimizer):
    """Serves prefetched plans with serial-identical call accounting.

    Wraps the real optimizer of a partitioning run.  ``optimize`` is
    inherited from :class:`PointOptimizer`, so every lookup still
    charges exactly one optimizer call at the moment the serial
    algorithm asks — budgets, discovery ``at_call`` stamps, and the
    aging counter are untouched.  Only the *work* of ``_find_best`` is
    replaced: a store hit returns the worker-computed plan, a miss
    falls through to the real search.
    """

    def __init__(self, inner: PointOptimizer) -> None:
        super().__init__(inner.query, memoize=False)
        self._inner = inner
        self._store: dict[StatPoint, LogicalPlan] = {}
        self._prefetch_hits = 0
        self._prefetch_misses = 0

    @property
    def inner(self) -> PointOptimizer:
        """The real optimizer (also the one shipped to workers)."""
        return self._inner

    @property
    def prefetch_hits(self) -> int:
        """Calls answered from the prefetch store."""
        return self._prefetch_hits

    @property
    def prefetch_misses(self) -> int:
        """Calls that fell through to the real search."""
        return self._prefetch_misses

    def install(self, point: StatPoint, plan: LogicalPlan) -> None:
        """Record a worker-computed plan for ``point``."""
        self._store.setdefault(point, plan)

    def _find_best(self, point: Mapping[str, float]) -> LogicalPlan:
        key = point if isinstance(point, StatPoint) else StatPoint(point)
        stored = self._store.get(key)
        if stored is not None:
            self._prefetch_hits += 1
            return stored
        self._prefetch_misses += 1
        return self._inner.peek(point)


class CornerPrefetcher:
    """Wave-based speculative evaluation of ERP region corners.

    When the serial loop pops a region whose corners are not yet known,
    one *wave* pre-solves every still-unknown corner of that region and
    of the next :attr:`wave_regions` queued regions in a single pool
    map — the corners the serial run is about to visit.  The cap keeps
    speculation demand-matched: ERP's aging stop routinely abandons the
    queue's tail, so prefetching the whole queue would burn worker time
    on corners no one will ever ask for.  Waves are keyed by sorted
    flat grid index, and results are installed into the
    :class:`SpeculativeOptimizer` keyed by the exact ``point_at``
    point, so replay is bitwise-deterministic regardless of worker
    scheduling.
    """

    def __init__(
        self,
        context: "ParallelContext",
        space: ParameterSpace,
        optimizer: SpeculativeOptimizer,
    ) -> None:
        self._context = context
        self._space = space
        self._optimizer = optimizer
        self._fetched: set[GridIndex] = set()

    @property
    def wave_regions(self) -> int:
        """How many queued regions (beyond the popped one) to cover per
        wave — one chunk's worth of regions per worker."""
        return self._context.n_chunks()

    @staticmethod
    def _corners(region: Region) -> tuple[GridIndex, ...]:
        return (region.lo,) if region.is_cell else (region.lo, region.hi)

    def _needs(self, index: GridIndex, checker: "RobustnessChecker") -> bool:
        return index not in self._fetched and not checker.has_cached(index)

    def ensure(
        self,
        region: Region,
        queued: Iterable[Region],
        checker: "RobustnessChecker",
    ) -> None:
        """Prefetch the wave covering ``region`` if any corner is unknown."""
        if not any(self._needs(c, checker) for c in self._corners(region)):
            return
        wanted: dict[GridIndex, None] = {}
        for corner in self._corners(region):
            if self._needs(corner, checker):
                wanted[corner] = None
        for other in queued:
            for corner in self._corners(other):
                if self._needs(corner, checker):
                    wanted[corner] = None
        flats = sorted(self._space.flat_index(index) for index in wanted)
        for flat, order in self._context.erp_map(
            self._space, self._optimizer.inner, flats
        ):
            index = self._space.index_of_flat(flat)
            self._optimizer.install(
                self._space.point_at(index), LogicalPlan(tuple(order))
            )
            self._fetched.add(index)


class ParallelContext:
    """Per-compile owner of worker pools, shared memory, and timings.

    One context lives for the duration of one ``RLDOptimizer.solve``
    (or one standalone partitioning/OptPrune call) and must be
    :meth:`close`\\ d — it owns the ERP worker pool, the shared
    ``grid_matrix`` segment, and the accumulated per-stage worker busy
    seconds that the compiler folds into its ``StageTimer`` profile.
    Usable as a context manager.
    """

    def __init__(self, config: ParallelConfig | None = None) -> None:
        self._config = config or ParallelConfig()
        if self._config.start_method is not None:
            self._start_method = self._config.start_method
        else:
            methods = multiprocessing.get_all_start_methods()
            self._start_method = (
                "fork" if "fork" in methods else multiprocessing.get_start_method()
            )
        self._mp = multiprocessing.get_context(self._start_method)
        self._erp_pool: Pool | None = None
        self._erp_space: ParameterSpace | None = None
        self._erp_optimizer: PointOptimizer | None = None
        self._erp_shared: SharedArray | None = None
        self._worker_seconds: dict[str, float] = {}
        self._closed = False

    @property
    def config(self) -> ParallelConfig:
        """The pool settings this context was created with."""
        return self._config

    @property
    def jobs(self) -> int:
        """Worker process count."""
        return self._config.jobs

    @property
    def enabled(self) -> bool:
        """True when worker pools are in use (``jobs > 1``)."""
        return self._config.enabled

    @property
    def start_method(self) -> str:
        """The resolved multiprocessing start method."""
        return self._start_method

    @property
    def worker_seconds(self) -> dict[str, float]:
        """Accumulated worker busy seconds per compile stage."""
        return dict(self._worker_seconds)

    def add_worker_seconds(self, stage: str, seconds: float) -> None:
        """Credit ``seconds`` of worker busy time to ``stage``."""
        self._worker_seconds[stage] = (
            self._worker_seconds.get(stage, 0.0) + seconds
        )

    def pool(self, initializer: Any, initargs: tuple[Any, ...]) -> Pool:
        """A fresh worker pool with this context's start method."""
        return self._mp.Pool(
            self.jobs, initializer=initializer, initargs=initargs
        )

    def shared_double(self, initial: float) -> Any | None:
        """A lock-guarded shared double, or ``None`` off ``fork``.

        Synchronized values cannot be pickled to spawned workers; under
        non-fork start methods the OptPrune shard falls back to the
        static greedy bound (weaker pruning, identical results).
        """
        if self._start_method != "fork":
            return None
        return self._mp.Value(ctypes.c_double, initial, lock=True)

    def n_chunks(self) -> int:
        """Target chunk count for one pool map."""
        return self.jobs * self._config.chunks_per_job

    def erp_map(
        self,
        space: ParameterSpace,
        optimizer: PointOptimizer,
        flats: Sequence[int],
    ) -> list[tuple[int, tuple[int, ...]]]:
        """Solve grid points across the (lazily created) ERP pool."""
        if not flats:
            return []
        worker_pool = self._ensure_erp_pool(space, optimizer)
        chunks = _split_chunks(list(flats), self.n_chunks())
        results: list[tuple[int, tuple[int, ...]]] = []
        busy = 0.0
        for pairs, seconds in worker_pool.map(_erp_solve_chunk, chunks):
            results.extend(pairs)
            busy += seconds
        self.add_worker_seconds("partitioning", busy)
        return results

    def _ensure_erp_pool(
        self, space: ParameterSpace, optimizer: PointOptimizer
    ) -> Pool:
        if self._closed:
            raise RuntimeError("ParallelContext is closed")
        if self._erp_pool is not None:
            if self._erp_space is not space or self._erp_optimizer is not optimizer:
                raise RuntimeError(
                    "ParallelContext's ERP pool is bound to a different "
                    "space/optimizer; use one context per compile"
                )
            return self._erp_pool
        self._erp_shared = SharedArray.create(space.grid_matrix())
        self._erp_space = space
        self._erp_optimizer = optimizer
        self._erp_pool = self.pool(
            _erp_worker_init,
            (optimizer, space.names, self._erp_shared.spec),
        )
        return self._erp_pool

    def close(self) -> None:
        """Terminate pools and release shared memory (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._erp_pool is not None:
            self._erp_pool.terminate()
            self._erp_pool.join()
            self._erp_pool = None
        if self._erp_shared is not None:
            self._erp_shared.close()
            self._erp_shared = None

    def __enter__(self) -> "ParallelContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ---------------------------------------------------------------------------
# OptPrune tree sharding.


def candidates_by_first(
    pairs: Iterable[tuple[int, int]], n_ops: int
) -> dict[int, list[tuple[int, int]]]:
    """Feasible configs grouped by lowest operator, largest-first.

    The canonical candidate ordering of Algorithm 5's DFS: every
    configuration is filed under its lowest-indexed operator and each
    bucket is sorted by descending operator count, then ascending
    subset mask.  Serial search and worker shards build this table with
    the same function so candidate *indices* — the path coordinates the
    deterministic merge sorts on — agree across processes.
    """
    by_first: dict[int, list[tuple[int, int]]] = {i: [] for i in range(n_ops)}
    for subset, mask in pairs:
        first = (subset & -subset).bit_length() - 1
        by_first[first].append((subset, mask))
    for candidates in by_first.values():
        candidates.sort(key=lambda item: (-bin(item[0]).count("1"), item[0]))
    return by_first


@dataclass(frozen=True)
class _Prefix:
    """One DFS subtree root: the serial search state at its path."""

    path: tuple[int, ...]
    remaining: int
    used: int
    mask: int
    score: float
    chosen: tuple[int, ...]


@dataclass
class _Completion:
    """A recorded completion: score plus its DFS path and assignment."""

    score: float
    path: tuple[int, ...]
    chosen: tuple[Any, ...]


@dataclass
class _MergeOutcome:
    """Result of replaying completions through the serial scan."""

    score: float
    completion: _Completion | None = None


def _merge_completions(
    completions: Iterable[_Completion],
    greedy_score: float,
    threshold: float,
) -> _MergeOutcome:
    """Replay recorded completions in DFS path order, serial-style.

    The serial DFS records a completion iff it strictly improves on the
    incumbent and aborts at the first recorded completion reaching the
    perfect-score ``threshold``.  Every candidate here is a genuine
    completion with score ≤ the serial incumbent at its path position
    (shards prune *at most* as aggressively as the serial search), and
    the shard construction guarantees the serial winner is present —
    so this scan terminates on exactly the completion the serial DFS
    returns.
    """
    outcome = _MergeOutcome(score=greedy_score)
    for completion in sorted(completions, key=lambda c: c.path):
        if completion.score > outcome.score:
            outcome.score = completion.score
            outcome.completion = completion
            if outcome.score >= threshold:
                break
    return outcome


def _optprune_worker_init(
    table: PlanLoadTable,
    spec: SharedArraySpec,
    n_ops: int,
    n_nodes: int,
    greedy_score: float,
    full_score: float,
    shared_bound: Any | None,
) -> None:
    """Pool initializer for homogeneous OptPrune shard workers."""
    shared = SharedArray.attach(spec)
    packed = shared.array
    pairs = [
        (int(packed[0, i]), int(packed[1, i])) for i in range(packed.shape[1])
    ]
    _WORKER_STATE["optprune_shared"] = shared
    _WORKER_STATE["optprune"] = _HomogeneousShard(
        table,
        candidates_by_first(pairs, n_ops),
        n_nodes,
        greedy_score,
        full_score,
        shared_bound,
    )


def _optprune_solve_chunk(
    prefixes: Sequence[_Prefix],
) -> tuple[list[_Completion], int, float]:
    """Search one chunk of DFS prefixes; returns its improving chain."""
    watch = Stopwatch()
    shard = cast("_HomogeneousShard", _WORKER_STATE["optprune"])
    chain, explored = shard.run(prefixes)
    return chain, explored, watch.seconds


class _BoundMixin:
    """Shared incumbent-bound plumbing for shard workers.

    The shared double only ever carries scores *strictly below* the
    perfect-score threshold, and consumers prune with strict ``<``
    against it — together these keep the bound from eliminating any
    completion the deterministic merge scan depends on (see the module
    docstring's determinism argument).
    """

    _shared: Any | None
    _threshold: float

    def _read_bound(self) -> float:
        if self._shared is None:
            return float("-inf")
        with self._shared.get_lock():
            return float(self._shared.value)

    def _publish_bound(self, score: float) -> None:
        if self._shared is None or score >= self._threshold:
            return
        with self._shared.get_lock():
            if score > self._shared.value:
                self._shared.value = score


class _HomogeneousShard(_BoundMixin):
    """Worker-side DFS over assigned prefixes of Algorithm 5's tree.

    Mirrors the serial ``search`` closure in ``opt_prune`` line for
    line; the only additions are the path bookkeeping, the strict-``<``
    shared-bound prune, and chain recording (the serial path records
    implicitly by mutating its incumbent).
    """

    def __init__(
        self,
        table: PlanLoadTable,
        by_first: dict[int, list[tuple[int, int]]],
        n_nodes: int,
        greedy_score: float,
        full_score: float,
        shared_bound: Any | None,
    ) -> None:
        self._table = table
        self._by_first = by_first
        self._n_nodes = n_nodes
        self._greedy_score = greedy_score
        self._threshold = full_score * (1 - 1e-12)
        self._shared = shared_bound

    def run(
        self, prefixes: Sequence[_Prefix]
    ) -> tuple[list[_Completion], int]:
        best_score = self._greedy_score
        chain: list[_Completion] = []
        explored = 0
        floor = self._read_bound()
        since_refresh = 0
        aborted = False

        def search(
            remaining: int,
            used: int,
            mask: int,
            chosen: tuple[int, ...],
            path: tuple[int, ...],
        ) -> bool:
            nonlocal best_score, explored, floor, since_refresh
            first = (remaining & -remaining).bit_length() - 1
            for index, (subset, config_mask) in enumerate(self._by_first[first]):
                if subset & ~remaining:
                    continue
                new_mask = mask & config_mask
                if new_mask == 0:
                    continue
                new_score = self._table.score(new_mask)
                if new_score <= best_score:
                    continue
                if new_score < floor:
                    continue
                explored += 1
                since_refresh += 1
                if since_refresh >= _BOUND_REFRESH_NODES:
                    since_refresh = 0
                    floor = self._read_bound()
                    if new_score < floor:
                        continue
                new_remaining = remaining & ~subset
                new_chosen = chosen + (subset,)
                new_path = path + (index,)
                if new_remaining == 0:
                    best_score = new_score
                    chain.append(_Completion(new_score, new_path, new_chosen))
                    self._publish_bound(new_score)
                    if new_score >= self._threshold:
                        return True
                elif used + 1 < self._n_nodes:
                    if search(
                        new_remaining, used + 1, new_mask, new_chosen, new_path
                    ):
                        return True
            return False

        for prefix in prefixes:
            if aborted:
                break
            floor = self._read_bound()
            since_refresh = 0
            if prefix.score <= best_score or prefix.score < floor:
                # Every score below this subtree is <= the prefix score
                # (Lemma 1), so the whole shard is prunable at once.
                continue
            aborted = search(
                prefix.remaining,
                prefix.used,
                prefix.mask,
                prefix.chosen,
                prefix.path,
            )
        return chain, explored


def parallel_opt_prune_search(
    table: PlanLoadTable,
    configs: Mapping[int, int],
    by_first: Mapping[int, Sequence[tuple[int, int]]],
    *,
    n_nodes: int,
    n_ops: int,
    all_ops_mask: int,
    greedy_score: float,
    full_score: float,
    context: ParallelContext,
) -> tuple[float, tuple[int, ...] | None, int, int]:
    """Sharded Algorithm 5 search, bitwise-identical to the serial DFS.

    Returns ``(best_score, best_assignment, best_mask, nodes_explored)``
    with ``best_assignment`` ``None`` when nothing beat GreedyPhy —
    exactly the serial incumbent state after ``search`` returns.
    ``nodes_explored`` is a diagnostic; its value legitimately differs
    from the serial count (shards prune against a dynamic bound).
    """
    threshold = full_score * (1 - 1e-12)
    completions: list[_Completion] = []
    frontier = [
        _Prefix((), all_ops_mask, 0, table.full_mask, full_score, ())
    ]
    explored = 0
    target = context.jobs * _PREFIXES_PER_JOB
    while frontier and len(frontier) < target:
        next_level: list[_Prefix] = []
        for prefix in frontier:
            first = (prefix.remaining & -prefix.remaining).bit_length() - 1
            for index, (subset, config_mask) in enumerate(by_first[first]):
                if subset & ~prefix.remaining:
                    continue
                new_mask = prefix.mask & config_mask
                if new_mask == 0:
                    continue
                new_score = table.score(new_mask)
                if new_score <= greedy_score:
                    continue
                explored += 1
                new_remaining = prefix.remaining & ~subset
                new_chosen = prefix.chosen + (subset,)
                new_path = prefix.path + (index,)
                if new_remaining == 0:
                    completions.append(
                        _Completion(new_score, new_path, new_chosen)
                    )
                elif prefix.used + 1 < n_nodes:
                    next_level.append(
                        _Prefix(
                            new_path,
                            new_remaining,
                            prefix.used + 1,
                            new_mask,
                            new_score,
                            new_chosen,
                        )
                    )
        frontier = next_level

    if frontier:
        seed = max(
            [greedy_score]
            + [c.score for c in completions if c.score < threshold]
        )
        shared_bound = context.shared_double(seed)
        packed = np.array(
            [
                [subset for subset in configs],
                [configs[subset] for subset in configs],
            ],
            dtype=np.int64,
        )
        shared = SharedArray.create(packed)
        try:
            with context.pool(
                _optprune_worker_init,
                (
                    table,
                    shared.spec,
                    n_ops,
                    n_nodes,
                    greedy_score,
                    full_score,
                    shared_bound,
                ),
            ) as worker_pool:
                chunk_results = worker_pool.map(
                    _optprune_solve_chunk,
                    _split_chunks(frontier, context.n_chunks()),
                )
        finally:
            shared.close()
        busy = 0.0
        for chain, chunk_explored, seconds in chunk_results:
            completions.extend(chain)
            explored += chunk_explored
            busy += seconds
        context.add_worker_seconds("physical", busy)

    outcome = _merge_completions(completions, greedy_score, threshold)
    if outcome.completion is None:
        return greedy_score, None, 0, explored
    chosen = cast("tuple[int, ...]", outcome.completion.chosen)
    best_mask = table.full_mask
    for subset in chosen:
        best_mask &= configs[subset]
    return outcome.score, chosen, best_mask, explored


# ---------------------------------------------------------------------------
# Heterogeneous OptPrune sharding.


@dataclass(frozen=True)
class _HeteroPrefix:
    """A partial op→node assignment: serial search state at its path."""

    path: tuple[int, ...]
    node_masks: tuple[int, ...]
    score: float


def _hetero_node_sets(
    path: tuple[int, ...], ops: Sequence[int], n_nodes: int
) -> list[set[int]]:
    """Rebuild per-node operator sets from an assignment path."""
    sets: list[set[int]] = [set() for _ in range(n_nodes)]
    for op_index, node in enumerate(path):
        sets[node].add(ops[op_index])
    return sets


def _hetero_worker_init(
    table: PlanLoadTable,
    ops: tuple[int, ...],
    capacities: tuple[float, ...],
    greedy_score: float,
    full_score: float,
    shared_bound: Any | None,
) -> None:
    """Pool initializer for heterogeneous OptPrune shard workers."""
    _WORKER_STATE["optprune_hetero"] = _HeterogeneousShard(
        table, ops, capacities, greedy_score, full_score, shared_bound
    )


def _hetero_solve_chunk(
    prefixes: Sequence[_HeteroPrefix],
) -> tuple[list[_Completion], int, float]:
    """Search one chunk of assignment prefixes; returns its chain."""
    watch = Stopwatch()
    shard = cast("_HeterogeneousShard", _WORKER_STATE["optprune_hetero"])
    chain, explored = shard.run(prefixes)
    return chain, explored, watch.seconds


class _HeterogeneousShard(_BoundMixin):
    """Worker-side DFS for ``opt_prune_heterogeneous`` prefixes.

    Mirrors the serial per-operator node-assignment search including
    the empty-node capacity-class symmetry break, which reproduces
    exactly because the per-node operator sets are replayed from the
    prefix path.
    """

    def __init__(
        self,
        table: PlanLoadTable,
        ops: tuple[int, ...],
        capacities: tuple[float, ...],
        greedy_score: float,
        full_score: float,
        shared_bound: Any | None,
    ) -> None:
        self._table = table
        self._ops = ops
        self._capacities = capacities
        self._n_nodes = len(capacities)
        self._greedy_score = greedy_score
        self._threshold = full_score * (1 - 1e-12)
        self._shared = shared_bound

    def run(
        self, prefixes: Sequence[_HeteroPrefix]
    ) -> tuple[list[_Completion], int]:
        table = self._table
        ops = self._ops
        best_score = self._greedy_score
        chain: list[_Completion] = []
        explored = 0
        floor = self._read_bound()
        since_refresh = 0
        aborted = False

        for prefix in prefixes:
            if aborted:
                break
            floor = self._read_bound()
            since_refresh = 0
            if prefix.score <= best_score or prefix.score < floor:
                continue
            node_ops = _hetero_node_sets(prefix.path, ops, self._n_nodes)
            node_masks = list(prefix.node_masks)

            def combined_mask() -> int:
                mask = table.full_mask
                for node_mask in node_masks:
                    mask &= node_mask
                return mask

            def search(op_index: int, path: tuple[int, ...]) -> bool:
                nonlocal best_score, explored, floor, since_refresh
                if op_index == len(ops):
                    mask = combined_mask()
                    score = table.score(mask)
                    if score > best_score:
                        best_score = score
                        assignment = tuple(
                            tuple(sorted(node_ops[n]))
                            for n in range(self._n_nodes)
                        )
                        chain.append(_Completion(score, path, assignment))
                        self._publish_bound(score)
                        if score >= self._threshold:
                            return True
                    return False
                op_id = ops[op_index]
                seen_empty_capacities: set[float] = set()
                for node in range(self._n_nodes):
                    if not node_ops[node]:
                        if self._capacities[node] in seen_empty_capacities:
                            continue
                        seen_empty_capacities.add(self._capacities[node])
                    saved_mask = node_masks[node]
                    node_ops[node].add(op_id)
                    node_masks[node] = saved_mask & table.support_mask(
                        node_ops[node], self._capacities[node]
                    )
                    explored += 1
                    since_refresh += 1
                    if since_refresh >= _BOUND_REFRESH_NODES:
                        since_refresh = 0
                        floor = self._read_bound()
                    upper = table.score(combined_mask())
                    if upper > best_score and not upper < floor:
                        if search(op_index + 1, path + (node,)):
                            node_ops[node].discard(op_id)
                            node_masks[node] = saved_mask
                            return True
                    node_ops[node].discard(op_id)
                    node_masks[node] = saved_mask
                return False

            aborted = search(len(prefix.path), prefix.path)
        return chain, explored


def parallel_opt_prune_hetero_search(
    table: PlanLoadTable,
    *,
    capacities: tuple[float, ...],
    greedy_score: float,
    full_score: float,
    context: ParallelContext,
) -> tuple[float, tuple[tuple[int, ...], ...] | None, int, int]:
    """Sharded heterogeneous OptPrune, bitwise-identical to serial.

    Returns ``(best_score, assignment, best_mask, nodes_explored)``;
    ``assignment`` is a per-node tuple of sorted operator ids, ``None``
    when nothing beat GreedyPhy.
    """
    ops = tuple(table.operator_ids)
    n_nodes = len(capacities)
    threshold = full_score * (1 - 1e-12)
    completions: list[_Completion] = []
    frontier = [_HeteroPrefix((), (table.full_mask,) * n_nodes, full_score)]
    explored = 0
    target = context.jobs * _PREFIXES_PER_JOB
    depth = 0
    while frontier and len(frontier) < target and depth < len(ops):
        op_id = ops[depth]
        next_level: list[_HeteroPrefix] = []
        for prefix in frontier:
            node_sets = _hetero_node_sets(prefix.path, ops, n_nodes)
            seen_empty_capacities: set[float] = set()
            for node in range(n_nodes):
                if not node_sets[node]:
                    if capacities[node] in seen_empty_capacities:
                        continue
                    seen_empty_capacities.add(capacities[node])
                node_mask = prefix.node_masks[node] & table.support_mask(
                    node_sets[node] | {op_id}, capacities[node]
                )
                masks = (
                    prefix.node_masks[:node]
                    + (node_mask,)
                    + prefix.node_masks[node + 1 :]
                )
                combined = table.full_mask
                for mask in masks:
                    combined &= mask
                upper = table.score(combined)
                explored += 1
                if upper <= greedy_score:
                    continue
                new_path = prefix.path + (node,)
                if depth + 1 == len(ops):
                    assignment = tuple(
                        tuple(sorted(node_sets[n] | ({op_id} if n == node else set())))
                        for n in range(n_nodes)
                    )
                    completions.append(_Completion(upper, new_path, assignment))
                else:
                    next_level.append(_HeteroPrefix(new_path, masks, upper))
        frontier = next_level
        depth += 1

    if frontier:
        seed = max(
            [greedy_score]
            + [c.score for c in completions if c.score < threshold]
        )
        shared_bound = context.shared_double(seed)
        with context.pool(
            _hetero_worker_init,
            (table, ops, capacities, greedy_score, full_score, shared_bound),
        ) as worker_pool:
            chunk_results = worker_pool.map(
                _hetero_solve_chunk,
                _split_chunks(frontier, context.n_chunks()),
            )
        busy = 0.0
        for chain, chunk_explored, seconds in chunk_results:
            completions.extend(chain)
            explored += chunk_explored
            busy += seconds
        context.add_worker_seconds("physical", busy)

    outcome = _merge_completions(completions, greedy_score, threshold)
    if outcome.completion is None:
        return greedy_score, None, 0, explored
    assignment = cast(
        "tuple[tuple[int, ...], ...]", outcome.completion.chosen
    )
    best_mask = table.full_mask
    for node, node_ops in enumerate(assignment):
        best_mask &= table.support_mask(set(node_ops), capacities[node])
    return outcome.score, assignment, best_mask, explored
