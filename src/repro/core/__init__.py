"""The paper's primary contribution: robust logical + physical planning.

Layered as in the paper:

* :mod:`repro.core.parameter_space` — the §2.2 multi-dimensional
  uncertainty space (Algorithm 1, discretization, regions).
* :mod:`repro.core.robustness` — Def. 1/2 ε-robustness checks and the
  exact coverage evaluation harness.
* :mod:`repro.core.weights` — §4.2 slope/distance weight assignment.
* :mod:`repro.core.partitioning` — ES, RS, WRP (Algorithm 2) and ERP
  (Algorithm 3) robust logical solution algorithms.
* :mod:`repro.core.occurrence` — §5.2 normal occurrence probabilities.
* :mod:`repro.core.logical` — robust logical solutions, plan regions,
  plan weights.
* :mod:`repro.core.physical` — configurations, Def. 3 physical plans,
  support bitmasks, clusters.
* :mod:`repro.core.greedy_phy` / :mod:`repro.core.optprune` /
  :mod:`repro.core.exhaustive_phy` — §5's GreedyPhy (Algorithm 4),
  OptPrune (Algorithm 5), and the exhaustive baseline.
* :mod:`repro.core.rld` — the end-to-end two-step RLD optimizer.
"""

from repro.core.correlation import CorrelatedOccurrenceModel
from repro.core.cost_tensor import CostTensorCache, lexicographic_argmin
from repro.core.diagram import PlanDiagram, compute_plan_diagram
from repro.core.exhaustive_phy import enumerate_partitions, exhaustive_physical
from repro.core.greedy_phy import greedy_phy, largest_load_first
from repro.core.logical import PlanDiscovery, RobustLogicalSolution
from repro.core.occurrence import NormalOccurrenceModel
from repro.core.optprune import (
    enumerate_feasible_configs,
    opt_prune,
    opt_prune_heterogeneous,
)
from repro.core.parallel import (
    CornerPrefetcher,
    ParallelConfig,
    ParallelContext,
    SharedArray,
    SpeculativeOptimizer,
)
from repro.core.parameter_space import Dimension, ParameterSpace, Region
from repro.core.partitioning import (
    EarlyTerminatedRobustPartitioning,
    ExhaustiveSearch,
    PartitioningResult,
    RandomSearch,
    WeightedRobustPartitioning,
    aging_threshold,
)
from repro.core.physical import (
    Cluster,
    InfeasiblePlacementError,
    PhysicalPlan,
    PhysicalPlanResult,
    PlanLoadTable,
)
from repro.core.rld import RLDConfig, RLDOptimizer, RLDSolution
from repro.core.serialize import (
    load_solution,
    save_solution,
    solution_from_dict,
    solution_to_dict,
)
from repro.core.robustness import (
    RegionCheck,
    RobustnessChecker,
    covered_indices,
    grid_optimal_costs,
    measure_coverage,
    optimal_costs_vector,
    robust_region_of_plan,
)
from repro.core.theory import (
    simulate_uniform_discovery,
    theorem1_threshold,
    theorem2_miss_probability_bound,
)
from repro.core.weights import RegionWeights, WeightAssigner

__all__ = [
    "CorrelatedOccurrenceModel",
    "CostTensorCache",
    "PlanDiagram",
    "compute_plan_diagram",
    "load_solution",
    "save_solution",
    "simulate_uniform_discovery",
    "solution_from_dict",
    "solution_to_dict",
    "theorem1_threshold",
    "theorem2_miss_probability_bound",
    "Cluster",
    "Dimension",
    "EarlyTerminatedRobustPartitioning",
    "ExhaustiveSearch",
    "InfeasiblePlacementError",
    "CornerPrefetcher",
    "NormalOccurrenceModel",
    "ParallelConfig",
    "ParallelContext",
    "ParameterSpace",
    "SharedArray",
    "SpeculativeOptimizer",
    "PartitioningResult",
    "PhysicalPlan",
    "PhysicalPlanResult",
    "PlanDiscovery",
    "PlanLoadTable",
    "RLDConfig",
    "RLDOptimizer",
    "RLDSolution",
    "RandomSearch",
    "Region",
    "RegionCheck",
    "RegionWeights",
    "RobustLogicalSolution",
    "RobustnessChecker",
    "WeightAssigner",
    "WeightedRobustPartitioning",
    "aging_threshold",
    "covered_indices",
    "enumerate_feasible_configs",
    "enumerate_partitions",
    "exhaustive_physical",
    "greedy_phy",
    "grid_optimal_costs",
    "largest_load_first",
    "lexicographic_argmin",
    "measure_coverage",
    "opt_prune",
    "optimal_costs_vector",
    "opt_prune_heterogeneous",
    "robust_region_of_plan",
]
