"""Correlated occurrence probabilities — the paper's stated future work.

§8: "In the future we will explore advanced issues related to data
correlations across streams and in particular synchronized across-
stream fluctuation patterns."  The §5.2 weight model assumes dimension
independence (zero correlation, as classical optimizers do); but the
workloads that motivate RLD — Example 1's bull/bear regimes — move
statistics in *lockstep*: when news-match selectivities rise, pattern-
match selectivities fall.  Under such synchronized fluctuation the
probability mass concentrates along a diagonal of the parameter space,
and plan weights computed under independence misrank the robust plans.

:class:`CorrelatedOccurrenceModel` implements the extension: a
multivariate-normal occurrence distribution with an arbitrary
correlation matrix, exposing the same ``cell_probability`` /
``region_probability`` interface as
:class:`~repro.core.occurrence.NormalOccurrenceModel`, so it drops
straight into ``RobustLogicalSolution.plan_weights`` and the physical
planners.  Box masses are computed by inclusion–exclusion over the
multivariate normal CDF (SciPy).
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Mapping, Sequence

import numpy as np

from repro.core.parameter_space import GridIndex, ParameterSpace, Region
from repro.util.validation import ensure_positive
from repro.util.types import FloatArray

__all__ = ["CorrelatedOccurrenceModel"]

#: Default standard deviation as a fraction of the dimension half-width
#: (matches NormalOccurrenceModel).
DEFAULT_SIGMA_FRACTION = 0.5


class CorrelatedOccurrenceModel:
    """Multivariate-normal occurrence over the parameter space.

    Parameters
    ----------
    space:
        The parameter space whose cells are weighted.
    correlation:
        Symmetric positive-semidefinite correlation matrix, one row per
        *non-pinned* space dimension in space order.  Defaults to the
        identity (independence, i.e. the §5.2 model).
    means:
        Optional per-dimension means (default: dimension midpoints).
    sigma_fraction:
        Standard deviation per dimension as a fraction of its
        half-width.
    """

    def __init__(
        self,
        space: ParameterSpace,
        *,
        correlation: Sequence[Sequence[float]] | None = None,
        means: Mapping[str, float] | None = None,
        sigma_fraction: float = DEFAULT_SIGMA_FRACTION,
    ) -> None:
        ensure_positive(sigma_fraction, "sigma_fraction")
        self._space = space
        self._active: list[int] = [
            i for i, dim in enumerate(space.dimensions) if dim.width > 0
        ]
        d = len(self._active)
        if d == 0:
            raise ValueError("space has no varying dimensions to correlate")

        if correlation is None:
            corr = np.eye(d)
        else:
            corr = np.asarray(correlation, dtype=float)
            if corr.shape != (d, d):
                raise ValueError(
                    f"correlation must be {d}x{d} for the {d} varying "
                    f"dimensions, got {corr.shape}"
                )
            if not np.allclose(corr, corr.T):
                raise ValueError("correlation matrix must be symmetric")
            if not np.allclose(np.diag(corr), 1.0):
                raise ValueError("correlation matrix diagonal must be 1")
            eigenvalues = np.linalg.eigvalsh(corr)
            if eigenvalues.min() < -1e-9:
                raise ValueError("correlation matrix must be positive semidefinite")

        self._means = np.array(
            [
                float(means[space.dimensions[i].name])
                if means and space.dimensions[i].name in means
                else 0.5 * (space.dimensions[i].lo + space.dimensions[i].hi)
                for i in self._active
            ]
        )
        self._sigmas = np.array(
            [
                sigma_fraction * 0.5 * space.dimensions[i].width
                for i in self._active
            ]
        )
        scale = np.outer(self._sigmas, self._sigmas)
        self._covariance = corr * scale

        from scipy.stats import multivariate_normal  # deferred: heavy import

        # allow_singular tolerates |ρ| = 1 (perfectly synchronized dims).
        self._mvn = multivariate_normal(
            mean=self._means, cov=self._covariance, allow_singular=True
        )

    @property
    def space(self) -> ParameterSpace:
        """The parameter space this model covers."""
        return self._space

    def _cdf(self, upper: FloatArray) -> float:
        return float(self._mvn.cdf(upper))

    def _box_mass(self, lows: FloatArray, highs: FloatArray) -> float:
        """Inclusion–exclusion over the 2^d corners of the box."""
        d = len(lows)
        total = 0.0
        for corner in iter_product((0, 1), repeat=d):
            point = np.where(np.array(corner) == 1, highs, lows)
            sign = (-1) ** (d - sum(corner))
            total += sign * self._cdf(point)
        return max(total, 0.0)

    def _interval(self, dim_position: int, lo_index: int, hi_index: int) -> tuple[float, float]:
        dimension = self._space.dimensions[self._active[dim_position]]
        half = 0.5 * dimension.cell_width
        return dimension.value(lo_index) - half, dimension.value(hi_index) + half

    def cell_probability(self, index: GridIndex) -> float:
        """Probability mass of the single grid cell at ``index``."""
        lows = np.empty(len(self._active))
        highs = np.empty(len(self._active))
        for position, dim_index in enumerate(self._active):
            lows[position], highs[position] = self._interval(
                position, index[dim_index], index[dim_index]
            )
        return self._box_mass(lows, highs)

    def region_probability(self, region: Region) -> float:
        """Probability mass of an axis-aligned region."""
        lows = np.empty(len(self._active))
        highs = np.empty(len(self._active))
        for position, dim_index in enumerate(self._active):
            lows[position], highs[position] = self._interval(
                position, region.lo[dim_index], region.hi[dim_index]
            )
        return self._box_mass(lows, highs)

    def total_mass(self) -> float:
        """Mass of the whole space (< 1: tails extend beyond it)."""
        return self.region_probability(self._space.full_region())

    @classmethod
    def anti_synchronized(
        cls,
        space: ParameterSpace,
        *,
        rho: float = -0.8,
        sigma_fraction: float = DEFAULT_SIGMA_FRACTION,
    ) -> "CorrelatedOccurrenceModel":
        """Uniform pairwise correlation ``rho`` across all dimensions.

        Negative ``rho`` models Example 1's regimes, where one group of
        selectivities rises as the other falls.  ``rho`` must keep the
        equicorrelation matrix PSD: ``rho ≥ −1/(d−1)`` for d dims.
        """
        d = sum(1 for dim in space.dimensions if dim.width > 0)
        if d > 1 and rho < -1.0 / (d - 1) - 1e-12:
            raise ValueError(
                f"equicorrelation rho={rho} is not PSD for {d} dimensions "
                f"(minimum is {-1.0 / (d - 1):.3f})"
            )
        corr = np.full((d, d), rho)
        np.fill_diagonal(corr, 1.0)
        return cls(space, correlation=corr, sigma_fraction=sigma_fraction)
