"""Physical plans: operator→machine assignments and Def. 3 robustness.

A physical plan partitions the query's operator set ``OP`` across the
cluster's nodes (Def. 3: per-node cost within resources, blocks
disjoint, union complete).  A node's operator set is a *configuration*
(§2.3); a configuration **supports** a logical plan when the worst-case
loads of its operators under that plan fit within the node's capacity,
and a physical plan supports a plan when *every* configuration does.

Support is computed against a :class:`PlanLoadTable` — per-plan
worst-case operator loads plus occurrence-probability weights derived
from a :class:`~repro.core.logical.RobustLogicalSolution` — and encoded
as bitmasks over the plan list, which makes OptPrune's Lemma 1 ("adding
a configuration never raises the score") literal bitwise-AND
monotonicity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.logical import RobustLogicalSolution
from repro.core.occurrence import NormalOccurrenceModel
from repro.query.plans import LogicalPlan
from repro.util.types import FloatArray
from repro.util.validation import ensure_non_empty, ensure_positive

__all__ = [
    "Cluster",
    "PlanLoadTable",
    "PhysicalPlan",
    "PhysicalPlanResult",
    "InfeasiblePlacementError",
]


class InfeasiblePlacementError(RuntimeError):
    """No physical plan can support even one robust logical plan."""


@dataclass(frozen=True)
class Cluster:
    """The compute cluster: one resource capacity per node (§2.1).

    The paper assumes a shared-nothing *homogeneous* cluster; the
    heterogeneous case is accepted for LLF/GreedyPhy but rejected by the
    partition-based searches (OptPrune, exhaustive), whose machine
    symmetry-breaking requires equal capacities.
    """

    capacities: tuple[float, ...]

    def __post_init__(self) -> None:
        ensure_non_empty(self.capacities, "capacities")
        for i, capacity in enumerate(self.capacities):
            ensure_positive(capacity, f"capacity of node {i}")

    @classmethod
    def homogeneous(cls, n_nodes: int, capacity: float) -> "Cluster":
        """A cluster of ``n_nodes`` identical machines."""
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        return cls((capacity,) * n_nodes)

    @property
    def n_nodes(self) -> int:
        """Number of machines ``N``."""
        return len(self.capacities)

    @property
    def is_homogeneous(self) -> bool:
        """True when all nodes share one capacity."""
        return len(set(self.capacities)) == 1

    @property
    def uniform_capacity(self) -> float:
        """The shared capacity; raises for heterogeneous clusters."""
        if not self.is_homogeneous:
            raise ValueError("cluster is heterogeneous; no uniform capacity")
        return self.capacities[0]

    @property
    def total_capacity(self) -> float:
        """Aggregate resources across all nodes."""
        return sum(self.capacities)


class PlanLoadTable:
    """Worst-case operator loads and weights per robust logical plan.

    Plans are kept in descending-weight order (deterministic tie-break
    on the plan ordering), which is both GreedyPhy's drop order and the
    bit layout of support masks: bit ``i`` of a mask refers to
    ``plans[i]``.
    """

    def __init__(
        self,
        plans: Sequence[LogicalPlan],
        loads: Mapping[LogicalPlan, Mapping[int, float]],
        weights: Mapping[LogicalPlan, float],
        *,
        typical_loads: Mapping[LogicalPlan, Mapping[int, float]] | None = None,
    ) -> None:
        ensure_non_empty(plans, "plans")
        ordered = sorted(plans, key=lambda p: (-weights[p], p.order))
        self._plans = tuple(ordered)
        self._weights = tuple(float(weights[p]) for p in self._plans)
        self._loads = [dict(loads[p]) for p in self._plans]
        op_sets = {frozenset(table.keys()) for table in self._loads}
        if len(op_sets) != 1:
            raise ValueError("all plans must cover the same operator set")
        self._operator_ids = tuple(sorted(next(iter(op_sets))))
        self._op_column = {op_id: j for j, op_id in enumerate(self._operator_ids)}
        # Dense (n_plans, n_ops) backing matrix: one row per plan, one
        # column per sorted operator id.  All mask/score/load queries
        # below are vectorized slices of this matrix.
        self._load_matrix = np.array(
            [[table[op_id] for op_id in self._operator_ids] for table in self._loads]
        )
        # Shared by reference through the load_matrix property; frozen
        # so consumers cannot corrupt the mask/score queries below.
        self._load_matrix.setflags(write=False)
        self._weight_vector = np.array(self._weights)
        if typical_loads is None:
            self._typical = None
            self._typical_matrix = None
        else:
            self._typical = [dict(typical_loads[p]) for p in self._plans]
            self._typical_matrix = np.array(
                [
                    [table[op_id] for op_id in self._operator_ids]
                    for table in self._typical
                ]
            )

    @classmethod
    def from_solution(
        cls,
        solution: RobustLogicalSolution,
        *,
        occurrence: NormalOccurrenceModel | None = None,
    ) -> "PlanLoadTable":
        """Derive loads (region-worst-case) and weights from a solution."""
        weights = solution.plan_weights(occurrence)
        loads = {
            plan: solution.worst_case_loads(plan) for plan in solution.plans
        }
        typical = {
            plan: solution.expected_loads(plan, occurrence)
            for plan in solution.plans
        }
        return cls(solution.plans, loads, weights, typical_loads=typical)

    @property
    def plans(self) -> tuple[LogicalPlan, ...]:
        """Plans in descending weight order (mask bit order)."""
        return self._plans

    @property
    def operator_ids(self) -> tuple[int, ...]:
        """All operator ids, sorted."""
        return self._operator_ids

    @property
    def n_plans(self) -> int:
        """Number of robust logical plans."""
        return len(self._plans)

    @property
    def full_mask(self) -> int:
        """Mask with every plan's bit set."""
        return (1 << self.n_plans) - 1

    def weight_of(self, plan: LogicalPlan) -> float:
        """Occurrence weight of ``plan``."""
        return self._weights[self._plans.index(plan)]

    @property
    def load_matrix(self) -> FloatArray:
        """Dense ``(n_plans, n_ops)`` worst-case load matrix.

        Row order is :attr:`plans`; column order :attr:`operator_ids`.
        Callers must treat the array as read-only.
        """
        return self._load_matrix

    def load(self, plan_index: int, op_id: int) -> float:
        """Worst-case load of ``op_id`` under plan ``plan_index``."""
        return self._loads[plan_index][op_id]

    def _columns(self, ops: Iterable[int]) -> list[int]:
        """Matrix column indices of an operator-id collection."""
        return [self._op_column[op_id] for op_id in ops]

    def _mask_rows(self, mask: int) -> list[int]:
        """Matrix row indices of the set bits of a plan mask."""
        return [i for i in range(self.n_plans) if mask >> i & 1]

    def config_load(self, plan_index: int, ops: Iterable[int]) -> float:
        """Total worst-case load of an operator set under one plan."""
        return float(self._load_matrix[plan_index, self._columns(ops)].sum())

    def support_mask(self, ops: Iterable[int], capacity: float) -> int:
        """Bitmask of plans a configuration supports on one node.

        Bit ``i`` is set when the configuration's worst-case load under
        ``plans[i]`` fits within ``capacity`` — one vectorized row-sum
        comparison over all plans at once.
        """
        totals = self._load_matrix[:, self._columns(ops)].sum(axis=1)
        fits = totals <= capacity * (1 + 1e-12)
        mask = 0
        for i in np.flatnonzero(fits):
            mask |= 1 << int(i)
        return mask

    def score(self, mask: int) -> float:
        """Total weight of the plans whose bits are set in ``mask``."""
        return float(self._weight_vector[self._mask_rows(mask)].sum())

    def plans_in_mask(self, mask: int) -> tuple[LogicalPlan, ...]:
        """The plan objects whose bits are set in ``mask``."""
        return tuple(
            self._plans[i] for i in range(self.n_plans) if mask >> i & 1
        )

    def mask_of(self, plans: Iterable[LogicalPlan]) -> int:
        """Mask with exactly the given plans' bits set."""
        index = {plan: i for i, plan in enumerate(self._plans)}
        mask = 0
        for plan in plans:
            mask |= 1 << index[plan]
        return mask

    def expected_loads(self, mask: int | None = None) -> dict[int, float]:
        """Weight-averaged *typical* per-operator load over a plan subset.

        The runtime-representative profile used for placement balancing
        (falls back to :meth:`max_loads` when the table was built
        without typical loads).  ``None`` means all plans.
        """
        if self._typical_matrix is None:
            return self.max_loads(mask)
        if mask is None:
            mask = self.full_mask
        indices = self._mask_rows(mask)
        if not indices:
            raise ValueError("expected_loads over an empty plan mask")
        weights = self._weight_vector[indices]
        rows = self._typical_matrix[indices]
        total_weight = float(weights.sum())
        if total_weight <= 0:
            averaged = rows.mean(axis=0)
        else:
            averaged = (weights @ rows) / total_weight
        return {
            op_id: float(averaged[j]) for j, op_id in enumerate(self._operator_ids)
        }

    def max_loads(self, mask: int | None = None) -> dict[int, float]:
        """Per-operator max load across the plans in ``mask``.

        This is GreedyPhy's ``lp_max`` (Algorithm 4 line 2): a synthetic
        plan whose operator costs are the maxima over the plan subset,
        so a placement feasible for ``lp_max`` supports every plan in
        the subset simultaneously.  ``None`` means all plans.
        """
        if mask is None:
            mask = self.full_mask
        indices = self._mask_rows(mask)
        if not indices:
            raise ValueError("max_loads over an empty plan mask")
        peaks = self._load_matrix[indices].max(axis=0)
        return {
            op_id: float(peaks[j]) for j, op_id in enumerate(self._operator_ids)
        }


@dataclass(frozen=True)
class PhysicalPlan:
    """A Def. 3 operator partition: one operator set per node.

    ``assignment[i]`` is the configuration placed on node ``i`` (may be
    empty — an idle machine).  Construction validates disjointness; use
    :meth:`covers` to check union-completeness against a query's
    operator set.
    """

    assignment: tuple[frozenset[int], ...]

    def __post_init__(self) -> None:
        ensure_non_empty(self.assignment, "assignment")
        seen: set[int] = set()
        for i, ops in enumerate(self.assignment):
            overlap = seen & ops
            if overlap:
                raise ValueError(
                    f"operators {sorted(overlap)} assigned to multiple nodes"
                )
            seen |= ops

    @property
    def n_nodes(self) -> int:
        """Number of node slots in the assignment."""
        return len(self.assignment)

    @property
    def nodes_used(self) -> int:
        """Number of nodes with at least one operator."""
        return sum(1 for ops in self.assignment if ops)

    @property
    def placed_operators(self) -> frozenset[int]:
        """All operators placed by this plan."""
        result: set[int] = set()
        for ops in self.assignment:
            result |= ops
        return frozenset(result)

    def covers(self, operator_ids: Iterable[int]) -> bool:
        """Def. 3 union condition: every operator is placed."""
        return self.placed_operators == frozenset(operator_ids)

    def node_of(self, op_id: int) -> int:
        """Node index hosting ``op_id``; raises ``KeyError`` if unplaced."""
        for node, ops in enumerate(self.assignment):
            if op_id in ops:
                return node
        raise KeyError(f"operator {op_id} is not placed by this physical plan")

    def support_mask(self, table: PlanLoadTable, cluster: Cluster) -> int:
        """Plans supported by this assignment on the given cluster.

        A plan is supported when every node's configuration fits that
        plan's worst-case loads within the node's capacity (bitwise AND
        over per-node support masks).
        """
        if self.n_nodes != cluster.n_nodes:
            raise ValueError(
                f"assignment has {self.n_nodes} nodes, cluster {cluster.n_nodes}"
            )
        mask = table.full_mask
        for ops, capacity in zip(self.assignment, cluster.capacities):
            if not ops:
                continue
            mask &= table.support_mask(ops, capacity)
            if mask == 0:
                break
        return mask

    def __repr__(self) -> str:
        parts = " | ".join(
            "{" + ",".join(f"op{i}" for i in sorted(ops)) + "}"
            for ops in self.assignment
        )
        return f"PhysicalPlan({parts})"


@dataclass(frozen=True)
class PhysicalPlanResult:
    """Outcome of one physical-plan generation run.

    ``score`` is the total occurrence weight of ``supported_plans``
    (the §5 objective); ``compile_seconds`` the wall-clock search time
    plotted in Figure 13.
    """

    algorithm: str
    physical_plan: PhysicalPlan | None
    supported_plans: tuple[LogicalPlan, ...]
    score: float
    compile_seconds: float
    nodes_explored: int = 0

    @property
    def feasible(self) -> bool:
        """True when a plan supporting at least one logical plan exists."""
        return self.physical_plan is not None and bool(self.supported_plans)
