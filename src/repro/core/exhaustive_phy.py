"""Exhaustive physical plan search — the §6.4 optimality baseline.

Enumerates every assignment of operators to machines.  Because the
cluster is homogeneous, assignments that differ only by machine
renaming are equivalent, so the enumeration walks set partitions of the
operator set into at most ``N`` blocks (restricted-growth coding) —
Bell-number many, versus the naive ``N^m``.  Unlike OptPrune it applies
no score bound, so its cost grows with the full partition count; that
contrast is exactly what Figure 13 plots.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.physical import (
    Cluster,
    PhysicalPlan,
    PhysicalPlanResult,
    PlanLoadTable,
)
from repro.util.timing import Stopwatch

__all__ = ["exhaustive_physical", "enumerate_partitions"]

#: Safety cap on partitions examined; Bell(12) ≈ 4.2M is already slow in
#: pure Python, and the benchmarks stay well below it.
DEFAULT_PARTITION_LIMIT = 5_000_000


def enumerate_partitions(
    n_items: int, max_blocks: int
) -> Iterator[list[list[int]]]:
    """Yield all set partitions of ``range(n_items)`` into ≤ ``max_blocks``.

    Standard restricted-growth enumeration: item ``i`` joins any
    existing block or opens a new one while capacity remains.  Each
    partition is emitted exactly once, blocks ordered by their smallest
    element.
    """
    if n_items == 0:
        yield []
        return
    blocks: list[list[int]] = []

    def place(item: int) -> Iterator[list[list[int]]]:
        if item == n_items:
            yield [list(block) for block in blocks]
            return
        for block in blocks:
            block.append(item)
            yield from place(item + 1)
            block.pop()
        if len(blocks) < max_blocks:
            blocks.append([item])
            yield from place(item + 1)
            blocks.pop()

    yield from place(0)


def exhaustive_physical(
    table: PlanLoadTable,
    cluster: Cluster,
    *,
    partition_limit: int = DEFAULT_PARTITION_LIMIT,
) -> PhysicalPlanResult:
    """Optimal physical plan by full set-partition enumeration.

    Scores every partition of the operators into at most ``N`` machine
    configurations and keeps the maximum-score one (ties: fewer
    machines, then first found).  Raises ``RuntimeError`` past
    ``partition_limit`` partitions rather than silently truncating the
    search — an exhaustive baseline must actually be exhaustive.
    """
    watch = Stopwatch()
    capacity = cluster.uniform_capacity
    ops = list(table.operator_ids)
    index_to_op = {i: op_id for i, op_id in enumerate(ops)}

    best_score = -1.0
    best_blocks: list[list[int]] | None = None
    best_mask = 0
    best_n_blocks = 0
    examined = 0

    for partition in enumerate_partitions(len(ops), cluster.n_nodes):
        examined += 1
        if examined > partition_limit:
            raise RuntimeError(
                f"exhaustive physical search exceeded {partition_limit} "
                f"partitions; reduce operators or machines"
            )
        mask = table.full_mask
        for block in partition:
            block_ops = [index_to_op[i] for i in block]
            mask &= table.support_mask(block_ops, capacity)
            if mask == 0:
                break
        score = table.score(mask)
        better = score > best_score or (
            score == best_score
            and best_blocks is not None
            and len(partition) < best_n_blocks
        )
        if better:
            best_score = score
            best_blocks = partition
            best_mask = mask
            best_n_blocks = len(partition)

    elapsed = watch.seconds
    if best_blocks is None or best_mask == 0:
        return PhysicalPlanResult(
            algorithm="ES-phy",
            physical_plan=None,
            supported_plans=(),
            score=0.0,
            compile_seconds=elapsed,
            nodes_explored=examined,
        )
    blocks = [
        frozenset(index_to_op[i] for i in block) for block in best_blocks
    ]
    blocks += [frozenset()] * (cluster.n_nodes - len(blocks))
    return PhysicalPlanResult(
        algorithm="ES-phy",
        physical_plan=PhysicalPlan(tuple(blocks)),
        supported_plans=table.plans_in_mask(best_mask),
        score=best_score,
        compile_seconds=elapsed,
        nodes_explored=examined,
    )
