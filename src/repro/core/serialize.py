"""JSON (de)serialization of compiled RLD solutions.

A compiled solution is expensive (optimizer calls, branch-and-bound)
and deployment wants to compute it once, ship it to the executor
nodes, and reload it at startup — so :func:`solution_to_dict` /
:func:`solution_from_dict` provide a stable, human-readable round-trip
of everything the runtime needs: the query, cluster, parameter space,
robust logical plans with weights/loads, and the physical placement.

The round-trip is *semantic*, not pickled state: derived caches (plan
cells, cost models) are rebuilt on load, so files stay small and the
format survives refactors.  ``save_solution``/``load_solution`` wrap
the dict form with JSON file IO.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.logical import PlanDiscovery, RobustLogicalSolution
from repro.core.occurrence import NormalOccurrenceModel
from repro.core.parameter_space import Dimension, ParameterSpace
from repro.core.partitioning import PartitioningResult
from repro.core.physical import (
    Cluster,
    PhysicalPlan,
    PhysicalPlanResult,
    PlanLoadTable,
)
from repro.core.rld import RLDSolution
from repro.query.model import JoinGraph, Operator, Query, StreamSchema
from repro.query.plans import LogicalPlan

__all__ = [
    "FORMAT_VERSION",
    "solution_to_dict",
    "solution_from_dict",
    "save_solution",
    "load_solution",
]

#: Bump on breaking format changes; loaders refuse mismatches loudly.
FORMAT_VERSION = 1


def _query_to_dict(query: Query) -> dict[str, Any]:
    edges = sorted(
        {
            tuple(sorted((op.op_id, neighbor)))
            for op in query.operators
            for neighbor in query.join_graph.neighbors(op.op_id)
        }
    )
    return {
        "name": query.name,
        "window_seconds": query.window_seconds,
        "operators": [
            {
                "op_id": op.op_id,
                "name": op.name,
                "cost_per_tuple": op.cost_per_tuple,
                "selectivity": op.selectivity,
                "state_size": op.state_size,
                "stream": op.stream,
            }
            for op in query.operators
        ],
        "streams": [
            {
                "name": s.name,
                "attributes": list(s.attributes),
                "base_rate": s.base_rate,
            }
            for s in query.streams
        ],
        "join_edges": [list(edge) for edge in edges],
    }


def _query_from_dict(data: dict[str, Any]) -> Query:
    operators = tuple(
        Operator(
            op_id=o["op_id"],
            name=o["name"],
            cost_per_tuple=o["cost_per_tuple"],
            selectivity=o["selectivity"],
            state_size=o["state_size"],
            stream=o["stream"],
        )
        for o in data["operators"]
    )
    streams = tuple(
        StreamSchema(s["name"], tuple(s["attributes"]), s["base_rate"])
        for s in data["streams"]
    )
    graph = JoinGraph(tuple(edge) for edge in data["join_edges"])
    return Query(
        name=data["name"],
        operators=operators,
        streams=streams,
        join_graph=graph,
        window_seconds=data["window_seconds"],
    )


def _space_to_dict(space: ParameterSpace) -> list[dict[str, Any]]:
    return [
        {"name": d.name, "lo": d.lo, "hi": d.hi, "steps": d.steps}
        for d in space.dimensions
    ]


def _space_from_dict(data: list[dict[str, Any]]) -> ParameterSpace:
    return ParameterSpace(
        [Dimension(d["name"], d["lo"], d["hi"], d["steps"]) for d in data]
    )


def solution_to_dict(solution: RLDSolution) -> dict[str, Any]:
    """Serialize a compiled solution to JSON-compatible primitives."""
    table = solution.load_table
    plans = table.plans
    physical = solution.physical
    return {
        "format_version": FORMAT_VERSION,
        "query": _query_to_dict(solution.query),
        "cluster": {"capacities": list(solution.cluster.capacities)},
        "space": _space_to_dict(solution.space),
        "plans": [
            {
                "order": list(plan.order),
                "weight": table.weight_of(plan),
                "worst_loads": {
                    str(op_id): table.load(i, op_id)
                    for op_id in table.operator_ids
                },
                "typical_loads": {
                    str(op_id): load
                    for op_id, load in table.expected_loads(1 << i).items()
                },
            }
            for i, plan in enumerate(plans)
        ],
        "discoveries": [
            {"order": list(d.plan.order), "at_call": d.at_call}
            for d in solution.logical.discoveries
        ],
        "partitioning": {
            "optimizer_calls": solution.partitioning.optimizer_calls,
            "regions_processed": solution.partitioning.regions_processed,
            "terminated_early": solution.partitioning.terminated_early,
            "budget_exhausted": solution.partitioning.budget_exhausted,
            "unresolved_regions": solution.partitioning.unresolved_regions,
            "weight_computations": solution.partitioning.weight_computations,
            "weight_skips": solution.partitioning.weight_skips,
        },
        "physical": {
            "algorithm": physical.algorithm,
            "assignment": [sorted(ops) for ops in physical.physical_plan.assignment]
            if physical.physical_plan is not None
            else None,
            "supported_orders": [
                list(plan.order) for plan in physical.supported_plans
            ],
            "score": physical.score,
            "compile_seconds": physical.compile_seconds,
            "nodes_explored": physical.nodes_explored,
        },
    }


def solution_from_dict(data: dict[str, Any]) -> RLDSolution:
    """Rebuild a compiled solution from its dict form."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported solution format version {version!r} "
            f"(this library reads version {FORMAT_VERSION})"
        )
    query = _query_from_dict(data["query"])
    cluster = Cluster(tuple(data["cluster"]["capacities"]))
    space = _space_from_dict(data["space"])

    plans = [LogicalPlan(tuple(entry["order"])) for entry in data["plans"]]
    weights = {
        plan: entry["weight"] for plan, entry in zip(plans, data["plans"])
    }
    worst = {
        plan: {int(k): v for k, v in entry["worst_loads"].items()}
        for plan, entry in zip(plans, data["plans"])
    }
    typical = {
        plan: {int(k): v for k, v in entry["typical_loads"].items()}
        for plan, entry in zip(plans, data["plans"])
    }
    table = PlanLoadTable(plans, worst, weights, typical_loads=typical)

    discoveries = [
        PlanDiscovery(LogicalPlan(tuple(d["order"])), d["at_call"])
        for d in data["discoveries"]
    ]
    logical = RobustLogicalSolution(
        query, space, plans, discoveries=discoveries
    )

    part = data["partitioning"]
    partitioning = PartitioningResult(
        solution=logical,
        optimizer_calls=part["optimizer_calls"],
        regions_processed=part["regions_processed"],
        terminated_early=part["terminated_early"],
        budget_exhausted=part["budget_exhausted"],
        unresolved_regions=part["unresolved_regions"],
        weight_computations=part["weight_computations"],
        weight_skips=part["weight_skips"],
    )

    phys = data["physical"]
    placement = (
        PhysicalPlan(tuple(frozenset(ops) for ops in phys["assignment"]))
        if phys["assignment"] is not None
        else None
    )
    physical = PhysicalPlanResult(
        algorithm=phys["algorithm"],
        physical_plan=placement,
        supported_plans=tuple(
            LogicalPlan(tuple(order)) for order in phys["supported_orders"]
        ),
        score=phys["score"],
        compile_seconds=phys["compile_seconds"],
        nodes_explored=phys["nodes_explored"],
    )

    return RLDSolution(
        query=query,
        cluster=cluster,
        space=space,
        logical=logical,
        partitioning=partitioning,
        load_table=table,
        physical=physical,
        occurrence=NormalOccurrenceModel(space),
    )


def save_solution(solution: RLDSolution, path: str | Path) -> None:
    """Write a compiled solution to a JSON file."""
    payload = solution_to_dict(solution)
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_solution(path: str | Path) -> RLDSolution:
    """Read a compiled solution back from a JSON file."""
    return solution_from_dict(json.loads(Path(path).read_text()))
