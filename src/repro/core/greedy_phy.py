"""LLF placement and the GreedyPhy algorithm (§5.2, Algorithm 4).

``largest_load_first`` is the paper's LLF — the Longest Processing Time
makespan heuristic: operators sorted by load descending, each assigned
to the currently least-loaded machine.  It runs in O(m log m) and is
the feasibility probe inside GreedyPhy.

:func:`greedy_phy` builds the synthetic max-load plan ``lp_max`` over
the current logical solution, tries LLF, and on failure drops the
least-weighted logical plan (ties broken toward the plan contributing
the most max-load operators, the paper's ``getMinWeightPlanWithMaxOp``)
until LLF succeeds or the solution is empty.  Polynomial overall —
at most ``|LP|`` LLF rounds.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.physical import (
    Cluster,
    PhysicalPlan,
    PhysicalPlanResult,
    PlanLoadTable,
)
from repro.util.timing import Stopwatch

__all__ = ["largest_load_first", "greedy_phy"]


def largest_load_first(
    loads: Mapping[int, float], cluster: Cluster
) -> PhysicalPlan | None:
    """LLF/LPT placement of operator loads onto cluster nodes.

    Returns a :class:`PhysicalPlan` when every node ends within its
    capacity, else ``None``.  Heterogeneous clusters are handled by
    assigning each operator to the node with the most *remaining*
    capacity.  Deterministic: load ties break on operator id, node ties
    on node index.
    """
    ordered = sorted(loads.items(), key=lambda item: (-item[1], item[0]))
    node_loads = [0.0] * cluster.n_nodes
    assignment: list[set[int]] = [set() for _ in range(cluster.n_nodes)]
    for op_id, load in ordered:
        node = max(
            range(cluster.n_nodes),
            key=lambda i: (cluster.capacities[i] - node_loads[i], -i),
        )
        assignment[node].add(op_id)
        node_loads[node] += load
    for i in range(cluster.n_nodes):
        if node_loads[i] > cluster.capacities[i] * (1 + 1e-12):
            return None
    return PhysicalPlan(tuple(frozenset(ops) for ops in assignment))


def _min_weight_plan_index(
    table: PlanLoadTable, mask: int, *, policy: str = "min-weight-max-ops"
) -> int:
    """Index of the plan to drop under the given policy.

    ``"min-weight-max-ops"`` is Algorithm 4's ``getMinWeightPlanWithMaxOp``:
    among the still-kept plans pick the minimum-weight one; on weight
    ties prefer the plan that *dominates* the max-load table on the most
    operators (dropping it relieves the most load), then the
    lexicographically larger plan.  ``"min-weight"`` ignores load
    domination entirely — the naive variant the ablation bench contrasts.
    """
    max_loads = table.max_loads(mask)
    best_index = -1
    best_key: tuple[float, int, tuple[int, ...]] | None = None
    for i in range(table.n_plans):
        if not mask >> i & 1:
            continue
        weight = table.score(1 << i)
        if policy == "min-weight-max-ops":
            dominated = sum(
                1
                for op_id, peak in max_loads.items()
                if table.load(i, op_id) >= peak * (1 - 1e-12)
            )
        else:
            dominated = 0
        key = (weight, -dominated, tuple(-o for o in table.plans[i].order))
        if best_key is None or key < best_key:
            best_key = key
            best_index = i
    return best_index


def greedy_phy(
    table: PlanLoadTable,
    cluster: Cluster,
    *,
    drop_policy: str = "min-weight-max-ops",
) -> PhysicalPlanResult:
    """GreedyPhy (Algorithm 4): max-weight supported subset via LLF.

    Iteratively: build ``lp_max`` over the kept plans, place it with
    LLF; on failure drop a plan chosen by ``drop_policy``
    (``"min-weight-max-ops"``, the paper's heuristic, or the naive
    ``"min-weight"``) and retry.  Returns an infeasible result
    (``physical_plan=None``) when no single plan can be supported by
    the cluster.
    """
    if drop_policy not in ("min-weight-max-ops", "min-weight"):
        raise ValueError(
            f"unknown drop_policy {drop_policy!r}; use "
            "'min-weight-max-ops' or 'min-weight'"
        )
    watch = Stopwatch()
    mask = table.full_mask
    rounds = 0
    while mask:
        rounds += 1
        loads = table.max_loads(mask)
        plan = largest_load_first(loads, cluster)
        if plan is not None:
            # LLF placed lp_max, so every kept plan fits on every node;
            # report the actual support mask (it may even exceed ``mask``
            # if a dropped plan happens to fit the final layout too).
            supported = plan.support_mask(table, cluster)
            return PhysicalPlanResult(
                algorithm="GreedyPhy",
                physical_plan=plan,
                supported_plans=table.plans_in_mask(supported),
                score=table.score(supported),
                compile_seconds=watch.seconds,
                nodes_explored=rounds,
            )
        drop = _min_weight_plan_index(table, mask, policy=drop_policy)
        mask &= ~(1 << drop)
    return PhysicalPlanResult(
        algorithm="GreedyPhy",
        physical_plan=None,
        supported_plans=(),
        score=0.0,
        compile_seconds=watch.seconds,
        nodes_explored=rounds,
    )
