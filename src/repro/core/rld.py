"""End-to-end Robust Load Distribution optimizer (§3).

:class:`RLDOptimizer` is the two-step compile-time pipeline of the
paper's architecture (Figure 5):

1. **Robust logical solution** — build the parameter space from the
   query's statistic estimates and uncertainty levels (Algorithm 1),
   then run ERP (Algorithm 3) to find the covering plan set.
2. **Robust physical plan** — weigh the plans by occurrence
   probability, derive worst-case operator loads, and map everything to
   a single operator→machine assignment with OptPrune (or GreedyPhy).

The product, :class:`RLDSolution`, is everything the runtime needs: the
plan set for the online classifier, and the fixed physical placement
that never migrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType

from repro.core.exhaustive_phy import exhaustive_physical
from repro.core.greedy_phy import greedy_phy
from repro.core.logical import RobustLogicalSolution
from repro.core.occurrence import NormalOccurrenceModel
from repro.core.optprune import opt_prune
from repro.core.parallel import ParallelConfig, ParallelContext
from repro.core.parameter_space import ParameterSpace
from repro.core.partitioning import (
    EarlyTerminatedRobustPartitioning,
    PartitioningResult,
)
from repro.core.physical import Cluster, PhysicalPlanResult, PlanLoadTable
from repro.query.model import Query
from repro.query.optimizer import PointOptimizer, make_optimizer
from repro.query.statistics import StatisticsEstimate
from repro.util.timing import StageTimer

__all__ = ["RLDConfig", "RLDSolution", "RLDOptimizer"]

#: Physical algorithms selectable by name in :class:`RLDConfig`.
#: A MappingProxyType so the registry is read-only process-wide state.
_PHYSICAL_ALGORITHMS = MappingProxyType(
    {
        "optprune": opt_prune,
        "greedy": greedy_phy,
        "exhaustive": exhaustive_physical,
    }
)


@dataclass(frozen=True)
class RLDConfig:
    """Tunables of the RLD compile-time pipeline.

    ``epsilon`` is Def. 1's robustness threshold; ``failure_probability``
    and ``area_bound`` parameterize ERP's Theorem 1 stopping rule;
    ``points_per_level`` sets grid resolution per uncertainty level;
    ``sigma_fraction`` shapes the §5.2 occurrence normal;
    ``physical_algorithm`` picks the §5 mapper; ``parallel`` configures
    the multiprocess compile pipeline (``jobs=1`` is the serial path;
    any jobs count yields bitwise-identical solutions).
    """

    epsilon: float = 0.2
    failure_probability: float = 0.25
    area_bound: float = 0.3
    points_per_level: int = 2
    sigma_fraction: float = 0.5
    physical_algorithm: str = "optprune"
    parallel: ParallelConfig = field(default_factory=ParallelConfig)

    def __post_init__(self) -> None:
        if self.physical_algorithm not in _PHYSICAL_ALGORITHMS:
            raise ValueError(
                f"unknown physical_algorithm {self.physical_algorithm!r}; "
                f"choose from {sorted(_PHYSICAL_ALGORITHMS)}"
            )


@dataclass(frozen=True)
class RLDSolution:
    """The complete compile-time output of RLD.

    Bundles the parameter space, the robust logical solution (with its
    partitioning diagnostics), the plan load/weight table, and the
    robust physical plan.  This is the single object the runtime
    executor consumes.
    """

    query: Query
    cluster: Cluster
    space: ParameterSpace
    logical: RobustLogicalSolution
    partitioning: PartitioningResult
    load_table: PlanLoadTable
    physical: PhysicalPlanResult
    occurrence: NormalOccurrenceModel = field(repr=False, compare=False, default=None)
    #: Wall-clock seconds per compile stage ("partitioning",
    #: "robustness", "physical"); empty when compiled by an older
    #: pipeline or reloaded from disk.
    stage_seconds: dict = field(repr=False, compare=False, default_factory=dict)

    @property
    def feasible(self) -> bool:
        """True when the physical plan supports ≥ 1 robust logical plan."""
        return self.physical.feasible

    @property
    def supported_plans(self) -> tuple:
        """Logical plans the physical plan supports at runtime."""
        return self.physical.supported_plans

    def summary(self) -> str:
        """Human-readable multi-line description of the solution."""
        lines = [
            f"RLD solution for query {self.query.name!r}",
            f"  parameter space : {self.space!r}",
            f"  logical plans   : {len(self.logical)} "
            f"({self.partitioning.optimizer_calls} optimizer calls, "
            f"early-stop={self.partitioning.terminated_early})",
        ]
        for plan in self.logical.plans:
            marker = "*" if plan in set(self.supported_plans) else " "
            lines.append(f"   {marker} {plan.label}")
        pp = self.physical.physical_plan
        lines.append(
            f"  physical plan   : {pp!r} "
            f"(score={self.physical.score:.4f}, "
            f"algorithm={self.physical.algorithm})"
        )
        return "\n".join(lines)


class RLDOptimizer:
    """Two-step robust plan optimizer (Figure 5's "Robust Plan Optimizer").

    Parameters
    ----------
    query:
        The continuous query to optimize.
    cluster:
        Machine resources available to the physical step.
    config:
        Pipeline tunables; defaults follow the paper's common settings
        (ε = 0.2).
    point_optimizer:
        Optional black-box optimizer override (defaults to the exact
        optimizer appropriate for the query's join graph).
    """

    def __init__(
        self,
        query: Query,
        cluster: Cluster,
        *,
        config: RLDConfig | None = None,
        point_optimizer: PointOptimizer | None = None,
    ) -> None:
        self._query = query
        self._cluster = cluster
        self._config = config or RLDConfig()
        self._point_optimizer = point_optimizer or make_optimizer(query)

    @property
    def config(self) -> RLDConfig:
        """The active pipeline configuration."""
        return self._config

    def solve(self, estimate: StatisticsEstimate | None = None) -> RLDSolution:
        """Run both steps and return the full :class:`RLDSolution`.

        ``estimate`` defaults to the query's built-in statistics with
        their declared uncertainty levels; it must mark at least one
        parameter uncertain, otherwise there is no space to be robust
        over.
        """
        config = self._config
        estimate = estimate or self._query.default_estimates()
        space = ParameterSpace.from_estimates(
            estimate, points_per_level=config.points_per_level
        )
        timer = StageTimer()
        context = ParallelContext(config.parallel)
        try:
            with timer.stage("partitioning"):
                partitioner = EarlyTerminatedRobustPartitioning(
                    self._query,
                    space,
                    optimizer=self._point_optimizer,
                    epsilon=config.epsilon,
                    failure_probability=config.failure_probability,
                    area_bound=config.area_bound,
                    parallel=context,
                )
                partitioning = partitioner.run()
                logical = partitioning.solution

            # "Robustness" covers everything between partitioning and the
            # physical search: cost-tensor-backed plan weights, worst-case
            # and typical loads (the Figure 13 middle band).
            with timer.stage("robustness"):
                occurrence = NormalOccurrenceModel(
                    space, sigma_fraction=config.sigma_fraction
                )
                load_table = PlanLoadTable.from_solution(
                    logical, occurrence=occurrence
                )
            with timer.stage("physical"):
                if config.physical_algorithm == "optprune" and context.enabled:
                    physical = opt_prune(
                        load_table, self._cluster, parallel=context
                    )
                else:
                    physical = _PHYSICAL_ALGORITHMS[config.physical_algorithm](
                        load_table, self._cluster
                    )
        finally:
            context.close()
        # Worker busy seconds are concurrent with the wall-clock stages
        # above; they are reported as separate `workers:` entries, not
        # added into any stage's wall time.
        for stage, seconds in context.worker_seconds.items():
            timer.add(f"workers:{stage}", seconds)
        return RLDSolution(
            query=self._query,
            cluster=self._cluster,
            space=space,
            logical=logical,
            partitioning=partitioning,
            load_table=load_table,
            physical=physical,
            occurrence=occurrence,
            stage_seconds=timer.seconds,
        )
