"""Probability-of-occurrence model over the parameter space (§5.2).

The physical plan generator weighs each robust logical plan by how
likely the runtime statistics are to fall inside its robust region.
Following the paper (Examples 4 and 5) each dimension is an independent
normal: the mean is the point estimate (the centre of the dimension)
and the standard deviation reflects the uncertainty level.  The mass of
a grid cell is the product over dimensions of the normal probability of
the cell's value interval — ``Pr(area) = Pr_x(area) · Pr_y(area)``.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.core.parameter_space import GridIndex, ParameterSpace, Region

__all__ = ["NormalOccurrenceModel"]

#: Fraction of a dimension's half-width used as one standard deviation.
#: 0.5 puts the space edge at 2σ, leaving ~4.6% of mass outside the
#: modelled space (consistent with "fluctuations are known a priori").
DEFAULT_SIGMA_FRACTION = 0.5


def _standard_normal_cdf(z: float) -> float:
    """Φ(z) via the error function (no SciPy dependency)."""
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


class NormalOccurrenceModel:
    """Independent per-dimension normal occurrence probabilities.

    Parameters
    ----------
    space:
        The parameter space whose grid cells are weighted.
    means:
        Optional per-dimension means (parameter name → value); defaults
        to each dimension's midpoint, i.e. the original point estimate.
    sigma_fraction:
        Standard deviation as a fraction of the dimension half-width.
    """

    def __init__(
        self,
        space: ParameterSpace,
        *,
        means: Mapping[str, float] | None = None,
        sigma_fraction: float = DEFAULT_SIGMA_FRACTION,
    ) -> None:
        if sigma_fraction <= 0:
            raise ValueError(f"sigma_fraction must be > 0, got {sigma_fraction}")
        self._space = space
        self._means: list[float] = []
        self._sigmas: list[float] = []
        for dim in space.dimensions:
            mean = float(means[dim.name]) if means and dim.name in means else (
                0.5 * (dim.lo + dim.hi)
            )
            half_width = 0.5 * dim.width
            if half_width <= 0.0:
                # Pinned dimension: all mass on its single value.
                sigma = 0.0
            else:
                sigma = sigma_fraction * half_width
            self._means.append(mean)
            self._sigmas.append(sigma)

    @property
    def space(self) -> ParameterSpace:
        """The parameter space this model covers."""
        return self._space

    def _cell_interval(self, dim: int, index: int) -> tuple[float, float]:
        """Value interval that grid index ``index`` represents on ``dim``.

        Each grid point owns the half-open strip of values nearer to it
        than to its neighbours; edge cells extend half a cell outward so
        the intervals tile the dimension (plus a half-cell margin).
        """
        dimension = self._space.dimensions[dim]
        value = dimension.value(index)
        half = 0.5 * dimension.cell_width
        return value - half, value + half

    def _dim_probability(self, dim: int, lo_index: int, hi_index: int) -> float:
        """Normal mass of grid indices ``[lo_index..hi_index]`` on ``dim``."""
        sigma = self._sigmas[dim]
        if sigma <= 0.0:
            return 1.0
        mean = self._means[dim]
        lo_value, _ = self._cell_interval(dim, lo_index)
        _, hi_value = self._cell_interval(dim, hi_index)
        return _standard_normal_cdf((hi_value - mean) / sigma) - _standard_normal_cdf(
            (lo_value - mean) / sigma
        )

    def cell_probability(self, index: GridIndex) -> float:
        """Probability mass of the single grid cell at ``index``."""
        mass = 1.0
        for dim, i in enumerate(index):
            mass *= self._dim_probability(dim, i, i)
        return mass

    def region_probability(self, region: Region) -> float:
        """Probability mass of an axis-aligned region (product form).

        Exact for boxes thanks to dimension independence — no need to
        sum over individual cells.
        """
        if region.space is not self._space and region.space.shape != self._space.shape:
            raise ValueError("region belongs to a different parameter space")
        mass = 1.0
        for dim, (a, b) in enumerate(zip(region.lo, region.hi)):
            mass *= self._dim_probability(dim, a, b)
        return mass

    def total_mass(self) -> float:
        """Mass of the whole space (< 1: tails extend beyond the space)."""
        return self.region_probability(self._space.full_region())
