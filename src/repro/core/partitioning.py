"""Parameter-space partitioning algorithms (§4.3, Algorithms 2–3).

Four ways to find a robust logical solution, spanning the paper's §6.3
comparison:

* :class:`ExhaustiveSearch` (**ES**) — one optimizer call per grid
  point; the quality baseline and by far the most expensive.
* :class:`RandomSearch` (**RS**) — optimizer calls at uniformly random
  grid points until no new plan appears for a patience window; "our
  partitioning technique assigning equal weights to all points".
* :class:`WeightedRobustPartitioning` (**WRP**, Algorithm 2) —
  recursively split regions at the maximum-weight point (§4.2 weights)
  until every region has a verified ε-robust plan.
* :class:`EarlyTerminatedRobustPartitioning` (**ERP**, Algorithm 3) —
  WRP plus the aging-counter stopping rule of Theorem 1: quit once
  ``age_threshold = (1 + ε_prob^{-1/2}) / δ`` consecutive optimizer
  answers yield no new plan; missed plans then occupy at most a
  ``δ``-fraction of the space with probability ≥ 1 − ε_prob, and any
  plan of area ≥ γδ is missed with probability ≤ e^{−γ(1+ε_prob^{-1/2})}
  (Theorem 2).

All algorithms accept an optional ``max_calls`` budget (the x-axis of
Figure 11) and report a discovery log of (calls-so-far, plan) pairs.
"""

from __future__ import annotations

import heapq
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.logical import PlanDiscovery, RobustLogicalSolution
from repro.core.parallel import CornerPrefetcher, ParallelContext, SpeculativeOptimizer
from repro.core.parameter_space import ParameterSpace, Region
from repro.core.robustness import RobustnessChecker
from repro.core.weights import RegionWeights, WeightAssigner
from repro.query.cost import PlanCostModel
from repro.query.model import Query
from repro.query.optimizer import PointOptimizer, make_optimizer
from repro.query.plans import LogicalPlan
from repro.util.rng import derive_rng

__all__ = [
    "PartitioningResult",
    "SpacePartitioner",
    "ExhaustiveSearch",
    "RandomSearch",
    "WeightedRobustPartitioning",
    "EarlyTerminatedRobustPartitioning",
    "aging_threshold",
]


def aging_threshold(failure_probability: float, area_bound: float) -> int:
    """Theorem 1's stopping threshold ``c0 = (1 + ε^{-1/2}) / δ``.

    ``failure_probability`` is the ε of the theorem (probability the
    guarantee fails) and ``area_bound`` the δ bound on total uncovered
    area.  Rounded up so the probabilistic guarantee is conservative.
    """
    if not 0 < failure_probability < 1:
        raise ValueError(
            f"failure_probability must be in (0, 1), got {failure_probability}"
        )
    if not 0 < area_bound <= 1:
        raise ValueError(f"area_bound must be in (0, 1], got {area_bound}")
    return math.ceil((1.0 + failure_probability**-0.5) / area_bound)


@dataclass(frozen=True)
class PartitioningResult:
    """Outcome of one partitioning run.

    ``optimizer_calls`` counts only calls made by this run (the paper's
    compile-time expense unit).  ``unresolved_regions`` is how many
    regions were left unverified when ERP's aging counter (or a call
    budget) fired; each is still assigned its best-known plan.
    """

    solution: RobustLogicalSolution
    optimizer_calls: int
    regions_processed: int
    terminated_early: bool
    budget_exhausted: bool
    unresolved_regions: int
    weight_computations: int = 0
    weight_skips: int = 0

    @property
    def plans_found(self) -> int:
        """Number of distinct robust plans in the solution."""
        return len(self.solution)


class SpacePartitioner(ABC):
    """Shared scaffolding: call accounting, discovery log, budgets."""

    def __init__(
        self,
        query: Query,
        space: ParameterSpace,
        *,
        optimizer: PointOptimizer | None = None,
        epsilon: float = 0.2,
        max_calls: int | None = None,
    ) -> None:
        if max_calls is not None and max_calls < 1:
            raise ValueError(f"max_calls must be >= 1, got {max_calls}")
        self._query = query
        self._space = space
        self._optimizer = optimizer or make_optimizer(query)
        self._epsilon = epsilon
        self._max_calls = max_calls
        self._cost_model = PlanCostModel(query)

    @property
    def epsilon(self) -> float:
        """Robustness threshold ε of Def. 1."""
        return self._epsilon

    @property
    def optimizer(self) -> PointOptimizer:
        """The black-box optimizer being charged for calls."""
        return self._optimizer

    def _budget_left(self, start_calls: int) -> bool:
        if self._max_calls is None:
            return True
        return self._optimizer.call_count - start_calls < self._max_calls

    @abstractmethod
    def run(self) -> PartitioningResult:
        """Execute the search and return its result."""


class ExhaustiveSearch(SpacePartitioner):
    """ES: optimize at every grid point (§6.3 baseline).

    Finds every optimal plan in the discretized space, hence full
    coverage — at one optimizer call per grid point.
    """

    def run(self) -> PartitioningResult:
        start = self._optimizer.call_count
        plans: list[LogicalPlan] = []
        seen: set[LogicalPlan] = set()
        discoveries: list[PlanDiscovery] = []
        processed = 0
        exhausted = False
        for index in self._space.grid_indices():
            if not self._budget_left(start):
                exhausted = True
                break
            plan = self._optimizer.optimize(self._space.point_at(index))
            processed += 1
            if plan not in seen:
                seen.add(plan)
                plans.append(plan)
                discoveries.append(
                    PlanDiscovery(plan, self._optimizer.call_count - start)
                )
        solution = RobustLogicalSolution(
            self._query, self._space, plans, discoveries=discoveries
        )
        return PartitioningResult(
            solution=solution,
            optimizer_calls=self._optimizer.call_count - start,
            regions_processed=processed,
            terminated_early=False,
            budget_exhausted=exhausted,
            unresolved_regions=0,
        )


class RandomSearch(SpacePartitioner):
    """RS: uniformly random probe points with an aging stop (§6.2).

    Equivalent to assigning equal weights to all points: it has no idea
    where undiscovered plans live, so it wastes calls re-finding known
    plans — the behaviour Figures 10–11 quantify.
    """

    def __init__(
        self,
        query: Query,
        space: ParameterSpace,
        *,
        optimizer: PointOptimizer | None = None,
        epsilon: float = 0.2,
        max_calls: int | None = None,
        patience: int | None = None,
        failure_probability: float = 0.25,
        area_bound: float = 0.3,
        seed: int | np.random.Generator | None = 7,
    ) -> None:
        super().__init__(
            query, space, optimizer=optimizer, epsilon=epsilon, max_calls=max_calls
        )
        self._patience = patience or aging_threshold(failure_probability, area_bound)
        self._rng = derive_rng(seed)

    def _random_indices(self) -> Iterator[tuple[int, ...]]:
        shape = self._space.shape
        while True:
            yield tuple(int(self._rng.integers(0, s)) for s in shape)

    def run(self) -> PartitioningResult:
        start = self._optimizer.call_count
        plans: list[LogicalPlan] = []
        seen: set[LogicalPlan] = set()
        discoveries: list[PlanDiscovery] = []
        misses = 0
        processed = 0
        exhausted = False
        for index in self._random_indices():
            if misses >= self._patience:
                break
            if not self._budget_left(start):
                exhausted = True
                break
            plan = self._optimizer.optimize(self._space.point_at(index))
            processed += 1
            if plan in seen:
                misses += 1
                continue
            seen.add(plan)
            plans.append(plan)
            discoveries.append(PlanDiscovery(plan, self._optimizer.call_count - start))
            misses = 0
        solution = RobustLogicalSolution(
            self._query, self._space, plans, discoveries=discoveries
        )
        return PartitioningResult(
            solution=solution,
            optimizer_calls=self._optimizer.call_count - start,
            regions_processed=processed,
            terminated_early=not exhausted,
            budget_exhausted=exhausted,
            unresolved_regions=0,
        )


@dataclass(frozen=True)
class _QueueEntry:
    """A pending region with weight/prediction context from its parent."""

    region: Region
    inherited: RegionWeights | None
    predicted_lo: LogicalPlan | None
    predicted_hi: LogicalPlan | None


class WeightedRobustPartitioning(SpacePartitioner):
    """WRP (Algorithm 2): weight-driven recursive partitioning.

    Processes regions largest-first.  Each region costs at most two
    optimizer calls (its corners, shared corners cached); robust
    regions are recorded, non-robust regions split at their maximum
    §4.2-weight point.  Weight arrays are inherited by children when
    the parent's corner-plan predictions were confirmed (the §4.2
    re-assignment skip).
    """

    #: Set False to disable the aging counter (plain WRP).
    early_termination = False

    def __init__(
        self,
        query: Query,
        space: ParameterSpace,
        *,
        optimizer: PointOptimizer | None = None,
        epsilon: float = 0.2,
        max_calls: int | None = None,
        failure_probability: float = 0.25,
        area_bound: float = 0.3,
        use_cost_weights: bool = True,
        parallel: ParallelContext | None = None,
    ) -> None:
        super().__init__(
            query, space, optimizer=optimizer, epsilon=epsilon, max_calls=max_calls
        )
        self._age_threshold = aging_threshold(failure_probability, area_bound)
        self._use_cost_weights = use_cost_weights
        # Parallel mode only speculates: workers pre-solve corner points
        # and the SpeculativeOptimizer wrapper replays them with serial
        # call accounting, so results are bitwise-identical to jobs=1.
        self._parallel = parallel if parallel is not None and parallel.enabled else None
        if self._parallel is not None:
            self._optimizer = SpeculativeOptimizer(self._optimizer)

    def run(self) -> PartitioningResult:
        start = self._optimizer.call_count
        checker = RobustnessChecker(self._optimizer, self._epsilon)
        assigner = WeightAssigner(self._space, self._cost_model)
        prefetch: CornerPrefetcher | None = None
        if self._parallel is not None and isinstance(
            self._optimizer, SpeculativeOptimizer
        ):
            prefetch = CornerPrefetcher(self._parallel, self._space, self._optimizer)

        plans: list[LogicalPlan] = []
        seen: set[LogicalPlan] = set()
        discoveries: list[PlanDiscovery] = []
        verified: dict[LogicalPlan, list[Region]] = {}
        misses = 0
        processed = 0
        stopped_early = False
        exhausted = False

        def note_plan(plan: LogicalPlan) -> bool:
            """Record a plan sighting; True when it is new to the set."""
            if plan in seen:
                return False
            seen.add(plan)
            plans.append(plan)
            discoveries.append(PlanDiscovery(plan, self._optimizer.call_count - start))
            return True

        # Largest regions first; sequence number breaks ties deterministically.
        queue: list[tuple[int, int, _QueueEntry]] = []
        sequence = 0

        def push(entry: _QueueEntry) -> None:
            nonlocal sequence
            heapq.heappush(queue, (-entry.region.n_points, sequence, entry))
            sequence += 1

        push(_QueueEntry(self._space.full_region(), None, None, None))

        while queue:
            if self.early_termination and misses >= self._age_threshold:
                stopped_early = True
                break
            if not self._budget_left(start):
                exhausted = True
                break
            _, _, entry = heapq.heappop(queue)
            region = entry.region
            if prefetch is not None:
                # Speculative wave: pre-solve every unknown corner of this
                # region and of the next-to-pop queued regions in one pool
                # map.  The store only short-circuits `_find_best`, never
                # the call charging, so budgets and the aging counter are
                # exact.
                upcoming = heapq.nsmallest(prefetch.wave_regions, queue)
                prefetch.ensure(
                    region, (e.region for _, _, e in upcoming), checker
                )
            check = checker.check_region(region)
            processed += 1

            found_new = note_plan(check.plan)
            if check.opt_hi != check.plan:
                found_new = note_plan(check.opt_hi) or found_new
            if found_new:
                misses = 0
            else:
                misses += 1

            if check.robust or not region.can_split():
                verified.setdefault(check.plan, []).append(region)
                continue

            prediction_confirmed = (
                entry.inherited is not None
                and entry.predicted_lo == check.plan
                and entry.predicted_hi == check.opt_hi
            )
            if prediction_confirmed:
                assigner.record_skip()
                weights = entry.inherited.slice_to(region)
            elif self._use_cost_weights:
                weights = assigner.assign(region, check.plan, check.opt_hi)
            else:
                weights = assigner.uniform(region)

            split_point = weights.best_partition_point()
            if split_point is None:
                verified.setdefault(check.plan, []).append(region)
                continue
            for sub in region.split_at(split_point):
                push(_QueueEntry(sub, weights, check.plan, check.opt_hi))

        # Drain remaining regions without further optimizer calls: assign
        # each its best prediction (parent's corner plan) as a fallback.
        unresolved = 0
        while queue:
            _, _, entry = heapq.heappop(queue)
            unresolved += 1
            fallback = entry.predicted_lo or plans[0]
            verified.setdefault(fallback, []).append(entry.region)

        solution = RobustLogicalSolution(
            self._query,
            self._space,
            plans,
            verified_regions=verified,
            discoveries=discoveries,
        )
        return PartitioningResult(
            solution=solution,
            optimizer_calls=self._optimizer.call_count - start,
            regions_processed=processed,
            terminated_early=stopped_early,
            budget_exhausted=exhausted,
            unresolved_regions=unresolved,
            weight_computations=assigner.computations,
            weight_skips=assigner.skips,
        )


class EarlyTerminatedRobustPartitioning(WeightedRobustPartitioning):
    """ERP (Algorithm 3): WRP plus Theorem 1's aging-counter stop.

    The counter increments on each region check that yields no plan new
    to the solution and resets otherwise; partitioning stops once it
    reaches ``aging_threshold(failure_probability, area_bound)``.
    Regions still pending are assigned their predicted plan with no
    further optimizer calls — the source of ERP's savings in
    Figures 10 and 12.
    """

    early_termination = True
