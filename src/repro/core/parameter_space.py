"""Multi-dimensional parameter space (§2.2, Algorithm 1).

The parameter space ``S`` models uncertainty in optimizer statistics:
each *dimension* is one uncertain statistic (an operator selectivity or
a stream input rate) stretched around its point estimate ``e`` to
``[e·(1 − Δ·u), e·(1 + Δ·u)]`` with unit step Δ = 0.1 and integer
uncertainty level ``u`` — exactly Algorithm 1.

Each dimension is discretized (§2.2 "each dimension of the parameter
space is discretized"); the grid resolution scales with the uncertainty
level, so higher uncertainty means a larger space to search — the
mechanism behind Figure 10's growth of optimizer calls with ``U``.

Index-space conventions: a grid point is a tuple of integer indices
(one per dimension); a :class:`Region` is an axis-aligned box of such
indices with inclusive bounds.  ``pnt_lo``/``pnt_hi`` are the region's
bottom-left and top-right corners as real-valued :class:`StatPoint`\\ s,
matching the paper's ``pntLo``/``pntHi``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as iter_product
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.query.statistics import StatisticsEstimate, StatPoint
from repro.util.validation import ensure_non_empty, ensure_positive
from repro.util.types import FloatArray, IntArray

__all__ = ["Dimension", "ParameterSpace", "Region", "GridIndex"]

#: A grid point: one integer index per dimension.
GridIndex = tuple[int, ...]

#: Default grid points per uncertainty level (steps = level·this + 1),
#: giving 2U+1 points per dimension at the default of 2.
DEFAULT_POINTS_PER_LEVEL = 2


@dataclass(frozen=True)
class Dimension:
    """One discretized axis of the parameter space.

    ``lo``/``hi`` are the Algorithm 1 bounds; ``steps`` the number of
    grid points (≥ 1).  ``steps == 1`` models an exact parameter pinned
    at ``lo == hi``.
    """

    name: str
    lo: float
    hi: float
    steps: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("dimension name must not be empty")
        if self.hi < self.lo:
            raise ValueError(
                f"dimension {self.name!r} has hi={self.hi} < lo={self.lo}"
            )
        if self.steps < 1:
            raise ValueError(f"dimension {self.name!r} needs >= 1 step")
        # repro-lint: disable=no-float-eq -- a one-step dimension is pinned: lo and hi must be the *same* value, bit for bit, or value(0) would silently pick one of two different answers
        if self.steps == 1 and self.hi != self.lo:
            raise ValueError(
                f"dimension {self.name!r} with one step must have lo == hi"
            )

    @property
    def width(self) -> float:
        """Extent of the dimension in parameter units."""
        return self.hi - self.lo

    @property
    def cell_width(self) -> float:
        """Distance between adjacent grid values (0 for a pinned dim)."""
        if self.steps == 1:
            return 0.0
        return self.width / (self.steps - 1)

    def value(self, index: int) -> float:
        """Real value of grid index ``index`` along this dimension."""
        if not 0 <= index < self.steps:
            raise IndexError(
                f"index {index} out of range for dimension {self.name!r} "
                f"with {self.steps} steps"
            )
        if self.steps == 1:
            return self.lo
        return self.lo + index * self.cell_width

    def nearest_index(self, value: float) -> int:
        """Grid index whose value is nearest to ``value`` (clamped).

        A value exactly halfway between two grid cells rounds to the
        *even* index (IEEE round-half-to-even, Python's ``round``),
        matching :meth:`nearest_indices` so scalar and vectorized
        lookups can never disagree at cell boundaries.
        """
        if self.steps == 1 or self.cell_width <= 0:
            return 0
        raw = round((value - self.lo) / self.cell_width)
        return max(0, min(self.steps - 1, int(raw)))

    def values_array(self) -> FloatArray:
        """All grid values along this dimension as a float array.

        Entry ``i`` is computed as ``lo + i·cell_width`` — bitwise
        identical to :meth:`value`, so dense-grid consumers see exactly
        the values the scalar path sees.
        """
        if self.steps == 1:
            return np.array([self.lo])
        return self.lo + np.arange(self.steps) * self.cell_width

    def nearest_indices(self, values: FloatArray) -> IntArray:
        """Vectorized :meth:`nearest_index` over an array of values.

        Uses ``np.rint`` (round-half-to-even), the same rounding rule as
        the scalar path, then clamps to ``[0, steps-1]``.
        """
        values = np.asarray(values, dtype=float)
        if self.steps == 1 or self.cell_width <= 0:
            return np.zeros(values.shape, dtype=np.intp)
        raw = np.rint((values - self.lo) / self.cell_width).astype(np.intp)
        return np.clip(raw, 0, self.steps - 1)


class ParameterSpace:
    """A discretized hyper-rectangle of statistics values.

    Build one directly from :class:`Dimension` objects or — the common
    path — from a :class:`StatisticsEstimate` via :meth:`from_estimates`
    (Algorithm 1 plus level-scaled discretization).
    """

    def __init__(self, dimensions: Sequence[Dimension]) -> None:
        ensure_non_empty(dimensions, "dimensions")
        names = [d.name for d in dimensions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate dimension names: {names}")
        self._dimensions = tuple(dimensions)
        self._grid_matrix: FloatArray | None = None

    @classmethod
    def from_estimates(
        cls,
        estimate: StatisticsEstimate,
        *,
        points_per_level: int = DEFAULT_POINTS_PER_LEVEL,
        min_steps: int = 2,
    ) -> "ParameterSpace":
        """Algorithm 1: stretch each uncertain estimate into a dimension.

        Each uncertain parameter with level ``u`` becomes a dimension
        over ``[e·(1 − 0.1u), e·(1 + 0.1u)]`` discretized into
        ``max(min_steps, points_per_level·u + 1)`` grid points.  Exact
        parameters (level 0) are excluded — they stay at their point
        estimate and never vary.
        """
        ensure_positive(points_per_level, "points_per_level")
        names = estimate.uncertain_parameters()
        ensure_non_empty(names, "uncertain parameters")
        dimensions = []
        for name in names:
            lo, hi = estimate.bounds(name)
            level = estimate.uncertainty[name]
            steps = max(min_steps, points_per_level * level + 1)
            dimensions.append(Dimension(name, lo, hi, steps))
        return cls(dimensions)

    @property
    def dimensions(self) -> tuple[Dimension, ...]:
        """The space's dimensions, in fixed order."""
        return self._dimensions

    @property
    def n_dims(self) -> int:
        """Dimensionality ``d`` of the space."""
        return len(self._dimensions)

    @property
    def names(self) -> tuple[str, ...]:
        """Dimension (parameter) names, in dimension order."""
        return tuple(d.name for d in self._dimensions)

    @property
    def shape(self) -> tuple[int, ...]:
        """Grid points per dimension."""
        return tuple(d.steps for d in self._dimensions)

    @property
    def n_points(self) -> int:
        """Total number of grid points in the space."""
        total = 1
        for d in self._dimensions:
            total *= d.steps
        return total

    def point_at(self, index: GridIndex) -> StatPoint:
        """The :class:`StatPoint` at grid index ``index``."""
        if len(index) != self.n_dims:
            raise ValueError(
                f"index has {len(index)} components, space has {self.n_dims} dims"
            )
        return StatPoint(
            {d.name: d.value(i) for d, i in zip(self._dimensions, index)}
        )

    def nearest_index(self, point: Mapping[str, float]) -> GridIndex:
        """Grid index nearest to a real-valued point (clamped per dim)."""
        return tuple(
            d.nearest_index(float(point[d.name])) for d in self._dimensions
        )

    def grid_indices(self) -> Iterator[GridIndex]:
        """Iterate over every grid index in row-major order."""
        return iter_product(*(range(d.steps) for d in self._dimensions))

    # ------------------------------------------------------------------
    # Dense-grid views (the vectorized evaluation core's substrate)
    # ------------------------------------------------------------------

    def flat_index(self, index: GridIndex) -> int:
        """Row-major flat position of ``index`` — the row of
        :meth:`grid_matrix` (and the column of any cost tensor) holding
        that grid point."""
        flat = 0
        for i, d in zip(index, self._dimensions):
            flat = flat * d.steps + i
        return flat

    def index_of_flat(self, flat: int) -> GridIndex:
        """Inverse of :meth:`flat_index`."""
        if not 0 <= flat < self.n_points:
            raise IndexError(f"flat index {flat} out of range [0, {self.n_points})")
        index = []
        for d in reversed(self._dimensions):
            index.append(flat % d.steps)
            flat //= d.steps
        return tuple(reversed(index))

    def grid_matrix(self) -> FloatArray:
        """The full grid as a dense ``(n_points, n_dims)`` float array.

        Row ``k`` holds the parameter values of the ``k``-th grid index
        in row-major (:meth:`grid_indices`) order; columns follow
        :attr:`names`.  Values are bitwise identical to
        :meth:`Dimension.value`, and the array is built once and cached
        (read-only) — it is the substrate every vectorized cost kernel
        indexes into.
        """
        if self._grid_matrix is None:
            columns = np.meshgrid(
                *(d.values_array() for d in self._dimensions), indexing="ij"
            )
            matrix = np.column_stack([c.reshape(-1) for c in columns])
            matrix.setflags(write=False)
            self._grid_matrix = matrix
        return self._grid_matrix

    def points_matrix(self, indices: Sequence[GridIndex]) -> FloatArray:
        """Dense ``(len(indices), n_dims)`` value matrix for a subset of
        grid indices (same column order as :meth:`grid_matrix`)."""
        idx = np.asarray(list(indices), dtype=np.intp).reshape(-1, self.n_dims)
        return np.column_stack(
            [d.values_array()[idx[:, i]] for i, d in enumerate(self._dimensions)]
        )

    def nearest_indices(self, values: FloatArray) -> IntArray:
        """Vectorized :meth:`nearest_index` over a ``(n, n_dims)`` value
        matrix; returns an ``(n, n_dims)`` integer index matrix."""
        values = np.asarray(values, dtype=float)
        return np.column_stack(
            [d.nearest_indices(values[:, i]) for i, d in enumerate(self._dimensions)]
        )

    def nearest_flat_index(self, point: Mapping[str, float]) -> int | None:
        """Row-major flat index of the grid cell nearest to ``point``.

        Returns ``None`` when the point is *off-grid*: a space dimension
        is missing from ``point``, or its value falls more than half a
        cell outside the dimension's ``[lo, hi]`` box (for a pinned
        single-step dimension, deviates from its only value by more than
        1e-9 relative).  Callers use ``None`` as the signal to fall back
        to live (non-tabulated) evaluation.
        """
        flat = 0
        for d in self._dimensions:
            value = point.get(d.name)
            if value is None:
                return None
            value = float(value)
            if d.steps == 1:
                if abs(value - d.lo) > 1e-9 * max(abs(d.lo), 1.0):
                    return None
                continue
            half = d.cell_width / 2.0
            if not (d.lo - half <= value <= d.hi + half):
                return None
            flat = flat * d.steps + d.nearest_index(value)
        return flat

    def grid_points(self) -> Iterator[StatPoint]:
        """Iterate over every grid point as a :class:`StatPoint`."""
        for index in self.grid_indices():
            yield self.point_at(index)

    def full_region(self) -> "Region":
        """The region spanning the entire space."""
        return Region(
            self, (0,) * self.n_dims, tuple(d.steps - 1 for d in self._dimensions)
        )

    def __repr__(self) -> str:
        dims = ", ".join(
            f"{d.name}[{d.lo:.4g}..{d.hi:.4g}/{d.steps}]" for d in self._dimensions
        )
        return f"ParameterSpace({dims})"


@dataclass(frozen=True)
class Region:
    """An axis-aligned box of grid indices with inclusive bounds.

    ``lo``/``hi`` are index tuples with ``lo[i] <= hi[i]``.  The paper's
    corner points ``pntLo``/``pntHi`` are exposed as real-valued
    :class:`StatPoint` properties.
    """

    space: ParameterSpace
    lo: GridIndex
    hi: GridIndex

    def __post_init__(self) -> None:
        if len(self.lo) != self.space.n_dims or len(self.hi) != self.space.n_dims:
            raise ValueError("region bounds must match space dimensionality")
        for d, (a, b) in enumerate(zip(self.lo, self.hi)):
            steps = self.space.dimensions[d].steps
            if not (0 <= a <= b <= steps - 1):
                raise ValueError(
                    f"invalid bounds [{a}, {b}] on dimension "
                    f"{self.space.names[d]!r} with {steps} steps"
                )

    @property
    def pnt_lo(self) -> StatPoint:
        """Bottom-left corner (the paper's ``pntLo``)."""
        return self.space.point_at(self.lo)

    @property
    def pnt_hi(self) -> StatPoint:
        """Top-right corner (the paper's ``pntHi``)."""
        return self.space.point_at(self.hi)

    @property
    def n_points(self) -> int:
        """Number of grid points inside the region."""
        total = 1
        for a, b in zip(self.lo, self.hi):
            total *= b - a + 1
        return total

    @property
    def area_fraction(self) -> float:
        """Region size as a fraction of the whole space's grid points."""
        return self.n_points / self.space.n_points

    @property
    def is_cell(self) -> bool:
        """True when the region is a single grid point."""
        # repro-lint: disable=no-float-eq -- Region.lo/hi are integer GridIndex tuples, not floats; the file-local float inference conflates them with Dimension.lo/hi
        return self.lo == self.hi

    def contains(self, index: GridIndex) -> bool:
        """True when grid index ``index`` falls inside the region."""
        return all(a <= i <= b for i, a, b in zip(index, self.lo, self.hi))

    def indices(self) -> Iterator[GridIndex]:
        """Iterate over the region's grid indices in row-major order."""
        return iter_product(*(range(a, b + 1) for a, b in zip(self.lo, self.hi)))

    def interior_split_candidates(self, dim: int) -> range:
        """Indices along ``dim`` usable as split points.

        Splitting at ``s`` produces lower part ``[lo..s]`` and upper
        part ``[s+1..hi]``; both are non-empty for ``s in [lo, hi-1]``.
        """
        return range(self.lo[dim], self.hi[dim])

    def can_split(self) -> bool:
        """True when at least one dimension has >= 2 grid points."""
        return any(b > a for a, b in zip(self.lo, self.hi))

    def split_at(self, point: GridIndex) -> list["Region"]:
        """Split into up to ``2^d`` sub-regions at ``point``.

        Along each dimension with ``lo[i] <= point[i] < hi[i]`` the
        region divides into ``[lo..point]`` and ``[point+1..hi]``;
        dimensions where the point is at/above ``hi`` or the region is
        flat contribute a single interval.  Sub-regions tile the parent
        exactly (disjoint, union-complete), which the tests verify.
        """
        if not self.contains(point):
            raise ValueError(f"split point {point} outside region [{self.lo}, {self.hi}]")
        per_dim: list[list[tuple[int, int]]] = []
        for a, b, p in zip(self.lo, self.hi, point):
            if a <= p < b:
                per_dim.append([(a, p), (p + 1, b)])
            else:
                per_dim.append([(a, b)])
        pieces = [
            Region(
                self.space,
                tuple(interval[0] for interval in combo),
                tuple(interval[1] for interval in combo),
            )
            for combo in iter_product(*per_dim)
        ]
        if len(pieces) == 1:
            raise ValueError(
                f"split point {point} does not divide region [{self.lo}, {self.hi}]"
            )
        return pieces

    def __repr__(self) -> str:
        return f"Region(lo={self.lo}, hi={self.hi}, points={self.n_points})"
