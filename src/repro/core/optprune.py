"""OptPrune: optimal robust physical plans by branch-and-bound (§5.3, Alg. 5).

OptPrune searches the graph of machine *configurations* (single-node
operator sets) depth-first, growing a partial physical plan one
configuration at a time.  Two facts make the search tractable:

* **Lemma 1 monotonicity** — the supported-plan set of a partial plan
  is the bitwise AND of its configurations' support masks, so the score
  never increases as configurations are added.  Any partial plan whose
  score is already ≤ the best-known complete score can be pruned.
* **GreedyPhy as the initial bound** — Algorithm 5 seeds the incumbent
  with GreedyPhy's solution, so most branches die immediately; the
  result equals exhaustive search (Figure 14) at a fraction of the time
  (Figure 13).

Machine symmetry (homogeneous cluster) is broken canonically: each new
configuration must contain the lowest-indexed still-unplaced operator,
so each set partition is generated exactly once.
"""

from __future__ import annotations

import numpy as np

from repro.core.greedy_phy import greedy_phy, largest_load_first
from repro.core.parallel import (
    ParallelContext,
    candidates_by_first,
    parallel_opt_prune_hetero_search,
    parallel_opt_prune_search,
)
from repro.core.physical import (
    Cluster,
    PhysicalPlan,
    PhysicalPlanResult,
    PlanLoadTable,
)
from repro.util.timing import Stopwatch
from repro.util.types import FloatArray

__all__ = [
    "opt_prune",
    "opt_prune_heterogeneous",
    "enumerate_feasible_configs",
]

#: Hard cap on operator count: subset tables are O(2^m) in memory.
_MAX_OPERATORS = 18


def _subset_loads(table: PlanLoadTable) -> tuple[list[int], FloatArray]:
    """Per-plan total loads for every operator subset (bitmask indexed).

    Returns the sorted operator ids and a ``(n_plans, 2^m)`` matrix
    whose entry ``[p, s]`` is plan ``p``'s total worst-case load of
    subset ``s``.  Built by bitwise doubling: after processing bit
    ``j``, every subset of operators ``0..j`` is complete, and setting
    bit ``j`` adds one strided broadcast over the half-filled table
    (sums accumulate in ascending-bit order; the tolerance comparisons
    downstream absorb the last-ulp difference from the old
    lowest-bit-last order).
    """
    ops = list(table.operator_ids)
    if len(ops) > _MAX_OPERATORS:
        raise ValueError(
            f"OptPrune subset tables support at most {_MAX_OPERATORS} "
            f"operators, got {len(ops)}"
        )
    n_plans = table.n_plans
    singles = table.load_matrix  # (n_plans, m), column j = operator ops[j]
    loads = np.zeros((n_plans, 1 << len(ops)))
    for j in range(len(ops)):
        step = 1 << j
        view = loads.reshape(n_plans, -1, 2 * step)
        view[:, :, step:] = view[:, :, :step] + singles[:, j, None, None]
    return ops, loads


def enumerate_feasible_configs(
    table: PlanLoadTable, capacity: float
) -> dict[int, int]:
    """All single-machine configurations supporting ≥ 1 plan.

    Returns ``{operator-subset bitmask: support mask}`` for every
    non-empty subset whose worst-case load under at least one plan fits
    within ``capacity`` (Algorithm 5 line 1).  Subsets that support no
    plan cannot contribute to a positive score and are excluded.
    """
    ops, per_plan = _subset_loads(table)
    tolerance = capacity * (1 + 1e-12)
    fits = per_plan <= tolerance  # (n_plans, 2^m) bool
    if table.n_plans <= 62:
        # Pack the per-plan fit columns into int64 support masks in one
        # vectorized pass.
        masks = np.zeros(fits.shape[1], dtype=np.int64)
        for plan_index in range(table.n_plans):
            masks |= fits[plan_index].astype(np.int64) << np.int64(plan_index)
        masks[0] = 0  # the empty configuration is not a candidate
        return {int(s): int(masks[s]) for s in np.flatnonzero(masks)}
    configs: dict[int, int] = {}
    for subset in range(1, fits.shape[1]):
        mask = 0
        for plan_index in range(table.n_plans):
            if fits[plan_index, subset]:
                mask |= 1 << plan_index
        if mask:
            configs[subset] = mask
    return configs


def _subset_to_ops(subset: int, ops: list[int]) -> frozenset[int]:
    """Convert an operator-subset bitmask back to operator ids."""
    return frozenset(ops[i] for i in range(len(ops)) if subset >> i & 1)


def _rebalanced(
    plan: PhysicalPlan, mask: int, table: PlanLoadTable, cluster: Cluster
) -> PhysicalPlan:
    """Best balanced placement that still supports the plans in ``mask``.

    Tries LLF on the typical load profile first (verifying worst-case
    support), then LLF on the worst-case profile (support-preserving by
    construction), and finally keeps the original placement.
    """
    typical = largest_load_first(table.expected_loads(mask), cluster)
    if typical is not None and typical.support_mask(table, cluster) & mask == mask:
        return typical
    conservative = largest_load_first(table.max_loads(mask), cluster)
    if conservative is not None:
        return conservative
    return plan


def opt_prune(
    table: PlanLoadTable,
    cluster: Cluster,
    *,
    rebalance: bool = True,
    parallel: ParallelContext | None = None,
) -> PhysicalPlanResult:
    """OptPrune (Algorithm 5): the optimal robust physical plan.

    Requires a homogeneous cluster (the paper's setting).  Returns the
    physical plan maximizing the total occurrence weight of supported
    logical plans; ties prefer fewer machines, then the canonical-first
    partition.  When not even one logical plan is supportable the
    result is infeasible (``physical_plan=None``), matching GreedyPhy.

    With ``rebalance`` (default), the winning plan set is re-placed by
    LLF over its per-operator max loads when that placement is
    feasible: support is unchanged (every node then fits the worst case
    of every supported plan) but the load is spread evenly, which
    matters for runtime queueing.  Score and supported plans — the
    quantities Figures 13–14 compare — are identical either way.

    With an enabled ``parallel`` context the branch-and-bound tree is
    sharded across worker processes (see :mod:`repro.core.parallel`);
    the result is bitwise-identical to the serial search except for the
    ``nodes_explored`` diagnostic.
    """
    watch = Stopwatch()
    capacity = cluster.uniform_capacity
    n_nodes = cluster.n_nodes
    ops = list(table.operator_ids)
    all_ops_mask = (1 << len(ops)) - 1

    configs = enumerate_feasible_configs(table, capacity)
    greedy = greedy_phy(table, cluster)
    best_score = greedy.score
    best_assignment: list[int] | None = None
    best_mask = table.mask_of(greedy.supported_plans) if greedy.feasible else 0
    full_score = table.score(table.full_mask)
    nodes_explored = 0

    # Per "first operator" candidate lists, largest configurations first
    # (Algorithm 5 sorts configurations by operator count descending).
    # Shared with the parallel shard workers so candidate indices agree.
    by_first = candidates_by_first(configs.items(), len(ops))

    def search(remaining: int, used: int, mask: int, chosen: list[int]) -> bool:
        """DFS over canonical partitions; True aborts (perfect score)."""
        nonlocal best_score, best_assignment, best_mask, nodes_explored
        first = (remaining & -remaining).bit_length() - 1
        for subset, config_mask in by_first[first]:
            if subset & ~remaining:
                continue  # overlaps an already-placed operator
            new_mask = mask & config_mask
            if new_mask == 0:
                continue
            new_score = table.score(new_mask)
            if new_score <= best_score:
                continue  # Lemma 1: the score only shrinks deeper down
            nodes_explored += 1
            new_remaining = remaining & ~subset
            chosen.append(subset)
            if new_remaining == 0:
                if new_score > best_score or best_assignment is None:
                    best_score = new_score
                    best_assignment = list(chosen)
                    best_mask = new_mask
                    if best_score >= full_score * (1 - 1e-12):
                        chosen.pop()
                        return True  # supports every plan: cannot improve
            elif used + 1 < n_nodes:
                if search(new_remaining, used + 1, new_mask, chosen):
                    chosen.pop()
                    return True
            chosen.pop()
        return False

    if configs and parallel is not None and parallel.enabled:
        best_score, assignment, parallel_mask, nodes_explored = (
            parallel_opt_prune_search(
                table,
                configs,
                by_first,
                n_nodes=n_nodes,
                n_ops=len(ops),
                all_ops_mask=all_ops_mask,
                greedy_score=best_score,
                full_score=full_score,
                context=parallel,
            )
        )
        if assignment is not None:
            best_assignment = list(assignment)
            best_mask = parallel_mask
    elif configs:
        search(all_ops_mask, 0, table.full_mask, [])

    elapsed = watch.seconds
    if best_assignment is None:
        # OptPrune found nothing better than greedy; fall back to greedy
        # (which may itself be infeasible).
        return PhysicalPlanResult(
            algorithm="OptPrune",
            physical_plan=greedy.physical_plan,
            supported_plans=greedy.supported_plans,
            score=greedy.score,
            compile_seconds=elapsed,
            nodes_explored=nodes_explored,
        )

    blocks = [_subset_to_ops(subset, ops) for subset in best_assignment]
    blocks += [frozenset()] * (n_nodes - len(blocks))
    plan = PhysicalPlan(tuple(blocks))
    if rebalance:
        # Prefer balance on the *typical* load profile, accepted only if
        # the worst-case support of the result still covers the winning
        # plan set; otherwise balance on worst-case loads (feasibility
        # there implies support by construction).
        plan = _rebalanced(plan, best_mask, table, cluster)
        best_mask = plan.support_mask(table, cluster)
        best_score = table.score(best_mask)
    return PhysicalPlanResult(
        algorithm="OptPrune",
        physical_plan=plan,
        supported_plans=table.plans_in_mask(best_mask),
        score=best_score,
        compile_seconds=elapsed,
        nodes_explored=nodes_explored,
    )


def opt_prune_heterogeneous(
    table: PlanLoadTable,
    cluster: Cluster,
    *,
    parallel: ParallelContext | None = None,
) -> PhysicalPlanResult:
    """Optimal robust physical plan for *heterogeneous* clusters.

    The paper's OptPrune assumes homogeneous machines (§5.3); this
    extension lifts that: operators are assigned one at a time to
    concrete nodes, branch-and-bound style.  Correctness rests on the
    same monotonicity as Lemma 1 — adding an operator to any node can
    only shrink that node's support mask, hence the partial assignment's
    AND-mask is an upper bound on any completion's score and pruning
    against the incumbent (seeded by GreedyPhy, which already handles
    heterogeneous capacity) is safe.  Symmetry is broken among
    equal-capacity *empty* nodes only.

    Exponential in the worst case (``n^m`` assignments); intended for
    the moderate sizes of this library's experiments.  For homogeneous
    clusters prefer :func:`opt_prune`, whose set-partition search is
    far tighter.
    """
    watch = Stopwatch()
    ops = list(table.operator_ids)
    if len(ops) > _MAX_OPERATORS:
        raise ValueError(
            f"opt_prune_heterogeneous supports at most {_MAX_OPERATORS} "
            f"operators, got {len(ops)}"
        )
    capacities = cluster.capacities
    n_nodes = cluster.n_nodes

    greedy = greedy_phy(table, cluster)
    best_score = greedy.score
    best_assignment: list[frozenset[int]] | None = None
    best_mask = table.mask_of(greedy.supported_plans) if greedy.feasible else 0
    full_score = table.score(table.full_mask)
    nodes_explored = 0

    node_ops: list[set[int]] = [set() for _ in range(n_nodes)]
    node_masks: list[int] = [table.full_mask] * n_nodes

    def combined_mask() -> int:
        mask = table.full_mask
        for node_mask in node_masks:
            mask &= node_mask
        return mask

    def search(op_index: int) -> bool:
        nonlocal best_score, best_assignment, best_mask, nodes_explored
        if op_index == len(ops):
            mask = combined_mask()
            score = table.score(mask)
            if score > best_score:
                best_score = score
                best_assignment = [frozenset(s) for s in node_ops]
                best_mask = mask
                if best_score >= full_score * (1 - 1e-12):
                    return True
            return False

        op_id = ops[op_index]
        seen_empty_capacities: set[float] = set()
        for node in range(n_nodes):
            if not node_ops[node]:
                # Symmetry: among empty nodes, try one per capacity class.
                if capacities[node] in seen_empty_capacities:
                    continue
                seen_empty_capacities.add(capacities[node])
            saved_mask = node_masks[node]
            node_ops[node].add(op_id)
            node_masks[node] = saved_mask & table.support_mask(
                node_ops[node], capacities[node]
            )
            nodes_explored += 1
            upper = table.score(combined_mask())
            if upper > best_score:
                if search(op_index + 1):
                    node_ops[node].discard(op_id)
                    node_masks[node] = saved_mask
                    return True
            node_ops[node].discard(op_id)
            node_masks[node] = saved_mask
        return False

    if parallel is not None and parallel.enabled and ops and n_nodes:
        best_score, hetero_assignment, parallel_mask, nodes_explored = (
            parallel_opt_prune_hetero_search(
                table,
                capacities=capacities,
                greedy_score=best_score,
                full_score=full_score,
                context=parallel,
            )
        )
        if hetero_assignment is not None:
            best_assignment = [frozenset(node) for node in hetero_assignment]
            best_mask = parallel_mask
    else:
        search(0)
    elapsed = watch.seconds
    if best_assignment is None:
        return PhysicalPlanResult(
            algorithm="OptPrune-hetero",
            physical_plan=greedy.physical_plan,
            supported_plans=greedy.supported_plans,
            score=greedy.score,
            compile_seconds=elapsed,
            nodes_explored=nodes_explored,
        )
    plan = PhysicalPlan(tuple(best_assignment))
    return PhysicalPlanResult(
        algorithm="OptPrune-hetero",
        physical_plan=plan,
        supported_plans=table.plans_in_mask(best_mask),
        score=best_score,
        compile_seconds=elapsed,
        nodes_explored=nodes_explored,
    )
