"""The vectorized cost-evaluation core shared across the compile pipeline.

Every layer of RLD — ERP partitioning (Alg. 3), ε-robustness evaluation
(Def. 1/2), §4.2 weight assignment, GreedyPhy/OptPrune feasibility
(Alg. 4/5), and the runtime classifier — ultimately asks the same
question: *what does plan ``lp`` cost at point ``pnt``?*  The cost form
is multilinear (§2.3), so the answer over the whole discretized
parameter space is a handful of NumPy tensor operations, not
``O(grid × plans)`` scalar Python calls.

:class:`CostTensorCache` memoizes, per query/space/plan-set:

* the **cost tensor** ``C`` of shape ``(n_plans, n_points)`` — plan
  cost at every grid point, columns in the row-major order of
  :meth:`~repro.core.parameter_space.ParameterSpace.grid_indices`;
* per-plan **load tensors** — ``{op_id: (n_points,)}`` operator load
  vectors, the input to physical feasibility and routing-table
  construction.

Tensors are built with the batch kernels of
:class:`~repro.query.cost.PlanCostModel`, whose accumulation order
mirrors the scalar methods operation for operation — so every slice is
bitwise identical to the scalar value it replaces, and argmin-based
decisions (plan cells, routing tables, coverage) cannot drift from the
scalar semantics they refactor.

:func:`lexicographic_argmin` is the shared tie-break kernel: NumPy has
no argmin over tuples, but every consumer picks plans by a key like
``(cost, plan.order)`` — this computes that columnwise.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.parameter_space import GridIndex, ParameterSpace
from repro.query.cost import PlanCostModel
from repro.query.plans import LogicalPlan
from repro.util.timing import Stopwatch
from repro.util.types import FloatArray, IntArray

__all__ = ["CostTensorCache", "lexicographic_argmin"]


def lexicographic_argmin(
    keys: Sequence[FloatArray], ranks: IntArray
) -> IntArray:
    """Columnwise argmin over stacked ``(n_candidates, n_points)`` keys.

    For each point (column), returns the candidate row minimizing the
    tuple ``(keys[0][p], keys[1][p], ..., ranks[p])`` — exactly the
    semantics of Python's ``min(..., key=lambda p: (k0, k1, ..., rank))``
    applied per column.  ``ranks`` is the final integer tie-break (e.g.
    each plan's position in ``sorted(plans, key=plan.order)``), so the
    result is deterministic even under exact float cost ties.
    """
    if not keys:
        raise ValueError("lexicographic_argmin needs at least one key array")
    first = np.asarray(keys[0])
    n_candidates, n_points = first.shape
    cols = np.arange(n_points)
    best = np.zeros(n_points, dtype=np.intp)
    for p in range(1, n_candidates):
        tied = np.ones(n_points, dtype=bool)
        better = np.zeros(n_points, dtype=bool)
        for key in keys:
            key = np.asarray(key)
            candidate = key[p]
            incumbent = key[best, cols]
            better |= tied & (candidate < incumbent)
            tied &= candidate == incumbent
        better |= tied & (ranks[p] < ranks[best])
        best = np.where(better, p, best)
    return best


class CostTensorCache:
    """Per-query memo of dense cost/load tensors over one plan set.

    Built lazily: nothing is evaluated until the first tensor access,
    and each tensor is computed exactly once.  ``build_seconds``
    accumulates wall-clock time spent inside the batch kernels — the
    timer the CLI's ``compile --profile`` breakdown reads.
    """

    def __init__(
        self,
        space: ParameterSpace,
        cost_model: PlanCostModel,
        plans: Iterable[LogicalPlan],
    ) -> None:
        self._space = space
        self._cost_model = cost_model
        self._plans = tuple(plans)
        if not self._plans:
            raise ValueError("CostTensorCache needs at least one plan")
        # Rank of each plan under the lexicographic ordering of its
        # operator sequence — the deterministic tie-break every scalar
        # ``min(..., key=(cost, plan.order))`` call site uses.
        ordered = sorted(range(len(self._plans)), key=lambda i: self._plans[i].order)
        self._ranks = np.empty(len(self._plans), dtype=np.intp)
        for rank, plan_index in enumerate(ordered):
            self._ranks[plan_index] = rank
        # Shared by reference with every consumer, like the tensors:
        # frozen so an accidental in-place write raises instead of
        # silently re-ordering every future tie-break.
        self._ranks.setflags(write=False)
        self._names = list(space.names)
        self._cost_tensor: FloatArray | None = None
        self._load_tensors: dict[int, dict[int, FloatArray]] = {}
        self._build_seconds = 0.0

    @property
    def space(self) -> ParameterSpace:
        """The parameter space the tensors are evaluated over."""
        return self._space

    @property
    def cost_model(self) -> PlanCostModel:
        """The analytic cost model backing the tensors."""
        return self._cost_model

    @property
    def plans(self) -> tuple[LogicalPlan, ...]:
        """The plan set, in construction order (the tensor's row order)."""
        return self._plans

    @property
    def n_plans(self) -> int:
        """Number of plans (rows of the cost tensor)."""
        return len(self._plans)

    @property
    def n_points(self) -> int:
        """Number of grid points (columns of the cost tensor)."""
        return self._space.n_points

    @property
    def plan_ranks(self) -> IntArray:
        """Per-plan lexicographic tie-break ranks (see ctor)."""
        return self._ranks

    @property
    def build_seconds(self) -> float:
        """Wall-clock seconds spent building tensors so far."""
        return self._build_seconds

    def plan_index(self, plan: LogicalPlan) -> int:
        """Row of ``plan`` in the cost tensor; raises if absent."""
        return self._plans.index(plan)

    @property
    def cost_tensor(self) -> FloatArray:
        """The ``(n_plans, n_points)`` plan-cost tensor (memoized).

        Row ``i`` is ``plans[i]``'s cost at every grid point, in the
        row-major point order of ``space.grid_indices()``; entry values
        are bitwise identical to ``cost_model.plan_cost``.
        """
        if self._cost_tensor is None:
            watch = Stopwatch()
            grid = self._space.grid_matrix()
            tensor = np.empty((len(self._plans), grid.shape[0]))
            for i, plan in enumerate(self._plans):
                tensor[i] = self._cost_model.plan_costs(plan, grid, self._names)
            tensor.setflags(write=False)
            self._cost_tensor = tensor
            self._build_seconds += watch.seconds
        return self._cost_tensor

    def load_tensor(self, plan_index: int) -> dict[int, FloatArray]:
        """Per-operator load vectors of ``plans[plan_index]`` (memoized).

        Maps operator id to its ``(n_points,)`` load at every grid
        point — the dense form of ``cost_model.operator_loads``.
        """
        cached = self._load_tensors.get(plan_index)
        if cached is None:
            watch = Stopwatch()
            cached = self._cost_model.operator_loads_batch(
                self._plans[plan_index], self._space.grid_matrix(), self._names
            )
            for vector in cached.values():
                vector.setflags(write=False)
            self._load_tensors[plan_index] = cached
            self._build_seconds += watch.seconds
        return cached

    def min_costs(self, plan_indices: Sequence[int] | None = None) -> FloatArray:
        """Cheapest-cost vector over a plan subset — ``min over plans``.

        The single home of the repeated
        ``min(cost_model.plan_cost(plan, point) for plan in plans)``
        idiom: one ``(n_points,)`` vector instead of a scalar call per
        grid point per plan.  ``None`` means all plans.
        """
        tensor = self.cost_tensor
        if plan_indices is not None:
            tensor = tensor[np.asarray(plan_indices, dtype=np.intp)]
        return tensor.min(axis=0)

    def best_plan_per_point(
        self, plan_indices: Sequence[int] | None = None
    ) -> IntArray:
        """Index (into :attr:`plans`) of the cheapest plan at each point.

        Ties break toward the lexicographically smaller plan ordering —
        identical to the scalar ``min(plans, key=(cost, plan.order))``
        used by the classifier and ``plan_cells``.
        """
        if plan_indices is None:
            subset = np.arange(self.n_plans, dtype=np.intp)
        else:
            subset = np.asarray(plan_indices, dtype=np.intp)
        best = lexicographic_argmin(
            [self.cost_tensor[subset]], self._ranks[subset]
        )
        return subset[best]

    def costs_at(self, plan_index: int, flat_indices: IntArray) -> FloatArray:
        """Cost-tensor slice: one plan's costs at selected flat points."""
        return self.cost_tensor[plan_index, flat_indices]

    def flat_indices(self, indices: Iterable[GridIndex]) -> IntArray:
        """Row-major flat positions of grid indices (tensor columns)."""
        return np.fromiter(
            (self._space.flat_index(index) for index in indices), dtype=np.intp
        )
