"""Weight assignment in the parameter space (§4.2).

Partitioning needs to pick *good* split points: points where a not-yet-
discovered robust plan is most likely to live.  The paper's two
principles drive the weight function:

1. Nearby points likely share a robust plan, so weight should *decay*
   with distance from the region's ``pntLo``.
2. A plan is less likely to be robust where its cost surface is steep,
   so weight should *grow* with the cost slope.

Computing a weight for every point of a d-dimensional region is
``O(n^d)``, so — following the paper — each dimension is treated
independently: a point's weight is the sum of per-dimension projected
weights, and because that sum is separable, the maximum-weight point is
simply the per-dimension argmax.  This keeps weight assignment at
``O(n·d)`` cost-gradient evaluations per region.

The *re-assignment* optimisation (§4.2 "Weight Re-Assignment Strategy")
lets a sub-region inherit its parent's weight arrays when the predicted
corner plan matched the optimizer's actual answer; the partitioning
algorithms use :meth:`RegionWeights.slice_to` for that and
:class:`WeightAssigner` counts how many recomputations were skipped.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.parameter_space import GridIndex, ParameterSpace, Region
from repro.query.cost import PlanCostModel
from repro.query.plans import LogicalPlan
from repro.util.types import FloatArray

__all__ = ["RegionWeights", "WeightAssigner"]


@dataclass(frozen=True)
class RegionWeights:
    """Per-dimension weight arrays over a region's grid indices.

    ``per_dim[i][k]`` is the weight of index ``region.lo[i] + k`` along
    dimension ``i``.  The total weight of a grid point is the sum of its
    per-dimension weights (the separable model of §4.2).
    """

    region: Region
    per_dim: tuple[FloatArray, ...]

    def point_weight(self, index: GridIndex) -> float:
        """Total (summed per-dimension) weight of a grid point."""
        if not self.region.contains(index):
            raise ValueError(f"index {index} outside region {self.region}")
        return float(
            sum(
                weights[i - lo]
                for weights, i, lo in zip(self.per_dim, index, self.region.lo)
            )
        )

    def best_partition_point(self) -> GridIndex | None:
        """Maximum-weight interior point usable for splitting.

        Along each splittable dimension the argmax over split candidates
        ``[lo..hi-1]`` is chosen; flat dimensions stay at ``lo``.
        Returns ``None`` when no dimension can split (single cell).
        """
        if not self.region.can_split():
            return None
        point = []
        for dim, weights in enumerate(self.per_dim):
            lo = self.region.lo[dim]
            hi = self.region.hi[dim]
            if hi == lo:
                point.append(lo)
                continue
            candidates = weights[: hi - lo]  # indices lo..hi-1
            point.append(lo + int(np.argmax(candidates)))
        return tuple(point)

    def slice_to(self, sub_region: Region) -> "RegionWeights":
        """Inherit these weights restricted to ``sub_region``.

        Used when the §4.2 re-assignment condition says the parent's
        weights are still accurate for the child — no recomputation.
        """
        sliced = []
        for dim, weights in enumerate(self.per_dim):
            offset = sub_region.lo[dim] - self.region.lo[dim]
            length = sub_region.hi[dim] - sub_region.lo[dim] + 1
            sliced.append(weights[offset : offset + length])
        return RegionWeights(sub_region, tuple(sliced))


class WeightAssigner:
    """Computes §4.2 weights; tracks computations and skips.

    The weight of index ``x`` projected on dimension ``i`` is

        w_i(x) = min(|∂cost(lp_hi)/∂d_i|, |∂cost(lp_lo)/∂d_i|) / dist_i(x)

    evaluated at the projected point (dimension ``i`` at ``x``, other
    dimensions at the region's ``pntLo`` values), where ``dist_i`` is
    the normalised projected distance from ``pntLo`` plus one cell so
    the corner itself stays finite.
    """

    def __init__(self, space: ParameterSpace, cost_model: PlanCostModel) -> None:
        self._space = space
        self._cost_model = cost_model
        self._computed = 0
        self._skipped = 0

    @property
    def computations(self) -> int:
        """Number of full per-region weight computations performed."""
        return self._computed

    @property
    def skips(self) -> int:
        """Number of recomputations avoided via weight inheritance."""
        return self._skipped

    def record_skip(self) -> None:
        """Note one inherited (not recomputed) region weight assignment."""
        self._skipped += 1

    def assign(
        self, region: Region, plan_lo: LogicalPlan, plan_hi: LogicalPlan
    ) -> RegionWeights:
        """Compute fresh per-dimension weights for ``region``.

        Each dimension's projected points form one batch: the gradient
        of both corner plans is evaluated with a single vectorized
        kernel call per plan instead of one scalar gradient per grid
        index.
        """
        self._computed += 1
        names = list(self._space.names)
        corner_values = [
            d.value(region.lo[i]) for i, d in enumerate(self._space.dimensions)
        ]
        per_dim: list[FloatArray] = []
        for dim_index, dimension in enumerate(self._space.dimensions):
            lo = region.lo[dim_index]
            hi = region.hi[dim_index]
            length = hi - lo + 1
            cell = dimension.cell_width
            width = dimension.width if dimension.width > 0 else 1.0
            # Projected points: dimension ``dim_index`` sweeps the
            # region's index range, every other dimension pinned at the
            # region's pntLo value.
            values = dimension.values_array()[lo : hi + 1]
            matrix = np.tile(np.asarray(corner_values), (length, 1))
            matrix[:, dim_index] = values
            grad_lo = self._cost_model.gradients_batch(plan_lo, matrix, names)
            grad_hi = self._cost_model.gradients_batch(plan_hi, matrix, names)
            slope = np.minimum(
                np.abs(grad_lo[:, dim_index]), np.abs(grad_hi[:, dim_index])
            )
            distance = (values - values[0] + max(cell, 1e-9)) / width
            per_dim.append(slope / distance)
        return RegionWeights(region, tuple(per_dim))

    def uniform(self, region: Region) -> RegionWeights:
        """Cost-agnostic weights peaking at the region midpoint.

        The ablation baseline: with no slope/distance knowledge the
        natural split is the median, so weights form a triangle with its
        apex at the middle of each dimension.  The ablation bench
        contrasts this against the §4.2 slope/distance model.
        """
        self._computed += 1
        per_dim = []
        for lo, hi in zip(region.lo, region.hi):
            length = hi - lo + 1
            mid = (length - 1) / 2.0
            per_dim.append(
                np.array([1.0 + mid - abs(k - mid) for k in range(length)])
            )
        return RegionWeights(region, tuple(per_dim))
