"""ε-robustness of logical plans (Definitions 1 and 2).

A logical plan ``lp`` is ε-robust in a region ``S`` when

    cost(lp, pntHi) ≤ (1 + ε) · cost(lp_opt(pntHi), pntHi)

(Def. 1).  Because plan costs are monotonically increasing along every
dimension (§4.2 Principle 1), a plan that is optimal at ``pntLo`` and
ε-robust at ``pntHi`` is ε-robust throughout the box — the sandwich
argument under Def. 1.  :class:`RobustnessChecker` packages this test
together with corner-plan caching so each distinct corner costs at most
one optimizer call.

This module also provides the *evaluation* side: exact grid coverage of
a plan set, measured against a ground-truth oracle whose calls are not
charged to the algorithm under test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.cost_tensor import CostTensorCache
from repro.core.parameter_space import GridIndex, ParameterSpace, Region
from repro.query.cost import PlanCostModel
from repro.query.optimizer import PointOptimizer
from repro.query.plans import LogicalPlan
from repro.util.types import BoolArray, FloatArray

__all__ = [
    "RegionCheck",
    "RobustnessChecker",
    "grid_optimal_costs",
    "optimal_costs_vector",
    "covered_indices",
    "measure_coverage",
    "robust_region_of_plan",
]


@dataclass(frozen=True)
class RegionCheck:
    """Outcome of a robustness check on one region.

    ``plan`` is the candidate robust plan (optimal at ``pntLo``);
    ``opt_hi`` the optimal plan at ``pntHi``; ``robust`` whether Def. 1
    held; ``cost_ratio`` the observed ``cost(plan, pntHi) / opt_hi``
    ratio (1.0 when the corners agree).
    """

    plan: LogicalPlan
    opt_hi: LogicalPlan
    robust: bool
    cost_ratio: float


class RobustnessChecker:
    """Def. 1 robustness tests against a black-box optimizer.

    Optimizer calls at region corners are cached by grid index, so
    adjacent regions sharing corners (as produced by ``Region.split_at``)
    do not pay twice.  The cache preserves the paper's cost accounting:
    a cached corner genuinely requires no new optimizer call.
    """

    def __init__(self, optimizer: PointOptimizer, epsilon: float) -> None:
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        self._optimizer = optimizer
        self._epsilon = epsilon
        self._corner_plans: dict[GridIndex, LogicalPlan] = {}

    @property
    def epsilon(self) -> float:
        """The robustness threshold ε."""
        return self._epsilon

    @property
    def optimizer(self) -> PointOptimizer:
        """The underlying black-box optimizer."""
        return self._optimizer

    @property
    def optimizer_calls(self) -> int:
        """Optimizer calls made through this checker's optimizer."""
        return self._optimizer.call_count

    def has_cached(self, index: GridIndex) -> bool:
        """True when the corner plan at ``index`` is already cached.

        Used by the parallel prefetcher to avoid speculating on corners
        that would not cost an optimizer search anyway.
        """
        return index in self._corner_plans

    def optimal_plan_at(self, index: GridIndex, space: ParameterSpace) -> LogicalPlan:
        """Optimal plan at a grid index, cached per index."""
        cached = self._corner_plans.get(index)
        if cached is not None:
            return cached
        plan = self._optimizer.optimize(space.point_at(index))
        self._corner_plans[index] = plan
        return plan

    def check_region(self, region: Region) -> RegionCheck:
        """Def. 1 test over ``region``; at most two optimizer calls.

        The candidate plan is the optimum at ``pntLo``; it is robust in
        the region when its cost at ``pntHi`` stays within ``(1 + ε)``
        of the true optimum there.  A single-cell region is trivially
        robust under its own optimal plan.
        """
        plan_lo = self.optimal_plan_at(region.lo, region.space)
        if region.is_cell:
            return RegionCheck(plan=plan_lo, opt_hi=plan_lo, robust=True, cost_ratio=1.0)
        plan_hi = self.optimal_plan_at(region.hi, region.space)
        if plan_lo == plan_hi:
            return RegionCheck(plan=plan_lo, opt_hi=plan_hi, robust=True, cost_ratio=1.0)
        pnt_hi = region.pnt_hi
        cost_candidate = self._optimizer.plan_cost(plan_lo, pnt_hi)
        cost_optimal = self._optimizer.plan_cost(plan_hi, pnt_hi)
        ratio = cost_candidate / cost_optimal if cost_optimal > 0 else float("inf")
        return RegionCheck(
            plan=plan_lo,
            opt_hi=plan_hi,
            robust=ratio <= 1.0 + self._epsilon,
            cost_ratio=ratio,
        )


def grid_optimal_costs(
    space: ParameterSpace, oracle: PointOptimizer
) -> dict[GridIndex, float]:
    """Ground-truth optimal cost at every grid point.

    ``oracle`` should be a *separate* optimizer instance from the one
    used by the algorithm under evaluation so its calls do not pollute
    the experiment's call counter.
    """
    costs: dict[GridIndex, float] = {}
    for index in space.grid_indices():
        point = space.point_at(index)
        plan = oracle.optimize(point)
        costs[index] = oracle.plan_cost(plan, point)
    return costs


def optimal_costs_vector(
    space: ParameterSpace, optimal_costs: Mapping[GridIndex, float]
) -> FloatArray:
    """Dense ``(n_points,)`` view of a per-index optimal-cost mapping.

    Entries follow the row-major order of ``space.grid_indices()`` —
    the column order of every :class:`CostTensorCache` tensor.
    """
    return np.fromiter(
        (optimal_costs[index] for index in space.grid_indices()),
        dtype=float,
        count=space.n_points,
    )


def _robust_mask(
    costs: FloatArray,
    space: ParameterSpace,
    optimal_costs: Mapping[GridIndex, float],
    epsilon: float,
) -> BoolArray:
    """Boolean Def. 1 test of a cost vector against the optimum vector."""
    optimal = optimal_costs_vector(space, optimal_costs)
    return costs <= (1.0 + epsilon) * optimal * (1 + 1e-12)


def _indices_of_mask(space: ParameterSpace, mask: BoolArray) -> set[GridIndex]:
    """Grid indices (tuples) of the set flat positions of ``mask``."""
    return {space.index_of_flat(int(flat)) for flat in np.flatnonzero(mask)}


def covered_indices(
    plans: Iterable[LogicalPlan],
    space: ParameterSpace,
    cost_model: PlanCostModel,
    optimal_costs: Mapping[GridIndex, float],
    epsilon: float,
    *,
    cache: CostTensorCache | None = None,
) -> set[GridIndex]:
    """Grid indices where at least one plan in the set is ε-robust.

    A point is covered when the cheapest plan *from the given set* is
    within ``(1 + ε)`` of the true optimum there — exactly the runtime
    classifier's semantics (it always routes a batch to the best plan
    in the robust logical solution).  Evaluated on the dense cost
    tensor; pass ``cache`` to reuse tensors across repeated evaluations
    of overlapping plan sets (e.g. the Figure 11 budget sweep).
    """
    plans = list(plans)
    if not plans:
        return set()
    if cache is None:
        cache = CostTensorCache(space, cost_model, plans)
        best = cache.min_costs()
    else:
        best = cache.min_costs([cache.plan_index(plan) for plan in plans])
    return _indices_of_mask(space, _robust_mask(best, space, optimal_costs, epsilon))


def measure_coverage(
    plans: Iterable[LogicalPlan],
    space: ParameterSpace,
    cost_model: PlanCostModel,
    optimal_costs: Mapping[GridIndex, float],
    epsilon: float,
    *,
    cache: CostTensorCache | None = None,
) -> float:
    """Fraction of grid points ε-covered by the plan set (0.0–1.0)."""
    covered = covered_indices(
        plans, space, cost_model, optimal_costs, epsilon, cache=cache
    )
    return len(covered) / space.n_points


def robust_region_of_plan(
    plan: LogicalPlan,
    space: ParameterSpace,
    cost_model: PlanCostModel,
    optimal_costs: Mapping[GridIndex, float],
    epsilon: float,
    *,
    cache: CostTensorCache | None = None,
) -> set[GridIndex]:
    """Exact robust region of one plan: all indices satisfying Def. 1."""
    if cache is None:
        cache = CostTensorCache(space, cost_model, [plan])
    costs = cache.cost_tensor[cache.plan_index(plan)]
    return _indices_of_mask(space, _robust_mask(costs, space, optimal_costs, epsilon))


def coverage_against_sequence(
    plan_sequence: Sequence[tuple[int, LogicalPlan]],
    budgets: Sequence[int],
    space: ParameterSpace,
    cost_model: PlanCostModel,
    optimal_costs: Mapping[GridIndex, float],
    epsilon: float,
) -> list[float]:
    """Coverage achieved within each optimizer-call budget.

    ``plan_sequence`` pairs each *distinct* plan with the cumulative
    optimizer-call count at which the algorithm discovered it; the
    result lists, for each budget, the coverage of all plans found at
    or under that many calls — the series plotted in Figure 11.
    """
    all_plans = [plan for _, plan in plan_sequence]
    cache = (
        CostTensorCache(space, cost_model, all_plans) if all_plans else None
    )
    results = []
    for budget in budgets:
        plans = [plan for calls, plan in plan_sequence if calls <= budget]
        results.append(
            measure_coverage(
                plans, space, cost_model, optimal_costs, epsilon, cache=cache
            )
        )
    return results
