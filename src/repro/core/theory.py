"""Theorem 1 & 2 bounds, stated as checkable functions.

ERP's early termination rests on two probabilistic guarantees:

* **Theorem 1** — stop after ``c0 = (1 + ε^{-1/2})/δ`` consecutive
  partitioning steps without a new robust plan, and with probability at
  least ``1 − ε`` the total area of all still-missing robust plans is
  at most a ``δ`` fraction of the space.
* **Theorem 2** — under that stopping rule, an individual plan of area
  at least ``γ·δ`` (0 < γ ≤ 1/δ) is missed with probability at most
  ``e^{−γ(1 + ε^{-1/2})}``: the miss probability decays exponentially
  with the plan's area.

This module exposes the bound formulas (used by the ERP implementation
and the documentation) plus a seeded Monte-Carlo harness that draws
plans-as-areas at random and *empirically verifies* both bounds — the
property test in ``tests/core/test_theory.py`` runs it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.partitioning import aging_threshold
from repro.util.rng import derive_rng
from repro.util.validation import ensure_in_range, ensure_positive

__all__ = [
    "theorem1_threshold",
    "theorem2_miss_probability_bound",
    "MonteCarloBoundCheck",
    "simulate_uniform_discovery",
]


def theorem1_threshold(failure_probability: float, area_bound: float) -> int:
    """Theorem 1's aging threshold ``c0 = (1 + ε^{-1/2}) / δ``.

    Alias of :func:`repro.core.partitioning.aging_threshold`, exported
    here for discoverability next to the Theorem 2 bound.
    """
    return aging_threshold(failure_probability, area_bound)


def theorem2_miss_probability_bound(
    gamma: float, failure_probability: float
) -> float:
    """Theorem 2: P[miss a plan of area ≥ γ·δ] ≤ e^{−γ(1 + ε^{-1/2})}."""
    ensure_positive(gamma, "gamma")
    ensure_in_range(
        failure_probability, "failure_probability", 0.0, 1.0, inclusive=False
    )
    return math.exp(-gamma * (1.0 + failure_probability**-0.5))


@dataclass(frozen=True)
class MonteCarloBoundCheck:
    """Result of one empirical bound verification run."""

    trials: int
    #: Fraction of trials in which the target plan was never discovered
    #: before the aging rule stopped the (simulated) search.
    empirical_miss_rate: float
    #: Theorem 2's upper bound for the same setting.
    theorem_bound: float
    #: Mean uncovered area at stopping time across trials.
    mean_uncovered_area: float

    @property
    def bound_holds(self) -> bool:
        """True when the empirical miss rate respects the bound."""
        # Allow 3-sigma binomial slack for finite trials.
        sigma = math.sqrt(
            max(self.theorem_bound * (1 - self.theorem_bound), 1e-12) / self.trials
        )
        return self.empirical_miss_rate <= self.theorem_bound + 3 * sigma


def simulate_uniform_discovery(
    plan_areas: Sequence[float],
    *,
    target_index: int = 0,
    failure_probability: float = 0.25,
    area_bound: float = 0.3,
    trials: int = 2000,
    seed: int | np.random.Generator | None = 97,
) -> MonteCarloBoundCheck:
    """Empirically test Theorems 1–2 under uniform random probing.

    The theorems' probabilistic model: each partitioning step probes a
    uniformly random point of the space, discovering the plan whose
    region contains it; the search stops after ``c0`` consecutive
    probes that discover nothing new.  ``plan_areas`` are the plans'
    area fractions (must sum to ≤ 1; any remainder is "no plan", e.g.
    cells already covered).  Returns the observed miss rate of the
    ``target_index`` plan together with the Theorem 2 bound for its
    area.
    """
    areas = list(plan_areas)
    if not areas:
        raise ValueError("plan_areas must not be empty")
    total = sum(areas)
    if total > 1.0 + 1e-9:
        raise ValueError(f"plan areas sum to {total} > 1")
    if not 0 <= target_index < len(areas):
        raise IndexError(f"target_index {target_index} out of range")
    ensure_positive(trials, "trials")

    threshold = aging_threshold(failure_probability, area_bound)
    rng = derive_rng(seed)
    probabilities = np.array(areas + [max(1.0 - total, 0.0)])
    probabilities = probabilities / probabilities.sum()
    n_outcomes = len(probabilities)

    misses = 0
    uncovered_total = 0.0
    for _ in range(trials):
        found = [False] * len(areas)
        age = 0
        while age < threshold:
            outcome = int(rng.choice(n_outcomes, p=probabilities))
            if outcome < len(areas) and not found[outcome]:
                found[outcome] = True
                age = 0
            else:
                age += 1
        if not found[target_index]:
            misses += 1
        uncovered_total += sum(
            area for area, was_found in zip(areas, found) if not was_found
        )

    gamma = areas[target_index] / area_bound
    bound = theorem2_miss_probability_bound(
        max(gamma, 1e-9), failure_probability
    )
    return MonteCarloBoundCheck(
        trials=trials,
        empirical_miss_rate=misses / trials,
        theorem_bound=bound,
        mean_uncovered_area=uncovered_total / trials,
    )
