"""The lint driver: discovery, suppression parsing, rule dispatch.

:class:`LintRunner` is the library entry point (``repro lint`` is a
thin CLI shell around it).  A run

1. expands the requested paths into ``.py`` files (skipping anything
   under a hidden or ``__pycache__`` directory),
2. tokenizes each file to collect ``# repro-lint: disable=...``
   suppression comments (tokenize, not regex-over-lines, so ``#``
   inside string literals can never masquerade as a suppression),
3. parses the AST once and hands a shared :class:`FileContext` to each
   rule whose scope covers the file, and
4. appends ``bad-suppression`` / ``unused-suppression`` findings for
   malformed or dead escape hatches.

Paths are matched against rule scopes *relative to the repo root*
(the directory passed as ``root``), with ``/`` separators on every
platform, so scopes in rule classes stay portable.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.report import Diagnostic, LintReport
from repro.analysis.rules import (
    BAD_SUPPRESSION,
    UNUSED_SUPPRESSION,
    FileContext,
    Rule,
    Suppression,
    default_rules,
)

__all__ = ["LintRunner", "lint_paths", "parse_suppressions"]

_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,\- ]+?)"
    r"\s*(?:--\s*(?P<why>.*))?$"
)


def parse_suppressions(source: str) -> dict[int, list[Suppression]]:
    """Map *applies-to* line numbers to their parsed suppressions.

    A trailing comment applies to its own line.  A standalone comment
    line (nothing but the comment) applies to the next non-comment
    line, so multi-line statements can be suppressed at their head.
    """
    found: list[tuple[int, bool, Suppression]] = []
    comment_only_lines: set[int] = set()
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return {}
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        line_no = token.start[0]
        line_text = lines[line_no - 1] if line_no <= len(lines) else ""
        standalone = line_text.strip().startswith("#")
        match = _SUPPRESSION_RE.search(token.string)
        if match is None:
            continue
        rules = frozenset(
            name.strip() for name in match.group("rules").split(",") if name.strip()
        )
        suppression = Suppression(
            line=line_no,
            comment_line=line_no,
            rules=rules,
            justification=(match.group("why") or "").strip(),
        )
        found.append((line_no, standalone, suppression))
        if standalone:
            comment_only_lines.add(line_no)

    by_line: dict[int, list[Suppression]] = {}
    for line_no, standalone, suppression in found:
        target = line_no
        if standalone:
            # Walk down to the first line that is neither blank nor a
            # pure comment — the statement this suppression guards.
            probe = line_no + 1
            while probe <= len(lines) and (
                not lines[probe - 1].strip()
                or lines[probe - 1].strip().startswith("#")
            ):
                probe += 1
            target = probe
        suppression.line = target
        by_line.setdefault(target, []).append(suppression)
    return by_line


def _iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = candidate.relative_to(path).parts
                if any(p.startswith(".") or p == "__pycache__" for p in parts[:-1]):
                    continue
                yield candidate


class LintRunner:
    """Runs a rule set over files; see the module docstring.

    ``respect_scopes=False`` applies every rule to every file — the
    mode the fixture tests use to exercise rules on synthetic paths
    outside their production scopes.
    """

    def __init__(
        self,
        rules: Iterable[Rule] | None = None,
        *,
        root: Path | None = None,
        respect_scopes: bool = True,
        report_unused_suppressions: bool = True,
    ) -> None:
        self.rules: tuple[Rule, ...] = (
            tuple(rules) if rules is not None else default_rules()
        )
        self.root = (root or Path.cwd()).resolve()
        self.respect_scopes = respect_scopes
        self.report_unused_suppressions = report_unused_suppressions

    def _relpath(self, path: Path) -> str:
        resolved = path.resolve()
        try:
            return resolved.relative_to(self.root).as_posix()
        except ValueError:
            return resolved.as_posix()

    def run(self, paths: Sequence[Path | str]) -> LintReport:
        """Lint every ``.py`` file under ``paths``; aggregate findings."""
        report = LintReport()
        for path in _iter_python_files([Path(p) for p in paths]):
            context = self.check_file(path)
            if context is None:
                continue
            report.files_checked += 1
            report.diagnostics.extend(context.diagnostics)
        report.diagnostics.sort()
        return report

    def check_file(self, path: Path) -> FileContext | None:
        """Lint one file; returns its context, or ``None`` off-scope."""
        relpath = self._relpath(path)
        active = [
            rule
            for rule in self.rules
            if not self.respect_scopes or rule.applies_to(relpath)
        ]
        suppression_capable = bool(active) or self.report_unused_suppressions
        if not suppression_capable:
            return None
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            context = FileContext(path=relpath, tree=ast.Module(body=[], type_ignores=[]), source=source)
            context.diagnostics.append(
                Diagnostic(
                    path=relpath,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    rule="syntax-error",
                    message=f"file does not parse: {exc.msg}",
                )
            )
            return context
        context = FileContext(
            path=relpath,
            tree=tree,
            source=source,
            suppressions=parse_suppressions(source),
        )
        for rule in active:
            rule.check(context)
        self._audit_suppressions(context, active)
        return context

    def _audit_suppressions(
        self, context: FileContext, active: Sequence[Rule]
    ) -> None:
        active_names = {rule.name for rule in active}
        # Unknown-rule detection must consult the full catalog — every
        # lint rule AND every audit pass (the two commands share one
        # suppression syntax), not just this run's (possibly
        # --disable-filtered) rule set, so that disabling a rule does
        # not reclassify its suppressions.
        from repro.analysis.checks import known_rule_names

        known_names = (
            {rule.name for rule in self.rules}
            | known_rule_names()
            | {BAD_SUPPRESSION, UNUSED_SUPPRESSION}
        )
        for suppressions in context.suppressions.values():
            for suppression in suppressions:
                anchor = ast.Pass()
                anchor.lineno = suppression.comment_line
                anchor.col_offset = 0
                if not suppression.valid:
                    context.report(
                        BAD_SUPPRESSION,
                        anchor,
                        "suppression lacks a justification: write "
                        "'# repro-lint: disable=<rule> -- <why>'",
                    )
                    continue
                unknown = suppression.rules - known_names
                if unknown:
                    context.report(
                        BAD_SUPPRESSION,
                        anchor,
                        f"suppression names unknown rule(s): "
                        f"{', '.join(sorted(unknown))}",
                    )
                    continue
                if (
                    self.report_unused_suppressions
                    and not suppression.used
                    and suppression.rules & active_names
                ):
                    context.report(
                        UNUSED_SUPPRESSION,
                        anchor,
                        f"suppression for "
                        f"{', '.join(sorted(suppression.rules))} matched no "
                        f"finding; delete it or fix the justification target",
                    )


def lint_paths(
    paths: Sequence[Path | str],
    *,
    root: Path | None = None,
    rules: Iterable[Rule] | None = None,
) -> LintReport:
    """Convenience wrapper: lint ``paths`` with the default rule set."""
    return LintRunner(rules, root=root).run(paths)
