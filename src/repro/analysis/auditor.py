"""The audit driver: parse the program once, run whole-program passes.

:class:`AuditRunner` mirrors :class:`~repro.analysis.engine.LintRunner`
— same discovery, same suppression comments, same report/exit-code
contract — but parses *all* requested files up front, builds one
:class:`~repro.analysis.graph.ProgramGraph`, and hands it to
:class:`~repro.analysis.program.AuditPass` objects instead of walking
files one at a time.  ``repro audit`` is the CLI shell around it.

Suppression semantics are shared with the linter verbatim: a
``# repro-lint: disable=tensor-escape -- why`` comment absorbs an audit
finding on its line, malformed comments are ``bad-suppression``
findings, and suppressions naming a pass that is active for the file
but absorbed nothing are ``unused-suppression``.  Lint-rule
suppressions in the same files are left alone (they are not *active*
in an audit run, only *known*), so the two commands never fight over
each other's escape hatches.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.engine import _iter_python_files, parse_suppressions
from repro.analysis.graph import ProgramGraph, build_graph, module_name_for
from repro.analysis.program import AuditPass, ProgramContext
from repro.analysis.report import Diagnostic, LintReport
from repro.analysis.rules import (
    BAD_SUPPRESSION,
    UNUSED_SUPPRESSION,
    FileContext,
)

__all__ = ["AuditRunner", "audit_paths"]


def default_passes() -> tuple[AuditPass, ...]:
    """The audit-pass catalog (lazy import to keep layering acyclic)."""
    from repro.analysis.audit import all_passes

    return all_passes()


class AuditRunner:
    """Runs whole-program passes over a file set; see module docstring.

    ``respect_scopes=False`` lets every pass report into every file —
    the mode fixture tests use on synthetic packages outside the
    production ``src/repro`` scopes.
    """

    def __init__(
        self,
        passes: Iterable[AuditPass] | None = None,
        *,
        root: Path | None = None,
        respect_scopes: bool = True,
        report_unused_suppressions: bool = True,
    ) -> None:
        self.passes: tuple[AuditPass, ...] = (
            tuple(passes) if passes is not None else default_passes()
        )
        self.root = (root or Path.cwd()).resolve()
        self.respect_scopes = respect_scopes
        self.report_unused_suppressions = report_unused_suppressions

    def _relpath(self, path: Path) -> str:
        resolved = path.resolve()
        try:
            return resolved.relative_to(self.root).as_posix()
        except ValueError:
            return resolved.as_posix()

    def run(self, paths: Sequence[Path | str]) -> LintReport:
        """Audit the program rooted at ``paths``; aggregate findings."""
        report = LintReport()
        contexts: dict[str, FileContext] = {}
        parsed: list[tuple[Path, str, ast.Module, str]] = []
        for path in _iter_python_files([Path(p) for p in paths]):
            relpath = self._relpath(path)
            source = path.read_text(encoding="utf-8")
            report.files_checked += 1
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                report.diagnostics.append(
                    Diagnostic(
                        path=relpath,
                        line=exc.lineno or 1,
                        col=(exc.offset or 0) + 1,
                        rule="syntax-error",
                        message=f"file does not parse: {exc.msg}",
                    )
                )
                continue
            context = FileContext(
                path=relpath,
                tree=tree,
                source=source,
                suppressions=parse_suppressions(source),
            )
            module_name = module_name_for(path, self.root)
            contexts[module_name] = context
            parsed.append((path, relpath, tree, source))

        graph: ProgramGraph = build_graph(parsed, self.root)
        program = ProgramContext(
            graph, contexts, respect_scopes=self.respect_scopes
        )
        for audit_pass in self.passes:
            audit_pass.check_program(program)
        for context in contexts.values():
            self._audit_suppressions(context)
            report.diagnostics.extend(context.diagnostics)
        report.diagnostics.sort()
        return report

    def _audit_suppressions(self, context: FileContext) -> None:
        from repro.analysis.checks import known_rule_names

        active_names = {
            audit_pass.name
            for audit_pass in self.passes
            if not self.respect_scopes or audit_pass.applies_to(context.path)
        }
        known = known_rule_names()
        for suppressions in context.suppressions.values():
            for suppression in suppressions:
                anchor = ast.Pass()
                anchor.lineno = suppression.comment_line
                anchor.col_offset = 0
                if not suppression.valid:
                    context.report(
                        BAD_SUPPRESSION,
                        anchor,
                        "suppression lacks a justification: write "
                        "'# repro-lint: disable=<rule> -- <why>'",
                    )
                    continue
                unknown = suppression.rules - known
                if unknown:
                    context.report(
                        BAD_SUPPRESSION,
                        anchor,
                        f"suppression names unknown rule(s): "
                        f"{', '.join(sorted(unknown))}",
                    )
                    continue
                if (
                    self.report_unused_suppressions
                    and not suppression.used
                    and suppression.rules <= active_names
                ):
                    # Only suppressions aimed *exclusively* at audit
                    # passes active here can be judged dead by this run;
                    # lint-rule suppressions are the linter's to audit.
                    context.report(
                        UNUSED_SUPPRESSION,
                        anchor,
                        f"suppression for "
                        f"{', '.join(sorted(suppression.rules))} matched no "
                        f"finding; delete it or fix the justification target",
                    )


def audit_paths(
    paths: Sequence[Path | str],
    *,
    root: Path | None = None,
    passes: Iterable[AuditPass] | None = None,
) -> LintReport:
    """Convenience wrapper: audit ``paths`` with the default passes."""
    return AuditRunner(passes, root=root).run(paths)
