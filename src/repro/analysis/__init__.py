"""`repro-lint`: AST-based enforcement of the repo's reproducibility contracts.

PRs 1-2 made determinism and scalar/batch parity *load-bearing*: seeded
fault injection replays bit-identically, and every argmin-based plan
decision assumes the cost tensors it reads are immutable and bitwise
equal to the scalar path.  Nothing in Python stops one stray
``random.random()``, ``time.time()``, or in-place write to a cached
tensor from silently breaking those contracts — so this package checks
them statically.

Layout:

* :mod:`repro.analysis.report` — :class:`Diagnostic` and the
  text/JSON renderers.
* :mod:`repro.analysis.rules` — the :class:`Rule` protocol, the
  per-file :class:`FileContext`, and the rule registry.
* :mod:`repro.analysis.engine` — file discovery, suppression-comment
  parsing, and the :class:`LintRunner` that drives rules over a tree.
* :mod:`repro.analysis.checks` — one module per rule (the rule
  catalog lives in ``docs/static-analysis.md``).

The CLI front-end is ``repro lint`` (see :mod:`repro.cli`); CI and
``make lint`` gate on its exit code.
"""

from __future__ import annotations

from repro.analysis.engine import LintRunner, lint_paths
from repro.analysis.report import Diagnostic, LintReport, render_json, render_text
from repro.analysis.rules import FileContext, Rule, default_rules

__all__ = [
    "Diagnostic",
    "FileContext",
    "LintReport",
    "LintRunner",
    "Rule",
    "default_rules",
    "lint_paths",
    "render_json",
    "render_text",
]
