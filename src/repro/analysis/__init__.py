"""`repro-lint`: AST-based enforcement of the repo's reproducibility contracts.

PRs 1-2 made determinism and scalar/batch parity *load-bearing*: seeded
fault injection replays bit-identically, and every argmin-based plan
decision assumes the cost tensors it reads are immutable and bitwise
equal to the scalar path.  Nothing in Python stops one stray
``random.random()``, ``time.time()``, or in-place write to a cached
tensor from silently breaking those contracts — so this package checks
them statically.

Layout:

* :mod:`repro.analysis.report` — :class:`Diagnostic` and the
  text/JSON renderers.
* :mod:`repro.analysis.rules` — the :class:`Rule` protocol, the
  per-file :class:`FileContext`, and the rule registry.
* :mod:`repro.analysis.engine` — file discovery, suppression-comment
  parsing, and the :class:`LintRunner` that drives rules over a tree.
* :mod:`repro.analysis.checks` — one module per rule (the rule
  catalog lives in ``docs/static-analysis.md``).
* :mod:`repro.analysis.graph` — the whole-program substrate: import
  graph, symbol index, and the approximate call graph.
* :mod:`repro.analysis.program` / :mod:`repro.analysis.audit` — the
  :class:`AuditPass` framework and the interprocedural passes behind
  ``repro audit`` (tensor escape, cross-node aliasing, fault-path
  exception safety, RNG discipline).
* :mod:`repro.analysis.auditor` — the :class:`AuditRunner` driving
  passes over one parsed program.

The CLI front-ends are ``repro lint`` and ``repro audit`` (see
:mod:`repro.cli`); CI and ``make lint`` gate on both exit codes.
"""

from __future__ import annotations

from repro.analysis.auditor import AuditRunner, audit_paths
from repro.analysis.engine import LintRunner, lint_paths
from repro.analysis.report import Diagnostic, LintReport, render_json, render_text
from repro.analysis.rules import FileContext, Rule, default_rules

__all__ = [
    "AuditRunner",
    "Diagnostic",
    "FileContext",
    "LintReport",
    "LintRunner",
    "Rule",
    "audit_paths",
    "default_rules",
    "lint_paths",
    "render_json",
    "render_text",
]
