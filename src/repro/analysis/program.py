"""Whole-program pass framework: :class:`AuditPass` over a built graph.

``repro lint`` rules see one :class:`~repro.analysis.rules.FileContext`
at a time; ``repro audit`` passes see the whole program at once — a
:class:`ProgramContext` bundling the :class:`~repro.analysis.graph.
ProgramGraph` with every file's context.  Findings still flow through
``FileContext.report``, so path scopes, ``# repro-lint: disable=...``
suppressions, and the text/JSON report pipeline are shared verbatim
with the linter: one engine, two granularities.
"""

from __future__ import annotations

import ast
from typing import Mapping

from repro.analysis.graph import ProgramGraph
from repro.analysis.rules import FileContext, Rule

__all__ = ["AuditPass", "ProgramContext"]


class ProgramContext:
    """Everything an audit pass may consult about the analyzed program.

    ``contexts`` maps module names (``repro.engine.node``) to the
    per-file contexts carrying suppressions and collecting diagnostics.
    """

    def __init__(
        self,
        graph: ProgramGraph,
        contexts: Mapping[str, FileContext],
        *,
        respect_scopes: bool = True,
    ) -> None:
        self.graph = graph
        self.contexts = dict(contexts)
        self.respect_scopes = respect_scopes

    def report(
        self, audit_pass: "AuditPass", module: str, node: ast.AST, message: str
    ) -> None:
        """File a finding in ``module`` unless off-scope or suppressed."""
        context = self.contexts.get(module)
        if context is None:
            return
        if self.respect_scopes and not audit_pass.applies_to(context.path):
            return
        context.report(audit_pass, node, message)


class AuditPass(Rule):
    """Base class for whole-program passes.

    Subclasses implement :meth:`check_program` instead of ``check``;
    ``name``/``description``/``scope``/``allow`` keep their lint-rule
    meaning, with scopes applied to the file a finding *lands in* (the
    analysis itself always sees the whole program).
    """

    def check(self, context: FileContext) -> None:
        """Audit passes have no per-file mode; the runner never calls this."""
        raise NotImplementedError(
            f"{self.name} is a whole-program pass; use check_program()"
        )

    def check_program(self, program: ProgramContext) -> None:
        """Analyze the whole program; report via ``program.report``."""
        raise NotImplementedError
