"""``--diff <rev>`` support: restrict findings to changed files.

For pre-commit use, ``repro lint --diff HEAD~1`` (and the same flag on
``audit``) filters the report down to files changed since ``<rev>`` —
tracked changes from ``git diff`` plus untracked files.  The analysis
itself still runs over everything requested: the audit's
interprocedural passes need the whole program to resolve calls, and a
one-line change in a producer can surface a finding in an untouched
consumer — so filtering happens on the *report*, never on the input
set.  ``files_checked`` keeps the full count for the same reason.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

from repro.analysis.report import LintReport

__all__ = ["changed_files", "filter_report"]


def _git_lines(args: list[str], root: Path) -> list[str]:
    """Run one git command under ``root``; raise ValueError on failure."""
    try:
        completed = subprocess.run(
            ["git", "-C", str(root), *args],
            capture_output=True,
            text=True,
            check=False,
        )
    except OSError as exc:  # git not installed
        raise ValueError(f"cannot run git: {exc}") from exc
    if completed.returncode != 0:
        detail = completed.stderr.strip() or f"exit code {completed.returncode}"
        raise ValueError(f"git {' '.join(args[:2])} failed: {detail}")
    return [line.strip() for line in completed.stdout.splitlines() if line.strip()]


def changed_files(root: Path, rev: str) -> frozenset[str]:
    """``/``-separated paths (relative to ``root``) changed since ``rev``.

    The union of tracked changes (``git diff --name-only <rev>``,
    ``--relative`` so paths are anchored at ``root`` even in a deeper
    checkout) and untracked files — a brand-new module is exactly what
    a pre-commit check must not skip.  Raises :class:`ValueError` for
    an unknown revision or a non-repository ``root``.
    """
    tracked = _git_lines(
        ["diff", "--name-only", "--relative", rev, "--", "*.py"], root
    )
    untracked = _git_lines(
        ["ls-files", "--others", "--exclude-standard", "--", "*.py"], root
    )
    return frozenset(tracked) | frozenset(untracked)


def filter_report(report: LintReport, changed: frozenset[str]) -> LintReport:
    """A copy of ``report`` keeping only diagnostics in ``changed``."""
    filtered = LintReport(files_checked=report.files_checked)
    filtered.diagnostics = [
        diag for diag in report.diagnostics if diag.path in changed
    ]
    return filtered
