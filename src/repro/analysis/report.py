"""Diagnostics and the text/JSON renderers for ``repro lint``.

A :class:`Diagnostic` is one finding anchored to a file position; a
:class:`LintReport` aggregates the findings of a run plus the files
examined, and knows its process exit code.  Rendering is kept apart
from rule logic so rules stay pure AST-walkers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["Diagnostic", "LintReport", "render_text", "render_json"]


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One lint finding, ordered by position for stable output."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def location(self) -> str:
        """``path:line:col`` — the clickable anchor of the finding."""
        return f"{self.path}:{self.line}:{self.col}"


@dataclass
class LintReport:
    """The outcome of one lint run over a set of files."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        """0 when the tree is clean, 1 when any finding survived."""
        return 1 if self.diagnostics else 0

    def counts_by_rule(self) -> dict[str, int]:
        """Finding counts per rule name, sorted by rule name."""
        counts: dict[str, int] = {}
        for diag in self.diagnostics:
            counts[diag.rule] = counts.get(diag.rule, 0) + 1
        return dict(sorted(counts.items()))


def render_text(report: LintReport) -> str:
    """Human-readable findings, one per line, with a summary footer."""
    lines = [
        f"{diag.location()}: [{diag.rule}] {diag.message}"
        for diag in sorted(report.diagnostics)
    ]
    if report.diagnostics:
        by_rule = ", ".join(
            f"{rule}: {count}" for rule, count in report.counts_by_rule().items()
        )
        lines.append("")
        lines.append(
            f"{len(report.diagnostics)} finding(s) in "
            f"{report.files_checked} file(s) checked ({by_rule})"
        )
    else:
        lines.append(f"clean: {report.files_checked} file(s) checked, 0 findings")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (stable schema, version field included)."""
    payload = {
        "version": 1,
        "files_checked": report.files_checked,
        "counts": report.counts_by_rule(),
        "diagnostics": [
            {
                "path": diag.path,
                "line": diag.line,
                "col": diag.col,
                "rule": diag.rule,
                "message": diag.message,
            }
            for diag in sorted(report.diagnostics)
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
