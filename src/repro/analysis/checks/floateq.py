"""``no-float-eq``: no ``==`` / ``!=`` on float-typed expressions.

The parity contract (PR 2) promises the batch kernels are *bitwise*
identical to the scalar path — which is exactly why ad-hoc float
equality elsewhere is a trap: a comparison that happens to hold today
breaks the moment an accumulation order changes, and the failure is a
silent behavioural flip, not an exception.  Designated parity tests
compare floats exactly *on purpose*; production code should compare
against exact sentinels only with a justified suppression, and
otherwise use ordering (``<=``) or ``math.isclose``.

Float-ness is inferred file-locally (no cross-module type inference):

* ``float`` literals (``0.0``), calls to ``float(...)``, true division
  results, and ``math.*`` transcendentals are float;
* names/attributes/functions *annotated* ``float`` anywhere in the
  file (parameters, ``AnnAssign``, dataclass fields, ``-> float``
  returns, properties) are float;
* a binary operation is float when either side is.

This is deliberately a heuristic: it reports only comparisons it can
*prove* involve floats from local evidence, so it has misses but no
annotation-free false positives.  The fixture suite pins both sides.
"""

from __future__ import annotations

import ast

from repro.analysis.checks.common import dotted_name
from repro.analysis.rules import FileContext, Rule

__all__ = ["NoFloatEqRule"]

_MATH_FLOAT_FUNCS = frozenset(
    {
        "math.sqrt",
        "math.exp",
        "math.log",
        "math.log2",
        "math.log10",
        "math.sin",
        "math.cos",
        "math.tan",
        "math.hypot",
        "math.fsum",
        "math.fabs",
        # floor/ceil deliberately absent: they return int in Python 3.
        "math.pow",
        "math.fmod",
    }
)


def _is_float_annotation(annotation: ast.expr | None) -> bool:
    """True for ``float`` and ``float``-containing unions (``float | None``)."""
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id == "float"
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            return _is_float_annotation(ast.parse(annotation.value, mode="eval").body)
        except SyntaxError:
            return False
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return _is_float_annotation(annotation.left) or _is_float_annotation(
            annotation.right
        )
    return False


class _FloatFacts:
    """File-local names/attributes/callables known to be float-typed."""

    def __init__(self, tree: ast.Module) -> None:
        self.names: set[str] = set()
        self.attrs: set[str] = set()
        self.funcs: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in [
                    *args.posonlyargs,
                    *args.args,
                    *args.kwonlyargs,
                    args.vararg,
                    args.kwarg,
                ]:
                    if arg is not None and _is_float_annotation(arg.annotation):
                        self.names.add(arg.arg)
                if _is_float_annotation(node.returns):
                    self.funcs.add(node.name)
                    # A float-returning method doubles as a float
                    # attribute when decorated @property.
                    for decorator in node.decorator_list:
                        if (
                            isinstance(decorator, ast.Name)
                            and decorator.id == "property"
                        ):
                            self.attrs.add(node.name)
            elif isinstance(node, ast.AnnAssign):
                if not _is_float_annotation(node.annotation):
                    continue
                if isinstance(node.target, ast.Name):
                    # Class-body AnnAssigns (dataclass fields) also make
                    # the name available as a float attribute.
                    self.names.add(node.target.id)
                    self.attrs.add(node.target.id)
                elif isinstance(node.target, ast.Attribute):
                    self.attrs.add(node.target.attr)


class NoFloatEqRule(Rule):
    name = "no-float-eq"
    description = (
        "== / != on float-typed expressions; use ordering or math.isclose "
        "(designated parity tests excepted)"
    )
    scope = ("src/repro",)
    # Parity tests compare floats bitwise by design; the scalar/batch
    # equivalence suites live under tests/ and are not linted by
    # default, but keep them exempt even for explicit invocations.
    allow = ()

    def check(self, context: FileContext) -> None:
        facts = _FloatFacts(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._is_float(left, facts) or self._is_float(right, facts):
                    context.report(
                        self,
                        node,
                        "exact equality on a float-typed expression; prefer "
                        "ordering/tolerance, or suppress with a sentinel "
                        "justification",
                    )
                    break

    def _is_float(self, node: ast.expr, facts: _FloatFacts) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.Name):
            return node.id in facts.names
        if isinstance(node, ast.Attribute):
            return node.attr in facts.attrs
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name):
                return node.func.id == "float" or node.func.id in facts.funcs
            if isinstance(node.func, ast.Attribute):
                if node.func.attr in facts.funcs:
                    return True
                return (dotted_name(node.func) or "") in _MATH_FLOAT_FUNCS
            return False
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True
            return self._is_float(node.left, facts) or self._is_float(
                node.right, facts
            )
        if isinstance(node, ast.UnaryOp):
            return self._is_float(node.operand, facts)
        if isinstance(node, ast.IfExp):
            return self._is_float(node.body, facts) or self._is_float(
                node.orelse, facts
            )
        return False
