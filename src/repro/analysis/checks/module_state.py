"""``no-module-mutable-state``: no mutable containers at module scope.

Module-level lists/dicts/sets are process-wide state: one caller's
mutation leaks into every other caller, across tests, and across
simulated runs that are supposed to be independent.  In ``core/`` and
``query/`` — the deterministic compile pipeline — constants must be
immutable: tuples, ``frozenset``, or ``types.MappingProxyType``.

``__all__`` and other dunders are exempt (convention predates this
rule and the import system treats them read-only in practice), as are
``TypeVar``-style assignments that merely *call* something returning
an immutable object.
"""

from __future__ import annotations

import ast

from repro.analysis.checks.mutable_defaults import is_mutable_value
from repro.analysis.rules import FileContext, Rule

__all__ = ["NoModuleMutableStateRule"]


class NoModuleMutableStateRule(Rule):
    name = "no-module-mutable-state"
    description = (
        "module-level mutable container is process-wide shared state; use "
        "a tuple / frozenset / MappingProxyType"
    )
    scope = ("src/repro/core", "src/repro/query")

    def check(self, context: FileContext) -> None:
        for statement in context.tree.body:
            targets: list[ast.expr]
            value: ast.expr | None
            if isinstance(statement, ast.Assign):
                targets, value = statement.targets, statement.value
            elif isinstance(statement, ast.AnnAssign):
                targets, value = [statement.target], statement.value
            else:
                continue
            if value is None or not is_mutable_value(value):
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names:
                continue
            if all(name.startswith("__") and name.endswith("__") for name in names):
                continue
            context.report(
                self,
                statement,
                f"module-level mutable container {', '.join(names)!s}; "
                "freeze it (tuple / frozenset / types.MappingProxyType) so "
                "runs cannot couple through it",
            )
