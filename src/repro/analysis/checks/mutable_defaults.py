"""``no-mutable-default``: no shared mutable default arguments.

A ``def f(xs=[])`` default is evaluated once and shared across calls —
hidden global state in a package whose contract is that results are a
pure function of explicit inputs and seeds.  Flagged defaults: list /
dict / set displays and comprehensions, and calls to ``list`` /
``dict`` / ``set`` / ``bytearray`` / ``collections.defaultdict`` /
``collections.deque``.  Use ``None`` plus an in-body default instead.
"""

from __future__ import annotations

import ast

from repro.analysis.checks.common import dotted_name
from repro.analysis.rules import FileContext, Rule

__all__ = ["NoMutableDefaultRule", "is_mutable_value"]

_MUTABLE_CONSTRUCTORS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.deque",
        "defaultdict",
        "deque",
    }
)


def is_mutable_value(node: ast.expr) -> bool:
    """True for expressions that build a (shared-able) mutable container."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in _MUTABLE_CONSTRUCTORS
    return False


class NoMutableDefaultRule(Rule):
    name = "no-mutable-default"
    description = (
        "mutable default argument is shared across calls; default to None "
        "and build inside the body"
    )
    scope = ("src/repro/core", "src/repro/query")

    def check(self, context: FileContext) -> None:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = [*node.args.defaults, *node.args.kw_defaults]
            for default in defaults:
                if default is not None and is_mutable_value(default):
                    context.report(
                        self,
                        default,
                        f"mutable default in {node.name}(); one instance is "
                        "shared across every call — use None and construct "
                        "in the body",
                    )
