"""``no-unseeded-rng``: all entropy flows through ``repro.util.rng``.

The determinism contract (PR 1) is that one integer seed reproduces an
entire run bit-for-bit.  That only holds while every random draw comes
from a generator derived via :func:`repro.util.rng.derive_rng` or
:class:`repro.util.rng.SeedSequenceFactory`.  A bare ``random.random()``
or ``np.random.default_rng()`` pulls OS entropy outside the seed tree
and silently breaks replay, so inside the simulation/compile packages
this rule flags:

* any import of the stdlib ``random`` module (its module-level
  functions share hidden global state — even ``random.seed`` calls
  would race across components), and
* any *call* into the ``numpy.random`` namespace.  Non-call references
  (``np.random.Generator`` in an annotation or ``isinstance`` check)
  stay legal — they name types, they do not draw entropy.

``repro/util/rng.py`` is the one allowlisted home for the real calls.
"""

from __future__ import annotations

import ast

from repro.analysis.checks.common import ImportMap
from repro.analysis.rules import FileContext, Rule

__all__ = ["NoUnseededRngRule"]


class NoUnseededRngRule(Rule):
    name = "no-unseeded-rng"
    description = (
        "bare random.* / np.random.* outside repro/util/rng.py breaks "
        "seed-reproducibility"
    )
    scope = (
        "src/repro/engine",
        "src/repro/core",
        "src/repro/runtime",
        "src/repro/workloads",
    )
    allow = ("src/repro/util/rng.py",)

    def check(self, context: FileContext) -> None:
        imports = ImportMap(context.tree)
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        context.report(
                            self,
                            node,
                            "stdlib 'random' has hidden global state; use "
                            "repro.util.rng.derive_rng / SeedSequenceFactory",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "random":
                    context.report(
                        self,
                        node,
                        "importing from stdlib 'random' bypasses the seed "
                        "tree; use repro.util.rng instead",
                    )
            elif isinstance(node, ast.Call):
                canonical = imports.canonical(node.func)
                if canonical is None:
                    continue
                if canonical.startswith("numpy.random.") or canonical.startswith(
                    "random."
                ):
                    context.report(
                        self,
                        node,
                        f"direct call to {canonical}; route entropy through "
                        "repro.util.rng so one seed reproduces the run",
                    )
