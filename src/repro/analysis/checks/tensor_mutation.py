"""``no-cached-tensor-mutation``: cached cost tensors are immutable.

:class:`~repro.core.cost_tensor.CostTensorCache` and
:meth:`~repro.core.parameter_space.ParameterSpace.grid_matrix` memoize
arrays that *every* downstream decision — ERP coverage, robustness,
weights, routing tables — reads by reference.  One in-place write
corrupts all of them at once, and NumPy views make it easy to do so
accidentally three variables away from the cache access.

The arrays themselves are frozen with ``setflags(write=False)`` (the
runtime layer of this invariant); this rule is the static layer that
catches the write *before* it becomes a runtime crash in some distant
code path.  Per function, it runs a simple forward taint pass:

* reading ``*.grid_matrix()``, ``*.cost_tensor``, ``*.load_tensor(...)``
  or ``*.plan_ranks`` taints the result;
* assignment propagates taint; subscripting/attribute access on a
  tainted value stays tainted (views alias the cache);
* ``.copy()`` / ``.astype()`` / ``np.array(...)`` and reductions break
  taint (they allocate fresh storage).

Flagged: augmented assignment to a tainted target, item/slice stores
into a tainted array, in-place methods (``fill``, ``sort``, ...) on a
tainted receiver, and ``setflags(write=True)`` on anything tainted.
The pass is intra-procedural and flow-insensitive across branches —
deliberately simple, with the runtime freeze as the backstop.
"""

from __future__ import annotations

import ast

from repro.analysis.rules import FileContext, Rule

__all__ = ["NoCachedTensorMutationRule"]

#: Attribute/method names whose read yields a cached (shared) array.
_SOURCES = frozenset(
    {"grid_matrix", "cost_tensor", "load_tensor", "plan_ranks", "load_matrix"}
)

#: ndarray methods that mutate the receiver in place.
_INPLACE_METHODS = frozenset(
    {"fill", "sort", "put", "itemset", "partition", "resize", "byteswap"}
)

#: Calls on a tainted value that return freshly-allocated storage.
_TAINT_BREAKERS = frozenset(
    {
        "copy",
        "astype",
        "tolist",
        "sum",
        "mean",
        "min",
        "max",
        "argmin",
        "argmax",
        "item",
    }
)


class NoCachedTensorMutationRule(Rule):
    name = "no-cached-tensor-mutation"
    description = (
        "in-place writes to arrays flowing from CostTensorCache / "
        "ParameterSpace.grid_matrix corrupt every consumer"
    )
    scope = ("src/repro",)

    def check(self, context: FileContext) -> None:
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(context, node)

    def _check_function(
        self, context: FileContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        tainted: set[str] = set()
        for statement in self._statements(func):
            self._apply_statement(context, statement, tainted)

    def _statements(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> list[ast.stmt]:
        """All statements of ``func`` in source order, excluding nested
        function/class bodies (they get their own pass)."""
        collected: list[ast.stmt] = []

        def visit(body: list[ast.stmt]) -> None:
            for statement in body:
                collected.append(statement)
                for field_name, value in ast.iter_fields(statement):
                    if isinstance(
                        statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                    ):
                        continue
                    if field_name in ("body", "orelse", "finalbody"):
                        if isinstance(value, list):
                            visit(value)
                    elif field_name == "handlers" and isinstance(value, list):
                        for handler in value:
                            visit(handler.body)
                    elif field_name == "cases" and isinstance(value, list):
                        for case in value:
                            visit(case.body)

        visit(func.body)
        return collected

    def _apply_statement(
        self, context: FileContext, statement: ast.stmt, tainted: set[str]
    ) -> None:
        for call in self._calls_in(statement):
            self._check_call(context, call, tainted)
        if isinstance(statement, ast.Assign):
            value_tainted = self._is_tainted(statement.value, tainted)
            for target in statement.targets:
                self._bind_target(context, target, value_tainted, tainted)
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            value_tainted = self._is_tainted(statement.value, tainted)
            self._bind_target(context, statement.target, value_tainted, tainted)
        elif isinstance(statement, ast.AugAssign):
            if self._target_reaches_cache(statement.target, tainted):
                context.report(
                    self,
                    statement,
                    "augmented assignment mutates a cached tensor in place; "
                    "work on a .copy()",
                )
        elif isinstance(statement, ast.For):
            # ``for row in cache.cost_tensor`` hands out row views.
            self._bind_target(
                context,
                statement.target,
                self._is_tainted(statement.iter, tainted),
                tainted,
            )

    def _bind_target(
        self,
        context: FileContext,
        target: ast.expr,
        value_tainted: bool,
        tainted: set[str],
    ) -> None:
        if isinstance(target, ast.Name):
            if value_tainted:
                tainted.add(target.id)
            else:
                tainted.discard(target.id)
        elif isinstance(target, ast.Subscript):
            if self._is_tainted(target.value, tainted):
                context.report(
                    self,
                    target,
                    "item/slice store into a cached tensor; it is shared by "
                    "every consumer — write to a .copy()",
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(context, element, value_tainted, tainted)

    def _target_reaches_cache(self, target: ast.expr, tainted: set[str]) -> bool:
        if isinstance(target, ast.Name):
            return target.id in tainted
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            return self._is_tainted(target.value, tainted)
        return False

    def _calls_in(self, statement: ast.stmt) -> list[ast.Call]:
        calls: list[ast.Call] = []
        # Only the statement's own expressions — nested suites are
        # visited as separate statements by _statements().
        for field_name, value in ast.iter_fields(statement):
            if field_name in ("body", "orelse", "finalbody", "handlers", "cases"):
                continue
            nodes = value if isinstance(value, list) else [value]
            for item in nodes:
                if isinstance(item, ast.AST):
                    calls.extend(
                        n for n in ast.walk(item) if isinstance(n, ast.Call)
                    )
        return calls

    def _check_call(
        self, context: FileContext, call: ast.Call, tainted: set[str]
    ) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        if not self._is_tainted(func.value, tainted):
            return
        if func.attr in _INPLACE_METHODS:
            context.report(
                self,
                call,
                f".{func.attr}() mutates a cached tensor in place; operate "
                "on a .copy()",
            )
        elif func.attr == "setflags" and self._enables_write(call):
            context.report(
                self,
                call,
                "setflags(write=True) re-opens a frozen cached tensor for "
                "writing; copy it instead",
            )

    def _enables_write(self, call: ast.Call) -> bool:
        for keyword in call.keywords:
            if keyword.arg == "write" and not (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value in (False, 0)
            ):
                return True
        if call.args and not (
            isinstance(call.args[0], ast.Constant)
            and call.args[0].value in (False, 0)
        ):
            return True
        return False

    def _is_tainted(self, node: ast.expr, tainted: set[str]) -> bool:
        if isinstance(node, ast.Name):
            return node.id in tainted
        if isinstance(node, ast.Attribute):
            if node.attr in _SOURCES:
                return True
            return self._is_tainted(node.value, tainted)
        if isinstance(node, ast.Subscript):
            return self._is_tainted(node.value, tainted)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr in _SOURCES:
                    return True
                if func.attr in _TAINT_BREAKERS:
                    return False
                return self._is_tainted(func.value, tainted)
            if isinstance(func, ast.Name) and func.id in ("np", "numpy"):
                return False
            return False
        if isinstance(node, ast.IfExp):
            return self._is_tainted(node.body, tainted) or self._is_tainted(
                node.orelse, tainted
            )
        return False
