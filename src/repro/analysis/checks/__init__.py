"""The rule catalog: one module per rule, assembled here.

Adding a rule = adding a module with a :class:`~repro.analysis.rules.Rule`
subclass, instantiating it in :func:`all_rules`, and documenting it in
``docs/static-analysis.md`` (the doc test cross-checks the catalog).
"""

from __future__ import annotations

from repro.analysis.checks.floateq import NoFloatEqRule
from repro.analysis.checks.module_state import NoModuleMutableStateRule
from repro.analysis.checks.mutable_defaults import NoMutableDefaultRule
from repro.analysis.checks.rng import NoUnseededRngRule
from repro.analysis.checks.tensor_mutation import NoCachedTensorMutationRule
from repro.analysis.checks.wallclock import NoWallclockRule
from repro.analysis.rules import Rule

__all__ = ["all_rules"]


def all_rules() -> tuple[Rule, ...]:
    """Fresh instances of every rule, in documentation order."""
    return (
        NoUnseededRngRule(),
        NoWallclockRule(),
        NoFloatEqRule(),
        NoCachedTensorMutationRule(),
        NoMutableDefaultRule(),
        NoModuleMutableStateRule(),
    )
