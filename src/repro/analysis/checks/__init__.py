"""The rule catalog: one module per rule, assembled here.

Adding a rule = adding a module with a :class:`~repro.analysis.rules.Rule`
subclass, instantiating it in :func:`all_rules`, and documenting it in
``docs/static-analysis.md`` (the doc test cross-checks the catalog).
"""

from __future__ import annotations

from repro.analysis.checks.floateq import NoFloatEqRule
from repro.analysis.checks.module_state import NoModuleMutableStateRule
from repro.analysis.checks.mutable_defaults import NoMutableDefaultRule
from repro.analysis.checks.rng import NoUnseededRngRule
from repro.analysis.checks.tensor_mutation import NoCachedTensorMutationRule
from repro.analysis.checks.wallclock import NoWallclockRule
from repro.analysis.rules import Rule

__all__ = ["all_rules", "known_rule_names"]


def all_rules() -> tuple[Rule, ...]:
    """Fresh instances of every rule, in documentation order."""
    return (
        NoUnseededRngRule(),
        NoWallclockRule(),
        NoFloatEqRule(),
        NoCachedTensorMutationRule(),
        NoMutableDefaultRule(),
        NoModuleMutableStateRule(),
    )


def known_rule_names() -> frozenset[str]:
    """Every valid ``disable=`` target: lint rules, audit passes, and
    the suppression-audit pseudo-rules.

    ``repro lint`` and ``repro audit`` share one suppression syntax, so
    each command must recognise the other's names (a lint run finding a
    ``disable=tensor-escape`` comment reports nothing; only a genuinely
    unknown name is a ``bad-suppression``).
    """
    from repro.analysis.audit import all_passes
    from repro.analysis.rules import BAD_SUPPRESSION, UNUSED_SUPPRESSION

    return frozenset(
        {rule.name for rule in all_rules()}
        | {audit_pass.name for audit_pass in all_passes()}
        | {BAD_SUPPRESSION, UNUSED_SUPPRESSION}
    )
