"""``no-wallclock``: simulation and compile paths never read the clock.

Simulated time is event-loop time: the engine advances a virtual clock
so that a run's observable behaviour is a pure function of its inputs
and seed.  Reading ``time.time()`` (or any host clock) inside those
paths couples results to machine speed and breaks bit-for-bit replay.

Legitimate wall-clock needs — compile-time profiling, benchmark
timing — go through :mod:`repro.util.timing` (:class:`StageTimer`,
:class:`Stopwatch`), the single allowlisted home of
``time.perf_counter``.  Everything else in the scoped packages is
flagged, whether called through the module (``time.time()``) or a
``from time import perf_counter`` alias.
"""

from __future__ import annotations

import ast

from repro.analysis.checks.common import ImportMap
from repro.analysis.rules import FileContext, Rule

__all__ = ["NoWallclockRule"]

#: Canonical dotted names of host-clock reads.
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class NoWallclockRule(Rule):
    name = "no-wallclock"
    description = (
        "host-clock reads in simulation/compile paths; use "
        "repro.util.timing (StageTimer/Stopwatch) instead"
    )
    scope = (
        "src/repro/engine",
        "src/repro/core",
        "src/repro/runtime",
        "src/repro/workloads",
    )
    allow = ("src/repro/util/timing.py",)

    def check(self, context: FileContext) -> None:
        imports = ImportMap(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = imports.canonical(node.func)
            if canonical in _CLOCK_CALLS:
                context.report(
                    self,
                    node,
                    f"{canonical}() reads the host clock; deterministic "
                    "paths must use simulated time, and profiling must go "
                    "through repro.util.timing",
                )
