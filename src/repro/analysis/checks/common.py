"""Shared AST helpers for the rule modules.

Two recurring needs: resolving an attribute chain to a dotted name
(``np.random.default_rng`` from nested ``Attribute`` nodes) and
tracking what local names an ``import`` bound to which modules, so
rules can see through aliases like ``import numpy as np`` or
``from time import perf_counter as clock``.
"""

from __future__ import annotations

import ast

__all__ = ["dotted_name", "ImportMap"]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Local-name → canonical dotted-name bindings from import statements.

    ``import numpy as np`` binds ``np -> numpy``;
    ``from datetime import datetime as dt`` binds
    ``dt -> datetime.datetime``.  :meth:`canonical` rewrites a dotted
    expression through these bindings, so a rule can match the
    canonical ``numpy.random.default_rng`` however the file spells it.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._bindings: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    self._bindings[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._bindings[local] = f"{node.module}.{alias.name}"

    def canonical(self, node: ast.AST) -> str | None:
        """Canonical dotted name of an expression, through import aliases."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        resolved = self._bindings.get(head, head)
        return f"{resolved}.{rest}" if rest else resolved
