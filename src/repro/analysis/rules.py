"""The rule framework: per-file context, the rule base class, registry.

A rule is a stateless object with a ``name``, a default path ``scope``
(directory prefixes relative to the repo root), and a ``check`` method
that walks one file's AST and reports findings through the
:class:`FileContext`.  Scoping and suppression filtering happen in the
context, so rule bodies contain nothing but invariant logic.

Suppressions
------------

A finding on line ``N`` is suppressed when line ``N`` (or a standalone
comment line directly above it) carries::

    # repro-lint: disable=<rule>[,<rule>...] -- <justification>

The justification after ``--`` is mandatory: a suppression without one
does not suppress anything and instead raises a ``bad-suppression``
finding, so every escape hatch in the tree documents *why* the
invariant does not apply.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.analysis.report import Diagnostic

__all__ = [
    "BAD_SUPPRESSION",
    "UNUSED_SUPPRESSION",
    "FileContext",
    "Rule",
    "Suppression",
    "default_rules",
]

#: Pseudo-rule name for malformed suppression comments.
BAD_SUPPRESSION = "bad-suppression"

#: Pseudo-rule name for suppressions that matched no finding.
UNUSED_SUPPRESSION = "unused-suppression"


@dataclass
class Suppression:
    """One parsed ``# repro-lint: disable=...`` comment.

    ``line`` is the source line the suppression *applies to* (for a
    standalone comment line, the first code line below it);
    ``comment_line`` is where the comment itself sits.  ``rules`` is
    the set of rule names disabled; ``justification`` the text after
    ``--`` (empty means malformed).  ``used`` flips when a finding is
    actually absorbed, enabling unused-suppression reporting.
    """

    line: int
    comment_line: int
    rules: frozenset[str]
    justification: str
    used: bool = False

    @property
    def valid(self) -> bool:
        """True when the mandatory justification is present."""
        return bool(self.justification.strip())


@dataclass
class FileContext:
    """Everything a rule may consult about the file under check."""

    path: str
    tree: ast.Module
    source: str
    suppressions: Mapping[int, list[Suppression]] = field(default_factory=dict)
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def report(self, rule: "Rule | str", node: ast.AST, message: str) -> None:
        """File a finding at ``node`` unless a suppression absorbs it."""
        rule_name = rule if isinstance(rule, str) else rule.name
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        for suppression in self.suppressions.get(line, ()):
            if suppression.valid and rule_name in suppression.rules:
                suppression.used = True
                return
        self.diagnostics.append(
            Diagnostic(path=self.path, line=line, col=col, rule=rule_name, message=message)
        )


class Rule:
    """Base class for all lint rules.

    Subclasses set :attr:`name` (the suppression/CLI identifier),
    :attr:`description` (one line, for ``--list-rules`` and docs),
    :attr:`scope` (directory prefixes, ``/``-separated and relative to
    the repo root, the rule applies to — empty means everywhere), and
    :attr:`allow` (exact relative paths exempt even inside the scope).
    """

    name: str = ""
    description: str = ""
    scope: tuple[str, ...] = ()
    allow: tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        """Whether ``relpath`` (``/``-separated) is inside this rule's
        scope and not explicitly allowlisted."""
        if relpath in self.allow:
            return False
        if not self.scope:
            return True
        return any(
            relpath == prefix or relpath.startswith(prefix + "/")
            for prefix in self.scope
        )

    def check(self, context: FileContext) -> None:
        """Walk ``context.tree`` and report findings; override me."""
        raise NotImplementedError


def default_rules() -> tuple[Rule, ...]:
    """The full rule catalog, in stable (documentation) order."""
    from repro.analysis.checks import all_rules

    return all_rules()


def resolve_rules(
    enabled: Iterable[Rule], disable: Sequence[str] = ()
) -> tuple[Rule, ...]:
    """Filter a rule set by ``--disable`` names; unknown names raise."""
    rules = tuple(enabled)
    known = {rule.name for rule in rules}
    unknown = [name for name in disable if name not in known]
    if unknown:
        raise ValueError(f"unknown rule(s): {', '.join(sorted(unknown))}")
    dropped = set(disable)
    return tuple(rule for rule in rules if rule.name not in dropped)
