"""``shared-node-state``: no hidden mutable channels between nodes.

RLD's simulated cluster only models a *distributed* system if the
``Node``/``Monitor`` objects are isolated: a dict, list, or set built
once and handed to two node instances (or to one constructor inside a
loop building many) is a shared-memory channel no real deployment has,
and a determinism hazard besides — one node's in-place update silently
changes what another observes.

The pass computes, per program class, which constructor parameters are
*retained* (stored on ``self`` without an intervening copy — dataclass
fields always are; ``dict(p)``/``list(p)``/``p.copy()`` wrappers break
retention), then flags any locally-built mutable object that is passed
to a retaining parameter of

* two or more node-like constructors (class name containing ``Node``
  or ``Monitor``, directly or via a program base class), or
* one node-like constructor *inside a loop* — the same object ends up
  inside every instance the loop builds.

Approximations: only mutables built in the reporting function are
tracked (a dict threaded through parameters is invisible — see
docs/static-analysis.md), and retention is judged from direct ``self``
stores in ``__init__``.
"""

from __future__ import annotations

import ast

from repro.analysis.graph import (
    COPY_WRAPPERS,
    ClassInfo,
    FunctionInfo,
    ProgramGraph,
)
from repro.analysis.program import AuditPass, ProgramContext

__all__ = ["SharedNodeStatePass"]

#: Constructor calls to these builtins (and display literals) produce a
#: locally-owned mutable object worth tracking.
_MUTABLE_BUILDERS = frozenset({"dict", "list", "set", "defaultdict", "deque"})


def _node_like(graph: ProgramGraph, cls: ClassInfo) -> bool:
    if "Node" in cls.name or "Monitor" in cls.name:
        return True
    return graph.inherits_from(cls, "Node") or any(
        "Node" in base.rpartition(".")[2] or "Monitor" in base.rpartition(".")[2]
        for base in cls.bases
    )


def retained_params(cls: ClassInfo) -> set[str]:
    """``__init__`` parameters stored on ``self`` without a copy."""
    if cls.is_dataclass:
        return set(cls.init_params())
    init = cls.methods.get("__init__")
    if init is None:
        return set()
    params = {p.arg for p in init.parameters()}
    retained: set[str] = set()
    for node in ast.walk(init.node):
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        if not any(
            isinstance(t, ast.Attribute)
            and isinstance(t.value, ast.Name)
            and t.value.id == "self"
            for t in targets
        ):
            continue
        for name in _retaining_names(value):
            if name in params:
                retained.add(name)
    return retained


def _retaining_names(value: ast.expr) -> set[str]:
    """Parameter names ``value`` would store *by reference*."""
    if isinstance(value, ast.Name):
        return {value.id}
    if isinstance(value, ast.BoolOp):  # ``p or default`` retains p
        names: set[str] = set()
        for operand in value.values:
            names |= _retaining_names(operand)
        return names
    if isinstance(value, ast.IfExp):
        return _retaining_names(value.body) | _retaining_names(value.orelse)
    if isinstance(value, ast.Call):
        func = value.func
        wrapper = func.id if isinstance(func, ast.Name) else None
        if wrapper in COPY_WRAPPERS:
            return set()  # fresh storage
        if isinstance(func, ast.Attribute) and func.attr in ("copy", "deepcopy"):
            return set()
        return set()  # other calls: assume they build something new
    return set()


class SharedNodeStatePass(AuditPass):
    name = "shared-node-state"
    description = (
        "a mutable object reachable from more than one Node/Monitor "
        "instance is hidden shared state between 'distributed' nodes"
    )
    scope = ("src/repro",)

    def check_program(self, program: ProgramContext) -> None:
        graph = program.graph
        retain_cache: dict[str, set[str]] = {}
        for function in graph.all_functions():
            self._check_function(program, graph, function, retain_cache)

    def _check_function(
        self,
        program: ProgramContext,
        graph: ProgramGraph,
        function: FunctionInfo,
        retain_cache: dict[str, set[str]],
    ) -> None:
        mutables = self._local_mutables(function)
        if not mutables:
            return
        #: mutable name -> list of (call node, inside_loop, class name)
        uses: dict[str, list[tuple[ast.Call, bool, str]]] = {}
        for site_call, in_loop in self._calls_with_loop_depth(function.node):
            cls = self._constructed_class(graph, function, site_call)
            if cls is None or not _node_like(graph, cls):
                continue
            if cls.qualname not in retain_cache:
                retain_cache[cls.qualname] = retained_params(cls)
            retained = retain_cache[cls.qualname]
            if not retained:
                continue
            params = cls.init_params()
            for position, arg in enumerate(site_call.args):
                if isinstance(arg, ast.Name) and arg.id in mutables:
                    if position < len(params) and params[position] in retained:
                        uses.setdefault(arg.id, []).append(
                            (site_call, in_loop, cls.name)
                        )
            for keyword in site_call.keywords:
                if (
                    keyword.arg in retained
                    and isinstance(keyword.value, ast.Name)
                    and keyword.value.id in mutables
                ):
                    uses.setdefault(keyword.value.id, []).append(
                        (site_call, in_loop, cls.name)
                    )
        for name, sites in uses.items():
            loop_sites = [s for s in sites if s[1]]
            if len(sites) >= 2:
                call, _, cls_name = sites[1]
                others = sorted({s[2] for s in sites})
                program.report(
                    self,
                    function.module,
                    call,
                    f"mutable {name!r} is retained by {len(sites)} node-like "
                    f"constructors ({', '.join(others)}); each instance must "
                    "get its own copy",
                )
            elif loop_sites:
                call, _, cls_name = loop_sites[0]
                program.report(
                    self,
                    function.module,
                    call,
                    f"mutable {name!r} is retained by {cls_name} constructed "
                    "in a loop: every instance shares the same object — copy "
                    "per iteration",
                )

    def _local_mutables(self, function: FunctionInfo) -> set[str]:
        mutables: set[str] = set()
        for node in ast.walk(function.node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if self._builds_mutable(node.value):
                mutables.add(target.id)
            else:
                mutables.discard(target.id)
        return mutables

    @staticmethod
    def _builds_mutable(value: ast.expr) -> bool:
        if isinstance(value, (ast.Dict, ast.List, ast.Set)):
            return True
        if isinstance(value, (ast.DictComp, ast.ListComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            return value.func.id in _MUTABLE_BUILDERS
        return False

    def _calls_with_loop_depth(
        self, func_node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> list[tuple[ast.Call, bool]]:
        found: list[tuple[ast.Call, bool]] = []

        def visit(node: ast.AST, in_loop: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue  # nested defs get their own pass
                child_in_loop = in_loop or isinstance(
                    child, (ast.For, ast.While, ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                )
                if isinstance(child, ast.Call):
                    found.append((child, child_in_loop))
                visit(child, child_in_loop)

        visit(func_node, False)
        return found

    def _constructed_class(
        self, graph: ProgramGraph, function: FunctionInfo, call: ast.Call
    ) -> ClassInfo | None:
        module = graph.modules[function.module]
        canonical = module.canonical(call.func)
        if canonical is None:
            return None
        for candidate in (f"{function.module}.{canonical}", canonical):
            resolved = graph.resolve(candidate)
            if resolved is not None and resolved in graph.classes:
                return graph.classes[resolved]
        return None
