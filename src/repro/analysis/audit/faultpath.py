"""``fault-hook-raises``: on_fault hooks never raise past the engine.

The simulator calls each strategy's ``on_fault(simulator, event)``
after applying an injected fault.  The fault ledger (crash counts,
downtime, stalls) is mid-update around that call: an exception escaping
the hook unwinds the event loop and kills the run, turning a *survived*
fault into a crashed simulation — the exact opposite of the graceful
degradation the hook exists for.  The sanctioned channel is
:class:`repro.engine.faults.FaultError`: the engine catches it, counts
it in ``report.fault_hook_errors``, and keeps running.

This pass proves the property interprocedurally: a fixpoint over the
call graph computes, per function, the set of exception types that can
escape it (explicit ``raise`` statements, bare re-raises inside
handlers, and everything propagated from resolved callees), modeling
``try/except`` by matching raised types against handler clauses through
both the builtin exception hierarchy and program-defined base chains.
Any type escaping an ``on_fault`` hook that is not ``FaultError`` (or a
subclass) is a finding, with the propagation chain in the message.

Approximations (see docs/static-analysis.md): only *explicit* raises
are modeled — ``KeyError`` from a bare subscript, ``AssertionError``
from ``assert``, or a raising property getter are invisible; unresolved
calls contribute nothing.  The engine-side ``except FaultError`` guard
is the runtime backstop for what the statics miss.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.graph import (
    CallSite,
    ClassInfo,
    FunctionInfo,
    ProgramGraph,
)
from repro.analysis.program import AuditPass, ProgramContext

__all__ = ["FaultHookRaisesPass"]

#: Name of the sanctioned hook exception (matched by class name so
#: fixtures can define their own without importing the engine's).
SANCTIONED = "FaultError"

#: Builtin exception -> immediate parent, enough of the hierarchy to
#: match ``except`` clauses in this codebase and its fixtures.
_BUILTIN_PARENT = {
    "ValueError": "Exception",
    "TypeError": "Exception",
    "RuntimeError": "Exception",
    "NotImplementedError": "RuntimeError",
    "RecursionError": "RuntimeError",
    "KeyError": "LookupError",
    "IndexError": "LookupError",
    "LookupError": "Exception",
    "ArithmeticError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "FloatingPointError": "ArithmeticError",
    "AttributeError": "Exception",
    "AssertionError": "Exception",
    "OSError": "Exception",
    "IOError": "OSError",
    "FileNotFoundError": "OSError",
    "PermissionError": "OSError",
    "StopIteration": "Exception",
    "MemoryError": "Exception",
    "NameError": "Exception",
    "UnboundLocalError": "NameError",
    "ImportError": "Exception",
    "ModuleNotFoundError": "ImportError",
    "Exception": "BaseException",
    "KeyboardInterrupt": "BaseException",
    "SystemExit": "BaseException",
    "BaseException": "",
}


@dataclass
class _Summary:
    """Exceptions escaping one function: type name -> provenance chain."""

    escapes: dict[str, str] = field(default_factory=dict)


class _ExceptionModel:
    """Subclass queries across builtins and program-defined classes."""

    def __init__(self, graph: ProgramGraph) -> None:
        self._graph = graph

    def base_chain(self, name: str) -> list[str]:
        """``name`` and all its ancestors, by last-component class name."""
        chain = [name]
        seen = {name}
        current = name
        while True:
            cls = self._lookup(current)
            if cls is not None:
                parents = [base.rpartition(".")[2] for base in cls.bases]
                parent = parents[0] if parents else "Exception"
            else:
                parent = _BUILTIN_PARENT.get(current)
            if not parent or parent in seen:
                break
            chain.append(parent)
            seen.add(parent)
            current = parent
        return chain

    def _lookup(self, name: str) -> ClassInfo | None:
        for cls in self._graph.classes.values():
            if cls.name == name:
                return cls
        return None

    def caught_by(self, raised: str, handler_types: set[str] | None) -> bool:
        """Would ``except <handler_types>`` catch a raised ``raised``?

        ``None`` means a bare ``except:`` (catches everything).
        """
        if handler_types is None:
            return True
        chain = set(self.base_chain(raised))
        return bool(chain & handler_types)

    def is_sanctioned(self, raised: str) -> bool:
        return SANCTIONED in self.base_chain(raised)


class FaultHookRaisesPass(AuditPass):
    name = "fault-hook-raises"
    description = (
        "on_fault hooks must not raise anything but FaultError past the "
        "engine's fault accounting"
    )
    scope = ("src/repro",)

    def check_program(self, program: ProgramContext) -> None:
        graph = program.graph
        model = _ExceptionModel(graph)
        summaries = self._fixpoint(graph, model)
        for function in graph.all_functions():
            if function.name != "on_fault" or not function.is_method:
                continue
            summary = summaries.get(function.qualname)
            if summary is None:
                continue
            for exc, chain in sorted(summary.escapes.items()):
                if model.is_sanctioned(exc):
                    continue
                via = f" (via {chain})" if chain else ""
                program.report(
                    self,
                    function.module,
                    function.node,
                    f"on_fault may raise {exc}{via}; catch it and re-raise "
                    "FaultError so the engine's fault accounting survives",
                )

    # ------------------------------------------------------------------
    # Escape-set fixpoint
    # ------------------------------------------------------------------

    def _fixpoint(
        self, graph: ProgramGraph, model: _ExceptionModel
    ) -> dict[str, _Summary]:
        summaries: dict[str, _Summary] = {
            f.qualname: _Summary() for f in graph.all_functions()
        }
        call_cache: dict[str, list[CallSite]] = {}
        changed = True
        rounds = 0
        while changed and rounds < 20:
            changed = False
            rounds += 1
            for function in graph.all_functions():
                if function.qualname not in call_cache:
                    call_cache[function.qualname] = list(
                        graph.resolved_calls(function)
                    )
                new = self._escapes_of(
                    graph, model, function, summaries, call_cache[function.qualname]
                )
                current = summaries[function.qualname].escapes
                for exc, chain in new.items():
                    if exc not in current:
                        current[exc] = chain
                        changed = True
        return summaries

    def _escapes_of(
        self,
        graph: ProgramGraph,
        model: _ExceptionModel,
        function: FunctionInfo,
        summaries: dict[str, _Summary],
        sites: list[CallSite],
    ) -> dict[str, str]:
        module = graph.modules[function.module]
        targets_by_call: dict[int, CallSite] = {id(s.call): s for s in sites}

        def exc_name(node: ast.expr | None) -> str | None:
            if node is None:
                return None
            target = node.func if isinstance(node, ast.Call) else node
            canonical = module.canonical(target)
            if canonical is None:
                return None
            return canonical.rpartition(".")[2]

        def call_escapes(call: ast.Call) -> dict[str, str]:
            site = targets_by_call.get(id(call))
            if site is None:
                return {}
            escaped: dict[str, str] = {}
            for target in site.targets:
                functions: list[FunctionInfo] = []
                if isinstance(target, FunctionInfo):
                    functions.append(target)
                elif isinstance(target, ClassInfo):
                    for ctor_name in ("__init__", "__post_init__"):
                        ctor = graph.method_on(target, ctor_name)
                        if ctor is not None:
                            functions.append(ctor)
                for callee in functions:
                    summary = summaries.get(callee.qualname)
                    if summary is None:
                        continue
                    for exc, chain in summary.escapes.items():
                        hop = callee.qualname.rpartition(".")[2]
                        owner = (
                            f"{callee.class_name}.{hop}"
                            if callee.class_name
                            else hop
                        )
                        new_chain = owner if not chain else f"{owner} <- {chain}"
                        escaped.setdefault(exc, new_chain)
            return escaped

        def body_escapes(
            body: list[ast.stmt], handler_ctx: set[str] | None
        ) -> dict[str, str]:
            escaped: dict[str, str] = {}
            for statement in body:
                escaped.update(stmt_escapes(statement, handler_ctx))
            return escaped

        def expr_escapes(statement: ast.stmt) -> dict[str, str]:
            escaped: dict[str, str] = {}
            for field_name, value in ast.iter_fields(statement):
                if field_name in ("body", "orelse", "finalbody", "handlers", "cases"):
                    continue
                nodes = value if isinstance(value, list) else [value]
                for item in nodes:
                    if isinstance(item, ast.AST):
                        for sub in ast.walk(item):
                            if isinstance(sub, ast.Call):
                                escaped.update(call_escapes(sub))
            return escaped

        def stmt_escapes(
            statement: ast.stmt, handler_ctx: set[str] | None
        ) -> dict[str, str]:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                return {}
            escaped = expr_escapes(statement)
            if isinstance(statement, ast.Raise):
                if statement.exc is None:
                    # Bare re-raise: escapes whatever the enclosing
                    # handler caught.
                    if handler_ctx:
                        for caught in handler_ctx:
                            escaped.setdefault(caught, "")
                else:
                    name = exc_name(statement.exc)
                    if name is not None:
                        escaped.setdefault(name, "")
            elif isinstance(statement, ast.Try):
                from_body = body_escapes(statement.body, handler_ctx)
                for handler in statement.handlers:
                    types = _handler_types(handler, exc_name)
                    caught_here = {
                        exc
                        for exc in from_body
                        if model.caught_by(exc, types)
                    }
                    for exc in caught_here:
                        from_body.pop(exc, None)
                    ctx = (
                        caught_here
                        or (types if types is not None else set())
                        or {"Exception"}
                    )
                    escaped.update(body_escapes(handler.body, ctx))
                escaped.update(from_body)
                escaped.update(body_escapes(statement.orelse, handler_ctx))
                escaped.update(body_escapes(statement.finalbody, handler_ctx))
            else:
                for field_name in ("body", "orelse", "finalbody"):
                    sub_body = getattr(statement, field_name, None)
                    if isinstance(sub_body, list):
                        escaped.update(body_escapes(sub_body, handler_ctx))
                cases = getattr(statement, "cases", None)
                if isinstance(cases, list):
                    for case in cases:
                        escaped.update(body_escapes(case.body, handler_ctx))
            return escaped

        return body_escapes(function.node.body, None)


def _handler_types(handler, exc_name) -> set[str] | None:  # type: ignore[no-untyped-def]
    """Class names an ``except`` clause catches; ``None`` for bare."""
    if handler.type is None:
        return None
    types: set[str] = set()
    clauses = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for clause in clauses:
        name = exc_name(clause)
        if name is not None:
            types.add(name)
    return types or None
