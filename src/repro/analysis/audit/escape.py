"""``tensor-escape``: cached tensors stay frozen across module lines.

The intra-file ``no-cached-tensor-mutation`` rule catches a function
that reads ``cache.cost_tensor`` and writes into it.  It cannot see

* a *producer* — a function or property named like a cache surface
  (``grid_matrix``, ``cost_tensor``, ``load_tensor``, ``plan_ranks``,
  ``load_matrix``) — that hands out an array it never froze with
  ``setflags(write=False)`` or ``.copy()``; nor
* a *consumer* in another module that mutates an array it received
  from a helper which aliases the cache (``def costs(c): return
  c.cost_tensor`` in module A, ``costs(c)[0] = 1`` in module B).

This pass adds both, on top of the program graph:

1. **Producer freeze check** — for every function/method whose name is
   a cache surface, every returned value must be provably frozen: an
   attribute some assignment in the class froze, a local that was
   frozen (including dict-of-arrays frozen value-by-value via ``for v
   in d.values(): v.setflags(write=False)``), or a fresh copy.
2. **Interprocedural consumer check** — a fixpoint computes, per
   function, whether its return value aliases a cache surface; call
   results from alias-returning functions are then treated as tainted
   in every caller, and in-place writes to them are findings.  Taint
   seeded *only* through call edges, so intra-file mutations stay the
   linter's report and are never double-counted here.

Approximations (see docs/static-analysis.md): attribute freezes are
class-local and flow-insensitive (a freeze anywhere in the class
counts); aliasing through containers other than the returned value is
not tracked; the runtime ``setflags(write=False)`` freeze remains the
backstop for what the statics miss.
"""

from __future__ import annotations

import ast

from repro.analysis.checks.tensor_mutation import (
    _INPLACE_METHODS,
    _SOURCES,
    _TAINT_BREAKERS,
)
from repro.analysis.graph import ClassInfo, FunctionInfo, ProgramGraph
from repro.analysis.program import AuditPass, ProgramContext

__all__ = ["TensorEscapePass"]

#: Function/method/property names that are cache surfaces: their return
#: value is handed to every consumer by reference.
SURFACE_NAMES = _SOURCES


def _is_freeze_call(call: ast.Call) -> bool:
    """``x.setflags(write=False)``?"""
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "setflags"):
        return False
    for keyword in call.keywords:
        if keyword.arg == "write":
            return isinstance(keyword.value, ast.Constant) and keyword.value.value in (
                False,
                0,
            )
    if call.args:
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value in (False, 0)
    return False


def _self_attr(node: ast.expr) -> str | None:
    """``self.X`` -> ``X``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _ClassFreezes:
    """Which locals and ``self`` attributes a class provably freezes."""

    def __init__(self, cls: ClassInfo) -> None:
        self.frozen_attrs: set[str] = set()
        #: frozen locals per method qualname.
        self.frozen_locals: dict[str, set[str]] = {}
        for method in cls.methods.values():
            self._scan(method)

    def _scan(self, method: FunctionInfo) -> None:
        frozen: set[str] = set()
        self.frozen_locals[method.qualname] = frozen
        for node in ast.walk(method.node):
            if isinstance(node, ast.Call) and _is_freeze_call(node):
                receiver = node.func.value  # type: ignore[union-attr]
                attr = _self_attr(receiver)
                if attr is not None:
                    self.frozen_attrs.add(attr)
                elif isinstance(receiver, ast.Name):
                    frozen.add(receiver.id)
            elif isinstance(node, ast.For):
                # ``for v in d.values(): v.setflags(write=False)`` freezes
                # the dict's values; treat ``d`` as frozen.
                self._scan_values_freeze(node, frozen)
        # Second sweep: an attribute assigned from a frozen local (or a
        # fresh copy) is frozen; a subscript store of a frozen local
        # into an attribute container freezes the container.
        for node in ast.walk(method.node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            value_frozen = (
                isinstance(node.value, ast.Name) and node.value.id in frozen
            ) or self._is_fresh(node.value)
            if not value_frozen:
                continue
            attr = _self_attr(target)
            if attr is not None:
                self.frozen_attrs.add(attr)
            elif isinstance(target, ast.Subscript):
                container = _self_attr(target.value)
                if container is not None:
                    self.frozen_attrs.add(container)

    def _scan_values_freeze(self, loop: ast.For, frozen: set[str]) -> None:
        if not (
            isinstance(loop.iter, ast.Call)
            and isinstance(loop.iter.func, ast.Attribute)
            and loop.iter.func.attr == "values"
            and isinstance(loop.iter.func.value, ast.Name)
            and isinstance(loop.target, ast.Name)
        ):
            return
        item = loop.target.id
        for node in ast.walk(loop):
            if (
                isinstance(node, ast.Call)
                and _is_freeze_call(node)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == item
            ):
                frozen.add(loop.iter.func.value.id)
                return

    @staticmethod
    def _is_fresh(value: ast.expr) -> bool:
        """Copies and reductions are fresh storage, no freeze needed."""
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in _TAINT_BREAKERS
        )


class TensorEscapePass(AuditPass):
    name = "tensor-escape"
    description = (
        "cache-surface producers must freeze what they return; consumers "
        "must not mutate arrays aliased through helper calls"
    )
    scope = ("src/repro",)

    def check_program(self, program: ProgramContext) -> None:
        graph = program.graph
        self._check_producers(program, graph)
        alias_returners = self._alias_summaries(graph)
        self._check_consumers(program, graph, alias_returners)

    # ------------------------------------------------------------------
    # Producer half
    # ------------------------------------------------------------------

    def _check_producers(self, program: ProgramContext, graph: ProgramGraph) -> None:
        freezes_by_class: dict[str, _ClassFreezes] = {}
        for function in graph.all_functions():
            if function.name not in SURFACE_NAMES:
                continue
            owner = (
                f"{function.module}.{function.class_name}"
                if function.class_name
                else None
            )
            freezes: _ClassFreezes | None = None
            if owner is not None and owner in graph.classes:
                if owner not in freezes_by_class:
                    freezes_by_class[owner] = _ClassFreezes(graph.classes[owner])
                freezes = freezes_by_class[owner]
            self._check_surface(program, function, freezes)

    def _check_surface(
        self,
        program: ProgramContext,
        function: FunctionInfo,
        freezes: _ClassFreezes | None,
    ) -> None:
        frozen_attrs = freezes.frozen_attrs if freezes else set()
        frozen_locals = (
            freezes.frozen_locals.get(function.qualname, set())
            if freezes
            else self._module_function_frozen_locals(function)
        )
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            if self._return_is_safe(node.value, frozen_attrs, frozen_locals):
                continue
            program.report(
                self,
                function.module,
                node,
                f"cache surface {function.name}() returns an array that is "
                "never frozen; call setflags(write=False) before handing it "
                "out, or return a .copy()",
            )

    def _module_function_frozen_locals(self, function: FunctionInfo) -> set[str]:
        frozen: set[str] = set()
        for node in ast.walk(function.node):
            if (
                isinstance(node, ast.Call)
                and _is_freeze_call(node)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
            ):
                frozen.add(node.func.value.id)
        return frozen

    def _return_is_safe(
        self, value: ast.expr, frozen_attrs: set[str], frozen_locals: set[str]
    ) -> bool:
        if isinstance(value, ast.Constant):
            return True
        attr = _self_attr(value)
        if attr is not None:
            return attr in frozen_attrs
        if isinstance(value, ast.Name):
            return value.id in frozen_locals
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Attribute) and func.attr in _TAINT_BREAKERS:
                return True
            # Any other call: fresh storage from some builder — the
            # builder is its own producer if it is surface-named.
            return True
        if isinstance(value, (ast.Tuple, ast.List)):
            return all(
                self._return_is_safe(element, frozen_attrs, frozen_locals)
                for element in value.elts
            )
        return False

    # ------------------------------------------------------------------
    # Consumer half
    # ------------------------------------------------------------------

    def _alias_summaries(self, graph: ProgramGraph) -> set[str]:
        """Qualnames of functions whose return value aliases a cache."""
        alias: set[str] = set()
        changed = True
        passes = 0
        while changed and passes < 10:
            changed = False
            passes += 1
            for function in graph.all_functions():
                if function.qualname in alias:
                    continue
                if self._returns_alias(graph, function, alias):
                    alias.add(function.qualname)
                    changed = True
        return alias

    def _returns_alias(
        self, graph: ProgramGraph, function: FunctionInfo, alias: set[str]
    ) -> bool:
        call_targets = self._call_alias_map(graph, function, alias)
        tainted = self._tainted_locals(function, call_targets, seed_sources=True)
        for node in ast.walk(function.node):
            if isinstance(node, ast.Return) and node.value is not None:
                if self._expr_tainted(
                    node.value, tainted, call_targets, seed_sources=True
                ):
                    return True
        return False

    def _call_alias_map(
        self, graph: ProgramGraph, function: FunctionInfo, alias: set[str]
    ) -> dict[int, str]:
        """AST id of each call whose (resolved) target returns an alias,
        mapped to the target's qualname (for finding messages)."""
        targets: dict[int, str] = {}
        for site in graph.resolved_calls(function):
            for target in site.targets:
                if isinstance(target, FunctionInfo) and target.qualname in alias:
                    targets[id(site.call)] = target.qualname
                    break
        return targets

    def _tainted_locals(
        self,
        function: FunctionInfo,
        call_targets: dict[int, str],
        *,
        seed_sources: bool,
    ) -> set[str]:
        """Names bound (flow-insensitively) to a cache-aliasing value."""
        tainted: set[str] = set()
        for _ in range(3):  # tiny fixpoint for chained assignments
            before = len(tainted)
            for node in ast.walk(function.node):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name) and self._expr_tainted(
                        node.value, tainted, call_targets, seed_sources=seed_sources
                    ):
                        tainted.add(target.id)
            if len(tainted) == before:
                break
        return tainted

    def _expr_tainted(
        self,
        node: ast.expr,
        tainted: set[str],
        call_targets: dict[int, str],
        *,
        seed_sources: bool,
    ) -> bool:
        if isinstance(node, ast.Name):
            return node.id in tainted
        if isinstance(node, ast.Attribute):
            if seed_sources and node.attr in _SOURCES:
                return True
            return self._expr_tainted(
                node.value, tainted, call_targets, seed_sources=seed_sources
            )
        if isinstance(node, ast.Subscript):
            return self._expr_tainted(
                node.value, tainted, call_targets, seed_sources=seed_sources
            )
        if isinstance(node, ast.Call):
            if id(node) in call_targets:
                return True
            func = node.func
            if isinstance(func, ast.Attribute):
                if seed_sources and func.attr in _SOURCES:
                    return True
                if func.attr in _TAINT_BREAKERS:
                    return False
                return self._expr_tainted(
                    func.value, tainted, call_targets, seed_sources=seed_sources
                )
            return False
        if isinstance(node, ast.IfExp):
            return self._expr_tainted(
                node.body, tainted, call_targets, seed_sources=seed_sources
            ) or self._expr_tainted(
                node.orelse, tainted, call_targets, seed_sources=seed_sources
            )
        return False

    def _check_consumers(
        self, program: ProgramContext, graph: ProgramGraph, alias: set[str]
    ) -> None:
        for function in graph.all_functions():
            call_targets = self._call_alias_map(graph, function, alias)
            if not call_targets:
                continue
            # Taint flows ONLY from alias-returning calls here: direct
            # ``.cost_tensor`` mutations are the intra-file linter's
            # finding and must not be double-reported.
            tainted = self._tainted_locals(function, call_targets, seed_sources=False)
            producer = next(iter(sorted(call_targets.values())))
            self._report_mutations(
                program, function, tainted, call_targets, producer
            )

    def _report_mutations(
        self,
        program: ProgramContext,
        function: FunctionInfo,
        tainted: set[str],
        call_targets: dict[int, str],
        producer: str,
    ) -> None:
        def is_tainted(expr: ast.expr) -> bool:
            return self._expr_tainted(
                expr, tainted, call_targets, seed_sources=False
            )

        for node in ast.walk(function.node):
            if isinstance(node, ast.AugAssign):
                target = node.target
                base = (
                    target.value
                    if isinstance(target, (ast.Subscript, ast.Attribute))
                    else target
                )
                if is_tainted(base):
                    program.report(
                        self,
                        function.module,
                        node,
                        f"augmented assignment mutates an array aliased from "
                        f"{producer}(); copy before writing",
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and is_tainted(
                        target.value
                    ):
                        program.report(
                            self,
                            function.module,
                            target,
                            f"item/slice store into an array aliased from "
                            f"{producer}(); it is cache-backed — write to a "
                            ".copy()",
                        )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if not is_tainted(node.func.value):
                    continue
                if node.func.attr in _INPLACE_METHODS:
                    program.report(
                        self,
                        function.module,
                        node,
                        f".{node.func.attr}() mutates an array aliased from "
                        f"{producer}(); operate on a .copy()",
                    )
                elif node.func.attr == "setflags" and not _is_freeze_call(node):
                    program.report(
                        self,
                        function.module,
                        node,
                        f"setflags(write=True) re-opens an array aliased from "
                        f"{producer}(); copy it instead",
                    )
