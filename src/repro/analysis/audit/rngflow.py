"""``shared-rng``: one Generator never feeds two per-node components.

Determinism in this codebase means *per-component* determinism: each
stochastic part (a workload profile, a node's arrival process, the
monitor's jitter) owns an independent child generator derived from one
root seed (``repro.util.rng``).  Handing the *same*
``numpy.random.Generator`` object to two components couples their draw
sequences: whichever component happens to draw first changes what the
other sees, so results depend on call order — the interleaving bug
class that seeded replay cannot catch because the seed never changed.

Two findings, computed over the program graph:

* **bare store** — a constructor/method parameter that is a Generator
  (annotation mentions ``Generator``, or the parameter is literally
  named ``rng``) assigned to ``self`` directly.  The sanctioned idiom
  is an integer seed (``derive_rng(seed)`` builds a fresh stream) or an
  explicit child (``SeedSequenceFactory.child()``); storing the
  caller's generator couples the instance to every other consumer of
  that object.
* **shared across instances** — one Generator-typed local passed to
  retaining generator parameters of two or more constructors, or of
  one constructor called in a loop.  Retention here includes stores
  *through* ``derive_rng`` — it passes Generator arguments through
  unchanged by design, so ``self._rng = derive_rng(rng_param)`` still
  shares the caller's stream.

``repro.util.rng`` itself is allowlisted: pass-through is its job.
"""

from __future__ import annotations

import ast

from repro.analysis.graph import ClassInfo, FunctionInfo, ProgramGraph
from repro.analysis.program import AuditPass, ProgramContext

__all__ = ["SharedRngPass"]

#: Parameter names treated as generator-valued even without annotation.
_RNG_NAMES = frozenset({"rng", "generator"})


def _is_generator_param(param: ast.arg) -> bool:
    if param.arg in _RNG_NAMES:
        return True
    if param.annotation is None:
        return False
    return "Generator" in ast.unparse(param.annotation)


def _is_derive_call(value: ast.expr) -> bool:
    """``derive_rng(...)`` however it is spelled."""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None
    )
    return name == "derive_rng"


def rng_retained_params(cls: ClassInfo) -> set[str]:
    """``__init__`` generator params the instance keeps a live alias to.

    A bare ``self.x = p`` store retains, and so does ``self.x =
    derive_rng(p)``: for a Generator argument ``derive_rng`` is the
    identity, so the stream is still the caller's.
    """
    init = cls.methods.get("__init__")
    if init is None:
        return set()
    gen_params = {p.arg for p in init.parameters() if _is_generator_param(p)}
    if not gen_params:
        return set()
    retained: set[str] = set()
    for node in ast.walk(init.node):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            continue
        value = node.value
        if isinstance(value, ast.Name) and value.id in gen_params:
            retained.add(value.id)
        elif _is_derive_call(value):
            assert isinstance(value, ast.Call)
            for arg in value.args:
                if isinstance(arg, ast.Name) and arg.id in gen_params:
                    retained.add(arg.id)
    return retained


class SharedRngPass(AuditPass):
    name = "shared-rng"
    description = (
        "a seeded Generator handed to per-node code must go through "
        "derive_rng children, never be shared between instances"
    )
    scope = (
        "src/repro/engine",
        "src/repro/core",
        "src/repro/runtime",
        "src/repro/workloads",
    )
    allow = ("src/repro/util/rng.py",)

    def check_program(self, program: ProgramContext) -> None:
        graph = program.graph
        retain_cache: dict[str, set[str]] = {}
        for function in graph.all_functions():
            self._check_bare_store(program, function)
            self._check_sharing(program, graph, function, retain_cache)

    # ------------------------------------------------------------------
    # Bare self-store of a caller's generator
    # ------------------------------------------------------------------

    def _check_bare_store(
        self, program: ProgramContext, function: FunctionInfo
    ) -> None:
        if not function.is_method:
            return
        gen_params = {
            p.arg for p in function.parameters() if _is_generator_param(p)
        }
        if not gen_params:
            return
        for node in ast.walk(function.node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            if isinstance(node.value, ast.Name) and node.value.id in gen_params:
                program.report(
                    self,
                    function.module,
                    node,
                    f"parameter {node.value.id!r} may be the caller's "
                    "Generator stored by reference; derive an independent "
                    "child (SeedSequenceFactory) or accept an int seed "
                    "through derive_rng",
                )

    # ------------------------------------------------------------------
    # One generator object feeding multiple retaining constructors
    # ------------------------------------------------------------------

    def _check_sharing(
        self,
        program: ProgramContext,
        graph: ProgramGraph,
        function: FunctionInfo,
        retain_cache: dict[str, set[str]],
    ) -> None:
        gen_locals = self._generator_locals(function)
        if not gen_locals:
            return
        uses: dict[str, list[tuple[ast.Call, bool, str]]] = {}
        for call, in_loop in self._calls_with_loop_depth(function.node):
            cls = self._constructed_class(graph, function, call)
            if cls is None:
                continue
            if cls.qualname not in retain_cache:
                retain_cache[cls.qualname] = rng_retained_params(cls)
            retained = retain_cache[cls.qualname]
            if not retained:
                continue
            params = cls.init_params()
            for position, arg in enumerate(call.args):
                if (
                    isinstance(arg, ast.Name)
                    and arg.id in gen_locals
                    and position < len(params)
                    and params[position] in retained
                ):
                    uses.setdefault(arg.id, []).append((call, in_loop, cls.name))
            for keyword in call.keywords:
                if (
                    keyword.arg in retained
                    and isinstance(keyword.value, ast.Name)
                    and keyword.value.id in gen_locals
                ):
                    uses.setdefault(keyword.value.id, []).append(
                        (call, in_loop, cls.name)
                    )
        for name, sites in uses.items():
            loop_sites = [s for s in sites if s[1]]
            if len(sites) >= 2:
                call, _, _ = sites[1]
                owners = sorted({s[2] for s in sites})
                program.report(
                    self,
                    function.module,
                    call,
                    f"Generator {name!r} is retained by {len(sites)} "
                    f"constructors ({', '.join(owners)}); their draw "
                    "sequences interleave — give each a "
                    "SeedSequenceFactory child",
                )
            elif loop_sites:
                call, _, cls_name = loop_sites[0]
                program.report(
                    self,
                    function.module,
                    call,
                    f"Generator {name!r} is retained by {cls_name} "
                    "constructed in a loop: every instance shares one draw "
                    "stream — derive a child per iteration",
                )

    def _generator_locals(self, function: FunctionInfo) -> set[str]:
        """Names bound to a Generator: typed params and derive_rng results."""
        names = {
            p.arg for p in function.parameters() if _is_generator_param(p)
        }
        for node in ast.walk(function.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and _is_derive_call(node.value)
            ):
                names.add(node.targets[0].id)
        return names

    # Shared helpers (mirror the aliasing pass's shapes).

    def _calls_with_loop_depth(
        self, func_node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> list[tuple[ast.Call, bool]]:
        found: list[tuple[ast.Call, bool]] = []

        def visit(node: ast.AST, in_loop: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                child_in_loop = in_loop or isinstance(
                    child,
                    (ast.For, ast.While, ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
                )
                if isinstance(child, ast.Call):
                    found.append((child, child_in_loop))
                visit(child, child_in_loop)

        visit(func_node, False)
        return found

    def _constructed_class(
        self, graph: ProgramGraph, function: FunctionInfo, call: ast.Call
    ) -> ClassInfo | None:
        module = graph.modules[function.module]
        canonical = module.canonical(call.func)
        if canonical is None:
            return None
        for candidate in (f"{function.module}.{canonical}", canonical):
            resolved = graph.resolve(candidate)
            if resolved is not None and resolved in graph.classes:
                return graph.classes[resolved]
        return None
