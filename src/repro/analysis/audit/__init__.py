"""The whole-program audit passes behind ``repro audit``.

Each pass is an :class:`~repro.analysis.program.AuditPass` run over the
:class:`~repro.analysis.graph.ProgramGraph`; ``all_passes()`` is the
catalog in documentation order (mirroring ``all_rules()`` for the
linter).  See ``docs/static-analysis.md`` for the pass catalog and the
approximations each one makes.
"""

from __future__ import annotations

from repro.analysis.audit.aliasing import SharedNodeStatePass
from repro.analysis.audit.escape import TensorEscapePass
from repro.analysis.audit.faultpath import FaultHookRaisesPass
from repro.analysis.audit.rngflow import SharedRngPass
from repro.analysis.program import AuditPass

__all__ = [
    "FaultHookRaisesPass",
    "SharedNodeStatePass",
    "SharedRngPass",
    "TensorEscapePass",
    "all_passes",
]


def all_passes() -> tuple[AuditPass, ...]:
    """The full audit-pass catalog, in stable (documentation) order."""
    return (
        TensorEscapePass(),
        SharedNodeStatePass(),
        FaultHookRaisesPass(),
        SharedRngPass(),
    )
