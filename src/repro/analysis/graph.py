"""Whole-program structure: import graph, symbol index, call graph.

``repro lint`` (PR 3) checks invariants one file at a time; the audit
passes in :mod:`repro.analysis.audit` check invariants that only exist
*between* files — a cached tensor produced in ``core`` and mutated in
``runtime``, an ``on_fault`` hook whose exception originates three
calls away in ``engine``.  This module builds the shared substrate
those passes walk:

* :class:`ModuleInfo` — one parsed module with its import bindings
  (absolute *and* relative imports resolved to canonical dotted names).
* :class:`FunctionInfo` / :class:`ClassInfo` — the symbol index over
  every function, method, and class in the analyzed tree, including
  per-class attribute-type inference (``self._loop = EventLoop()``
  types ``_loop`` as ``EventLoop``) and dataclass detection.
* :class:`ProgramGraph` — name resolution through import/re-export
  chains plus :meth:`ProgramGraph.resolved_calls`, the approximate
  call graph.

Call-graph approximations (documented in ``docs/static-analysis.md``):
resolution follows local names, import aliases, ``self``, parameter
annotations, constructor-typed locals, and inferred attribute types;
an attribute call whose receiver stays unknown falls back to matching
the method name across all program classes (capped at
:data:`NAME_FALLBACK_LIMIT` candidates, dunders excluded).  Calls into
code outside the analyzed tree (numpy, the stdlib) are opaque — the
graph neither follows nor invents edges for them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from repro.analysis.checks.common import dotted_name

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProgramGraph",
    "build_graph",
    "module_name_for",
]

#: An unresolved attribute call is matched by method name across the
#: program only while at most this many classes define the method —
#: beyond that the name is too generic to make honest edges from.
NAME_FALLBACK_LIMIT = 3

#: Wrappers whose result is fresh storage, not an alias of the argument.
COPY_WRAPPERS = frozenset(
    {
        "dict",
        "list",
        "set",
        "tuple",
        "frozenset",
        "sorted",
        "copy",
        "deepcopy",
        "MappingProxyType",
    }
)


@dataclass
class ModuleInfo:
    """One parsed module of the analyzed program."""

    name: str
    path: Path
    relpath: str
    tree: ast.Module
    source: str
    #: local name -> canonical dotted target (``np`` -> ``numpy``,
    #: ``SimNode`` -> ``repro.engine.node.SimNode``).
    bindings: dict[str, str] = field(default_factory=dict)

    def canonical(self, node: ast.AST) -> str | None:
        """Canonical dotted name of an expression through the bindings."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        resolved = self.bindings.get(head, head)
        return f"{resolved}.{rest}" if rest else resolved


@dataclass
class FunctionInfo:
    """One function or method in the program."""

    qualname: str
    module: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    def parameters(self) -> list[ast.arg]:
        """Positional/keyword parameters, ``self`` excluded for methods."""
        args = self.node.args
        params = list(args.posonlyargs) + list(args.args)
        if self.is_method and params:
            params = params[1:]
        return params + list(args.kwonlyargs)


@dataclass
class ClassInfo:
    """One class in the program, with approximate structure."""

    qualname: str
    module: str
    node: ast.ClassDef
    #: Canonical dotted names of base classes (may be outside the program).
    bases: tuple[str, ...] = ()
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: Inferred instance-attribute types: attr name -> class qualname.
    attr_types: dict[str, str] = field(default_factory=dict)
    is_dataclass: bool = False

    @property
    def name(self) -> str:
        return self.node.name

    def init_params(self) -> list[str]:
        """``__init__`` parameter names (dataclasses: field names)."""
        init = self.methods.get("__init__")
        if init is not None:
            return [p.arg for p in init.parameters()]
        if self.is_dataclass:
            names = []
            for statement in self.node.body:
                if isinstance(statement, ast.AnnAssign) and isinstance(
                    statement.target, ast.Name
                ):
                    names.append(statement.target.id)
            return names
        return []


@dataclass
class CallSite:
    """One resolved call edge: the AST call plus its targets.

    ``targets`` holds every plausible callee — exactly one for a
    precise resolution, several for a name-fallback match, a class for
    a constructor call (follow its ``__init__`` yourself if needed).
    """

    call: ast.Call
    targets: tuple[FunctionInfo | ClassInfo, ...]
    via_fallback: bool = False


def module_name_for(path: Path, root: Path) -> str:
    """Dotted module name of ``path`` relative to the analysis root.

    A leading ``src/`` component is dropped (the repo's layout), and a
    package ``__init__.py`` maps to the package name itself.
    """
    parts = list(path.resolve().relative_to(root.resolve()).parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__.py":
        parts = parts[:-1]
    elif parts:
        parts[-1] = parts[-1][: -len(".py")] if parts[-1].endswith(".py") else parts[-1]
    return ".".join(parts)


def _module_bindings(
    tree: ast.Module, module_name: str, *, is_package: bool = False
) -> dict[str, str]:
    """Import bindings with relative imports resolved against the module."""
    bindings: dict[str, str] = {}
    package_parts = module_name.split(".")
    if is_package:
        # ``from . import x`` inside ``pkg/__init__.py`` anchors at
        # ``pkg`` itself, not at its parent; a dummy last component
        # makes the generic ``level`` arithmetic below come out right.
        package_parts = package_parts + ["__init__"]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    bindings[alias.asname] = alias.name
                else:
                    head = alias.name.split(".", 1)[0]
                    bindings[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                # ``from . import x`` / ``from ..pkg import x`` — the
                # anchor is the containing package, ``level-1`` more
                # levels up.  A module's package is its name minus the
                # last component; ``__init__`` modules are the package.
                anchor = package_parts[: len(package_parts) - node.level]
                base = ".".join(anchor + ([node.module] if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                bindings[local] = f"{base}.{alias.name}" if base else alias.name
    return bindings


def _decorator_is_dataclass(decorator: ast.expr) -> bool:
    target = decorator.func if isinstance(decorator, ast.Call) else decorator
    dotted = dotted_name(target)
    return dotted in ("dataclass", "dataclasses.dataclass")


class ProgramGraph:
    """Symbols, imports, and approximate call edges of one program."""

    def __init__(self, modules: dict[str, ModuleInfo]) -> None:
        self.modules = modules
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: method name -> classes defining it (for the name fallback).
        self._methods_by_name: dict[str, list[ClassInfo]] = {}
        for module in modules.values():
            self._index_module(module)
        for module in modules.values():
            self._infer_attr_types(module)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    def _index_module(self, module: ModuleInfo) -> None:
        for statement in module.tree.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{module.name}.{statement.name}"
                self.functions[qualname] = FunctionInfo(
                    qualname=qualname, module=module.name, node=statement
                )
            elif isinstance(statement, ast.ClassDef):
                self._index_class(module, statement)

    def _index_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        qualname = f"{module.name}.{node.name}"
        bases = tuple(
            canonical
            for base in node.bases
            if (canonical := module.canonical(base)) is not None
        )
        info = ClassInfo(
            qualname=qualname,
            module=module.name,
            node=node,
            bases=bases,
            is_dataclass=any(
                _decorator_is_dataclass(d) for d in node.decorator_list
            ),
        )
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_qualname = f"{qualname}.{statement.name}"
                method = FunctionInfo(
                    qualname=method_qualname,
                    module=module.name,
                    node=statement,
                    class_name=node.name,
                )
                info.methods[statement.name] = method
                self.functions[method_qualname] = method
                if not statement.name.startswith("__"):
                    self._methods_by_name.setdefault(statement.name, []).append(info)
        self.classes[qualname] = info

    def _infer_attr_types(self, module: ModuleInfo) -> None:
        for info in self.classes.values():
            if info.module != module.name:
                continue
            for method in info.methods.values():
                annotations = self._annotation_types(module, method)
                for statement in ast.walk(method.node):
                    target: ast.expr | None = None
                    value: ast.expr | None = None
                    if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
                        target, value = statement.targets[0], statement.value
                    elif isinstance(statement, ast.AnnAssign):
                        target, value = statement.target, statement.value
                    if (
                        value is None
                        or not isinstance(target, ast.Attribute)
                        or not isinstance(target.value, ast.Name)
                        or target.value.id != "self"
                    ):
                        continue
                    inferred = self._expr_class(module, value, annotations)
                    if inferred is not None:
                        info.attr_types.setdefault(target.attr, inferred)

    def _annotation_types(
        self, module: ModuleInfo, function: FunctionInfo
    ) -> dict[str, str]:
        """Parameter name -> class qualname, from annotations."""
        types: dict[str, str] = {}
        for param in function.parameters():
            if param.annotation is None:
                continue
            resolved = self._annotation_class(module, param.annotation)
            if resolved is not None:
                types[param.arg] = resolved
        return types

    def _annotation_class(self, module: ModuleInfo, annotation: ast.expr) -> str | None:
        """The single program class an annotation names, unions included."""
        candidates: list[str] = []
        for node in ast.walk(annotation):
            if isinstance(node, (ast.Name, ast.Attribute)):
                resolved = self._resolve_class_ref(module, node)
                if resolved is not None and resolved not in candidates:
                    candidates.append(resolved)
        # ``X | None`` and ``Optional[X]`` resolve; a genuine union of
        # two program classes stays untyped rather than guessing.
        return candidates[0] if len(candidates) == 1 else None

    def _expr_class(
        self, module: ModuleInfo, value: ast.expr, annotations: dict[str, str]
    ) -> str | None:
        """Class qualname an assigned expression evidently produces."""
        if isinstance(value, ast.BoolOp):
            for operand in value.values:
                inferred = self._expr_class(module, operand, annotations)
                if inferred is not None:
                    return inferred
            return None
        if isinstance(value, ast.Name):
            return annotations.get(value.id)
        if isinstance(value, ast.Call):
            return self._resolve_class_ref(module, value.func)
        return None

    def _resolve_class_ref(self, module: ModuleInfo, node: ast.AST) -> str | None:
        """Resolve a class reference, trying the module-local name first."""
        canonical = module.canonical(node)
        if canonical is None:
            return None
        for candidate in (f"{module.name}.{canonical}", canonical):
            resolved = self.resolve(candidate)
            if resolved in self.classes:
                return resolved
        return None

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------

    def resolve(self, dotted: str | None) -> str | None:
        """Follow import/re-export chains to a program symbol key.

        Returns a key of :attr:`functions`, :attr:`classes`, or
        :attr:`modules` — or ``None`` for names outside the program.
        """
        seen: set[str] = set()
        while dotted is not None and dotted not in seen:
            seen.add(dotted)
            if dotted in self.functions or dotted in self.classes:
                return dotted
            head, _, attr = dotted.rpartition(".")
            if not head:
                return dotted if dotted in self.modules else None
            if head in self.modules:
                # ``pkg.mod.sym`` where ``pkg.mod`` is a module: the
                # symbol may be defined there or re-exported onward.
                onward = self.modules[head].bindings.get(attr)
                if onward is not None:
                    dotted = onward
                    continue
                return dotted if dotted in self.modules else None
            # ``pkg.Class.method``-style chains or a re-exported head.
            resolved_head = self.resolve(head)
            if resolved_head is None or resolved_head == head:
                return None
            dotted = f"{resolved_head}.{attr}"
        return None

    def lookup_class(self, ref: str | None) -> ClassInfo | None:
        resolved = self.resolve(ref) if ref else None
        return self.classes.get(resolved) if resolved else None

    def method_on(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        """Method lookup through program base classes (approximate MRO)."""
        seen: set[str] = set()
        queue: list[ClassInfo] = [cls]
        while queue:
            current = queue.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if name in current.methods:
                return current.methods[name]
            for base in current.bases:
                base_info = self.lookup_class(base)
                if base_info is not None:
                    queue.append(base_info)
        return None

    def inherits_from(self, cls: ClassInfo, base_name: str) -> bool:
        """True when ``cls`` (transitively) names ``base_name`` as a base.

        ``base_name`` matches either a canonical dotted name or a bare
        class name (the last component), so fixtures can declare their
        own ``FaultError`` without importing the real one.
        """
        seen: set[str] = set()
        queue: list[ClassInfo] = [cls]
        while queue:
            current = queue.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            for base in current.bases:
                if base == base_name or base.rpartition(".")[2] == base_name:
                    return True
                base_info = self.lookup_class(base)
                if base_info is not None:
                    queue.append(base_info)
        return False

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------

    def local_types(self, function: FunctionInfo) -> dict[str, str]:
        """Variable name -> class qualname inside one function body.

        Covers ``self``, annotated parameters, and locals assigned from
        a resolved constructor call.  Flow-insensitive: the last
        evident binding wins, which is the usual single-assignment case.
        """
        module = self.modules[function.module]
        types = self._annotation_types(module, function)
        if function.is_method:
            owner = f"{function.module}.{function.class_name}"
            if owner in self.classes:
                types["self"] = owner
        for statement in ast.walk(function.node):
            if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
                target = statement.targets[0]
                if isinstance(target, ast.Name):
                    inferred = self._expr_class(module, statement.value, types)
                    if inferred is not None:
                        types[target.id] = inferred
        return types

    def resolved_calls(self, function: FunctionInfo) -> Iterator[CallSite]:
        """Every call in ``function`` with its plausible program targets."""
        module = self.modules[function.module]
        types = self.local_types(function)
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Call):
                continue
            site = self._resolve_call(module, node, types)
            if site is not None:
                yield site

    def _resolve_call(
        self, module: ModuleInfo, call: ast.Call, types: dict[str, str]
    ) -> CallSite | None:
        func = call.func
        # Receiver-typed attribute calls: self.x(), param.x(), attr chains.
        if isinstance(func, ast.Attribute):
            receiver_class = self._receiver_class(module, func.value, types)
            if receiver_class is not None:
                method = self.method_on(receiver_class, func.attr)
                if method is not None:
                    return CallSite(call=call, targets=(method,))
                return None
            canonical = module.canonical(func)
            resolved = self.resolve(canonical) if canonical else None
            if resolved is not None:
                target = self.functions.get(resolved) or self.classes.get(resolved)
                if target is not None:
                    return CallSite(call=call, targets=(target,))
            return self._fallback_by_name(call, func.attr)
        # Plain names: local function, imported symbol, or class.
        canonical = module.canonical(func)
        if canonical is None:
            return None
        for candidate in (f"{module.name}.{canonical}", canonical):
            resolved = self.resolve(candidate)
            if resolved is not None:
                target = self.functions.get(resolved) or self.classes.get(resolved)
                if target is not None:
                    return CallSite(call=call, targets=(target,))
        return None

    def _receiver_class(
        self, module: ModuleInfo, receiver: ast.expr, types: dict[str, str]
    ) -> ClassInfo | None:
        if isinstance(receiver, ast.Name):
            qualname = types.get(receiver.id)
            return self.classes.get(qualname) if qualname else None
        if isinstance(receiver, ast.Attribute) and isinstance(
            receiver.value, ast.Name
        ):
            owner_qualname = types.get(receiver.value.id)
            owner = self.classes.get(owner_qualname) if owner_qualname else None
            if owner is not None:
                attr_type = owner.attr_types.get(receiver.attr)
                return self.classes.get(attr_type) if attr_type else None
        if isinstance(receiver, ast.Call):
            canonical = module.canonical(receiver.func)
            resolved = self.resolve(canonical) if canonical else None
            if resolved in self.classes:
                return self.classes[resolved]
        return None

    def _fallback_by_name(self, call: ast.Call, name: str) -> CallSite | None:
        if name.startswith("__"):
            return None
        owners = self._methods_by_name.get(name, [])
        if not owners or len(owners) > NAME_FALLBACK_LIMIT:
            return None
        targets = tuple(owner.methods[name] for owner in owners)
        return CallSite(call=call, targets=targets, via_fallback=True)

    def all_functions(self) -> Iterator[FunctionInfo]:
        yield from self.functions.values()


def build_graph(
    files: Sequence[tuple[Path, str, ast.Module, str]], root: Path
) -> ProgramGraph:
    """Assemble a :class:`ProgramGraph` from parsed files.

    ``files`` rows are ``(path, relpath, tree, source)`` — the shape the
    audit runner already has after discovery/parsing.
    """
    modules: dict[str, ModuleInfo] = {}
    for path, relpath, tree, source in files:
        name = module_name_for(path, root)
        module = ModuleInfo(
            name=name, path=path, relpath=relpath, tree=tree, source=source
        )
        module.bindings = _module_bindings(
            tree, name, is_package=path.name == "__init__.py"
        )
        modules[name] = module
    return ProgramGraph(modules)
