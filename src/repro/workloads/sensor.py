"""Intel-Lab-style sensor streams (§6.1 "Sensor data set").

The paper streams readings from the Intel Research Berkeley Lab motes.
Offline we synthesize the same *shape*: per-mote temperature/humidity/
light/voltage series with diurnal cycles, sensor noise, and occasional
bursts — plus a workload whose rate follows the diurnal cycle and whose
selectivities drift as a bounded random walk (environmental conditions
change smoothly, unlike market regimes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.query.model import Query
from repro.util.rng import derive_rng
from repro.util.validation import ensure_positive
from repro.workloads.generators import (
    RandomWalkSelectivity,
    RateProfile,
    Workload,
)
from repro.workloads.queries import build_q2

__all__ = ["SensorReading", "DiurnalRate", "generate_sensor_readings", "sensor_workload"]


@dataclass(frozen=True)
class SensorReading:
    """One synthetic mote reading (Intel-lab schema)."""

    timestamp: float
    mote_id: int
    temperature: float
    humidity: float
    light: float
    voltage: float


@dataclass(frozen=True)
class DiurnalRate(RateProfile):
    """Sinusoidal day/night rate cycle around 1.0.

    ``amplitude`` is the peak deviation (0.3 → rates between 0.7× and
    1.3×); ``day_seconds`` the full cycle length (scaled down from 24 h
    for simulation runs).
    """

    amplitude: float = 0.3
    day_seconds: float = 600.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.amplitude < 1:
            raise ValueError(f"amplitude must be in [0, 1), got {self.amplitude}")
        ensure_positive(self.day_seconds, "day_seconds")

    def multiplier(self, time: float) -> float:
        return 1.0 + self.amplitude * math.sin(
            2.0 * math.pi * time / self.day_seconds + self.phase
        )


def generate_sensor_readings(
    n_readings: int,
    *,
    n_motes: int = 54,
    seed: int | np.random.Generator | None = 31,
    interval_seconds: float = 0.5,
    day_seconds: float = 600.0,
    burst_probability: float = 0.002,
) -> Iterator[SensorReading]:
    """Yield ``n_readings`` diurnal mote readings (54 motes by default).

    Temperature and light follow the day cycle with per-mote offsets,
    humidity runs counter to temperature, and voltage decays slowly —
    mirroring the published Intel-lab trace's gross structure.  Rare
    bursts spike the light channel (a lamp or direct sun), the events
    the example application's predicates hunt for.
    """
    ensure_positive(interval_seconds, "interval_seconds")
    ensure_positive(day_seconds, "day_seconds")
    rng = derive_rng(seed)
    mote_offsets = rng.uniform(-1.5, 1.5, size=n_motes)
    voltages = rng.uniform(2.6, 2.9, size=n_motes)
    for k in range(n_readings):
        timestamp = k * interval_seconds
        mote = int(rng.integers(0, n_motes))
        day_phase = math.sin(2.0 * math.pi * timestamp / day_seconds)
        temperature = (
            20.0 + 4.0 * day_phase + mote_offsets[mote] + float(rng.normal(0, 0.3))
        )
        humidity = 45.0 - 8.0 * day_phase + float(rng.normal(0, 1.0))
        light = max(
            0.0, 350.0 * max(day_phase, 0.0) + float(rng.normal(30.0, 15.0))
        )
        if rng.random() < burst_probability:
            light += float(rng.uniform(400.0, 800.0))
        voltages[mote] = max(voltages[mote] - 1e-6, 2.0)
        yield SensorReading(
            timestamp=timestamp,
            mote_id=mote,
            temperature=round(temperature, 3),
            humidity=round(max(humidity, 0.0), 3),
            light=round(light, 2),
            voltage=round(float(voltages[mote]), 4),
        )


def sensor_workload(
    query: Query | None = None,
    *,
    uncertainty_level: int = 2,
    day_seconds: float = 600.0,
    walk_step: float = 0.03,
    seed: int = 31,
) -> Workload:
    """Ground-truth workload for the sensor scenario.

    Rates follow the diurnal cycle; selectivities random-walk within
    the level-``uncertainty_level`` parameter space (smooth
    environmental drift).
    """
    query = query or build_q2()
    levels = {op.op_id: uncertainty_level for op in query.operators}
    return Workload(
        query,
        rate_profile=DiurnalRate(day_seconds=day_seconds),
        selectivity_profile=RandomWalkSelectivity(
            levels, step_fraction=walk_step, seed=seed
        ),
    )
