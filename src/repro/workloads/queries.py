"""The paper's benchmark queries: Q1 (5-way) and Q2 (10-way) joins.

§6.1: "The queries are equi-joins of 10 streams"; §6.3 uses Q1, a
5-way join, and Q2, a 10-way join.  An N-way equi-join pipeline over a
driving stream has one window-join operator per probed stream; each
operator carries a per-tuple cost (join work against its window) and a
selectivity/fan-out estimate.

Cost/selectivity values are fixed so that operator *ranks* —
``(σ−1)/c``, which determine the optimal ordering — lie close together:
moderate fluctuations then invert orderings, producing the multi-plan
robust logical solutions the paper studies.  :func:`build_nway`
generates arbitrary sizes deterministically from a seed.
"""

from __future__ import annotations

import numpy as np

from repro.query.model import JoinGraph, Operator, Query, StreamSchema
from repro.util.rng import derive_rng

__all__ = ["build_q1", "build_q2", "build_nway"]

#: Q1's per-operator (cost, selectivity): the stock-monitoring 5-way
#: join.  op1 and op3 are near-unit-fanout joins whose selectivities
#: swing across 1.0 under fluctuation, so a mis-ordered plan amplifies
#: the whole downstream cascade — wrong-plan penalties reach ≈ 2.2×,
#: the regime the paper's Example 1 describes.
_Q1_STATS = [
    (4.0, 0.55),
    (2.5, 0.95),
    (1.8, 0.70),
    (1.2, 1.05),
    (0.8, 0.60),
]

#: Q2's per-operator (cost, selectivity): the 10-way join of §6.3.
#: Ranks descend in ~0.03 steps, well inside the swing a ±20%
#: selectivity fluctuation induces, so neighbouring operators swap.
_Q2_STATS = [
    (4.5, 0.460),
    (3.8, 0.430),
    (3.2, 0.456),
    (2.7, 0.460),
    (2.2, 0.494),
    (1.8, 0.532),
    (1.5, 0.580),
    (1.2, 0.628),
    (0.9, 0.685),
    (0.7, 0.734),
]

_Q1_STREAM_NAMES = ["Stocks", "News", "Blogs", "Research", "Currency"]


def _make_operators(stats: list[tuple[float, float]], streams: list[str]) -> tuple[Operator, ...]:
    operators = []
    for i, (cost, selectivity) in enumerate(stats):
        operators.append(
            Operator(
                op_id=i,
                name=f"op{i}",
                cost_per_tuple=cost,
                selectivity=selectivity,
                # Window state scales with the join's processing weight.
                state_size=2.0 * cost,
                stream=streams[i % len(streams)],
            )
        )
    return tuple(operators)


def build_q1(*, base_rate: float = 100.0) -> Query:
    """Q1: the 5-way stock/news join (Example 1 grown to §6.3's size)."""
    streams = [StreamSchema("Stocks", ("symbol", "price", "sector"), base_rate)]
    streams += [StreamSchema(name, (), base_rate) for name in _Q1_STREAM_NAMES[1:]]
    return Query(
        name="Q1",
        operators=_make_operators(_Q1_STATS, _Q1_STREAM_NAMES),
        streams=tuple(streams),
        window_seconds=60.0,
    )


def build_q2(*, base_rate: float = 100.0) -> Query:
    """Q2: the 10-way equi-join used for the scaling experiments."""
    stream_names = [f"S{i}" for i in range(len(_Q2_STATS))]
    streams = tuple(StreamSchema(name, (), base_rate) for name in stream_names)
    return Query(
        name="Q2",
        operators=_make_operators(_Q2_STATS, stream_names),
        streams=streams,
        window_seconds=60.0,
    )


def build_nway(
    n_operators: int,
    *,
    base_rate: float = 100.0,
    seed: int | np.random.Generator | None = 42,
    chain: bool = False,
    selectivity_range: tuple[float, float] = (0.40, 0.62),
) -> Query:
    """An N-operator join pipeline with seeded, rank-clustered statistics.

    Costs are spread over [0.7, 3.5] and selectivities over
    ``selectivity_range`` so orderings stay fluctuation-sensitive at
    any size; a range reaching past 1.0 (join fan-out) makes wrong
    orderings expensive, the regime of the paper's Example 1.
    ``chain=True`` adds a linear join graph (ordering constrained to
    connected prefixes), exercising the DP optimizer path.
    """
    if n_operators < 1:
        raise ValueError(f"n_operators must be >= 1, got {n_operators}")
    lo, hi = selectivity_range
    if not 0 < lo < hi:
        raise ValueError(f"invalid selectivity_range {selectivity_range}")
    rng = derive_rng(seed)
    costs = np.sort(rng.uniform(0.7, 3.5, size=n_operators))[::-1]
    selectivities = rng.uniform(lo, hi, size=n_operators)
    streams = tuple(
        StreamSchema(f"S{i}", (), base_rate) for i in range(n_operators)
    )
    operators = tuple(
        Operator(
            op_id=i,
            name=f"op{i}",
            cost_per_tuple=float(costs[i]),
            selectivity=float(selectivities[i]),
            state_size=2.0 * float(costs[i]),
            stream=f"S{i}",
        )
        for i in range(n_operators)
    )
    graph = JoinGraph.chain(range(n_operators)) if chain else JoinGraph()
    return Query(
        name=f"J{n_operators}",
        operators=operators,
        streams=streams,
        join_graph=graph,
        window_seconds=60.0,
    )
