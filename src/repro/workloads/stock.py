"""The Stocks-News-Blogs-Currency scenario (§6.1, Example 1).

Two artifacts replace the live NYSE/Yahoo/RSS feeds:

* :func:`generate_stock_ticks` — record-level synthetic ticks whose
  prices follow a regime-switching geometric random walk (bullish
  upward drift alternating with bearish downward drift), for the
  example applications.
* :func:`stock_workload` — the simulation-level ground truth: operator
  selectivities flip in anti-phase with the bull/bear regime (fewer
  bullish-pattern matches and more news matches in a bear market —
  exactly Example 1's ordering inversion) while the input rate pulses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.query.model import Query
from repro.util.rng import derive_rng
from repro.util.validation import ensure_positive
from repro.workloads.generators import (
    PeriodicRate,
    RegimeSwitchSelectivity,
    Workload,
)
from repro.workloads.queries import build_q1

__all__ = ["StockTick", "generate_stock_ticks", "stock_workload"]

_SYMBOLS = ["WPI", "ACME", "GLOB", "NRG", "FIN", "MED", "TECH", "AGRI"]
_SECTORS = {
    "WPI": "education",
    "ACME": "industrial",
    "GLOB": "industrial",
    "NRG": "energy",
    "FIN": "finance",
    "MED": "health",
    "TECH": "technology",
    "AGRI": "agriculture",
}


@dataclass(frozen=True)
class StockTick:
    """One synthetic stock-stream tuple."""

    timestamp: float
    symbol: str
    sector: str
    price: float
    volume: int
    bullish: bool


def generate_stock_ticks(
    n_ticks: int,
    *,
    seed: int | np.random.Generator | None = 5,
    tick_seconds: float = 0.01,
    regime_period: float = 120.0,
    volatility: float = 0.002,
    drift: float = 0.0005,
) -> Iterator[StockTick]:
    """Yield ``n_ticks`` regime-switching synthetic ticks.

    Prices follow a geometric random walk whose drift sign flips every
    ``regime_period`` seconds (bull ↔ bear); the ``bullish`` flag marks
    the active regime, which is what Example 1's pattern-matching
    operator keys on.
    """
    ensure_positive(tick_seconds, "tick_seconds")
    ensure_positive(regime_period, "regime_period")
    rng = derive_rng(seed)
    prices = {symbol: 100.0 * (1 + 0.1 * i) for i, symbol in enumerate(_SYMBOLS)}
    for k in range(n_ticks):
        timestamp = k * tick_seconds
        bullish = math.floor(timestamp / regime_period) % 2 == 0
        symbol = _SYMBOLS[int(rng.integers(0, len(_SYMBOLS)))]
        direction = drift if bullish else -drift
        shock = float(rng.normal(direction, volatility))
        prices[symbol] = max(prices[symbol] * math.exp(shock), 0.01)
        yield StockTick(
            timestamp=timestamp,
            symbol=symbol,
            sector=_SECTORS[symbol],
            price=round(prices[symbol], 2),
            volume=int(rng.integers(100, 10_000)),
            bullish=bullish,
        )


def stock_workload(
    query: Query | None = None,
    *,
    uncertainty_level: int = 2,
    regime_period: float = 120.0,
    rate_high: float = 1.3,
    rate_low: float = 0.8,
    rate_period: float = 60.0,
) -> Workload:
    """Ground-truth workload for the stock-monitoring scenario.

    Selectivities regime-switch in anti-phase (square wave, as market
    regime changes are abrupt) with amplitude ``0.1×uncertainty_level``
    so the truth stays within the Algorithm 1 parameter space at that
    level; rates pulse between ``rate_low`` and ``rate_high``.
    """
    query = query or build_q1()
    levels = {op.op_id: uncertainty_level for op in query.operators}
    return Workload(
        query,
        rate_profile=PeriodicRate(high=rate_high, low=rate_low, period=rate_period),
        selectivity_profile=RegimeSwitchSelectivity(
            levels, period=regime_period, mode="square"
        ),
    )
