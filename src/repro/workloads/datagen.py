"""Table 2's synthetic value distributions with moment reporting.

§6.1 "Synthetic data sets": input values follow Uniform(α=0, β=100) or
Poisson(λ=1); Table 2 reports their min/max/median/mean, average and
standard deviation, variance, skew, and kurtosis.  The
``table2_distributions`` helper regenerates both samples and their
summary statistics — the bench for Table 2 compares them against the
paper's printed moments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import derive_rng
from repro.util.types import AnyArray, FloatArray

__all__ = ["DistributionSummary", "summarize", "table2_distributions"]


@dataclass(frozen=True)
class DistributionSummary:
    """The moment set Table 2 prints for each data distribution."""

    name: str
    minimum: float
    maximum: float
    median: float
    mean: float
    average_deviation: float
    standard_deviation: float
    variance: float
    skew: float
    kurtosis: float

    def as_row(self) -> dict[str, float]:
        """Summary as a name→value mapping (bench table rendering)."""
        return {
            "min": self.minimum,
            "max": self.maximum,
            "med": self.median,
            "mean": self.mean,
            "ave.dev": self.average_deviation,
            "st.dev": self.standard_deviation,
            "var": self.variance,
            "skew": self.skew,
            "kurt": self.kurtosis,
        }


def summarize(name: str, samples: AnyArray) -> DistributionSummary:
    """Compute Table 2's moments for a sample array.

    Skew is the standardized third central moment; kurtosis is *excess*
    kurtosis (normal = 0), matching the paper's Uniform ≈ −1.2 and
    Poisson(1) ≈ 1.9 entries.
    """
    values: FloatArray = np.asarray(samples, dtype=np.float64)
    if values.size < 2:
        raise ValueError("need at least 2 samples to summarize")
    mean = float(values.mean())
    centered = values - mean
    variance = float(centered.var())  # population variance, as in Table 2
    std = float(np.sqrt(variance))
    skew = float((centered**3).mean() / std**3) if std > 0 else 0.0
    kurtosis = float((centered**4).mean() / std**4 - 3.0) if std > 0 else 0.0
    return DistributionSummary(
        name=name,
        minimum=float(values.min()),
        maximum=float(values.max()),
        median=float(np.median(values)),
        mean=mean,
        average_deviation=float(np.abs(centered).mean()),
        standard_deviation=std,
        variance=variance,
        skew=skew,
        kurtosis=kurtosis,
    )


def table2_distributions(
    n_samples: int = 100_000, seed: int | np.random.Generator | None = 2012
) -> dict[str, DistributionSummary]:
    """Regenerate Table 2's Uniform(0, 100) and Poisson(λ=1) rows."""
    rng = derive_rng(seed)
    uniform = rng.uniform(0.0, 100.0, size=n_samples)
    poisson = rng.poisson(1.0, size=n_samples).astype(float)
    return {
        "Uniform": summarize("Uniform(0,100)", uniform),
        "Poisson": summarize("Poisson(1)", poisson),
    }
