"""Rate and selectivity fluctuation profiles, and the Workload bundle.

A :class:`Workload` is the simulator's ground truth: the *actual*
time-varying input rate and operator selectivities, which the monitor
samples and the strategies react to.  Profiles compose the paper's
experimental knobs:

* input-rate scaling (Figure 15a's 50%–400% fluctuation ratios),
* periodic high/low alternation (Figure 16b's fluctuation periods),
* step schedules (Figure 15b's 50%→100%→200% ramp), and
* selectivity regime switches (Example 1's bullish/bearish flips) and
  bounded random walks, both confined to the parameter space implied by
  the uncertainty levels ("fluctuations known a priori", §2.2).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.query.model import Query
from repro.query.statistics import (
    UNCERTAINTY_UNIT_STEP,
    StatPoint,
    rate_param,
)
from repro.util.rng import SeedSequenceFactory, derive_rng
from repro.util.validation import ensure_positive

__all__ = [
    "RateProfile",
    "ConstantRate",
    "PeriodicRate",
    "StepRate",
    "SelectivityProfile",
    "ConstantSelectivity",
    "RegimeSwitchSelectivity",
    "RandomWalkSelectivity",
    "Workload",
]


# ----------------------------------------------------------------------
# Rate profiles
# ----------------------------------------------------------------------

class RateProfile(ABC):
    """Time-varying multiplier applied to the workload's base rate."""

    @abstractmethod
    def multiplier(self, time: float) -> float:
        """Rate multiplier (> 0) at simulated ``time`` seconds."""


@dataclass(frozen=True)
class ConstantRate(RateProfile):
    """A fixed multiplier — e.g. 4.0 for the 400% fluctuation ratio."""

    ratio: float = 1.0

    def __post_init__(self) -> None:
        ensure_positive(self.ratio, "ratio")

    def multiplier(self, time: float) -> float:
        return self.ratio


@dataclass(frozen=True)
class PeriodicRate(RateProfile):
    """Alternating high/low rate with equal interval lengths (§6.5).

    "The input stream fluctuation period is simulated by alternating
    the input rate of each input stream periodically between a high
    rate and a low rate" — ``period`` is the length of the high (and of
    the low) interval in seconds.
    """

    high: float = 2.0
    low: float = 0.5
    period: float = 10.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        ensure_positive(self.high, "high")
        ensure_positive(self.low, "low")
        ensure_positive(self.period, "period")

    def multiplier(self, time: float) -> float:
        cycle_position = ((time + self.phase) / self.period) % 2.0
        return self.high if cycle_position < 1.0 else self.low


@dataclass(frozen=True)
class StepRate(RateProfile):
    """Piecewise-constant schedule: ``[(start_time, ratio), ...]``.

    Figure 15b's ramp is ``StepRate(((0, 0.5), (1200, 1.0), (2400, 2.0)))``.
    Steps must be time-sorted; the first must start at 0.
    """

    steps: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("StepRate needs at least one step")
        times = [t for t, _ in self.steps]
        if times != sorted(times):
            raise ValueError(f"step times must be ascending, got {times}")
        if times[0] != 0:
            raise ValueError(f"first step must start at t=0, got {times[0]}")
        for _, ratio in self.steps:
            ensure_positive(ratio, "step ratio")

    def multiplier(self, time: float) -> float:
        current = self.steps[0][1]
        for start, ratio in self.steps:
            if time >= start:
                current = ratio
            else:
                break
        return current


# ----------------------------------------------------------------------
# Selectivity profiles
# ----------------------------------------------------------------------

class SelectivityProfile(ABC):
    """Time-varying true selectivity per operator."""

    @abstractmethod
    def value(self, op_id: int, time: float, base: float) -> float:
        """True selectivity of ``op_id`` at ``time`` given its estimate."""


@dataclass(frozen=True)
class ConstantSelectivity(SelectivityProfile):
    """Selectivities pinned at their estimates (no fluctuation)."""

    def value(self, op_id: int, time: float, base: float) -> float:
        return base


class RegimeSwitchSelectivity(SelectivityProfile):
    """Example 1's bullish/bearish flips: anti-phase sinusoidal drift.

    Each operator's selectivity oscillates around its estimate with
    relative amplitude ``0.1 × level`` (so the truth stays inside the
    Algorithm 1 parameter space).  Alternating operators move in
    anti-phase: when "bullish" operators see fewer matches, "bearish"
    ones see more — which *inverts* the optimal ordering, the scenario
    motivating multiple robust logical plans.

    ``mode="square"`` switches regimes abruptly instead of smoothly.
    """

    def __init__(
        self,
        levels: Mapping[int, int],
        *,
        period: float = 60.0,
        mode: str = "sine",
        phases: Mapping[int, float] | None = None,
    ) -> None:
        ensure_positive(period, "period")
        if mode not in ("sine", "square"):
            raise ValueError(f"mode must be 'sine' or 'square', got {mode!r}")
        self._levels = dict(levels)
        self._period = period
        self._mode = mode
        if phases is None:
            # Anti-phase by operator parity: evens peak when odds trough.
            phases = {
                op_id: 0.0 if i % 2 == 0 else math.pi
                for i, op_id in enumerate(sorted(self._levels))
            }
        self._phases = dict(phases)

    def value(self, op_id: int, time: float, base: float) -> float:
        level = self._levels.get(op_id, 0)
        if level == 0:
            return base
        amplitude = UNCERTAINTY_UNIT_STEP * level
        phase = self._phases.get(op_id, 0.0)
        wave = math.sin(2.0 * math.pi * time / self._period + phase)
        if self._mode == "square":
            wave = 1.0 if wave >= 0 else -1.0
        return base * (1.0 + amplitude * wave)


class RandomWalkSelectivity(SelectivityProfile):
    """Bounded random walk inside the parameter space.

    Selectivities drift by small seeded steps, reflecting at the
    Algorithm 1 bounds.  The walk is evaluated lazily on a fixed time
    grid so ``value`` is deterministic and O(1) amortized per call.

    Each operator draws from its own child generator (spawned once, in
    sorted operator order, at construction), so an operator's walk
    depends only on the seed — never on the order or frequency with
    which other operators are queried.
    """

    def __init__(
        self,
        levels: Mapping[int, int],
        *,
        step_fraction: float = 0.02,
        grid_seconds: float = 1.0,
        seed: int | np.random.Generator | None = 23,
    ) -> None:
        ensure_positive(grid_seconds, "grid_seconds")
        ensure_positive(step_fraction, "step_fraction")
        self._levels = dict(levels)
        self._step = step_fraction
        self._grid = grid_seconds
        if isinstance(seed, np.random.Generator):
            # Derive per-operator seeds from the caller's stream once,
            # up front, instead of sharing the generator across walks.
            self._rngs = {
                op: derive_rng(int(seed.integers(2**63)))
                for op in sorted(self._levels)
            }
        else:
            factory = SeedSequenceFactory(seed)
            self._rngs = {op: factory.child() for op in sorted(self._levels)}
        self._history: dict[int, list[float]] = {op: [0.0] for op in self._levels}

    def _position_at(self, op_id: int, time: float) -> float:
        history = self._history[op_id]
        needed = int(time // self._grid) + 1
        while len(history) <= needed:
            position = history[-1] + float(self._rngs[op_id].normal(0.0, self._step))
            # Reflect into [-1, 1].
            while position > 1.0 or position < -1.0:
                if position > 1.0:
                    position = 2.0 - position
                if position < -1.0:
                    position = -2.0 - position
            history.append(position)
        return history[needed]

    def value(self, op_id: int, time: float, base: float) -> float:
        level = self._levels.get(op_id, 0)
        if level == 0:
            return base
        amplitude = UNCERTAINTY_UNIT_STEP * level
        return base * (1.0 + amplitude * self._position_at(op_id, time))


# ----------------------------------------------------------------------
# Workload bundle
# ----------------------------------------------------------------------

class Workload:
    """Ground-truth statistics for one simulated run.

    Combines a base rate with a :class:`RateProfile` and a
    :class:`SelectivityProfile`; implements the monitor's
    :class:`~repro.engine.monitor.GroundTruth` protocol.
    """

    def __init__(
        self,
        query: Query,
        *,
        base_rate: float | None = None,
        rate_profile: RateProfile | None = None,
        selectivity_profile: SelectivityProfile | None = None,
    ) -> None:
        self._query = query
        self._base_rate = base_rate if base_rate is not None else query.driving_rate
        ensure_positive(self._base_rate, "base_rate")
        self._rate_profile = rate_profile or ConstantRate()
        self._sel_profile = selectivity_profile or ConstantSelectivity()
        self._bases = {op.op_id: op.selectivity for op in query.operators}

    @property
    def query(self) -> Query:
        """The query this workload drives."""
        return self._query

    def rate(self, time: float) -> float:
        """True driving input rate at ``time`` (tuples/second)."""
        return self._base_rate * self._rate_profile.multiplier(time)

    def selectivity(self, op_id: int, time: float) -> float:
        """True selectivity of ``op_id`` at ``time``."""
        return self._sel_profile.value(op_id, time, self._bases[op_id])

    def stat_point(self, time: float) -> StatPoint:
        """The exact statistics point at ``time`` (oracle view)."""
        values = {rate_param(): self.rate(time)}
        for op in self._query.operators:
            values[op.selectivity_param] = self.selectivity(op.op_id, time)
        return StatPoint(values)

    def scaled(self, ratio: float) -> "Workload":
        """A copy with the base rate scaled by ``ratio`` (Figure 15a)."""
        ensure_positive(ratio, "ratio")
        return Workload(
            self._query,
            base_rate=self._base_rate * ratio,
            rate_profile=self._rate_profile,
            selectivity_profile=self._sel_profile,
        )
