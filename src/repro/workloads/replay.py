"""Trace-replay workloads: recorded statistics as simulation ground truth.

Production deployments tune against *recorded* traffic, not synthetic
profiles.  :class:`ReplayWorkload` implements the simulator's
ground-truth protocol from a time-indexed sequence of statistics points
— recorded from a live monitor, exported from another system, or
captured from an existing :class:`~repro.workloads.generators.Workload`
via :meth:`ReplayWorkload.record` — with step or linear interpolation
between samples and clamp-at-the-ends semantics.
"""

from __future__ import annotations

import bisect
from typing import Mapping, Protocol, Sequence

from repro.query.model import Query
from repro.query.statistics import StatPoint, rate_param

__all__ = ["ReplayWorkload"]


class _Recordable(Protocol):
    """What :meth:`ReplayWorkload.record` needs from its source: the
    structural subset of the simulator's ground-truth protocol."""

    @property
    def query(self) -> Query: ...

    def stat_point(self, time: float) -> StatPoint: ...


class ReplayWorkload:
    """Ground truth replayed from ``(time, {param: value})`` samples.

    Parameters
    ----------
    query:
        The query whose statistics the trace describes.
    samples:
        Time-ascending ``(t, mapping)`` pairs.  Every mapping must
        contain the driving rate and every operator selectivity.
    interpolation:
        ``"linear"`` (default) or ``"step"`` (previous-sample holds).
    """

    def __init__(
        self,
        query: Query,
        samples: Sequence[tuple[float, Mapping[str, float]]],
        *,
        interpolation: str = "linear",
    ) -> None:
        if interpolation not in ("linear", "step"):
            raise ValueError(
                f"interpolation must be 'linear' or 'step', got {interpolation!r}"
            )
        if len(samples) < 1:
            raise ValueError("need at least one trace sample")
        times = [t for t, _ in samples]
        if times != sorted(times):
            raise ValueError("trace samples must be time-ascending")
        if len(set(times)) != len(times):
            raise ValueError("trace samples must have distinct times")

        required = {rate_param()} | {
            op.selectivity_param for op in query.operators
        }
        for t, mapping in samples:
            missing = required - set(mapping)
            if missing:
                raise ValueError(
                    f"trace sample at t={t} is missing {sorted(missing)}"
                )

        self._query = query
        self._times = times
        self._values = [dict(mapping) for _, mapping in samples]
        self._interpolation = interpolation
        self._rate_name = rate_param()

    @classmethod
    def record(
        cls,
        workload: _Recordable,
        *,
        duration: float,
        n_samples: int = 200,
        interpolation: str = "linear",
    ) -> "ReplayWorkload":
        """Capture another workload's ground truth into a replayable trace.

        ``workload`` needs ``query`` and ``stat_point(t)`` — any
        :class:`~repro.workloads.generators.Workload` qualifies.
        """
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        step = duration / n_samples
        samples = [
            (k * step, dict(workload.stat_point(k * step)))
            for k in range(n_samples + 1)
        ]
        return cls(workload.query, samples, interpolation=interpolation)

    @property
    def query(self) -> Query:
        """The query this trace drives."""
        return self._query

    @property
    def duration(self) -> float:
        """Time of the last trace sample."""
        return self._times[-1]

    def _lookup(self, name: str, time: float) -> float:
        times = self._times
        if time <= times[0]:
            return float(self._values[0][name])
        if time >= times[-1]:
            return float(self._values[-1][name])
        right = bisect.bisect_right(times, time)
        left = right - 1
        left_value = float(self._values[left][name])
        if self._interpolation == "step" or times[right] == times[left]:
            return left_value
        right_value = float(self._values[right][name])
        frac = (time - times[left]) / (times[right] - times[left])
        return left_value + frac * (right_value - left_value)

    def rate(self, time: float) -> float:
        """Replayed driving input rate at ``time``."""
        return self._lookup(self._rate_name, time)

    def selectivity(self, op_id: int, time: float) -> float:
        """Replayed selectivity of ``op_id`` at ``time``."""
        return self._lookup(self._query.operator(op_id).selectivity_param, time)

    def stat_point(self, time: float) -> StatPoint:
        """The full replayed statistics point at ``time``."""
        values = {self._rate_name: self.rate(time)}
        for op in self._query.operators:
            values[op.selectivity_param] = self._lookup(
                op.selectivity_param, time
            )
        return StatPoint(values)
