"""Synthetic workloads reproducing the paper's §6.1 data sets.

The original evaluation streamed live NYSE stock / Yahoo currency / RSS
feeds and the Intel Research Berkeley Lab sensor trace into D-CAPE.
Offline, we generate statistically equivalent synthetic streams:

* :mod:`repro.workloads.generators` — rate and selectivity fluctuation
  profiles (constant, periodic alternation, step schedules, bounded
  random walks, regime switches) and the :class:`Workload` bundle that
  serves as the simulator's ground truth.
* :mod:`repro.workloads.queries` — the paper's Q1 (5-way join) and Q2
  (10-way join) plus an N-way generator.
* :mod:`repro.workloads.stock` — the Stocks-News-Blogs-Currency
  scenario with bullish/bearish regime switches (Example 1).
* :mod:`repro.workloads.sensor` — Intel-lab style sensor streams with
  diurnal drift and bursts.
* :mod:`repro.workloads.datagen` — Table 2's Uniform/Poisson value
  distributions with moment reporting.
"""

from repro.workloads.datagen import DistributionSummary, summarize, table2_distributions
from repro.workloads.generators import (
    ConstantRate,
    ConstantSelectivity,
    PeriodicRate,
    RandomWalkSelectivity,
    RegimeSwitchSelectivity,
    StepRate,
    Workload,
)
from repro.workloads.queries import build_nway, build_q1, build_q2
from repro.workloads.replay import ReplayWorkload
from repro.workloads.sensor import SensorReading, generate_sensor_readings, sensor_workload
from repro.workloads.stock import StockTick, generate_stock_ticks, stock_workload

__all__ = [
    "ConstantRate",
    "ConstantSelectivity",
    "DistributionSummary",
    "PeriodicRate",
    "RandomWalkSelectivity",
    "RegimeSwitchSelectivity",
    "ReplayWorkload",
    "SensorReading",
    "StepRate",
    "StockTick",
    "Workload",
    "build_nway",
    "build_q1",
    "build_q2",
    "generate_sensor_readings",
    "generate_stock_ticks",
    "sensor_workload",
    "stock_workload",
    "summarize",
    "table2_distributions",
]
