"""RLD with a migration escape hatch for unexpected fluctuations.

§2.2's caveat: "If suddenly some totally unexpected fluctuation arises
in the future, our current solution may not be able to handle it, and
we may have to exploit operator migration to resolve such scenarios
after all."  :class:`RLDHybridStrategy` implements exactly that
extension: it behaves as pure RLD while the monitored statistics stay
inside the compiled parameter space, and only once they leave it (with
some tolerance) *and* the placement is saturating does it fall back to
DYN-style rebalancing migrations — rare, last-resort moves rather than
continuous chasing.
"""

from __future__ import annotations

from typing import Any

from repro.core.rld import RLDSolution
from repro.engine.system import StreamSimulator
from repro.query.statistics import StatPoint
from repro.runtime.rld_runtime import RLDStrategy
from repro.util.validation import ensure_positive

__all__ = ["RLDHybridStrategy"]


class RLDHybridStrategy(RLDStrategy):
    """RLD plus last-resort migration outside the compiled space.

    Parameters
    ----------
    solution:
        The compiled RLD solution (as for :class:`RLDStrategy`).
    space_tolerance:
        Multiplicative slack on the space bounds before statistics
        count as "outside" (1.1 = 10% beyond Algorithm 1's box).
    saturation_threshold:
        Minimum bottleneck utilization (of the routed plan, on the
        live placement) before a migration is considered.
    cooldown_seconds:
        Minimum spacing between fallback migrations.
    """

    name = "RLD+M"

    def __init__(
        self,
        solution: RLDSolution,
        *,
        space_tolerance: float = 1.1,
        saturation_threshold: float = 1.0,
        cooldown_seconds: float = 30.0,
        **rld_kwargs: Any,
    ) -> None:
        super().__init__(solution, **rld_kwargs)
        if space_tolerance < 1.0:
            raise ValueError(
                f"space_tolerance must be >= 1.0, got {space_tolerance}"
            )
        ensure_positive(saturation_threshold, "saturation_threshold")
        ensure_positive(cooldown_seconds, "cooldown_seconds")
        self._space = solution.space
        self._tolerance = space_tolerance
        self._saturation = saturation_threshold
        self._cooldown = cooldown_seconds
        self._last_migration = -float("inf")
        self._last_busy: list[float] | None = None
        self._last_tick_time = 0.0

    def in_compiled_space(self, stats: StatPoint) -> bool:
        """True when every monitored dimension is inside the space box."""
        for dim in self._space.dimensions:
            value = stats.get(dim.name)
            if value is None:
                continue
            lo = dim.lo / self._tolerance
            hi = dim.hi * self._tolerance
            if not lo <= float(value) <= hi:
                return False
        return True

    def on_tick(self, simulator: StreamSimulator, time: float) -> None:
        """Migrate only when stats left the space and a node saturates."""
        nodes = simulator.nodes
        busy = [node.busy_seconds for node in nodes]
        if self._last_busy is None:
            self._last_busy, self._last_tick_time = busy, time
            return
        window = time - self._last_tick_time
        previous, self._last_busy = self._last_busy, busy
        self._last_tick_time = time
        if window <= 0:
            return

        stats = simulator.monitor.current()
        if self.in_compiled_space(stats):
            return  # pure RLD territory: the classifier handles it
        if time - self._last_migration < self._cooldown:
            return

        utilization = [(b - p) / window for b, p in zip(busy, previous)]
        alive = [i for i, node in enumerate(nodes) if node.online]
        if len(alive) < 2:
            return
        hot = max(alive, key=lambda i: utilization[i])
        if utilization[hot] < self._saturation:
            return

        # Source: the busiest online node that can actually give an
        # operator up (moving a node's only operator just relocates the
        # bottleneck).
        placement = simulator.current_placement
        ops_by_node: dict[int, list[int]] = {}
        for op, node in placement.items():
            ops_by_node.setdefault(node, []).append(op)
        donors = sorted(
            (
                node
                for node, ops in ops_by_node.items()
                if len(ops) >= 2 and nodes[node].online
            ),
            key=lambda node: -utilization[node],
        )
        if not donors:
            return
        source = donors[0]
        cold = min(alive, key=lambda i: utilization[i])
        if cold == source:
            return

        plan = self.route(time, stats).plan
        loads = self._cost_model.operator_loads(plan, stats)
        gap = (utilization[source] - utilization[cold]) * nodes[source].capacity
        candidate = min(
            ops_by_node[source], key=lambda op: (abs(loads[op] - gap / 2.0), op)
        )
        simulator.migrate(candidate, cold)
        self._last_migration = time
