"""Runtime load-distribution strategies and the §6.5 comparison harness.

* :mod:`repro.runtime.rld_runtime` — **RLD**: the fixed robust physical
  plan plus the online classifier switching among robust logical plans
  per batch (never migrates).
* :mod:`repro.runtime.rod` — **ROD**: resilient static operator
  distribution (Xing et al., VLDB'06): one logical plan, one balanced
  placement, no adaptation of any kind.
* :mod:`repro.runtime.dyn` — **DYN**: Borealis-style dynamic load
  distribution: one logical plan, periodic utilization checks, operator
  migration off hot nodes (paying suspension stalls).
* :mod:`repro.runtime.hybrid` — **RLD+M**: RLD plus a last-resort
  migration escape hatch for statistics outside the compiled space
  (§2.2's caveat, implemented).
* :mod:`repro.runtime.comparison` — run all strategies on an identical
  workload and seed, returning comparable reports.
"""

from repro.runtime.comparison import StrategyComparison, compare_strategies
from repro.runtime.dyn import DYNStrategy
from repro.runtime.hybrid import RLDHybridStrategy
from repro.runtime.rld_runtime import RLDStrategy
from repro.runtime.rod import RODStrategy

__all__ = [
    "DYNStrategy",
    "RLDHybridStrategy",
    "RLDStrategy",
    "RODStrategy",
    "StrategyComparison",
    "compare_strategies",
]
