"""ROD baseline: resilient operator distribution (Xing et al., VLDB'06).

As characterized in §7, ROD computes a single *feasible* physical plan
meant to stay feasible under input-rate variations, but (1) it executes
one fixed logical plan — no plan switching, (2) it never migrates, and
(3) it assumes operator load is linear in input rate with constant
selectivities.  We reproduce that behaviour: the logical plan optimal
at the point estimate, placed by load-balancing LLF/LPT (maximizing
per-node headroom, the proxy for ROD's feasible-region maximization),
then frozen for the whole run.
"""

from __future__ import annotations

from repro.core.greedy_phy import largest_load_first
from repro.core.physical import Cluster, InfeasiblePlacementError, PhysicalPlan
from repro.engine.faults import FaultEvent
from repro.engine.system import RoutingDecision, StreamSimulator
from repro.query.plans import LogicalPlan
from repro.query.cost import PlanCostModel
from repro.query.model import Query
from repro.query.statistics import StatPoint

__all__ = ["RODStrategy"]


class RODStrategy:
    """One estimate-optimal logical plan on one balanced static placement."""

    name = "ROD"

    def __init__(
        self,
        query: Query,
        cluster: Cluster,
        *,
        estimate: StatPoint | None = None,
    ) -> None:
        from repro.query.optimizer import make_optimizer  # local: avoids cycle at import

        self._query = query
        self._cluster = cluster
        point = estimate or query.estimate_point()
        optimizer = make_optimizer(query)
        self._plan = optimizer.optimize(point)
        self._cost_model = PlanCostModel(query)
        loads = self._cost_model.operator_loads(self._plan, point)
        placement = largest_load_first(loads, cluster)
        if placement is None:
            raise InfeasiblePlacementError(
                f"ROD cannot place query {query.name!r} at its estimate "
                f"point within the given cluster"
            )
        self._placement = placement

    @property
    def placement(self) -> PhysicalPlan:
        """The balanced static placement (never changes)."""
        return self._placement

    @property
    def logical_plan(self) -> LogicalPlan:
        """The single logical plan ROD executes forever."""
        return self._plan

    def route(self, time: float, stats: StatPoint) -> RoutingDecision:
        """Always the compile-time plan, zero routing overhead."""
        return RoutingDecision(plan=self._plan, overhead_seconds=0.0)

    def on_tick(self, simulator: StreamSimulator, time: float) -> None:
        """ROD never adapts at runtime."""

    def on_fault(self, simulator: StreamSimulator, event: FaultEvent) -> None:
        """ROD has no failure response: batches bound for a crashed
        node stall until it recovers and latency simply degrades — the
        cost of a placement chosen once and frozen."""
