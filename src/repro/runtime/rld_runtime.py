"""The RLD runtime strategy: fixed placement, per-batch plan switching.

Implements the paper's "Robust load executor" (§3): the physical plan
produced at compile time is instantiated once and never changes; an
online classifier inspects the monitor's latest statistics and routes
each tuple batch through the robust logical plan that is cheapest
there.  Classification is cheap — the paper measures it at about 2% of
query execution cost — and is charged here as a configurable fraction
of each batch's expected processing time, so the reported
``overhead_fraction`` reproduces that measurement.
"""

from __future__ import annotations

from repro.core.physical import InfeasiblePlacementError, PhysicalPlan
from repro.core.rld import RLDSolution
from repro.engine.faults import FaultEvent
from repro.engine.system import RoutingDecision, StreamSimulator
from repro.query.cost import PlanCostModel
from repro.query.plans import LogicalPlan
from repro.query.statistics import StatPoint, rate_param
from repro.util.validation import ensure_in_range

__all__ = ["RLDStrategy"]


class RLDStrategy:
    """Online classifier over a compiled :class:`RLDSolution`.

    Parameters
    ----------
    solution:
        Compile-time output of :class:`~repro.core.rld.RLDOptimizer`.
    classify_overhead_fraction:
        Routing cost charged per batch, as a fraction of the batch's
        expected processing seconds (§6.5 measures ≈ 0.02).
    batch_size:
        Expected tuples per batch, for the overhead estimate.
    mean_capacity:
        Average node capacity, for converting work to seconds.
    """

    name = "RLD"

    def __init__(
        self,
        solution: RLDSolution,
        *,
        classify_overhead_fraction: float = 0.02,
        batch_size: float = 100.0,
        overload_threshold: float = 0.95,
    ) -> None:
        ensure_in_range(
            classify_overhead_fraction, "classify_overhead_fraction", 0.0, 1.0
        )
        if overload_threshold <= 0:
            raise ValueError(
                f"overload_threshold must be > 0, got {overload_threshold}"
            )
        if not solution.feasible:
            raise InfeasiblePlacementError(
                "RLD solution's physical plan supports no logical plan; "
                "increase cluster resources or relax epsilon"
            )
        self._solution = solution
        self._plans: tuple[LogicalPlan, ...] = solution.supported_plans
        self._cost_model: PlanCostModel = solution.logical.cost_model
        self._overhead_fraction = classify_overhead_fraction
        self._batch_size = batch_size
        self._overload_threshold = overload_threshold
        self._rate_name = rate_param()
        # Placement geometry for bottleneck-aware routing: which node
        # hosts each operator, and each node's capacity.
        placement = solution.physical.physical_plan
        assert placement is not None  # guarded above
        self._node_of = {
            op_id: placement.node_of(op_id)
            for op_id in solution.query.operator_ids
        }
        self._capacities = solution.cluster.capacities
        #: Nodes currently offline (maintained via the on_fault hook).
        self._down: set[int] = set()

    @property
    def placement(self) -> PhysicalPlan:
        """The fixed robust physical plan (never migrates)."""
        plan = self._solution.physical.physical_plan
        assert plan is not None  # guarded in __init__
        return plan

    @property
    def candidate_plans(self) -> tuple[LogicalPlan, ...]:
        """Robust logical plans the classifier may route batches to."""
        return self._plans

    def _node_loads(self, plan: LogicalPlan, stats: StatPoint) -> list[float]:
        """Per-node load (cost units/second) this plan would impose."""
        node_loads = [0.0] * len(self._capacities)
        for op_id, load in self._cost_model.operator_loads(plan, stats).items():
            node_loads[self._node_of[op_id]] += load
        return node_loads

    def _bottleneck_utilization(self, plan: LogicalPlan, stats: StatPoint) -> float:
        """Peak node utilization this plan would impose on the placement."""
        return max(
            load / capacity
            for load, capacity in zip(self._node_loads(plan, stats), self._capacities)
        )

    def bottleneck_node(self, plan: LogicalPlan, stats: StatPoint) -> int:
        """The node this plan loads hardest relative to its capacity."""
        utilizations = [
            load / capacity
            for load, capacity in zip(self._node_loads(plan, stats), self._capacities)
        ]
        return max(range(len(utilizations)), key=lambda i: (utilizations[i], -i))

    def _down_load(self, plan: LogicalPlan, stats: StatPoint) -> float:
        """Load this plan sends to currently-offline nodes."""
        return sum(
            load
            for op_id, load in self._cost_model.operator_loads(plan, stats).items()
            if self._node_of[op_id] in self._down
        )

    @property
    def down_nodes(self) -> frozenset[int]:
        """Nodes the strategy currently believes are offline."""
        return frozenset(self._down)

    def route(self, time: float, stats: StatPoint) -> RoutingDecision:
        """Classify the batch to a supported robust plan.

        Normally the cheapest plan at the current statistics (§3's
        online classifier).  Two degraded modes:

        * When the preferred plan's bottleneck node is *down* (fault
          injection), fall back to the best surviving candidate — a
          supported plan whose bottleneck is still online, cheapest
          first; if every candidate bottlenecks on a dead node, pick
          the one sending the least load to dead nodes.  Batches still
          traverse every operator, but the surviving plan thins them
          before the dead node's operator, so the stalled queue there
          stays short and drains quickly after recovery.
        * When even the cheapest plan would saturate some machine
          (bottleneck utilization ≥ ``overload_threshold``), switch
          objective to minimizing that bottleneck — the statistics are
          then outside the space the plan set was costed for, and
          sustained throughput is governed by the hottest node, not by
          total work.
        """
        plan = min(
            self._plans,
            key=lambda p: (self._cost_model.plan_cost(p, stats), p.order),
        )
        if (
            self._down
            and len(self._plans) > 1
            and self.bottleneck_node(plan, stats) in self._down
        ):
            surviving = [
                p
                for p in self._plans
                if self.bottleneck_node(p, stats) not in self._down
            ]
            pool = surviving or list(self._plans)
            plan = min(
                pool,
                key=lambda p: (
                    self._down_load(p, stats),
                    self._cost_model.plan_cost(p, stats),
                    p.order,
                ),
            )
        elif (
            len(self._plans) > 1
            and self._bottleneck_utilization(plan, stats) >= self._overload_threshold
        ):
            plan = min(
                self._plans,
                key=lambda p: (
                    self._bottleneck_utilization(p, stats),
                    self._cost_model.plan_cost(p, stats),
                    p.order,
                ),
            )
        overhead = self._classification_overhead(plan, stats)
        return RoutingDecision(plan=plan, overhead_seconds=overhead)

    def _classification_overhead(self, plan: LogicalPlan, stats: StatPoint) -> float:
        """Charge ≈ ``fraction`` of the batch's expected service seconds."""
        if self._overhead_fraction == 0.0:
            return 0.0
        rate = float(stats.get(self._rate_name, 1.0))
        if rate <= 0:
            return 0.0
        per_tuple_cost = self._cost_model.plan_cost(plan, stats) / rate
        expected_seconds = (
            self._batch_size * per_tuple_cost / self._mean_capacity()
        )
        return self._overhead_fraction * expected_seconds

    def _mean_capacity(self) -> float:
        cluster = self._solution.cluster
        return cluster.total_capacity / cluster.n_nodes

    def on_tick(self, simulator: StreamSimulator, time: float) -> None:
        """RLD never migrates; nothing to do on ticks."""

    def on_fault(self, simulator: StreamSimulator | None, event: FaultEvent) -> None:
        """Track node liveness so routing can avoid dead bottlenecks.

        RLD's graceful degradation is purely logical: the placement
        never changes, but the classifier reroutes batches through the
        candidate plan that burdens the dead node least.
        """
        if event.kind == "crash" and event.node is not None:
            self._down.add(event.node)
        elif event.kind == "recover" and event.node is not None:
            self._down.discard(event.node)
