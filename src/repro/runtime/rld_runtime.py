"""The RLD runtime strategy: fixed placement, per-batch plan switching.

Implements the paper's "Robust load executor" (§3): the physical plan
produced at compile time is instantiated once and never changes; an
online classifier inspects the monitor's latest statistics and routes
each tuple batch through the robust logical plan that is cheapest
there.  Classification is cheap — the paper measures it at about 2% of
query execution cost — and is charged here as a configurable fraction
of each batch's expected processing time, so the reported
``overhead_fraction`` reproduces that measurement.
"""

from __future__ import annotations

import numpy as np

from repro.core.cost_tensor import lexicographic_argmin
from repro.core.physical import InfeasiblePlacementError, PhysicalPlan
from repro.core.rld import RLDSolution
from repro.engine.faults import FaultEvent
from repro.engine.system import RoutingDecision, StreamSimulator
from repro.query.cost import PlanCostModel
from repro.query.plans import LogicalPlan
from repro.query.statistics import StatPoint, rate_param
from repro.util.types import IntArray
from repro.util.validation import ensure_in_range

__all__ = ["RLDStrategy"]

#: Above this many grid points the routing table is disabled and every
#: batch takes the live (scalar argmin) path — the table would cost more
#: memory than the per-batch evaluation it saves.
MAX_TABLE_POINTS = 200_000


class RLDStrategy:
    """Online classifier over a compiled :class:`RLDSolution`.

    Parameters
    ----------
    solution:
        Compile-time output of :class:`~repro.core.rld.RLDOptimizer`.
    classify_overhead_fraction:
        Routing cost charged per batch, as a fraction of the batch's
        expected processing seconds (§6.5 measures ≈ 0.02).
    batch_size:
        Expected tuples per batch, for the overhead estimate.
    mean_capacity:
        Average node capacity, for converting work to seconds.
    """

    name = "RLD"

    def __init__(
        self,
        solution: RLDSolution,
        *,
        classify_overhead_fraction: float = 0.02,
        batch_size: float = 100.0,
        overload_threshold: float = 0.95,
    ) -> None:
        ensure_in_range(
            classify_overhead_fraction, "classify_overhead_fraction", 0.0, 1.0
        )
        if overload_threshold <= 0:
            raise ValueError(
                f"overload_threshold must be > 0, got {overload_threshold}"
            )
        if not solution.feasible:
            raise InfeasiblePlacementError(
                "RLD solution's physical plan supports no logical plan; "
                "increase cluster resources or relax epsilon"
            )
        self._solution = solution
        self._plans: tuple[LogicalPlan, ...] = solution.supported_plans
        self._cost_model: PlanCostModel = solution.logical.cost_model
        self._overhead_fraction = classify_overhead_fraction
        self._batch_size = batch_size
        self._overload_threshold = overload_threshold
        self._rate_name = rate_param()
        # Placement geometry for bottleneck-aware routing: which node
        # hosts each operator, and each node's capacity.
        placement = solution.physical.physical_plan
        assert placement is not None  # guarded above
        self._node_of = {
            op_id: placement.node_of(op_id)
            for op_id in solution.query.operator_ids
        }
        self._capacities = solution.cluster.capacities
        #: Nodes currently offline (maintained via the on_fault hook).
        self._down: set[int] = set()
        # ---- Precomputed routing table over grid cells --------------
        # One argmin decision per grid point, mirroring route()'s exact
        # branch logic for the current down-set.  Lazily built, rebuilt
        # after faults change node liveness, bypassed (live path) when
        # the statistics fall off-grid.
        self._space = solution.space
        self._table: IntArray | None = None
        self._table_down: frozenset[int] = frozenset()
        self._table_hits = 0
        self._table_misses = 0
        self._table_rebuilds = 0
        self._table_enabled = self._space.n_points <= MAX_TABLE_POINTS
        by_order = sorted(range(len(self._plans)), key=lambda i: self._plans[i].order)
        self._plan_ranks = np.empty(len(self._plans), dtype=np.intp)
        for rank, i in enumerate(by_order):
            self._plan_ranks[i] = rank
        # Cost-relevant parameters that are *not* space dimensions are
        # baked into the table at their model defaults; if the monitor
        # reports a drifted value for one of them, the table no longer
        # describes the live cost surface and the lookup must miss.
        dim_names = set(self._space.names)
        self._off_dim_defaults: dict[str, float] = {}
        if self._rate_name not in dim_names:
            self._off_dim_defaults[self._rate_name] = solution.query.driving_rate
        for op in solution.query.operators:
            if op.selectivity_param not in dim_names:
                self._off_dim_defaults[op.selectivity_param] = op.selectivity

    @property
    def placement(self) -> PhysicalPlan:
        """The fixed robust physical plan (never migrates)."""
        plan = self._solution.physical.physical_plan
        assert plan is not None  # guarded in __init__
        return plan

    @property
    def candidate_plans(self) -> tuple[LogicalPlan, ...]:
        """Robust logical plans the classifier may route batches to."""
        return self._plans

    def _node_loads(self, plan: LogicalPlan, stats: StatPoint) -> list[float]:
        """Per-node load (cost units/second) this plan would impose."""
        node_loads = [0.0] * len(self._capacities)
        for op_id, load in self._cost_model.operator_loads(plan, stats).items():
            node_loads[self._node_of[op_id]] += load
        return node_loads

    def _bottleneck_utilization(self, plan: LogicalPlan, stats: StatPoint) -> float:
        """Peak node utilization this plan would impose on the placement."""
        return max(
            load / capacity
            for load, capacity in zip(self._node_loads(plan, stats), self._capacities)
        )

    def bottleneck_node(self, plan: LogicalPlan, stats: StatPoint) -> int:
        """The node this plan loads hardest relative to its capacity."""
        utilizations = [
            load / capacity
            for load, capacity in zip(self._node_loads(plan, stats), self._capacities)
        ]
        return max(range(len(utilizations)), key=lambda i: (utilizations[i], -i))

    def _down_load(self, plan: LogicalPlan, stats: StatPoint) -> float:
        """Load this plan sends to currently-offline nodes."""
        return sum(
            load
            for op_id, load in self._cost_model.operator_loads(plan, stats).items()
            if self._node_of[op_id] in self._down
        )

    @property
    def down_nodes(self) -> frozenset[int]:
        """Nodes the strategy currently believes are offline."""
        return frozenset(self._down)

    # ------------------------------------------------------------------
    # Precomputed routing table (the O(1) classifier fast path)
    # ------------------------------------------------------------------

    @property
    def routing_table_enabled(self) -> bool:
        """False when the space is too large to tabulate."""
        return self._table_enabled

    @property
    def table_hits(self) -> int:
        """Batches routed by the precomputed table."""
        return self._table_hits

    @property
    def table_misses(self) -> int:
        """Batches routed by live evaluation (off-grid or disabled)."""
        return self._table_misses

    @property
    def table_rebuilds(self) -> int:
        """Times the table was (re)built, including the first build."""
        return self._table_rebuilds

    def _build_table(self) -> IntArray:
        """One routing decision per grid cell for the current down-set.

        Vectorized mirror of :meth:`_route_live`'s three branches over
        the whole grid at once: the cost argmin, the dead-bottleneck
        fallback, and the overload (min-bottleneck) mode.  All argmins
        share the scalar path's ``(…, plan.order)`` tie-break via
        :func:`lexicographic_argmin`.
        """
        space = self._space
        names = list(space.names)
        matrix = space.grid_matrix()
        n_points = matrix.shape[0]
        n_plans = len(self._plans)
        capacities = np.asarray(self._capacities, dtype=float)
        down = np.zeros(len(self._capacities), dtype=bool)
        for node in self._down:
            down[node] = True

        costs = np.empty((n_plans, n_points))
        butil = np.empty((n_plans, n_points))
        bneck = np.empty((n_plans, n_points), dtype=np.intp)
        down_load = np.zeros((n_plans, n_points))
        for p, plan in enumerate(self._plans):
            costs[p] = self._cost_model.plan_costs(plan, matrix, names)
            loads = self._cost_model.operator_loads_batch(plan, matrix, names)
            node_loads = np.zeros((len(self._capacities), n_points))
            for op_id, load in loads.items():
                node_loads[self._node_of[op_id]] += load
            utils = node_loads / capacities[:, None]
            bneck[p] = np.argmax(utils, axis=0)  # first max = smallest node
            butil[p] = utils.max(axis=0)
            if self._down:
                for op_id, load in loads.items():
                    if self._node_of[op_id] in self._down:
                        down_load[p] += load

        choice = lexicographic_argmin([costs], self._plan_ranks)
        if n_plans > 1:
            cols = np.arange(n_points)
            pref_util = butil[choice, cols]
            if self._down:
                plan_bneck_down = down[bneck]  # (n_plans, n_points)
                pref_down = plan_bneck_down[choice, cols]
                survive = ~plan_bneck_down
                has_survivor = survive.any(axis=0)
                # Non-surviving plans leave the candidate pool (∞ key)
                # except where *every* plan bottlenecks on a dead node.
                dl_key = np.where(
                    has_survivor[None, :] & ~survive, np.inf, down_load
                )
                degraded = lexicographic_argmin([dl_key, costs], self._plan_ranks)
                overloaded = ~pref_down & (pref_util >= self._overload_threshold)
                choice = np.where(pref_down, degraded, choice)
            else:
                overloaded = pref_util >= self._overload_threshold
            if overloaded.any():
                by_bottleneck = lexicographic_argmin(
                    [butil, costs], self._plan_ranks
                )
                choice = np.where(overloaded, by_bottleneck, choice)
        return choice

    def _table_plan(self, stats: StatPoint) -> LogicalPlan | None:
        """Table lookup; ``None`` demands the live path.

        Misses when the table is disabled (space too large), when any
        cost parameter *outside* the space drifted from the default the
        table was baked with, or when the statistics fall off-grid
        (beyond half a cell outside the box).
        """
        if not self._table_enabled:
            return None
        for name, default in self._off_dim_defaults.items():
            value = stats.get(name)
            if value is not None and abs(float(value) - default) > 1e-9 * max(
                abs(default), 1.0
            ):
                return None
        flat = self._space.nearest_flat_index(stats)
        if flat is None:
            return None
        current_down = frozenset(self._down)
        if self._table is None or self._table_down != current_down:
            self._table = self._build_table()
            self._table_down = current_down
            self._table_rebuilds += 1
        return self._plans[int(self._table[flat])]

    def route(self, time: float, stats: StatPoint) -> RoutingDecision:
        """Classify the batch to a supported robust plan.

        The fast path snaps the statistics to the nearest grid cell and
        reads the plan from the precomputed routing table — O(1) per
        batch.  Statistics off the grid (or a space too large to
        tabulate) fall back to :meth:`_route_live`, the scalar argmin
        the table was built from.
        """
        plan = self._table_plan(stats)
        if plan is not None:
            self._table_hits += 1
        else:
            self._table_misses += 1
            plan = self._route_live(stats)
        overhead = self._classification_overhead(plan, stats)
        return RoutingDecision(plan=plan, overhead_seconds=overhead)

    def _route_live(self, stats: StatPoint) -> LogicalPlan:
        """Scalar classification at exact statistics.

        Normally the cheapest plan at the current statistics (§3's
        online classifier).  Two degraded modes:

        * When the preferred plan's bottleneck node is *down* (fault
          injection), fall back to the best surviving candidate — a
          supported plan whose bottleneck is still online, cheapest
          first; if every candidate bottlenecks on a dead node, pick
          the one sending the least load to dead nodes.  Batches still
          traverse every operator, but the surviving plan thins them
          before the dead node's operator, so the stalled queue there
          stays short and drains quickly after recovery.
        * When even the cheapest plan would saturate some machine
          (bottleneck utilization ≥ ``overload_threshold``), switch
          objective to minimizing that bottleneck — the statistics are
          then outside the space the plan set was costed for, and
          sustained throughput is governed by the hottest node, not by
          total work.
        """
        plan = min(
            self._plans,
            key=lambda p: (self._cost_model.plan_cost(p, stats), p.order),
        )
        if (
            self._down
            and len(self._plans) > 1
            and self.bottleneck_node(plan, stats) in self._down
        ):
            surviving = [
                p
                for p in self._plans
                if self.bottleneck_node(p, stats) not in self._down
            ]
            pool = surviving or list(self._plans)
            plan = min(
                pool,
                key=lambda p: (
                    self._down_load(p, stats),
                    self._cost_model.plan_cost(p, stats),
                    p.order,
                ),
            )
        elif (
            len(self._plans) > 1
            and self._bottleneck_utilization(plan, stats) >= self._overload_threshold
        ):
            plan = min(
                self._plans,
                key=lambda p: (
                    self._bottleneck_utilization(p, stats),
                    self._cost_model.plan_cost(p, stats),
                    p.order,
                ),
            )
        return plan

    def _classification_overhead(self, plan: LogicalPlan, stats: StatPoint) -> float:
        """Charge ≈ ``fraction`` of the batch's expected service seconds."""
        if self._overhead_fraction <= 0.0:
            return 0.0
        rate = float(stats.get(self._rate_name, 1.0))
        if rate <= 0:
            return 0.0
        per_tuple_cost = self._cost_model.plan_cost(plan, stats) / rate
        expected_seconds = (
            self._batch_size * per_tuple_cost / self._mean_capacity()
        )
        return self._overhead_fraction * expected_seconds

    def _mean_capacity(self) -> float:
        cluster = self._solution.cluster
        return cluster.total_capacity / cluster.n_nodes

    def on_tick(self, simulator: StreamSimulator, time: float) -> None:
        """RLD never migrates; nothing to do on ticks."""

    def on_fault(self, simulator: StreamSimulator | None, event: FaultEvent) -> None:
        """Track node liveness so routing can avoid dead bottlenecks.

        RLD's graceful degradation is purely logical: the placement
        never changes, but the classifier reroutes batches through the
        candidate plan that burdens the dead node least.  Any liveness
        change invalidates the routing table; the next on-grid batch
        rebuilds it for the new down-set.
        """
        if event.kind == "crash" and event.node is not None:
            if event.node not in self._down:
                self._down.add(event.node)
                self._table = None
        elif event.kind == "recover" and event.node is not None:
            if event.node in self._down:
                self._down.discard(event.node)
                self._table = None
