"""DYN baseline: dynamic load distribution (Borealis-style, §7).

DYN keeps the single estimate-optimal logical plan (load migration
"only changes the operators' physical layout", §6.5) but continuously
rebalances: on each strategy tick it compares node utilizations over
the last window and, when the hot/cold gap exceeds a threshold, moves
one operator from the hottest node to the coolest — paying the
migration pause (execution suspension of the moved operator) that the
paper identifies as DYN's Achilles heel under short-term fluctuations.
"""

from __future__ import annotations

from repro.core.greedy_phy import largest_load_first
from repro.core.physical import Cluster, InfeasiblePlacementError, PhysicalPlan
from repro.engine.faults import FaultError, FaultEvent
from repro.engine.system import RoutingDecision, StreamSimulator
from repro.query.cost import PlanCostModel
from repro.query.model import Query
from repro.query.plans import LogicalPlan
from repro.query.statistics import StatPoint
from repro.util.validation import ensure_positive

__all__ = ["DYNStrategy"]


class DYNStrategy:
    """Threshold-triggered operator migration on top of a fixed plan.

    Parameters
    ----------
    query, cluster:
        The workload and machines.
    estimate:
        Statistics point for the initial plan/placement (defaults to
        the query's estimates).
    imbalance_threshold:
        Minimum hot−cold utilization gap (fraction of capacity) that
        triggers a migration.
    cooldown_seconds:
        Minimum time between consecutive migrations (adaptation delay).
    """

    name = "DYN"

    def __init__(
        self,
        query: Query,
        cluster: Cluster,
        *,
        estimate: StatPoint | None = None,
        imbalance_threshold: float = 0.15,
        cooldown_seconds: float = 10.0,
    ) -> None:
        from repro.query.optimizer import make_optimizer  # local: avoids cycle at import

        ensure_positive(imbalance_threshold, "imbalance_threshold")
        ensure_positive(cooldown_seconds, "cooldown_seconds")
        self._query = query
        self._cluster = cluster
        point = estimate or query.estimate_point()
        self._plan = make_optimizer(query).optimize(point)
        self._cost_model = PlanCostModel(query)
        loads = self._cost_model.operator_loads(self._plan, point)
        placement = largest_load_first(loads, cluster)
        if placement is None:
            raise InfeasiblePlacementError(
                f"DYN cannot place query {query.name!r} at its estimate "
                f"point within the given cluster"
            )
        self._placement = placement
        self._threshold = imbalance_threshold
        self._cooldown = cooldown_seconds
        self._last_migration = -float("inf")
        self._last_busy: list[float] | None = None
        self._last_tick_time = 0.0

    @property
    def placement(self) -> PhysicalPlan:
        """The *initial* placement; the simulator tracks live changes."""
        return self._placement

    @property
    def logical_plan(self) -> LogicalPlan:
        """The single logical plan DYN executes (it never re-orders)."""
        return self._plan

    def route(self, time: float, stats: StatPoint) -> RoutingDecision:
        """Always the compile-time plan; rebalancing happens on ticks."""
        return RoutingDecision(plan=self._plan, overhead_seconds=0.0)

    def on_tick(self, simulator: StreamSimulator, time: float) -> None:
        """Check window utilizations; migrate one operator if imbalanced.

        Only online nodes participate: a crashed node is neither a
        donor (its operators were already evacuated by
        :meth:`on_fault`) nor a target.
        """
        nodes = simulator.nodes
        busy = [node.busy_seconds for node in nodes]
        if self._last_busy is None:
            self._last_busy, self._last_tick_time = busy, time
            return
        window = time - self._last_tick_time
        if window <= 0:
            return
        utilization = [
            (b - prev) / window
            for b, prev in zip(busy, self._last_busy)
        ]
        self._last_busy, self._last_tick_time = busy, time

        alive = [i for i, node in enumerate(nodes) if node.online]
        if len(alive) < 2:
            return
        hot = max(alive, key=lambda i: utilization[i])
        cold = min(alive, key=lambda i: utilization[i])
        gap = utilization[hot] - utilization[cold]
        if gap < self._threshold or hot == cold:
            return
        if time - self._last_migration < self._cooldown:
            return  # adaptation delay: a migration opportunity is missed

        placement = simulator.current_placement
        hot_ops = [op for op, node in placement.items() if node == hot]
        if not hot_ops:
            return
        # Estimate each candidate's current load from monitored stats and
        # move the operator closest to half the gap (avoids ping-pong).
        stats = simulator.monitor.current()
        loads = self._cost_model.operator_loads(self._plan, stats)
        target_transfer = gap * nodes[hot].capacity / 2.0
        candidate = min(
            hot_ops, key=lambda op: (abs(loads[op] - target_transfer), op)
        )
        simulator.migrate(candidate, cold)
        self._last_migration = time

    def on_fault(self, simulator: StreamSimulator, event: FaultEvent) -> None:
        """Evacuate a crashed node by force-migrating its operators.

        This is DYN's reaction to infrastructure failure: every
        operator hosted on the dead node is immediately re-homed to the
        least-loaded surviving node, paying the full migration pause
        for each — adaptation works, but the stalls are the bill (the
        same Achilles heel §6.5 charges DYN for under load drift).
        Ignores the cooldown: a crash is not an imbalance signal.

        Only :class:`FaultError` may escape this hook — anything the
        evacuation trips over (a concurrent fault invalidating the
        placement, a migration rejected mid-flight) is converted so the
        engine's fault accounting survives the failure it was injected
        to measure.
        """
        if event.kind != "crash" or event.node is None:
            return
        try:
            placement = simulator.current_placement
            dead_ops = sorted(
                op for op, node in placement.items() if node == event.node
            )
            if not dead_ops:
                return
            survivors = [node for node in simulator.nodes if node.online]
            if not survivors:
                return  # total outage: nothing to evacuate to
            for op in dead_ops:
                target = min(survivors, key=lambda n: (n.busy_seconds, n.node_id))
                simulator.migrate(op, target.node_id)
            self._last_migration = simulator.now
        except FaultError:
            raise
        except Exception as exc:
            raise FaultError(
                f"DYN evacuation of node {event.node} failed: {exc}"
            ) from exc
