"""Run RLD, ROD, and DYN on identical workloads (§6.5's harness).

Each strategy gets its own simulator instance but the same query,
cluster, workload, duration, and seed, so reported differences come
from the strategies alone.  Used directly by the Figure 15/16 benches
and the example applications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.physical import Cluster
from repro.core.rld import RLDConfig, RLDOptimizer, RLDSolution
from repro.engine.faults import FaultSchedule
from repro.engine.metrics import SimulationReport
from repro.engine.system import LoadDistributionStrategy, StreamSimulator
from repro.query.model import Query
from repro.query.statistics import StatisticsEstimate
from repro.runtime.dyn import DYNStrategy
from repro.runtime.rld_runtime import RLDStrategy
from repro.runtime.rod import RODStrategy
from repro.workloads.generators import Workload

__all__ = ["StrategyComparison", "compare_strategies", "build_standard_strategies"]


@dataclass(frozen=True)
class StrategyComparison:
    """Reports of all strategies over one identical scenario."""

    duration: float
    reports: Mapping[str, SimulationReport]

    def latency_ms(self, strategy: str) -> float:
        """Average tuple processing time of one strategy."""
        return self.reports[strategy].avg_tuple_latency_ms

    def tuples_out(self, strategy: str) -> float:
        """Total tuples produced by one strategy."""
        return self.reports[strategy].tuples_out

    def summary_rows(self) -> list[dict[str, float | str]]:
        """One comparable row per strategy (bench table rendering)."""
        rows: list[dict[str, float | str]] = []
        for name, report in self.reports.items():
            rows.append(
                {
                    "strategy": name,
                    "avg_latency_ms": report.avg_tuple_latency_ms,
                    "tuples_out": report.tuples_out,
                    "migrations": report.migrations,
                    "plan_switches": report.plan_switches,
                    "overhead_fraction": report.overhead_fraction,
                    "batches_dropped": report.batches_dropped,
                    "node_downtime_seconds": report.node_downtime_seconds,
                }
            )
        return rows


def build_standard_strategies(
    query: Query,
    cluster: Cluster,
    *,
    estimate: StatisticsEstimate | None = None,
    rld_config: RLDConfig | None = None,
    rld_solution: RLDSolution | None = None,
) -> dict[str, LoadDistributionStrategy]:
    """Construct the paper's three contenders for one scenario.

    ``rld_solution`` lets callers reuse an already-compiled solution
    (the compile step dominates setup time in sweeps); otherwise RLD is
    compiled here from ``estimate``.
    """
    if rld_solution is None:
        optimizer = RLDOptimizer(query, cluster, config=rld_config)
        rld_solution = optimizer.solve(estimate)
    point = (estimate or query.default_estimates()).point
    return {
        "ROD": RODStrategy(query, cluster, estimate=point),
        "DYN": DYNStrategy(query, cluster, estimate=point),
        "RLD": RLDStrategy(rld_solution),
    }


def compare_strategies(
    query: Query,
    cluster: Cluster,
    workload: Workload,
    strategies: Mapping[str, LoadDistributionStrategy],
    *,
    duration: float = 300.0,
    seed: int = 17,
    batch_size: float = 100.0,
    strategy_order: Sequence[str] = ("ROD", "DYN", "RLD"),
    faults: FaultSchedule | None = None,
) -> StrategyComparison:
    """Simulate each strategy on the identical scenario and collect reports.

    ``faults`` (optional) replays one immutable fault schedule against
    every strategy, so robustness-under-failure differences come from
    the strategies alone — the same chaos hits everyone.
    """
    reports: dict[str, SimulationReport] = {}
    for name in strategy_order:
        if name not in strategies:
            continue
        simulator = StreamSimulator(
            query,
            cluster,
            strategies[name],
            workload,
            batch_size=batch_size,
            seed=seed,
            faults=faults,
        )
        reports[name] = simulator.run(duration)
    return StrategyComparison(duration=duration, reports=reports)
