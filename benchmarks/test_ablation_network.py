"""Ablation: does the §2.1 "network is not the bottleneck" assumption hold?

The paper assumes a high-bandwidth network and charges nothing for
inter-node data movement.  This bench validates that assumption in the
simulated regime and shows where it breaks: RLD's latency under the
default scenario with a free network, a datacenter-grade network
(0.5 ms/hop), and two degraded networks.  Only when per-hop costs reach
WAN-like levels does data movement become a first-order term.
"""

from __future__ import annotations

from _harness import print_panel

from repro.core import Cluster, RLDConfig, RLDOptimizer
from repro.engine import NetworkModel, StreamSimulator
from repro.runtime import RLDStrategy
from repro.workloads import build_q1, stock_workload

DURATION = 180.0
SEED = 53

NETWORKS = {
    "free (paper)": None,
    "datacenter": NetworkModel(),
    "slow LAN": NetworkModel(latency_seconds=0.01, bandwidth_bytes_per_second=12_500_000.0),
    "WAN-like": NetworkModel(latency_seconds=0.05, bandwidth_bytes_per_second=1_250_000.0),
}


def sweep() -> list[dict[str, object]]:
    query = build_q1()
    estimate = query.default_estimates(
        {op.selectivity_param: 3 for op in query.operators} | {"rate": 2}
    )
    cluster = Cluster.homogeneous(4, 420.0)
    solution = RLDOptimizer(query, cluster, config=RLDConfig(epsilon=0.2)).solve(
        estimate
    )
    workload = stock_workload(query, uncertainty_level=3)
    rows = []
    for name, network in NETWORKS.items():
        strategy = RLDStrategy(solution)
        report = StreamSimulator(
            query, cluster, strategy, workload, seed=SEED, network=network
        ).run(DURATION)
        rows.append(
            {
                "network": name,
                "latency ms": report.avg_tuple_latency_ms,
                "network s": report.network_seconds,
                "done": report.batches_completed,
            }
        )
    return rows


def test_ablation_network_assumption(run_once):
    rows = run_once(sweep)
    print_panel(
        "Ablation — sensitivity to inter-node network cost (RLD)",
        ["network", "latency ms", "network s", "done"],
        rows,
    )
    by_name = {row["network"]: row for row in rows}
    free = by_name["free (paper)"]
    datacenter = by_name["datacenter"]
    # The paper's assumption: a datacenter network changes latency by
    # a negligible margin.
    assert free["network s"] == 0.0
    assert datacenter["latency ms"] <= free["latency ms"] * 1.10
    # A WAN-like network, by contrast, is clearly visible.
    assert by_name["WAN-like"]["latency ms"] > free["latency ms"]
