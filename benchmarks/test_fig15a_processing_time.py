"""Figure 15a: average tuple processing time vs input-rate fluctuation.

Scales the input rate from 50% to 400% of the compile-time estimate and
measures each strategy's average tuple processing time over the run.
The paper's shape: at 50% everyone is comfortable; through 100–200% RLD
is a factor 2–3 faster than ROD and DYN (it keeps executing the
currently-optimal robust plan without migrating); at extreme overload
(300–400%) the cluster simply lacks resources for any single physical
plan and the margins collapse — the regime where the paper concedes
RLD's single-physical-plan design reaches its limits.
"""

from __future__ import annotations

from _harness import print_panel

from repro.core import Cluster, RLDConfig, RLDOptimizer
from repro.runtime.comparison import build_standard_strategies, compare_strategies
from repro.workloads import build_q1, stock_workload

RATIOS = (0.5, 1.0, 2.0, 3.0, 4.0)
DURATION = 180.0
SEED = 29


def sweep() -> list[dict[str, object]]:
    query = build_q1()
    estimate = query.default_estimates(
        {op.selectivity_param: 3 for op in query.operators} | {"rate": 2}
    )
    cluster = Cluster.homogeneous(4, 420.0)
    solution = RLDOptimizer(query, cluster, config=RLDConfig(epsilon=0.2)).solve(
        estimate
    )
    rows = []
    for ratio in RATIOS:
        workload = stock_workload(query, uncertainty_level=3).scaled(ratio)
        strategies = build_standard_strategies(
            query, cluster, estimate=estimate, rld_solution=solution
        )
        comparison = compare_strategies(
            query, cluster, workload, strategies, duration=DURATION, seed=SEED
        )
        rows.append(
            {
                "rate ratio": f"{ratio:.0%}",
                "ROD ms": comparison.latency_ms("ROD"),
                "DYN ms": comparison.latency_ms("DYN"),
                "RLD ms": comparison.latency_ms("RLD"),
                "RLD migrations": comparison.reports["RLD"].migrations,
                "DYN migrations": comparison.reports["DYN"].migrations,
            }
        )
    return rows


def test_fig15a_processing_time(run_once):
    rows = run_once(sweep)
    print_panel(
        "Figure 15a — avg tuple processing time vs input-rate fluctuation ratio",
        ["rate ratio", "ROD ms", "DYN ms", "RLD ms", "RLD migrations", "DYN migrations"],
        rows,
    )
    by_ratio = {row["rate ratio"]: row for row in rows}
    # Inside the modelled fluctuation range RLD clearly wins.
    for ratio in ("100%", "200%"):
        row = by_ratio[ratio]
        assert row["RLD ms"] < row["ROD ms"]
        assert row["RLD ms"] < row["DYN ms"]
    # RLD never migrates at any fluctuation level.
    assert all(row["RLD migrations"] == 0 for row in rows)
    # Latency grows with the offered load for every strategy.
    rod = [row["ROD ms"] for row in rows]
    assert rod[0] < rod[-1]
