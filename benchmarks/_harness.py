"""Shared machinery for the per-figure benchmark modules.

Each ``benchmarks/test_*.py`` module regenerates one table or figure of
the paper's §6 evaluation: it computes the same rows/series the paper
plots, prints them in a readable panel (captured by pytest's ``-s`` or
shown in the benchmark summary), and times a representative kernel via
pytest-benchmark.  This module holds the scenario builders and table
printers they share.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.core import (
    Cluster,
    EarlyTerminatedRobustPartitioning,
    ExhaustiveSearch,
    NormalOccurrenceModel,
    ParameterSpace,
    PlanLoadTable,
    RandomSearch,
)
from repro.query import Query
from repro.query.optimizer import make_optimizer

#: The 2-D dimensions used for Q1's logical-plan experiments: the two
#: near-unit-fanout joins whose rank crossings span many optimal plans.
Q1_DIMS = ("sel:1", "sel:3")

#: Q2 dimension ladder for the Figure 12 dimensionality sweep.
Q2_DIM_LADDER = ("sel:1", "sel:3", "sel:5", "sel:0", "sel:7")


def space_for(
    query: Query,
    dims: Sequence[str],
    level: int,
    *,
    points_per_level: int = 2,
) -> ParameterSpace:
    """Parameter space over ``dims`` at one uncertainty level."""
    estimate = query.default_estimates({d: level for d in dims})
    return ParameterSpace.from_estimates(
        estimate, points_per_level=points_per_level
    )


def logical_searchers(query: Query, space: ParameterSpace, epsilon: float):
    """Fresh ES / RS / ERP instances sharing nothing (separate counters)."""
    return {
        "ES": ExhaustiveSearch(query, space, epsilon=epsilon),
        "RS": RandomSearch(query, space, epsilon=epsilon, seed=7),
        "ERP": EarlyTerminatedRobustPartitioning(query, space, epsilon=epsilon),
    }


def load_table_for(
    query: Query,
    dims: Sequence[str],
    level: int,
    *,
    epsilon: float = 0.2,
) -> PlanLoadTable:
    """Robust logical solution → plan load table, the physical bench input."""
    space = space_for(query, dims, level)
    solution = EarlyTerminatedRobustPartitioning(
        query, space, epsilon=epsilon
    ).run().solution
    occurrence = NormalOccurrenceModel(space)
    return PlanLoadTable.from_solution(solution, occurrence=occurrence)


def sized_cluster(
    table: PlanLoadTable, n_nodes: int, *, headroom: float = 1.15
) -> Cluster:
    """Homogeneous cluster able to host the *heaviest single operator*.

    Capacity is the larger of (heaviest worst-case operator) and (total
    worst-case load / nodes), scaled by ``headroom`` — tight enough that
    small clusters cannot support every robust plan, which is what the
    Figure 13/14 sweeps need.
    """
    peak_loads = table.max_loads()
    per_node = max(
        max(peak_loads.values()), sum(peak_loads.values()) / n_nodes
    )
    return Cluster.homogeneous(n_nodes, per_node * headroom)


def panel_capacity(table: PlanLoadTable, machine_counts: Sequence[int]) -> float:
    """Per-node capacity for one Figure 13/14 panel.

    The tightest capacity that can host the heaviest single operator,
    while guaranteeing the largest cluster in the sweep enough total
    headroom for the combined (max-load) plan profile and the smallest
    cluster enough for the lightest single plan.  This puts the
    coverage knee *inside* the machine sweep, giving Figure 14 its
    ramp-then-saturate shape.
    """
    all_ops = table.operator_ids
    peak = table.max_loads()
    heaviest_op = max(peak.values())
    total_combined = sum(peak.values())
    lightest_plan = min(
        table.config_load(i, all_ops) for i in range(table.n_plans)
    )
    return max(
        heaviest_op * 1.02,
        total_combined / max(machine_counts) * 1.05,
        lightest_plan / min(machine_counts) * 1.15,
    )


def estimate_point_optimum(query: Query):
    """The single estimate-point optimal plan (baselines' fixed plan)."""
    return make_optimizer(query).optimize(query.estimate_point())


# ----------------------------------------------------------------------
# Panel printing
# ----------------------------------------------------------------------

def format_cell(value) -> str:
    """Uniform cell rendering: floats get 3 significant digits."""
    if isinstance(value, float):
        if math.isnan(value):
            return "stalled"
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000:
            return f"{value:.0f}"
        if magnitude >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def print_panel(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Mapping[str, object]],
) -> None:
    """Print one figure panel as an aligned text table."""
    rendered = [
        {col: format_cell(row.get(col, "")) for col in columns} for row in rows
    ]
    widths = {
        col: max(len(col), *(len(r[col]) for r in rendered)) if rendered else len(col)
        for col in columns
    }
    print(f"\n--- {title} ---")
    print(" | ".join(col.rjust(widths[col]) for col in columns))
    print("-+-".join("-" * widths[col] for col in columns))
    for row in rendered:
        print(" | ".join(row[col].rjust(widths[col]) for col in columns))
