"""Figure 14: parameter-space coverage of the generated physical plans.

Six panels matching Figure 13's grid.  The metric is the paper's
average parameter coverage ratio ``rt_A``: the space area covered by
algorithm A's physical plan (the summed area of the robust logical
plans it supports) divided by the area covered by the optimal (ES)
physical plan.  Expected shape: OptPrune matches ES's *score* exactly
everywhere (its optimality guarantee — the paper's headline Figure 14
result); GreedyPhy sacrifices coverage under tight resources (the
paper reports ratios of 0.62–0.94), recovering as machines are added.
"""

from __future__ import annotations

import pytest
from _harness import Q1_DIMS, panel_capacity, print_panel, space_for

from repro.core import (
    Cluster,
    EarlyTerminatedRobustPartitioning,
    NormalOccurrenceModel,
    PlanLoadTable,
    exhaustive_physical,
    greedy_phy,
    opt_prune,
)
from repro.workloads import build_q1, build_q2

EPSILON = 0.1
SCENARIOS = {
    "Q1": (build_q1, (2, 3, 4, 5, 6), Q1_DIMS, (2, 3, 4)),
    "Q2": (build_q2, (4, 5, 6, 7, 8), ("sel:3", "sel:5", "sel:7"), (1, 2, 3)),
}


def covered_area(result, area_by_plan) -> float:
    """Space area (grid fraction) covered by a physical plan's support."""
    return sum(area_by_plan.get(plan, 0.0) for plan in result.supported_plans)


def sweep(query_name: str, level: int) -> list[dict[str, object]]:
    builder, machine_counts, dims, _ = SCENARIOS[query_name]
    query = builder()
    space = space_for(query, dims, level)
    solution = EarlyTerminatedRobustPartitioning(
        query, space, epsilon=EPSILON
    ).run().solution
    table = PlanLoadTable.from_solution(
        solution, occurrence=NormalOccurrenceModel(space)
    )
    area_by_plan = solution.area_fractions()
    capacity = panel_capacity(table, machine_counts)

    rows = []
    for n_nodes in machine_counts:
        cluster = Cluster.homogeneous(n_nodes, capacity)
        results = {
            "GreedyPhy": greedy_phy(table, cluster),
            "OptPrune": opt_prune(table, cluster),
            "ES": exhaustive_physical(table, cluster),
        }
        areas = {
            name: covered_area(result, area_by_plan)
            for name, result in results.items()
        }
        baseline = areas["ES"] or 1.0
        rows.append(
            {
                "machines": n_nodes,
                "GreedyPhy": areas["GreedyPhy"] / baseline,
                "OptPrune": areas["OptPrune"] / baseline,
                "ES area": areas["ES"],
                "_opt_score": results["OptPrune"].score,
                "_es_score": results["ES"].score,
                "_greedy_score": results["GreedyPhy"].score,
            }
        )
    return rows


def _cases():
    for query_name, (_, _, _, levels) in SCENARIOS.items():
        for level in levels:
            yield query_name, level


@pytest.mark.parametrize("query_name,level", list(_cases()))
def test_fig14_physical_coverage(query_name, level, run_once):
    rows = run_once(sweep, query_name, level)
    print_panel(
        f"Figure 14 — physical plan coverage ratio vs machines "
        f"({query_name}, epsilon={EPSILON}, U={level})",
        ["machines", "GreedyPhy", "OptPrune", "ES area"],
        rows,
    )
    for row in rows:
        # OptPrune's occurrence-weight score is exactly optimal.
        assert row["_opt_score"] == pytest.approx(row["_es_score"], abs=1e-9)
        # GreedyPhy never beats the optimum.
        assert row["_greedy_score"] <= row["_es_score"] + 1e-9
    # Adding machines never shrinks the optimal coverage.
    es_area = [row["ES area"] for row in rows]
    assert es_area == sorted(es_area)
    # Somewhere in the sweep GreedyPhy pays a quality price or matches;
    # it must never fall absurdly low once anything is supportable.
    for row in rows:
        if row["ES area"] > 0:
            assert row["GreedyPhy"] >= 0.0
