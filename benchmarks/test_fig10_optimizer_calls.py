"""Figure 10: number of optimizer calls vs uncertainty level.

Three panels (ε = 0.1, 0.2, 0.3), each sweeping the uncertainty level
U = 1..5 on Q1's 2-D selectivity space and counting the optimizer calls
made by ES, RS, and ERP.  The paper's shape: ES grows quadratically
with U (one call per grid point), RS sits in between, and ERP is the
cheapest while growing gently — tighter ε costs ERP more calls.
"""

from __future__ import annotations

import pytest
from _harness import Q1_DIMS, logical_searchers, print_panel, space_for

from repro.workloads import build_q1

EPSILONS = (0.1, 0.2, 0.3)
LEVELS = (1, 2, 3, 4, 5)


def sweep(epsilon: float) -> list[dict[str, object]]:
    query = build_q1()
    rows = []
    for level in LEVELS:
        space = space_for(query, Q1_DIMS, level)
        row: dict[str, object] = {"U": level, "grid": space.n_points}
        for name, searcher in logical_searchers(query, space, epsilon).items():
            result = searcher.run()
            row[name] = result.optimizer_calls
            if name == "ERP":
                row["ERP plans"] = result.plans_found
        rows.append(row)
    return rows


@pytest.mark.parametrize("epsilon", EPSILONS)
def test_fig10_optimizer_calls(epsilon, run_once):
    rows = run_once(sweep, epsilon)
    print_panel(
        f"Figure 10 — optimizer calls vs U (epsilon={epsilon})",
        ["U", "grid", "ES", "RS", "ERP", "ERP plans"],
        rows,
    )
    for row in rows:
        # ES pays one call per grid point; ERP never exceeds ES.
        assert row["ES"] == row["grid"]
        assert row["ERP"] <= row["ES"]
    # ERP's cost grows with the uncertainty level overall.
    assert rows[-1]["ERP"] >= rows[0]["ERP"]
    # ES cost strictly grows with U (larger discretized space).
    es_calls = [row["ES"] for row in rows]
    assert es_calls == sorted(es_calls)
