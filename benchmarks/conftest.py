"""Benchmark-suite configuration.

Keeps pytest-benchmark rounds small: every benchmark kernel here is a
full experiment (an ERP run, an OptPrune search, a simulation), so one
round per kernel is both representative and affordable.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a kernel exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
