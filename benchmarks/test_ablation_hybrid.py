"""Ablation: the migration escape hatch (RLD vs RLD+M) outside the space.

§2.2 concedes that fluctuations beyond the compiled parameter space may
"have to exploit operator migration ... after all".  This bench runs
pure RLD and the hybrid variant at rate ratios inside (1×), at the edge
of (1.2×), and far beyond (3×, 4×) the compiled space, confirming that

* inside the space the hybrid is exactly RLD (zero migrations), and
* far outside it the fallback migrations recover throughput that the
  frozen placement loses.
"""

from __future__ import annotations

import pytest
from _harness import print_panel

from repro.core import Cluster, RLDConfig, RLDOptimizer
from repro.engine import StreamSimulator
from repro.runtime import RLDHybridStrategy, RLDStrategy
from repro.workloads import build_q1, stock_workload

RATIOS = (1.0, 1.2, 3.0, 4.0)
DURATION = 180.0
SEED = 37


def sweep() -> list[dict[str, object]]:
    query = build_q1()
    estimate = query.default_estimates(
        {op.selectivity_param: 3 for op in query.operators} | {"rate": 2}
    )
    cluster = Cluster.homogeneous(4, 420.0)
    solution = RLDOptimizer(query, cluster, config=RLDConfig(epsilon=0.2)).solve(
        estimate
    )
    rows = []
    for ratio in RATIOS:
        workload = stock_workload(query, uncertainty_level=3).scaled(ratio)
        pure = RLDStrategy(solution)
        # Tolerance 1.2: monitor noise plus the workload's own ±30%
        # pulsing must not count as "left the space".
        hybrid = RLDHybridStrategy(
            solution,
            space_tolerance=1.2,
            saturation_threshold=0.9,
            cooldown_seconds=15.0,
        )
        pure_report = StreamSimulator(
            query, cluster, pure, workload, seed=SEED
        ).run(DURATION)
        hybrid_report = StreamSimulator(
            query, cluster, hybrid, workload, seed=SEED
        ).run(DURATION)
        rows.append(
            {
                "rate ratio": f"{ratio:.0%}",
                "RLD ms": pure_report.avg_tuple_latency_ms,
                "RLD+M ms": hybrid_report.avg_tuple_latency_ms,
                "RLD done": pure_report.batches_completed,
                "RLD+M done": hybrid_report.batches_completed,
                "migrations": hybrid_report.migrations,
            }
        )
    return rows


def test_ablation_hybrid_escape_hatch(run_once):
    rows = run_once(sweep)
    print_panel(
        "Ablation — pure RLD vs RLD with migration escape hatch",
        ["rate ratio", "RLD ms", "RLD+M ms", "RLD done", "RLD+M done", "migrations"],
        rows,
    )
    by_ratio = {row["rate ratio"]: row for row in rows}
    # Inside the compiled space the hybrid never migrates: it IS RLD.
    assert by_ratio["100%"]["migrations"] == 0
    assert by_ratio["100%"]["RLD+M ms"] == pytest.approx(
        by_ratio["100%"]["RLD ms"], rel=1e-9
    )
    # Far outside the space the fallback fires...
    assert by_ratio["400%"]["migrations"] > 0
    # ...and at the deepest overload it recovers completed work the
    # frozen placement loses (at 300% migrations may merely break even).
    assert by_ratio["400%"]["RLD+M done"] >= by_ratio["400%"]["RLD done"]
    assert by_ratio["300%"]["RLD+M done"] >= by_ratio["300%"]["RLD done"] * 0.85

