"""Figure 6: ideal vs exhaustive partitioning economics (§4.1).

The paper's motivating illustration: a space containing a handful of
robust plans should be discoverable with a few partitioning steps
(Figure 6a — "10 optimizer calls" for 6 plans) where the exhaustive
grid needs one call per cell (Figure 6b — 64 calls on an 8×8 grid),
i.e. several times more than needed.

This bench measures that economy on real spaces: for Q1 2-D spaces of
increasing size, the number of optimizer calls per *distinct robust
plan found* under ERP vs exhaustive search.  The paper's 6× headline
ratio corresponds to the rightmost rows here.
"""

from __future__ import annotations

from _harness import Q1_DIMS, print_panel, space_for

from repro.core import EarlyTerminatedRobustPartitioning, ExhaustiveSearch
from repro.workloads import build_q1

EPSILON = 0.1
#: (level, points_per_level) pairs giving progressively larger grids.
GRIDS = ((3, 2), (4, 2), (5, 2), (5, 4))


def sweep() -> list[dict[str, object]]:
    query = build_q1()
    rows = []
    for level, ppl in GRIDS:
        space = space_for(query, Q1_DIMS, level, points_per_level=ppl)
        erp = EarlyTerminatedRobustPartitioning(query, space, epsilon=EPSILON).run()
        es = ExhaustiveSearch(query, space, epsilon=EPSILON).run()
        erp_found = max(erp.plans_found, 1)
        es_found = max(es.plans_found, 1)
        rows.append(
            {
                "grid": space.n_points,
                "ES calls": es.optimizer_calls,
                "ES plans": es.plans_found,
                "ES calls/plan": es.optimizer_calls / es_found,
                "ERP calls": erp.optimizer_calls,
                "ERP plans": erp.plans_found,
                "ERP calls/plan": erp.optimizer_calls / erp_found,
                "economy": (es.optimizer_calls / es_found)
                / (erp.optimizer_calls / erp_found),
            }
        )
    return rows


def test_fig6_partitioning_economy(run_once):
    rows = run_once(sweep)
    print_panel(
        f"Figure 6 — calls per robust plan, ES vs ERP (epsilon={EPSILON})",
        [
            "grid",
            "ES calls", "ES plans", "ES calls/plan",
            "ERP calls", "ERP plans", "ERP calls/plan",
            "economy",
        ],
        rows,
    )
    # ERP is always at least as call-efficient per plan as exhaustive
    # search, and on the largest grid the economy reaches the paper's
    # "several times cheaper" regime.
    for row in rows:
        assert row["ERP calls/plan"] <= row["ES calls/plan"] + 1e-9
    assert rows[-1]["economy"] >= 3.0
