"""Figure 11: parameter space coverage vs number of optimizer calls.

Three panels (ε = 0.1, 0.2, 0.3 at U = 5): each algorithm's coverage of
the parameter space — and the number of distinct robust plans found —
as a function of its optimizer-call budget (10..300), on a finely
discretized Q1 space so the budget axis is meaningful.

Shape notes vs the paper: ES ramps linearly (it sweeps the grid
row-major and owns full coverage only near one call per cell), while
ERP reaches high coverage within tens of calls — the paper's headline
contrast.  Our analytic cascaded-selectivity cost surfaces are smoother
than a real optimizer's, so a handful of plans already ε-covers the
space and RS saturates *coverage* quickly too; the "RS misses robust
plans" effect the paper reports shows up here in the plans-found
column: RS stops early having found strictly fewer distinct robust
plans than ES, while ERP approaches ES's plan count at a fraction of
the calls.  (We run U = 5 rather than the paper's U = 2 because the
smoother surfaces need a wider space before distinct plans appear at
all — see EXPERIMENTS.md.)
"""

from __future__ import annotations

import pytest
from _harness import Q1_DIMS, logical_searchers, print_panel, space_for

from repro.core import grid_optimal_costs
from repro.core.robustness import coverage_against_sequence
from repro.query import PlanCostModel, make_optimizer
from repro.workloads import build_q1

EPSILONS = (0.1, 0.2, 0.3)
BUDGETS = (10, 50, 100, 200, 300)
UNCERTAINTY = 5
#: 2·4·5 + 1 = 41... ppl=4 at U=5 gives 21 points/dim → a 441-cell grid,
#: so ES saturates between the 200- and 300-call budgets as in Fig. 11.
POINTS_PER_LEVEL = 4


def sweep(epsilon: float) -> list[dict[str, object]]:
    query = build_q1()
    space = space_for(query, Q1_DIMS, UNCERTAINTY, points_per_level=POINTS_PER_LEVEL)
    oracle = make_optimizer(query)
    optimal_costs = grid_optimal_costs(space, oracle)
    model = PlanCostModel(query)

    coverage: dict[str, list[float]] = {}
    plans_found: dict[str, list[int]] = {}
    for name, searcher in logical_searchers(query, space, epsilon).items():
        result = searcher.run()
        sequence = [(d.at_call, d.plan) for d in result.solution.discoveries]
        coverage[name] = coverage_against_sequence(
            sequence, BUDGETS, space, model, optimal_costs, epsilon
        )
        plans_found[name] = [
            sum(1 for at_call, _ in sequence if at_call <= budget)
            for budget in BUDGETS
        ]

    rows = []
    for i, budget in enumerate(BUDGETS):
        row: dict[str, object] = {"calls": budget}
        for name in ("ES", "RS", "ERP"):
            row[f"{name} cov"] = coverage[name][i]
            row[f"{name} plans"] = plans_found[name][i]
        rows.append(row)
    return rows


@pytest.mark.parametrize("epsilon", EPSILONS)
def test_fig11_space_coverage(epsilon, run_once):
    rows = run_once(sweep, epsilon)
    print_panel(
        f"Figure 11 — coverage & plans vs optimizer calls "
        f"(epsilon={epsilon}, U={UNCERTAINTY})",
        ["calls", "ES cov", "ES plans", "RS cov", "RS plans", "ERP cov", "ERP plans"],
        rows,
    )
    final = rows[-1]
    # ES ends with full coverage; ERP ends close to it.
    assert final["ES cov"] == pytest.approx(1.0)
    assert final["ERP cov"] >= 0.85
    # At the smallest budget ERP already covers at least as much as ES.
    assert rows[0]["ERP cov"] >= rows[0]["ES cov"] - 1e-9
    # RS terminates having found no more distinct plans than ES's sweep.
    assert final["RS plans"] <= final["ES plans"]
    # Coverage is monotone in the budget for every algorithm.
    for name in ("ES cov", "RS cov", "ERP cov"):
        series = [row[name] for row in rows]
        assert series == sorted(series)
