"""Ablation: GreedyPhy's drop policy (Algorithm 4's tie-break).

When GreedyPhy cannot place the combined max-load plan it must drop a
logical plan.  The paper's ``getMinWeightPlanWithMaxOp`` prefers, among
minimum-weight plans, the one dominating the max-load table on the most
operators — dropping it relieves the most load per unit of weight
sacrificed.  This bench contrasts that against naive minimum-weight
dropping across a capacity sweep, reporting the supported score each
policy salvages relative to OptPrune's optimum.
"""

from __future__ import annotations

from _harness import Q1_DIMS, load_table_for, print_panel

from repro.core import Cluster, greedy_phy, opt_prune
from repro.workloads import build_q1

EPSILON = 0.1
LEVEL = 4
#: Capacity as a multiple of the heaviest single-operator worst load.
CAPACITY_FACTORS = (1.05, 1.2, 1.4, 1.8)
N_NODES = 3


def sweep() -> list[dict[str, object]]:
    table = load_table_for(build_q1(), Q1_DIMS, LEVEL, epsilon=EPSILON)
    heaviest = max(table.max_loads().values())
    rows = []
    for factor in CAPACITY_FACTORS:
        cluster = Cluster.homogeneous(N_NODES, heaviest * factor)
        paper = greedy_phy(table, cluster, drop_policy="min-weight-max-ops")
        naive = greedy_phy(table, cluster, drop_policy="min-weight")
        optimal = opt_prune(table, cluster)
        rows.append(
            {
                "capacity x": factor,
                "paper policy": paper.score,
                "naive policy": naive.score,
                "OptPrune": optimal.score,
                "paper/opt": paper.score / optimal.score if optimal.score else 0.0,
                "naive/opt": naive.score / optimal.score if optimal.score else 0.0,
            }
        )
    return rows


def test_ablation_greedy_drop_policy(run_once):
    rows = run_once(sweep)
    print_panel(
        "Ablation — GreedyPhy drop policy vs OptPrune optimum",
        ["capacity x", "paper policy", "naive policy", "OptPrune", "paper/opt", "naive/opt"],
        rows,
    )
    for row in rows:
        # Neither greedy variant ever beats the optimum.
        assert row["paper policy"] <= row["OptPrune"] + 1e-9
        assert row["naive policy"] <= row["OptPrune"] + 1e-9
    # Aggregated over the sweep, the paper's tie-break is at least as
    # good as naive min-weight dropping.
    paper_total = sum(row["paper policy"] for row in rows)
    naive_total = sum(row["naive policy"] for row in rows)
    assert paper_total >= naive_total - 1e-9
