"""Figure 13: physical-plan compile time vs number of machines.

Six panels: Q1 across 2–6 machines and Q2 across 6–10 machines, each at
three uncertainty levels (ε = 0.1), timing GreedyPhy, OptPrune, and
exhaustive search (ES) on the same robust logical solution.  The
paper's shape: GreedyPhy is fastest (polynomial), ES is slowest and
grows steeply with machines/operators, and OptPrune lands near
GreedyPhy thanks to its bound — while matching ES's quality
(Figure 14).

Panel dimensions follow EXPERIMENTS.md: Q1 uses its two fan-out joins,
Q2 the low-cost joins whose ranks swing widest; levels are chosen so
every panel's space holds multiple robust plans (our analytic cost
surfaces need one level more than the paper's real optimizer did).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest
from _harness import Q1_DIMS, load_table_for, panel_capacity, print_panel

from repro.core import (
    Cluster,
    ParallelConfig,
    RLDConfig,
    RLDOptimizer,
    exhaustive_physical,
    greedy_phy,
    opt_prune,
)
from repro.query.optimizer import DPOptimizer
from repro.workloads import build_nway, build_q1, build_q2

EPSILON = 0.1
#: (query builder, machine counts, 2-D dims, uncertainty levels).
SCENARIOS = {
    "Q1": (build_q1, (2, 3, 4, 5, 6), Q1_DIMS, (2, 3, 4)),
    "Q2": (build_q2, (4, 5, 6, 7, 8), ("sel:3", "sel:5", "sel:7"), (1, 2, 3)),
}


def sweep(query_name: str, level: int) -> list[dict[str, object]]:
    builder, machine_counts, dims, _ = SCENARIOS[query_name]
    query = builder()
    table = load_table_for(query, dims, level, epsilon=EPSILON)
    capacity = panel_capacity(table, machine_counts)
    rows = []
    for n_nodes in machine_counts:
        cluster = Cluster.homogeneous(n_nodes, capacity)
        greedy = greedy_phy(table, cluster)
        pruned = opt_prune(table, cluster)
        exhaustive = exhaustive_physical(table, cluster)
        rows.append(
            {
                "machines": n_nodes,
                "GreedyPhy ms": greedy.compile_seconds * 1000,
                "OptPrune ms": pruned.compile_seconds * 1000,
                "ES ms": exhaustive.compile_seconds * 1000,
                "plans": table.n_plans,
            }
        )
    return rows


def _cases():
    for query_name, (_, _, _, levels) in SCENARIOS.items():
        for level in levels:
            yield query_name, level


@pytest.mark.parametrize("query_name,level", list(_cases()))
def test_fig13_compile_time(query_name, level, run_once):
    rows = run_once(sweep, query_name, level)
    print_panel(
        f"Figure 13 — compile time vs machines ({query_name}, "
        f"epsilon={EPSILON}, U={level})",
        ["machines", "GreedyPhy ms", "OptPrune ms", "ES ms", "plans"],
        rows,
    )
    # Over the sweep the paper's ordering holds: GreedyPhy ≤ OptPrune ≪
    # ES.  Compare medians with a small absolute floor — individual
    # sub-millisecond cells are at the mercy of GC pauses.
    def median(key: str) -> float:
        values = sorted(row[key] for row in rows)
        return values[len(values) // 2]

    assert median("GreedyPhy ms") <= median("OptPrune ms") * 2 + 0.5
    assert median("OptPrune ms") <= median("ES ms") + 0.5
    assert median("GreedyPhy ms") <= median("ES ms") + 0.5


# ----------------------------------------------------------------------
# Parallel compile: the `--jobs` sweep
# ----------------------------------------------------------------------

PARALLEL_JOBS = (1, 2, 4)
PARALLEL_TARGET_SPEEDUP = 2.0
PARALLEL_RESULT_PATH = (
    Path(__file__).resolve().parents[1] / "BENCH_parallel.json"
)


PARALLEL_EPSILON = 0.02


def _parallel_scenario():
    """A 12-way join compile dominated by per-corner optimizer work.

    With the DP optimizer each corner costs ~2^12 subset evaluations,
    so ERP's corner waves are the compile's critical path (~94% of
    wall-clock serial) — the regime the worker pool is built for.  The
    seed is chosen so the rank-clustered statistics yield a deep
    region split (≈90 optimizer calls, dozens of robust plans).
    """
    query = build_nway(12, seed=13)
    uncertainty = {op.selectivity_param: 3 for op in query.operators[:4]}
    estimate = query.default_estimates(uncertainty)
    cluster = Cluster.homogeneous(4, 420.0)
    return query, estimate, cluster


def _parallel_solution_key(solution):
    """The deterministic face of an RLD compile (no timings)."""
    table = solution.load_table
    return (
        solution.logical.plans,
        solution.logical.discoveries,
        solution.partitioning.optimizer_calls,
        tuple(table.weight_of(plan) for plan in table.plans),
        solution.physical.physical_plan,
        solution.physical.supported_plans,
        solution.physical.score,
    )


def test_parallel_compile_jobs_sweep():
    """`repro compile --jobs N`: identical solutions, falling wall-clock.

    Runs the full RLD pipeline at jobs ∈ {1, 2, 4} with the DP point
    optimizer (chunky per-corner work — the regime worker prefetch is
    built for), asserts the solutions are bitwise-identical, and writes
    the timing sweep to ``BENCH_parallel.json``.  The ≥2× speedup gate
    only applies where four workers have four cores to run on.
    """
    query, estimate, cluster = _parallel_scenario()
    rows = []
    keys = []
    for jobs in PARALLEL_JOBS:
        config = RLDConfig(
            epsilon=PARALLEL_EPSILON, parallel=ParallelConfig(jobs=jobs)
        )
        optimizer = RLDOptimizer(
            query, cluster, config=config, point_optimizer=DPOptimizer(query)
        )
        start = time.perf_counter()
        solution = optimizer.solve(estimate)
        elapsed = time.perf_counter() - start
        keys.append(_parallel_solution_key(solution))
        rows.append(
            {
                "jobs": jobs,
                "compile seconds": elapsed,
                "worker busy seconds": solution.stage_seconds.get(
                    "workers:partitioning", 0.0
                )
                + solution.stage_seconds.get("workers:physical", 0.0),
                "optimizer calls": solution.partitioning.optimizer_calls,
            }
        )

    # Determinism before speed: every jobs count must produce the same
    # artifact, or the sweep is comparing different compiles.
    for jobs, key in zip(PARALLEL_JOBS, keys):
        assert key == keys[0], f"--jobs {jobs} diverged from serial"

    serial_seconds = rows[0]["compile seconds"]
    best_parallel = min(row["compile seconds"] for row in rows[1:])
    speedup = serial_seconds / best_parallel
    payload = {
        "benchmark": "parallel_compile",
        "config": {
            "query": "nway12/seed13",
            "uncertainty_levels": 3,
            "uncertain_dims": 4,
            "epsilon": PARALLEL_EPSILON,
            "point_optimizer": "DPOptimizer",
            "jobs": list(PARALLEL_JOBS),
        },
        "cpu_count": os.cpu_count(),
        "rows": rows,
        "speedup": speedup,
        "identical_solutions": True,
    }
    PARALLEL_RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print_panel(
        "Parallel compile — wall-clock vs --jobs (12-way join, DP optimizer)",
        ["jobs", "compile seconds", "worker busy seconds", "optimizer calls"],
        rows,
    )
    print(f"parallel compile speedup {speedup:.2f}x on {os.cpu_count()} cpus")
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= PARALLEL_TARGET_SPEEDUP, (
            f"4-worker compile only {speedup:.2f}x faster than serial "
            f"(target {PARALLEL_TARGET_SPEEDUP}x); see {PARALLEL_RESULT_PATH}"
        )
