"""Figure 13: physical-plan compile time vs number of machines.

Six panels: Q1 across 2–6 machines and Q2 across 6–10 machines, each at
three uncertainty levels (ε = 0.1), timing GreedyPhy, OptPrune, and
exhaustive search (ES) on the same robust logical solution.  The
paper's shape: GreedyPhy is fastest (polynomial), ES is slowest and
grows steeply with machines/operators, and OptPrune lands near
GreedyPhy thanks to its bound — while matching ES's quality
(Figure 14).

Panel dimensions follow EXPERIMENTS.md: Q1 uses its two fan-out joins,
Q2 the low-cost joins whose ranks swing widest; levels are chosen so
every panel's space holds multiple robust plans (our analytic cost
surfaces need one level more than the paper's real optimizer did).
"""

from __future__ import annotations

import pytest
from _harness import Q1_DIMS, load_table_for, panel_capacity, print_panel

from repro.core import Cluster, exhaustive_physical, greedy_phy, opt_prune
from repro.workloads import build_q1, build_q2

EPSILON = 0.1
#: (query builder, machine counts, 2-D dims, uncertainty levels).
SCENARIOS = {
    "Q1": (build_q1, (2, 3, 4, 5, 6), Q1_DIMS, (2, 3, 4)),
    "Q2": (build_q2, (4, 5, 6, 7, 8), ("sel:3", "sel:5", "sel:7"), (1, 2, 3)),
}


def sweep(query_name: str, level: int) -> list[dict[str, object]]:
    builder, machine_counts, dims, _ = SCENARIOS[query_name]
    query = builder()
    table = load_table_for(query, dims, level, epsilon=EPSILON)
    capacity = panel_capacity(table, machine_counts)
    rows = []
    for n_nodes in machine_counts:
        cluster = Cluster.homogeneous(n_nodes, capacity)
        greedy = greedy_phy(table, cluster)
        pruned = opt_prune(table, cluster)
        exhaustive = exhaustive_physical(table, cluster)
        rows.append(
            {
                "machines": n_nodes,
                "GreedyPhy ms": greedy.compile_seconds * 1000,
                "OptPrune ms": pruned.compile_seconds * 1000,
                "ES ms": exhaustive.compile_seconds * 1000,
                "plans": table.n_plans,
            }
        )
    return rows


def _cases():
    for query_name, (_, _, _, levels) in SCENARIOS.items():
        for level in levels:
            yield query_name, level


@pytest.mark.parametrize("query_name,level", list(_cases()))
def test_fig13_compile_time(query_name, level, run_once):
    rows = run_once(sweep, query_name, level)
    print_panel(
        f"Figure 13 — compile time vs machines ({query_name}, "
        f"epsilon={EPSILON}, U={level})",
        ["machines", "GreedyPhy ms", "OptPrune ms", "ES ms", "plans"],
        rows,
    )
    # Over the sweep the paper's ordering holds: GreedyPhy ≤ OptPrune ≪
    # ES.  Compare medians with a small absolute floor — individual
    # sub-millisecond cells are at the mercy of GC pauses.
    def median(key: str) -> float:
        values = sorted(row[key] for row in rows)
        return values[len(values) // 2]

    assert median("GreedyPhy ms") <= median("OptPrune ms") * 2 + 0.5
    assert median("OptPrune ms") <= median("ES ms") + 0.5
    assert median("GreedyPhy ms") <= median("ES ms") + 0.5
