"""Figure 15b: total tuples produced over time under a rate ramp.

Reproduces the paper's 60-minute run with input rates stepping from
50% to 100% at minute 20 and to 200% at minute 40 (time is compressed
5:1 — 4 simulated minutes per paper segment keeps the bench fast while
preserving queueing dynamics).  The paper's shape: all three track each
other early; after the 200% step ROD's static plan saturates its
bottleneck node and falls behind, DYN keeps migrating but pays
state-proportional stalls, and RLD keeps processing by switching to the
cheapest (and, under saturation, least-bottlenecked) robust plan.

Two series are printed per strategy: **output tuples** (the paper's
y-axis) and **source tuples processed** (completed batches × batch
size).  With fluctuating selectivities, output counts are additionally
modulated by *when* each operator samples its selectivity — slower
pipelines decorrelate those samples, slightly inflating their expected
output — so processed tuples is the cleaner throughput measure; the
headline assertions use it.
"""

from __future__ import annotations

from _harness import print_panel

from repro.core import Cluster, RLDConfig, RLDOptimizer
from repro.engine import StreamSimulator
from repro.runtime.comparison import build_standard_strategies
from repro.workloads import StepRate, Workload, build_q1
from repro.workloads.generators import RegimeSwitchSelectivity

#: 5:1 time compression of the paper's 60-minute run.
DURATION = 720.0
STEPS = ((0.0, 0.5), (DURATION / 3, 1.0), (2 * DURATION / 3, 2.0))
INTERVAL = 60.0
SEED = 47
CAPACITY = 250.0


def sweep() -> dict[str, dict[str, list[tuple[float, float]]]]:
    query = build_q1()
    # Selectivity-only uncertainty: rates are monitored exactly, so the
    # cluster is provisioned for the selectivity space at the estimate
    # rate — the paper's setting, where the 200% step then exceeds what
    # a static single-plan layout can absorb.
    estimate = query.default_estimates(
        {op.selectivity_param: 3 for op in query.operators}
    )
    cluster = Cluster.homogeneous(4, CAPACITY)
    solution = RLDOptimizer(query, cluster, config=RLDConfig(epsilon=0.2)).solve(
        estimate
    )
    levels = {op.op_id: 3 for op in query.operators}
    workload = Workload(
        query,
        rate_profile=StepRate(STEPS),
        selectivity_profile=RegimeSwitchSelectivity(levels, period=60.0, mode="sine"),
    )
    strategies = build_standard_strategies(
        query, cluster, estimate=estimate, rld_solution=solution
    )
    series: dict[str, dict[str, list[tuple[float, float]]]] = {}
    for name in ("ROD", "DYN", "RLD"):
        simulator = StreamSimulator(
            query, cluster, strategies[name], workload, seed=SEED
        )
        report = simulator.run(DURATION)
        series[name] = {
            "output": report.produced_timeline(INTERVAL),
            "processed": report.produced_timeline(INTERVAL, weights="input"),
        }
    return series


def test_fig15b_total_tuples_produced(run_once):
    series = run_once(sweep)
    rows = []
    for i, (t, _) in enumerate(series["ROD"]["output"]):
        row: dict[str, object] = {"minute": t / 60.0}
        for name in ("ROD", "DYN", "RLD"):
            row[f"{name} out"] = series[name]["output"][i][1]
            row[f"{name} proc"] = series[name]["processed"][i][1]
        rows.append(row)
    print_panel(
        "Figure 15b — cumulative tuples produced (rates 50% → 100% → 200%)",
        ["minute", "ROD out", "ROD proc", "DYN out", "DYN proc", "RLD out", "RLD proc"],
        rows,
    )
    final = rows[-1]
    # RLD processes the most stream data end-to-end.
    assert final["RLD proc"] >= final["ROD proc"]
    assert final["RLD proc"] >= final["DYN proc"]
    # After the 200% step RLD's processing rate beats ROD's — the
    # static plan saturates, the classifier's plan switching does not.
    step_index = next(
        i for i, row in enumerate(rows) if row["minute"] * 60.0 >= 2 * DURATION / 3
    )
    rod_late = final["ROD proc"] - rows[step_index]["ROD proc"]
    rld_late = final["RLD proc"] - rows[step_index]["RLD proc"]
    assert rld_late > rod_late
    # Cumulative curves never decrease.
    for name in ("ROD", "DYN", "RLD"):
        for kind in ("out", "proc"):
            column = [row[f"{name} {kind}"] for row in rows]
            assert column == sorted(column)
