"""Figure 16b: average tuple processing time vs rate fluctuation period.

The input rate of each stream alternates between a high and a low level
with equal interval lengths of 5, 10, and 20 seconds (§6.5).  The
paper's shape: ROD and DYN degrade as the fluctuation period lengthens
(long high-rate intervals pile queues onto their static/suboptimal
layouts, and DYN's migrations lag the fluctuation), while RLD's latency
grows only slightly — it smooths the fluctuations by switching among
robust logical plans on the fixed robust placement.
"""

from __future__ import annotations

from _harness import print_panel

from repro.core import Cluster, RLDConfig, RLDOptimizer
from repro.runtime.comparison import build_standard_strategies, compare_strategies
from repro.workloads import PeriodicRate, Workload, build_q1
from repro.workloads.generators import RegimeSwitchSelectivity

PERIODS = (5.0, 10.0, 20.0)
DURATION = 240.0
SEED = 83
RATE_HIGH = 1.4
RATE_LOW = 0.6


def sweep() -> list[dict[str, object]]:
    query = build_q1()
    estimate = query.default_estimates(
        {op.selectivity_param: 3 for op in query.operators} | {"rate": 4}
    )
    cluster = Cluster.homogeneous(4, 420.0)
    solution = RLDOptimizer(query, cluster, config=RLDConfig(epsilon=0.2)).solve(
        estimate
    )
    levels = {op.op_id: 3 for op in query.operators}
    rows = []
    for period in PERIODS:
        workload = Workload(
            query,
            rate_profile=PeriodicRate(high=RATE_HIGH, low=RATE_LOW, period=period),
            selectivity_profile=RegimeSwitchSelectivity(
                levels, period=60.0, mode="square"
            ),
        )
        strategies = build_standard_strategies(
            query, cluster, estimate=estimate, rld_solution=solution
        )
        comparison = compare_strategies(
            query, cluster, workload, strategies, duration=DURATION, seed=SEED
        )
        rows.append(
            {
                "period s": period,
                "ROD ms": comparison.latency_ms("ROD"),
                "DYN ms": comparison.latency_ms("DYN"),
                "RLD ms": comparison.latency_ms("RLD"),
                "DYN migrations": comparison.reports["DYN"].migrations,
            }
        )
    return rows


def test_fig16b_vary_fluctuation_period(run_once):
    rows = run_once(sweep)
    print_panel(
        "Figure 16b — avg tuple processing time vs rate fluctuation period",
        ["period s", "ROD ms", "DYN ms", "RLD ms", "DYN migrations"],
        rows,
    )
    for row in rows:
        # RLD dominates at every fluctuation period.
        assert row["RLD ms"] <= row["ROD ms"]
        assert row["RLD ms"] <= row["DYN ms"]
    # RLD's latency varies only mildly across periods (the paper:
    # "the average tuple processing time of RLD slightly increases").
    rld = [row["RLD ms"] for row in rows]
    assert max(rld) <= min(rld) * 2.0
