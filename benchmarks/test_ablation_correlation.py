"""Ablation: correlated occurrence weights (the paper's §8 future work).

The §5.2 plan-weight model assumes independent dimensions; Example 1's
bull/bear regimes actually move selectivities in anti-phase.  This
bench quantifies what the independence assumption costs: plan weights
(and hence GreedyPhy/OptPrune's support priorities) under the
independent normal vs an anti-synchronized multivariate normal, plus
the resulting physical-plan score difference under tight resources.
"""

from __future__ import annotations

from _harness import Q1_DIMS, print_panel, space_for

from repro.core import (
    Cluster,
    CorrelatedOccurrenceModel,
    EarlyTerminatedRobustPartitioning,
    NormalOccurrenceModel,
    PlanLoadTable,
    opt_prune,
)
from repro.workloads import build_q1

EPSILON = 0.1
LEVEL = 4
RHO = -0.9


def sweep() -> dict[str, object]:
    query = build_q1()
    space = space_for(query, Q1_DIMS, LEVEL)
    solution = EarlyTerminatedRobustPartitioning(
        query, space, epsilon=EPSILON
    ).run().solution

    independent = NormalOccurrenceModel(space)
    correlated = CorrelatedOccurrenceModel.anti_synchronized(space, rho=RHO)
    w_ind = solution.plan_weights(independent)
    w_cor = solution.plan_weights(correlated)

    rows = []
    for plan in sorted(w_ind, key=w_ind.get, reverse=True):
        rows.append(
            {
                "plan": plan.label,
                "w independent": w_ind[plan],
                "w anti-sync": w_cor[plan],
                "shift": w_cor[plan] - w_ind[plan],
            }
        )

    # Physical consequences under tight resources.
    tight = Cluster.homogeneous(
        3,
        max(
            max(solution.worst_case_loads(p).values())
            for p in solution.plans
        )
        * 1.1,
    )
    score_ind = opt_prune(
        PlanLoadTable.from_solution(solution, occurrence=independent), tight
    ).score
    score_cor = opt_prune(
        PlanLoadTable.from_solution(solution, occurrence=correlated), tight
    ).score
    return {
        "rows": rows,
        "score_ind": score_ind,
        "score_cor": score_cor,
        "mass_ind": independent.total_mass(),
        "mass_cor": correlated.total_mass(),
    }


def test_ablation_correlated_weights(run_once):
    result = run_once(sweep)
    rows = result["rows"]
    print_panel(
        f"Ablation — plan weights, independent vs anti-synchronized (rho={RHO})",
        ["plan", "w independent", "w anti-sync", "shift"],
        rows,
    )
    print(
        f"\nOptPrune score on a 3-machine cluster: independent-weight table "
        f"{result['score_ind']:.4f} vs anti-sync table {result['score_cor']:.4f}"
    )
    # The correlated model genuinely reshapes the weight profile.
    assert max(abs(row["shift"]) for row in rows) > 0.01
    # Both are probability masses over (almost) the same support.
    assert 0.5 < result["mass_ind"] <= 1.0
    assert 0.5 < result["mass_cor"] <= 1.0
