"""Perf: the vectorized cost-evaluation core vs the scalar path.

Times the work every compile-time consumer (ERP coverage, plan-cell
partitioning, load-table construction) performs over a parameter-space
grid — the full per-plan cost vector plus per-operator load vectors —
two ways on the Fig. 13 Q1 compile-time configuration (``Q1_DIMS``,
ε = 0.1, top uncertainty level):

* **scalar** — the pre-refactor idiom: one ``plan_cost`` /
  ``operator_loads`` call per (plan, grid point) pair inside Python
  loops over ``space.grid_indices()``;
* **vectorized** — one :class:`CostTensorCache` build, i.e. one NumPy
  kernel call per plan over the dense grid matrix.

Results (plus the observed speedup) are written to
``BENCH_costkernel.json`` at the repo root so CI can archive the perf
trajectory; the test asserts the tensors are *bitwise* equal to the
scalar results and that the speedup clears 10×.

Runs on plain ``time.perf_counter`` — no pytest-benchmark dependency —
so the CI smoke step can execute it with the tier-1 requirements only.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
from _harness import Q1_DIMS

from repro.core import ParameterSpace
from repro.core.cost_tensor import CostTensorCache
from repro.core.partitioning import EarlyTerminatedRobustPartitioning
from repro.query.cost import PlanCostModel
from repro.workloads import build_q1

EPSILON = 0.1
LEVEL = 4  # the largest Q1 panel of the Figure 13 sweep
POINTS_PER_LEVEL = 2
REPEATS = 5
TARGET_SPEEDUP = 10.0

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_costkernel.json"


def _scenario():
    query = build_q1()
    estimate = query.default_estimates({d: LEVEL for d in Q1_DIMS})
    space = ParameterSpace.from_estimates(
        estimate, points_per_level=POINTS_PER_LEVEL
    )
    plans = (
        EarlyTerminatedRobustPartitioning(query, space, epsilon=EPSILON)
        .run()
        .solution.plans
    )
    return query, space, plans


def _scalar_eval(model, space, plans):
    """The pre-refactor evaluation: scalar calls over the full grid."""
    costs = []
    loads = []
    for plan in plans:
        plan_costs = []
        plan_loads = []
        for index in space.grid_indices():
            point = space.point_at(index)
            plan_costs.append(model.plan_cost(plan, point))
            plan_loads.append(model.operator_loads(plan, point))
        costs.append(plan_costs)
        loads.append(plan_loads)
    return costs, loads


def _vectorized_eval(model, space, plans):
    """One CostTensorCache build: the shared evaluation core."""
    cache = CostTensorCache(space, model, plans)
    tensor = cache.cost_tensor
    load_tensors = [cache.load_tensor(p) for p in range(len(plans))]
    return cache, tensor, load_tensors


def _best_of(repeats, fn):
    """Best wall-clock of ``repeats`` runs; returns (seconds, result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_vectorized_costkernel_speedup():
    query, space, plans = _scenario()
    model = PlanCostModel(query)

    scalar_seconds, (scalar_costs, scalar_loads) = _best_of(
        REPEATS, lambda: _scalar_eval(model, space, plans)
    )
    vector_seconds, (cache, tensor, load_tensors) = _best_of(
        REPEATS, lambda: _vectorized_eval(model, space, plans)
    )

    # Correctness first: the dense tensors must be *bitwise* identical
    # to the scalar results, or every argmin consumer could drift.
    assert np.array_equal(np.asarray(scalar_costs), tensor)
    for p in range(len(plans)):
        for flat, per_op in enumerate(scalar_loads[p]):
            for op_id, load in per_op.items():
                assert load_tensors[p][op_id][flat] == load

    speedup = scalar_seconds / vector_seconds
    payload = {
        "benchmark": "costkernel",
        "config": {
            "query": "q1",
            "dims": list(Q1_DIMS),
            "epsilon": EPSILON,
            "level": LEVEL,
            "points_per_level": POINTS_PER_LEVEL,
            "repeats": REPEATS,
        },
        "n_points": space.n_points,
        "n_plans": len(plans),
        "scalar_seconds": scalar_seconds,
        "vectorized_seconds": vector_seconds,
        "speedup": speedup,
        "bitwise_equal": True,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\ncostkernel: {space.n_points} points x {len(plans)} plans  "
        f"scalar {scalar_seconds * 1e3:.2f} ms  "
        f"vectorized {vector_seconds * 1e3:.2f} ms  speedup {speedup:.1f}x"
    )
    assert speedup >= TARGET_SPEEDUP, (
        f"vectorized kernel only {speedup:.1f}x faster than scalar "
        f"(target {TARGET_SPEEDUP}x); see {RESULT_PATH}"
    )
