"""Ablation: ERP's two ingredients — early termination and cost weights.

DESIGN.md calls out two design choices in the logical step:

* the Theorem 1 aging-counter early stop (ERP vs plain WRP), and
* the §4.2 slope/distance weight function for picking partition points
  (vs cost-agnostic midpoint splitting).

This bench quantifies both: optimizer calls saved by early termination
and the coverage cost of dropping the weight model, across uncertainty
levels on Q1's 2-D space.
"""

from __future__ import annotations

from _harness import Q1_DIMS, print_panel, space_for

from repro.core import (
    EarlyTerminatedRobustPartitioning,
    WeightedRobustPartitioning,
    grid_optimal_costs,
    measure_coverage,
)
from repro.query import PlanCostModel, make_optimizer
from repro.workloads import build_q1

EPSILON = 0.1
LEVELS = (3, 4, 5)
#: Finer discretization than the figures': deep enough partitioning
#: that the aging counter actually fires before WRP finishes.
POINTS_PER_LEVEL = 6


def sweep() -> list[dict[str, object]]:
    query = build_q1()
    model = PlanCostModel(query)
    rows = []
    for level in LEVELS:
        space = space_for(query, Q1_DIMS, level, points_per_level=POINTS_PER_LEVEL)
        oracle = make_optimizer(query)
        optimal_costs = grid_optimal_costs(space, oracle)

        variants = {
            "WRP": WeightedRobustPartitioning(query, space, epsilon=EPSILON),
            "ERP": EarlyTerminatedRobustPartitioning(query, space, epsilon=EPSILON),
            "ERP-uniform": EarlyTerminatedRobustPartitioning(
                query, space, epsilon=EPSILON, use_cost_weights=False
            ),
        }
        row: dict[str, object] = {"U": level}
        for name, searcher in variants.items():
            result = searcher.run()
            coverage = measure_coverage(
                result.solution.plans, space, model, optimal_costs, EPSILON
            )
            row[f"{name} calls"] = result.optimizer_calls
            row[f"{name} cov"] = coverage
            if name == "ERP":
                row["weight skips"] = result.weight_skips
        rows.append(row)
    return rows


def test_ablation_erp_components(run_once):
    rows = run_once(sweep)
    print_panel(
        f"Ablation — early termination and weight model (epsilon={EPSILON})",
        [
            "U",
            "WRP calls", "WRP cov",
            "ERP calls", "ERP cov",
            "ERP-uniform calls", "ERP-uniform cov",
            "weight skips",
        ],
        rows,
    )
    for row in rows:
        # Early termination never costs calls, and WRP (run to
        # completion) achieves full coverage by construction.
        assert row["ERP calls"] <= row["WRP calls"]
        assert row["WRP cov"] >= 0.99
        # ERP's probabilistic guarantee holds comfortably here.
        assert row["ERP cov"] >= 0.85
