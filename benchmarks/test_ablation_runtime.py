"""Ablation: runtime knobs — placement rebalancing and batch size.

Two design choices on the runtime path that DESIGN.md calls out:

* **OptPrune rebalancing** — after finding the score-optimal supported
  plan set, re-place operators with LLF over the set's typical loads
  (support-preserving).  Off, the raw canonical-partition placement is
  used; the ablation measures what that costs in queueing latency.
* **Batch (ruster) size** — larger batches amortize classification
  overhead but reduce the classifier's agility; the paper fixes 100
  tuples (Table 2).
"""

from __future__ import annotations

from _harness import print_panel

from repro.core import (
    Cluster,
    EarlyTerminatedRobustPartitioning,
    NormalOccurrenceModel,
    ParameterSpace,
    PlanLoadTable,
    RLDConfig,
    RLDOptimizer,
    opt_prune,
)
from repro.engine import StreamSimulator
from repro.runtime import RLDStrategy
from repro.workloads import build_q1, stock_workload

DURATION = 180.0
SEED = 19
BATCH_SIZES = (50.0, 100.0, 200.0, 400.0)


def _scenario():
    query = build_q1()
    estimate = query.default_estimates(
        {op.selectivity_param: 3 for op in query.operators} | {"rate": 2}
    )
    cluster = Cluster.homogeneous(4, 420.0)
    workload = stock_workload(query, uncertainty_level=3, regime_period=60.0)
    return query, estimate, cluster, workload


def sweep_rebalance() -> list[dict[str, object]]:
    query, estimate, cluster, workload = _scenario()
    space = ParameterSpace.from_estimates(estimate, points_per_level=2)
    logical = EarlyTerminatedRobustPartitioning(query, space, epsilon=0.2).run()
    occurrence = NormalOccurrenceModel(space)
    table = PlanLoadTable.from_solution(logical.solution, occurrence=occurrence)

    rows = []
    for rebalance in (False, True):
        physical = opt_prune(table, cluster, rebalance=rebalance)
        solution = RLDOptimizer(query, cluster).solve(estimate)
        # Swap in the (un)balanced physical result, keeping everything else.
        from dataclasses import replace

        solution = replace(solution, physical=physical)
        strategy = RLDStrategy(solution)
        report = StreamSimulator(
            query, cluster, strategy, workload, seed=SEED
        ).run(DURATION)
        rows.append(
            {
                "rebalance": str(rebalance),
                "score": physical.score,
                "latency ms": report.avg_tuple_latency_ms,
                "p95 ms": report.latency_percentile_ms(95),
            }
        )
    return rows


def sweep_batch_size() -> list[dict[str, object]]:
    query, estimate, cluster, workload = _scenario()
    solution = RLDOptimizer(query, cluster, config=RLDConfig(epsilon=0.2)).solve(
        estimate
    )
    rows = []
    for batch_size in BATCH_SIZES:
        strategy = RLDStrategy(solution, batch_size=batch_size)
        report = StreamSimulator(
            query, cluster, strategy, workload, batch_size=batch_size, seed=SEED
        ).run(DURATION)
        rows.append(
            {
                "batch size": batch_size,
                "latency ms": report.avg_tuple_latency_ms,
                "plan switches": report.plan_switches,
                "overhead": report.overhead_fraction,
            }
        )
    return rows


def test_ablation_optprune_rebalance(run_once):
    rows = run_once(sweep_rebalance)
    print_panel(
        "Ablation — OptPrune placement rebalancing",
        ["rebalance", "score", "latency ms", "p95 ms"],
        rows,
    )
    off, on = rows
    # Rebalancing never sacrifices the optimal support score.
    assert on["score"] >= off["score"] - 1e-9
    # And it does not hurt latency (usually it helps).
    assert on["latency ms"] <= off["latency ms"] * 1.1


def test_ablation_batch_size(run_once):
    rows = run_once(sweep_batch_size)
    print_panel(
        "Ablation — ruster (batch) size",
        ["batch size", "latency ms", "plan switches", "overhead"],
        rows,
    )
    # Classification overhead stays ≈ 2% regardless of batch size (it
    # is charged per batch in proportion to batch work).
    for row in rows:
        assert row["overhead"] <= 0.05
