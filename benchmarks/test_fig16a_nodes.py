"""Figure 16a: average tuple processing time vs number of nodes.

Sweeps the cluster size at fixed per-node capacity under the
regime-switching stock workload.  The paper's shape: with few nodes the
strategies separate sharply — ROD's single plan overloads its bottleneck
under the adverse regime while RLD switches orderings to stay under
capacity — and with many nodes every strategy has slack, so the
differences shrink (though RLD stays ahead by always running the most
efficient plan ordering).

The paper swept 5/10/15 nodes on its testbed queries; Q1 has five
operators, so the equivalent sweep here is 2/3/5/8 nodes — the same
scarce→abundant progression relative to the operator count.
"""

from __future__ import annotations

from _harness import print_panel

from repro.core import Cluster, RLDConfig, RLDOptimizer
from repro.runtime.comparison import build_standard_strategies, compare_strategies
from repro.workloads import build_q1, stock_workload

NODE_COUNTS = (2, 3, 5, 8)
PER_NODE_CAPACITY = 380.0
DURATION = 180.0
SEED = 61


def sweep() -> list[dict[str, object]]:
    query = build_q1()
    estimate = query.default_estimates(
        {op.selectivity_param: 3 for op in query.operators} | {"rate": 2}
    )
    workload = stock_workload(query, uncertainty_level=3, regime_period=60.0)
    rows = []
    for n_nodes in NODE_COUNTS:
        cluster = Cluster.homogeneous(n_nodes, PER_NODE_CAPACITY)
        solution = RLDOptimizer(
            query, cluster, config=RLDConfig(epsilon=0.2)
        ).solve(estimate)
        strategies = build_standard_strategies(
            query, cluster, estimate=estimate, rld_solution=solution
        )
        comparison = compare_strategies(
            query, cluster, workload, strategies, duration=DURATION, seed=SEED
        )
        rows.append(
            {
                "nodes": n_nodes,
                "ROD ms": comparison.latency_ms("ROD"),
                "DYN ms": comparison.latency_ms("DYN"),
                "RLD ms": comparison.latency_ms("RLD"),
            }
        )
    return rows


def test_fig16a_vary_nodes(run_once):
    rows = run_once(sweep)
    print_panel(
        "Figure 16a — avg tuple processing time vs number of nodes (Q1)",
        ["nodes", "ROD ms", "DYN ms", "RLD ms"],
        rows,
    )
    for row in rows:
        # RLD is never worse than either baseline at any cluster size.
        assert row["RLD ms"] <= row["ROD ms"]
        assert row["RLD ms"] <= row["DYN ms"]
    # The RLD-vs-ROD gap narrows as machines are added (paper: "when
    # the number of machines is large, the performance difference
    # among all three approaches is small").
    gap_small = rows[0]["ROD ms"] - rows[0]["RLD ms"]
    gap_large = rows[-1]["ROD ms"] - rows[-1]["RLD ms"]
    assert gap_large < gap_small
    # Everyone improves (weakly) with more machines.
    for name in ("ROD ms", "RLD ms"):
        series = [row[name] for row in rows]
        assert series[-1] <= series[0]
