"""Figure 12: optimizer calls vs parameter-space dimensionality.

Three panels for the paper's (ε, U) configurations (0.3, 1), (0.2, 2),
(0.1, 3), sweeping the dimensionality of Q2's parameter space from 2 to
5.  The paper's shape: ES explodes exponentially with the number of
dimensions (it must visit every cell of the d-dimensional grid), while
ERP grows far more slowly thanks to weighted partitioning plus early
termination.
"""

from __future__ import annotations

import pytest
from _harness import Q2_DIM_LADDER, logical_searchers, print_panel, space_for

from repro.workloads import build_q2

CONFIGS = ((0.3, 1), (0.2, 2), (0.1, 3))
DIMENSIONS = (2, 3, 4, 5)


def sweep(epsilon: float, level: int) -> list[dict[str, object]]:
    query = build_q2()
    rows = []
    for n_dims in DIMENSIONS:
        dims = Q2_DIM_LADDER[:n_dims]
        space = space_for(query, dims, level)
        row: dict[str, object] = {"dims": n_dims, "grid": space.n_points}
        for name, searcher in logical_searchers(query, space, epsilon).items():
            result = searcher.run()
            row[name] = result.optimizer_calls
        rows.append(row)
    return rows


@pytest.mark.parametrize("epsilon,level", CONFIGS)
def test_fig12_dimensionality(epsilon, level, run_once):
    rows = run_once(sweep, epsilon, level)
    print_panel(
        f"Figure 12 — optimizer calls vs dimensions (epsilon={epsilon}, U={level})",
        ["dims", "grid", "ES", "RS", "ERP"],
        rows,
    )
    es_calls = [row["ES"] for row in rows]
    erp_calls = [row["ERP"] for row in rows]
    # ES grows exponentially with dimensionality (one call per cell).
    for a, b in zip(es_calls, es_calls[1:]):
        assert b > a
    # ERP stays well below ES at the highest dimensionality.
    assert erp_calls[-1] < es_calls[-1] / 3
    # ERP growth is much gentler than the grid explosion.
    assert erp_calls[-1] / max(erp_calls[0], 1) < es_calls[-1] / es_calls[0]
