"""Table 2: system parameters and data distribution moments.

Regenerates the Uniform(0, 100) and Poisson(λ=1) moment rows the paper
prints, alongside the paper's reported values for direct comparison.
"""

from __future__ import annotations

from _harness import print_panel

from repro.workloads import table2_distributions

#: Table 2's printed values for each distribution.
PAPER_ROWS = {
    "Uniform": {
        "min": 0.0, "max": 100.0, "med": 49.0, "mean": 49.7,
        "ave.dev": 25.2, "st.dev": 29.14, "var": 849.18,
        "skew": 0.05, "kurt": -1.18,
    },
    "Poisson": {
        "min": 0.0, "max": 7.0, "med": 1.0, "mean": 0.97,
        "ave.dev": 0.74, "st.dev": 1.01, "var": 1.02,
        "skew": 1.17, "kurt": 1.89,
    },
}

COLUMNS = ["source", "min", "max", "med", "mean", "ave.dev", "st.dev", "var", "skew", "kurt"]


def test_table2_distribution_moments(run_once):
    summaries = run_once(table2_distributions, 100_000, 2012)

    for name, summary in summaries.items():
        measured = {"source": "measured", **summary.as_row()}
        paper = {"source": "paper", **PAPER_ROWS[name]}
        print_panel(f"Table 2 — {summary.name}", COLUMNS, [paper, measured])

    uniform = summaries["Uniform"]
    assert abs(uniform.mean - 50.0) < 1.0
    assert abs(uniform.kurtosis - (-1.2)) < 0.1
    poisson = summaries["Poisson"]
    assert abs(poisson.mean - 1.0) < 0.05
    assert abs(poisson.skew - 1.0) < 0.1
