"""§6.5 "Runtime Overhead": RLD's classification cost vs DYN's migrations.

The paper measures RLD's only runtime overhead — classifying each
arriving batch to a robust logical plan — at about 2% of query
execution cost, while DYN pays continuous migration stalls and ROD, by
construction, pays nothing beyond query processing.  This bench
regenerates that comparison.
"""

from __future__ import annotations

from _harness import print_panel

from repro.core import Cluster, RLDConfig, RLDOptimizer
from repro.runtime.comparison import build_standard_strategies, compare_strategies
from repro.workloads import build_q1, stock_workload

DURATION = 240.0
SEED = 5


def sweep() -> list[dict[str, object]]:
    query = build_q1()
    estimate = query.default_estimates(
        {op.selectivity_param: 3 for op in query.operators} | {"rate": 2}
    )
    cluster = Cluster.homogeneous(4, 420.0)
    solution = RLDOptimizer(query, cluster, config=RLDConfig(epsilon=0.2)).solve(
        estimate
    )
    workload = stock_workload(query, uncertainty_level=3, regime_period=60.0)
    strategies = build_standard_strategies(
        query, cluster, estimate=estimate, rld_solution=solution
    )
    comparison = compare_strategies(
        query, cluster, workload, strategies, duration=DURATION, seed=SEED
    )
    rows = []
    for name, report in comparison.reports.items():
        rows.append(
            {
                "strategy": name,
                "overhead fraction": 0.0
                if report.processing_seconds == 0
                else (report.overhead_seconds + report.migration_stall_seconds)
                / report.processing_seconds,
                "classification s": report.overhead_seconds,
                "migration stalls s": report.migration_stall_seconds,
                "migrations": report.migrations,
                "plan switches": report.plan_switches,
            }
        )
    return rows


def test_runtime_overhead(run_once):
    rows = run_once(sweep)
    print_panel(
        "§6.5 — runtime overhead beyond query processing",
        [
            "strategy",
            "overhead fraction",
            "classification s",
            "migration stalls s",
            "migrations",
            "plan switches",
        ],
        rows,
    )
    by_name = {row["strategy"]: row for row in rows}
    # ROD: a single static plan — zero overhead of any kind.
    assert by_name["ROD"]["overhead fraction"] == 0.0
    # RLD: only the per-batch classification, ≈ 2% of execution cost.
    rld = by_name["RLD"]
    assert 0.005 <= rld["overhead fraction"] <= 0.04
    assert rld["migration stalls s"] == 0.0
    # DYN: pays real migration stalls and nothing for classification.
    dyn = by_name["DYN"]
    assert dyn["classification s"] == 0.0
    if dyn["migrations"]:
        assert dyn["migration stalls s"] > 0.0
