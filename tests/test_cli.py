"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compile_defaults(self):
        args = build_parser().parse_args(["compile"])
        assert args.query == "q1"
        assert args.nodes == 4
        assert args.epsilon == 0.2

    def test_unknown_query_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["compile", "--query", "bogus"])


class TestCompile:
    def test_compile_q1(self, capsys):
        code = main(
            ["compile", "--query", "q1", "--nodes", "4", "--capacity", "380"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "RLD solution for query 'Q1'" in out
        assert "optimizer calls" in out
        assert "weight" in out

    def test_compile_infeasible_returns_nonzero(self, capsys):
        code = main(
            ["compile", "--query", "q1", "--nodes", "1", "--capacity", "10",
             "--level", "1", "--rate-level", "0"]
        )
        assert code == 1

    def test_compile_profile_prints_stage_breakdown(self, capsys):
        code = main(
            ["compile", "--query", "q1", "--nodes", "4", "--capacity", "380",
             "--level", "2", "--rate-level", "0", "--profile"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "compile-time profile:" in out
        assert "partitioning (ERP)" in out
        assert "robustness (weights + loads)" in out
        assert "physical mapping" in out
        assert "total" in out
        assert "cost-tensor build" in out

    def test_compile_without_profile_omits_breakdown(self, capsys):
        main(["compile", "--query", "q1", "--level", "2", "--rate-level", "0"])
        assert "compile-time profile:" not in capsys.readouterr().out

    def test_compile_nway(self, capsys):
        code = main(
            ["compile", "--query", "nway:4", "--nodes", "3",
             "--capacity", "600", "--level", "2"]
        )
        assert code == 0
        assert "J4" in capsys.readouterr().out


class TestDiagram:
    def test_renders_ascii_map(self, capsys):
        code = main(
            ["diagram", "--query", "q1", "--dims", "sel:1", "sel:3",
             "--level", "3", "--points-per-level", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "distinct plans over" in out
        assert "A = " in out

    def test_reduction_flag(self, capsys):
        code = main(
            ["diagram", "--query", "q1", "--dims", "sel:1", "sel:3",
             "--level", "3", "--points-per-level", "2",
             "--reduce-epsilon", "0.3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "reduced at epsilon=0.3" in out

    def test_requires_two_dims(self):
        with pytest.raises(SystemExit, match="two --dims"):
            main(["diagram", "--query", "q1", "--dims", "sel:1"])


class TestSimulate:
    def test_simulate_prints_table(self, capsys):
        code = main(
            ["simulate", "--query", "q1", "--nodes", "4", "--capacity", "380",
             "--duration", "30", "--strategies", "ROD", "RLD"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "ROD" in out
        assert "RLD" in out
        assert "avg ms" in out

    def test_single_strategy(self, capsys):
        code = main(
            ["simulate", "--query", "q1", "--nodes", "4", "--capacity", "380",
             "--duration", "20", "--strategies", "RLD"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "DYN" not in out.splitlines()[-1]
