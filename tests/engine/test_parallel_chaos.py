"""Chaos regression for parallel-compiled solutions.

PR 1's fault-injection subsystem proves RLD degrades gracefully; this
module proves a solution compiled with ``--jobs 4`` is *the same
artifact* at runtime: it routes identically, rebuilds its degraded-mode
routing table identically, and produces a bit-for-bit identical
simulation report under the identical fault schedule.  Any divergence
here means the parallel compile path broke determinism in a way the
compile-time parity suite did not observe.
"""

from __future__ import annotations

import pytest

from repro.core import Cluster, ParallelConfig, RLDConfig, RLDOptimizer
from repro.engine import FaultEvent, FaultSchedule
from repro.engine.faults import node_crash
from repro.runtime.comparison import compare_strategies
from repro.runtime.rld_runtime import RLDStrategy
from repro.workloads import build_q1, stock_workload

CRASH_AT = 40.0
OUTAGE = 30.0
DURATION = 150.0

#: The SimulationReport fields that must match exactly between the
#: serial- and parallel-compiled runs (everything deterministic; the
#: per-node busy ledger is compared separately as a sequence).
_REPORT_FIELDS = (
    "batches_injected",
    "batches_completed",
    "tuples_in",
    "tuples_out",
    "overhead_seconds",
    "network_seconds",
    "migrations",
    "migration_stall_seconds",
    "plan_switches",
    "processing_seconds",
    "batches_dropped",
    "tuples_dropped",
    "batches_in_flight",
    "batch_stalls",
    "fault_events",
    "node_crashes",
    "node_downtime_seconds",
)


@pytest.fixture(scope="module")
def compiled_pair():
    """The same q1 scenario compiled serially and with four workers."""
    query = build_q1()
    estimate = query.default_estimates(
        {op.selectivity_param: 3 for op in query.operators} | {"rate": 2}
    )
    cluster = Cluster.homogeneous(4, 420.0)
    serial = RLDOptimizer(
        query, cluster, config=RLDConfig(epsilon=0.2)
    ).solve(estimate)
    parallel = RLDOptimizer(
        query,
        cluster,
        config=RLDConfig(epsilon=0.2, parallel=ParallelConfig(jobs=4)),
    ).solve(estimate)
    return query, estimate, cluster, serial, parallel


def _run_rld(query, cluster, solution, faults):
    workload = stock_workload(query, uncertainty_level=3)
    return compare_strategies(
        query,
        cluster,
        workload,
        {"RLD": RLDStrategy(solution)},
        duration=DURATION,
        seed=29,
        faults=faults,
    ).reports["RLD"]


class TestParallelSolutionIsTheSameArtifact:
    def test_compiled_solutions_agree(self, compiled_pair):
        _, _, _, serial, parallel = compiled_pair
        assert parallel.logical.plans == serial.logical.plans
        table_s, table_p = serial.load_table, parallel.load_table
        assert [
            table_p.weight_of(plan) for plan in table_p.plans
        ] == [table_s.weight_of(plan) for plan in table_s.plans]
        assert parallel.physical.physical_plan == serial.physical.physical_plan
        assert parallel.physical.score == serial.physical.score

    def test_crash_rerouting_is_identical(self, compiled_pair):
        query, estimate, cluster, serial, parallel = compiled_pair
        s_strat = RLDStrategy(serial)
        p_strat = RLDStrategy(parallel)
        stats = estimate.point

        preferred = s_strat.route(0.0, stats).plan
        assert p_strat.route(0.0, stats).plan == preferred
        bottleneck = s_strat.bottleneck_node(preferred, stats)
        assert p_strat.bottleneck_node(preferred, stats) == bottleneck

        crash = FaultEvent(time=10.0, kind="crash", node=bottleneck)
        for strat in (s_strat, p_strat):
            strat.on_fault(None, crash)
        assert p_strat.route(10.0, stats).plan == s_strat.route(10.0, stats).plan
        assert p_strat.table_rebuilds == s_strat.table_rebuilds

    def test_degraded_routing_table_matches_across_the_grid(
        self, compiled_pair
    ):
        query, estimate, cluster, serial, parallel = compiled_pair
        s_strat = RLDStrategy(serial)
        p_strat = RLDStrategy(parallel)
        stats = estimate.point
        bottleneck = s_strat.bottleneck_node(
            s_strat.route(0.0, stats).plan, stats
        )
        crash = FaultEvent(time=10.0, kind="crash", node=bottleneck)
        s_strat.on_fault(None, crash)
        p_strat.on_fault(None, crash)
        space = serial.space
        step = max(1, space.n_points // 97)
        for flat in range(0, space.n_points, step):
            point = space.point_at(space.index_of_flat(flat))
            assert (
                p_strat.route(10.0, point).plan
                == s_strat.route(10.0, point).plan
            )


class TestChaosRunRegression:
    @pytest.fixture(scope="class")
    def reports(self, compiled_pair):
        query, estimate, cluster, serial, parallel = compiled_pair
        strategy = RLDStrategy(serial)
        stats = estimate.point
        bottleneck = strategy.bottleneck_node(
            strategy.route(0.0, stats).plan, stats
        )
        faults = FaultSchedule(node_crash(CRASH_AT, bottleneck, OUTAGE))
        return (
            _run_rld(query, cluster, serial, faults),
            _run_rld(query, cluster, parallel, faults),
        )

    def test_chaos_reports_are_identical(self, reports):
        serial_report, parallel_report = reports
        for name in _REPORT_FIELDS:
            assert getattr(parallel_report, name) == getattr(
                serial_report, name
            ), name
        assert (
            parallel_report.node_busy_seconds
            == serial_report.node_busy_seconds
        )
        assert parallel_report.avg_tuple_latency_ms == pytest.approx(
            serial_report.avg_tuple_latency_ms, rel=0, abs=0
        )

    def test_chaos_run_still_degrades_gracefully(self, reports):
        _, parallel_report = reports
        assert parallel_report.batches_completed > 0
        assert parallel_report.conservation_holds()
        assert parallel_report.migrations == 0
        assert parallel_report.plan_switches > 0
        assert parallel_report.node_downtime_seconds == pytest.approx(OUTAGE)
