"""Tests for the statistics monitor."""

from __future__ import annotations

import pytest

from repro.engine import StatisticsMonitor
from repro.workloads import ConstantRate, RegimeSwitchSelectivity, Workload


@pytest.fixture
def workload(three_op_query):
    levels = {op.op_id: 2 for op in three_op_query.operators}
    return Workload(
        three_op_query,
        rate_profile=ConstantRate(1.0),
        selectivity_profile=RegimeSwitchSelectivity(levels, period=10.0),
    )


class TestMonitor:
    def test_oracle_monitor_reports_truth(self, three_op_query, workload):
        monitor = StatisticsMonitor(three_op_query, workload, noise=0.0, smoothing=1.0)
        point = monitor.sample(2.5)
        truth = workload.stat_point(2.5)
        for name in truth:
            assert point[name] == pytest.approx(truth[name])

    def test_current_before_sample_raises(self, three_op_query, workload):
        monitor = StatisticsMonitor(three_op_query, workload)
        with pytest.raises(RuntimeError, match="no samples"):
            monitor.current()

    def test_noise_is_seeded(self, three_op_query, workload):
        a = StatisticsMonitor(three_op_query, workload, noise=0.1, seed=4)
        b = StatisticsMonitor(three_op_query, workload, noise=0.1, seed=4)
        assert dict(a.sample(1.0)) == dict(b.sample(1.0))

    def test_smoothing_blends_history(self, three_op_query, workload):
        monitor = StatisticsMonitor(
            three_op_query, workload, noise=0.0, smoothing=0.5
        )
        monitor.sample(0.0)
        first_rate = monitor.current()["rate"]
        # Truth is constant, so smoothing converges to it.
        monitor.sample(1.0)
        assert monitor.current()["rate"] == pytest.approx(first_rate)

    def test_sample_counter(self, three_op_query, workload):
        monitor = StatisticsMonitor(three_op_query, workload)
        monitor.sample(0.0)
        monitor.sample(1.0)
        assert monitor.samples_taken == 2

    def test_covers_all_operators_and_rate(self, three_op_query, workload):
        monitor = StatisticsMonitor(three_op_query, workload, noise=0.0)
        point = monitor.sample(0.0)
        assert set(point) == {"rate", "sel:0", "sel:1", "sel:2"}

    def test_invalid_parameters(self, three_op_query, workload):
        with pytest.raises(ValueError):
            StatisticsMonitor(three_op_query, workload, noise=-0.1)
        with pytest.raises(ValueError):
            StatisticsMonitor(three_op_query, workload, smoothing=0.0)
        with pytest.raises(ValueError):
            StatisticsMonitor(three_op_query, workload, smoothing=1.5)
