"""Edge-case tests for the simulator's configuration surface."""

from __future__ import annotations

import pytest

from repro.core import Cluster, PhysicalPlan, RLDConfig, RLDOptimizer
from repro.engine import StreamSimulator
from repro.engine.system import RoutingDecision
from repro.query import LogicalPlan
from repro.workloads import ConstantRate, Workload


class FixedStrategy:
    name = "fixed"

    def __init__(self, plan, placement):
        self._plan = plan
        self._placement = placement

    @property
    def placement(self):
        return self._placement

    def route(self, time, stats):
        return RoutingDecision(plan=self._plan)

    def on_tick(self, simulator, time):
        pass


@pytest.fixture
def basic(three_op_query):
    placement = PhysicalPlan((frozenset({0, 1, 2}),))
    strategy = FixedStrategy(LogicalPlan((2, 1, 0)), placement)
    workload = Workload(three_op_query, rate_profile=ConstantRate(1.0))
    return three_op_query, strategy, workload


class TestConfigurationEdges:
    def test_monitor_period_longer_than_duration(self, basic):
        query, strategy, workload = basic
        sim = StreamSimulator(
            query, Cluster.homogeneous(1, 800.0), strategy, workload,
            seed=2, monitor_period=1000.0,
        )
        report = sim.run(10.0)
        assert report.batches_injected >= 0  # ran without scheduling errors

    def test_heterogeneous_cluster_runs(self, three_op_query):
        placement = PhysicalPlan((frozenset({0}), frozenset({1, 2})))
        strategy = FixedStrategy(LogicalPlan((2, 1, 0)), placement)
        workload = Workload(three_op_query, rate_profile=ConstantRate(1.0))
        cluster = Cluster((600.0, 300.0))
        report = StreamSimulator(
            three_op_query, cluster, strategy, workload, seed=2
        ).run(30.0)
        assert report.batches_completed > 0
        assert len(report.node_busy_seconds) == 2

    def test_invalid_parameters_rejected(self, basic):
        query, strategy, workload = basic
        cluster = Cluster.homogeneous(1, 500.0)
        with pytest.raises(ValueError):
            StreamSimulator(query, cluster, strategy, workload, batch_size=0.0)
        with pytest.raises(ValueError):
            StreamSimulator(query, cluster, strategy, workload, tick_period=0.0)
        sim = StreamSimulator(query, cluster, strategy, workload)
        with pytest.raises(ValueError):
            sim.run(0.0)

    def test_fractional_batch_size(self, basic):
        query, strategy, workload = basic
        sim = StreamSimulator(
            query, Cluster.homogeneous(1, 800.0), strategy, workload,
            seed=2, batch_size=33.5,
        )
        report = sim.run(20.0)
        assert report.tuples_in == pytest.approx(report.batches_injected * 33.5)

    def test_placement_missing_operator_rejected(self, three_op_query):
        placement = PhysicalPlan((frozenset({0, 1}),))  # op2 unplaced
        strategy = FixedStrategy(LogicalPlan((2, 1, 0)), placement)
        workload = Workload(three_op_query)
        with pytest.raises(KeyError):
            StreamSimulator(
                three_op_query, Cluster.homogeneous(1, 500.0), strategy, workload
            )


class TestRLDExhaustiveConfig:
    def test_exhaustive_physical_algorithm_via_facade(self, four_op_query):
        estimate = four_op_query.default_estimates({"sel:1": 1, "sel:2": 3})
        cluster = Cluster.homogeneous(3, 400.0)
        config = RLDConfig(physical_algorithm="exhaustive")
        solution = RLDOptimizer(four_op_query, cluster, config=config).solve(estimate)
        assert solution.physical.algorithm == "ES-phy"
        optimal = RLDOptimizer(
            four_op_query, cluster, config=RLDConfig(physical_algorithm="optprune")
        ).solve(estimate)
        assert solution.physical.score == pytest.approx(optimal.physical.score)
