"""Tests for the inter-node network model."""

from __future__ import annotations

import pytest

from repro.core import Cluster, PhysicalPlan
from repro.engine import NetworkModel, StreamSimulator
from repro.engine.system import RoutingDecision
from repro.query import LogicalPlan
from repro.workloads import ConstantRate, Workload


class FixedStrategy:
    name = "fixed"

    def __init__(self, plan, placement):
        self._plan = plan
        self._placement = placement

    @property
    def placement(self):
        return self._placement

    def route(self, time, stats):
        return RoutingDecision(plan=self._plan)

    def on_tick(self, simulator, time):
        pass


class TestNetworkModel:
    def test_transfer_time_formula(self):
        model = NetworkModel(
            latency_seconds=0.001,
            bytes_per_tuple=100.0,
            bandwidth_bytes_per_second=1e6,
        )
        # 1 ms + 50·100/1e6 s = 1 ms + 5 ms.
        assert model.transfer_seconds(50.0) == pytest.approx(0.006)

    def test_zero_network_is_free(self):
        model = NetworkModel.zero()
        assert model.transfer_seconds(1e6) == pytest.approx(0.0, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(latency_seconds=-0.1)
        with pytest.raises(ValueError):
            NetworkModel(bytes_per_tuple=0.0)
        with pytest.raises(ValueError):
            NetworkModel.zero().transfer_seconds(-1.0)


class TestSimulatorIntegration:
    def _run(self, query, placement, network):
        cluster = Cluster.homogeneous(3, 500.0)
        strategy = FixedStrategy(LogicalPlan((2, 1, 0)), placement)
        workload = Workload(query, rate_profile=ConstantRate(1.0))
        sim = StreamSimulator(
            query, cluster, strategy, workload, seed=3, network=network
        )
        return sim.run(60.0)

    def test_colocated_pipeline_pays_nothing(self, three_op_query):
        placement = PhysicalPlan(
            (frozenset({0, 1, 2}), frozenset(), frozenset())
        )
        report = self._run(
            three_op_query, placement, NetworkModel(latency_seconds=0.1)
        )
        assert report.network_seconds == 0.0

    def test_cross_node_pipeline_pays_per_hop(self, three_op_query):
        placement = PhysicalPlan(
            (frozenset({2}), frozenset({1}), frozenset({0}))
        )
        model = NetworkModel(latency_seconds=0.01)
        report = self._run(three_op_query, placement, model)
        # Two hops per completed batch (2→1, 1→0), each ≥ the latency.
        assert report.network_seconds >= report.batches_completed * 2 * 0.01

    def test_default_is_free_network(self, three_op_query):
        placement = PhysicalPlan(
            (frozenset({2}), frozenset({1}), frozenset({0}))
        )
        report = self._run(three_op_query, placement, None)
        assert report.network_seconds == 0.0

    def test_network_raises_latency(self, three_op_query):
        placement = PhysicalPlan(
            (frozenset({2}), frozenset({1}), frozenset({0}))
        )
        free = self._run(three_op_query, placement, None)
        slow = self._run(
            three_op_query, placement, NetworkModel(latency_seconds=0.2)
        )
        assert slow.avg_tuple_latency_ms > free.avg_tuple_latency_ms + 300.0
