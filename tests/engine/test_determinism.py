"""Determinism regression: same seed + same fault schedule ⇒ same run.

The whole reproduction leans on exact replayability — every chaos
experiment, every benchmark delta, every bisection of a robustness
regression assumes that ``(seed, schedule)`` pins the entire event
sequence.  These tests freeze that contract: two runs must produce
*identical* traces (event by event) and identical report metrics, and
changing either the seed or the schedule must actually change the run.
"""

from __future__ import annotations

from repro.core import Cluster
from repro.engine import FaultSchedule, SimulationTrace, StreamSimulator
from repro.runtime.dyn import DYNStrategy
from repro.runtime.rod import RODStrategy
from repro.workloads import build_q1, stock_workload

DURATION = 90.0


def chaos_schedule(seed: int = 23) -> FaultSchedule:
    return FaultSchedule.random(
        4, DURATION, seed, crashes=1, slowdowns=1, partitions=1, dropouts=1
    )


def run_once(strategy_factory, *, seed: int = 17, faults: FaultSchedule | None = None):
    query = build_q1()
    cluster = Cluster.homogeneous(4, 420.0)
    workload = stock_workload(query, uncertainty_level=3)
    trace = SimulationTrace()
    simulator = StreamSimulator(
        query,
        cluster,
        strategy_factory(query, cluster),
        workload,
        seed=seed,
        faults=faults,
        trace=trace,
    )
    report = simulator.run(DURATION)
    return report, trace


class TestChaosDeterminism:
    def test_identical_seed_and_schedule_replays_exactly(self):
        faults = chaos_schedule()
        report_a, trace_a = run_once(RODStrategy, faults=faults)
        # Schedules are also value-equal when rebuilt from the same seed.
        report_b, trace_b = run_once(RODStrategy, faults=chaos_schedule())

        assert trace_a.events == trace_b.events  # event-by-event identity
        assert report_a.to_dict() == report_b.to_dict()

    def test_adaptive_strategy_replays_exactly(self):
        # DYN reacts to faults with forced migrations — the feedback
        # loop (faults → migrations → queueing → utilization → more
        # migrations) must still replay bit-for-bit.
        faults = chaos_schedule()
        report_a, trace_a = run_once(DYNStrategy, faults=faults)
        report_b, trace_b = run_once(DYNStrategy, faults=faults)

        assert trace_a.events == trace_b.events
        assert report_a.to_dict() == report_b.to_dict()
        assert report_a.migrations > 0  # the run actually adapted

    def test_different_seed_changes_the_run(self):
        faults = chaos_schedule()
        _, trace_a = run_once(RODStrategy, seed=17, faults=faults)
        _, trace_b = run_once(RODStrategy, seed=18, faults=faults)
        assert trace_a.events != trace_b.events

    def test_different_schedule_changes_the_run(self):
        _, trace_a = run_once(RODStrategy, faults=chaos_schedule(23))
        _, trace_b = run_once(RODStrategy, faults=chaos_schedule(24))
        assert trace_a.events != trace_b.events

    def test_fault_free_determinism_still_holds(self):
        report_a, trace_a = run_once(RODStrategy)
        report_b, trace_b = run_once(RODStrategy)
        assert trace_a.events == trace_b.events
        assert report_a.to_dict() == report_b.to_dict()
