"""Tests for the discrete-event loop."""

from __future__ import annotations

import pytest

from repro.engine import EventLoop


class TestEventLoop:
    def test_runs_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(2.0, lambda: fired.append("b"))
        loop.schedule(1.0, lambda: fired.append("a"))
        loop.schedule(3.0, lambda: fired.append("c"))
        loop.run_until(10.0)
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        loop = EventLoop()
        fired = []
        for tag in ("first", "second", "third"):
            loop.schedule(1.0, lambda t=tag: fired.append(t))
        loop.run_until(1.0)
        assert fired == ["first", "second", "third"]

    def test_events_past_horizon_stay_pending(self):
        loop = EventLoop()
        fired = []
        loop.schedule(5.0, lambda: fired.append("late"))
        loop.run_until(4.0)
        assert fired == []
        assert loop.pending == 1
        loop.run_until(5.0)
        assert fired == ["late"]

    def test_clock_advances_to_horizon(self):
        loop = EventLoop()
        loop.run_until(7.5)
        assert loop.now == 7.5

    def test_scheduling_into_past_rejected(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        loop.run_until(2.0)
        with pytest.raises(ValueError, match="before current time"):
            loop.schedule(1.5, lambda: None)

    def test_handlers_can_schedule_more_events(self):
        loop = EventLoop()
        fired = []

        def chain(n: int) -> None:
            fired.append(n)
            if n < 3:
                loop.schedule(loop.now + 1.0, lambda: chain(n + 1))

        loop.schedule(0.0, lambda: chain(0))
        loop.run_until(10.0)
        assert fired == [0, 1, 2, 3]
        assert loop.processed == 4
