"""Tests for the stream simulator (conservation, latency, migration)."""

from __future__ import annotations

import pytest

from repro.core import Cluster, PhysicalPlan
from repro.engine import RoutingDecision, StreamSimulator
from repro.query import LogicalPlan
from repro.workloads import ConstantRate, Workload


class FixedPlanStrategy:
    """Minimal strategy: one plan, one placement, no adaptation."""

    name = "fixed"

    def __init__(self, plan: LogicalPlan, placement: PhysicalPlan, overhead=0.0):
        self._plan = plan
        self._placement = placement
        self._overhead = overhead
        self.ticks = 0

    @property
    def placement(self) -> PhysicalPlan:
        return self._placement

    def route(self, time, stats) -> RoutingDecision:
        return RoutingDecision(plan=self._plan, overhead_seconds=self._overhead)

    def on_tick(self, simulator, time) -> None:
        self.ticks += 1


@pytest.fixture
def scenario(three_op_query):
    cluster = Cluster.homogeneous(2, 500.0)
    placement = PhysicalPlan((frozenset({0}), frozenset({1, 2})))
    plan = LogicalPlan((2, 1, 0))
    workload = Workload(three_op_query, rate_profile=ConstantRate(1.0))
    return three_op_query, cluster, placement, plan, workload


class TestSimulation:
    def test_conservation_and_counts(self, scenario):
        query, cluster, placement, plan, workload = scenario
        strategy = FixedPlanStrategy(plan, placement)
        sim = StreamSimulator(query, cluster, strategy, workload, seed=3)
        report = sim.run(60.0)
        assert report.batches_injected > 0
        assert report.batches_completed <= report.batches_injected
        assert report.tuples_in == pytest.approx(report.batches_injected * 100.0)
        # Output = input · Π σ = 100 · 0.6·0.5·0.4 per batch = 12 per batch.
        per_batch_out = 100.0 * 0.6 * 0.5 * 0.4
        assert report.tuples_out == pytest.approx(
            report.batches_completed * per_batch_out, rel=1e-9
        )

    def test_latency_at_least_service_time(self, scenario):
        query, cluster, placement, plan, workload = scenario
        strategy = FixedPlanStrategy(plan, placement)
        sim = StreamSimulator(query, cluster, strategy, workload, seed=3)
        report = sim.run(60.0)
        # Minimum possible latency: batch work through both nodes with no
        # queueing: (100·1)/500 + (40·2 + 20·3)/500 = 0.2 + 0.28 s.
        assert report.avg_tuple_latency_ms >= 200.0

    def test_deterministic_given_seed(self, scenario):
        query, cluster, placement, plan, workload = scenario
        r1 = StreamSimulator(
            query, cluster, FixedPlanStrategy(plan, placement), workload, seed=5
        ).run(30.0)
        r2 = StreamSimulator(
            query, cluster, FixedPlanStrategy(plan, placement), workload, seed=5
        ).run(30.0)
        assert r1.batches_injected == r2.batches_injected
        assert r1.avg_tuple_latency_ms == pytest.approx(r2.avg_tuple_latency_ms)
        assert r1.tuples_out == pytest.approx(r2.tuples_out)

    def test_overhead_accumulates(self, scenario):
        query, cluster, placement, plan, workload = scenario
        strategy = FixedPlanStrategy(plan, placement, overhead=0.01)
        sim = StreamSimulator(query, cluster, strategy, workload, seed=3)
        report = sim.run(30.0)
        assert report.overhead_seconds == pytest.approx(
            report.batches_injected * 0.01
        )

    def test_ticks_fire(self, scenario):
        query, cluster, placement, plan, workload = scenario
        strategy = FixedPlanStrategy(plan, placement)
        sim = StreamSimulator(query, cluster, strategy, workload, seed=3, tick_period=5.0)
        sim.run(30.0)
        assert strategy.ticks == 6  # t = 5, 10, ..., 30

    def test_overload_stalls_completions(self, three_op_query):
        # Capacity far below offered load: most batches never finish.
        cluster = Cluster.homogeneous(1, 20.0)
        placement = PhysicalPlan((frozenset({0, 1, 2}),))
        plan = LogicalPlan((2, 1, 0))
        workload = Workload(three_op_query, rate_profile=ConstantRate(1.0))
        sim = StreamSimulator(
            query=three_op_query,
            cluster=cluster,
            strategy=FixedPlanStrategy(plan, placement),
            workload=workload,
            seed=3,
        )
        report = sim.run(60.0)
        assert report.batches_completed < report.batches_injected

    def test_report_before_run_raises(self, scenario):
        query, cluster, placement, plan, workload = scenario
        sim = StreamSimulator(
            query, cluster, FixedPlanStrategy(plan, placement), workload
        )
        with pytest.raises(RuntimeError, match="run\\(\\)"):
            _ = sim.report


class TestMigration:
    def test_migrate_moves_operator_and_counts(self, scenario):
        query, cluster, placement, plan, workload = scenario

        class MigratingStrategy(FixedPlanStrategy):
            def on_tick(self, simulator, time):
                super().on_tick(simulator, time)
                if self.ticks == 1:
                    simulator.migrate(0, 1)

        strategy = MigratingStrategy(plan, placement)
        sim = StreamSimulator(query, cluster, strategy, workload, seed=3)
        report = sim.run(30.0)
        assert report.migrations == 1
        assert report.migration_stall_seconds > 0
        assert sim.current_placement[0] == 1

    def test_migrate_to_same_node_is_free(self, scenario):
        query, cluster, placement, plan, workload = scenario

        class NoopMigration(FixedPlanStrategy):
            def on_tick(self, simulator, time):
                super().on_tick(simulator, time)
                if self.ticks == 1:
                    assert simulator.migrate(0, 0) == 0.0

        sim = StreamSimulator(
            query, cluster, NoopMigration(plan, placement), workload, seed=3
        )
        report = sim.run(20.0)
        assert report.migrations == 0

    def test_migrate_to_unknown_node_rejected(self, scenario):
        query, cluster, placement, plan, workload = scenario

        class BadMigration(FixedPlanStrategy):
            failed = False

            def on_tick(self, simulator, time):
                if not self.failed:
                    with pytest.raises(ValueError, match="no node"):
                        simulator.migrate(0, 99)
                    type(self).failed = True

        StreamSimulator(
            query, cluster, BadMigration(plan, placement), workload, seed=3
        ).run(10.0)
        assert BadMigration.failed
