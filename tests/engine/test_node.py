"""Tests for simulated machines."""

from __future__ import annotations

import pytest

from repro.engine import SimNode


class TestSimNode:
    def test_service_time_scales_with_capacity(self):
        node = SimNode(0, capacity=50.0)
        assert node.service_seconds(100.0) == pytest.approx(2.0)

    def test_idle_job_starts_at_arrival(self):
        node = SimNode(0, capacity=10.0)
        done = node.submit(arrival=5.0, work=20.0)
        assert done == pytest.approx(7.0)

    def test_busy_jobs_queue_fifo(self):
        node = SimNode(0, capacity=10.0)
        first = node.submit(arrival=0.0, work=50.0)  # busy until 5
        second = node.submit(arrival=1.0, work=10.0)  # starts at 5
        assert first == pytest.approx(5.0)
        assert second == pytest.approx(6.0)

    def test_not_before_delays_start(self):
        node = SimNode(0, capacity=10.0)
        done = node.submit(arrival=0.0, work=10.0, not_before=4.0)
        assert done == pytest.approx(5.0)

    def test_busy_seconds_accumulate(self):
        node = SimNode(0, capacity=10.0)
        node.submit(0.0, 30.0)
        node.submit(0.0, 20.0)
        assert node.busy_seconds == pytest.approx(5.0)
        assert node.jobs_served == 2

    def test_utilization_can_exceed_one_under_backlog(self):
        node = SimNode(0, capacity=10.0)
        node.submit(0.0, 500.0)  # 50s of work
        assert node.utilization(horizon=10.0) == pytest.approx(5.0)

    def test_suspend_until_pushes_horizon(self):
        node = SimNode(0, capacity=10.0)
        node.suspend_until(8.0)
        done = node.submit(arrival=0.0, work=10.0)
        assert done == pytest.approx(9.0)

    def test_suspend_never_rewinds(self):
        node = SimNode(0, capacity=10.0)
        node.submit(0.0, 100.0)  # busy until 10
        node.suspend_until(3.0)
        assert node.available_at == pytest.approx(10.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            SimNode(0, capacity=0.0)
        node = SimNode(0, capacity=10.0)
        with pytest.raises(ValueError):
            node.service_seconds(-1.0)
        with pytest.raises(ValueError):
            node.utilization(horizon=0.0)
