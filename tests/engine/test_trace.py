"""Tests for simulation tracing."""

from __future__ import annotations

import pytest

from repro.core import Cluster, PhysicalPlan
from repro.engine import SimulationTrace, StreamSimulator, TraceEvent
from repro.engine.system import RoutingDecision
from repro.query import LogicalPlan
from repro.workloads import ConstantRate, Workload


class FixedStrategy:
    name = "fixed"

    def __init__(self, plan, placement):
        self._plan = plan
        self._placement = placement

    @property
    def placement(self):
        return self._placement

    def route(self, time, stats):
        return RoutingDecision(plan=self._plan)

    def on_tick(self, simulator, time):
        if simulator.now > 20.0 and simulator.current_placement[0] == 0:
            simulator.migrate(0, 1)


@pytest.fixture
def traced_run(three_op_query):
    cluster = Cluster.homogeneous(2, 500.0)
    placement = PhysicalPlan((frozenset({0}), frozenset({1, 2})))
    strategy = FixedStrategy(LogicalPlan((2, 1, 0)), placement)
    workload = Workload(three_op_query, rate_profile=ConstantRate(1.0))
    trace = SimulationTrace()
    sim = StreamSimulator(
        three_op_query, cluster, strategy, workload, seed=3, trace=trace
    )
    report = sim.run(60.0)
    return trace, report


class TestSimulationTrace:
    def test_event_counts_match_report(self, traced_run):
        trace, report = traced_run
        summary = trace.summary()
        assert summary["arrival"] == report.batches_injected
        assert summary["complete"] == report.batches_completed
        # Completed batches contribute 3 stages each; in-flight batches
        # may have started some stages too.
        assert summary["stage"] >= report.batches_completed * 3
        assert summary["migration"] == report.migrations

    def test_batch_journey_is_ordered_and_complete(self, traced_run):
        trace, _ = traced_run
        journey = trace.batch_journey(0)
        kinds = [event.kind for event in journey]
        assert kinds[0] == "arrival"
        assert kinds[-1] == "complete"
        assert kinds.count("stage") == 3
        times = [event.time for event in journey]
        assert times == sorted(times)

    def test_stage_events_follow_plan_order(self, traced_run):
        trace, _ = traced_run
        stages = [e.op_id for e in trace.filter(kind="stage", batch_id=0)]
        assert stages == [2, 1, 0]

    def test_filter_by_op(self, traced_run):
        trace, report = traced_run
        op0_stages = list(trace.filter(kind="stage", op_id=0))
        assert len(op0_stages) == report.batches_completed

    def test_migration_recorded_with_detail(self, traced_run):
        trace, report = traced_run
        migrations = list(trace.filter(kind="migration"))
        assert len(migrations) == report.migrations == 1
        assert migrations[0].op_id == 0
        assert migrations[0].node == 1
        assert "pause=" in migrations[0].detail


class TestBoundedMemory:
    def test_cap_drops_extra_events(self):
        trace = SimulationTrace(max_events=3)
        for i in range(5):
            trace.record(TraceEvent(time=float(i), kind="arrival", batch_id=i))
        assert len(trace) == 3
        assert trace.dropped == 2
        assert "dropped" in trace.summary()

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            SimulationTrace(max_events=0)
