"""Tests for tuple batches."""

from __future__ import annotations

import pytest

from repro.engine import Batch
from repro.query import LogicalPlan


class TestBatch:
    def test_size_defaults_to_initial(self):
        batch = Batch(batch_id=0, created_at=0.0, initial_size=100.0)
        assert batch.size == 100.0

    def test_advance_thins_and_steps(self):
        batch = Batch(0, 0.0, 100.0, plan=LogicalPlan((2, 0, 1)))
        assert batch.next_op == 2
        batch.advance(0.5)
        assert batch.size == 50.0
        assert batch.next_op == 0
        batch.advance(2.0)  # join fan-out
        assert batch.size == 100.0
        batch.advance(0.1)
        assert batch.done
        assert batch.next_op is None

    def test_next_op_without_plan_raises(self):
        batch = Batch(0, 0.0, 10.0)
        with pytest.raises(RuntimeError, match="no plan"):
            _ = batch.next_op

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError, match="batch size"):
            Batch(0, 0.0, 0.0)

    def test_negative_selectivity_rejected(self):
        batch = Batch(0, 0.0, 10.0, plan=LogicalPlan((0,)))
        with pytest.raises(ValueError, match="selectivity"):
            batch.advance(-0.1)

    def test_not_done_without_plan(self):
        assert not Batch(0, 0.0, 10.0).done
