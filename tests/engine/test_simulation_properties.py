"""Property tests on whole simulation runs.

Conservation and ordering invariants that must hold for *any* seed,
rate, and placement — the safety net under every runtime benchmark.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Cluster, PhysicalPlan
from repro.engine import StreamSimulator
from repro.engine.system import RoutingDecision
from repro.query import LogicalPlan, Operator, Query, StreamSchema
from repro.workloads import ConstantRate, Workload


def _query() -> Query:
    operators = (
        Operator(op_id=0, name="op1", cost_per_tuple=3.0, selectivity=0.6),
        Operator(op_id=1, name="op2", cost_per_tuple=2.0, selectivity=0.5),
        Operator(op_id=2, name="op3", cost_per_tuple=1.0, selectivity=0.4),
    )
    return Query("stock3", operators, (StreamSchema("S", base_rate=100.0),))


class FixedStrategy:
    name = "fixed"

    def __init__(self, plan, placement):
        self._plan = plan
        self._placement = placement

    @property
    def placement(self):
        return self._placement

    def route(self, time, stats):
        return RoutingDecision(plan=self._plan)

    def on_tick(self, simulator, time):
        pass


def _run(query, *, seed, rate_ratio, capacity, duration=40.0):
    cluster = Cluster.homogeneous(2, capacity)
    placement = PhysicalPlan((frozenset({0, 2}), frozenset({1})))
    strategy = FixedStrategy(LogicalPlan((2, 1, 0)), placement)
    workload = Workload(query, rate_profile=ConstantRate(rate_ratio))
    sim = StreamSimulator(query, cluster, strategy, workload, seed=seed)
    return sim.run(duration)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    rate_ratio=st.floats(0.2, 3.0),
    capacity=st.floats(50.0, 1000.0),
)
def test_conservation_properties(seed, rate_ratio, capacity):
    """Completion, tuple, and latency accounting always balances."""
    report = _run(_query(), seed=seed, rate_ratio=rate_ratio, capacity=capacity)
    # No batch completes that was never injected.
    assert 0 <= report.batches_completed <= report.batches_injected
    # Input accounting is exact.
    assert report.tuples_in == pytest.approx(report.batches_injected * 100.0)
    # Constant selectivities: every completed batch outputs the same
    # product of selectivities.
    per_batch = 100.0 * 0.6 * 0.5 * 0.4
    assert report.tuples_out == pytest.approx(
        report.batches_completed * per_batch, rel=1e-9
    )
    # Node busy time never exceeds scheduled processing time.
    assert sum(report.node_busy_seconds) == pytest.approx(
        report.processing_seconds, rel=1e-9
    )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_latency_at_least_pure_service_time(seed):
    """No batch can finish faster than its zero-queueing service time."""
    capacity = 500.0
    report = _run(_query(), seed=seed, rate_ratio=0.3, capacity=capacity)
    if report.batches_completed == 0:
        return
    # Service for 100 tuples through ops 2,1,0 at σ = (0.4, 0.5):
    # (100·1 + 40·2 + 20·3) / 500 = 0.48 s.
    floor_ms = 1000.0 * (100 * 1 + 40 * 2 + 20 * 3) / capacity
    assert report.latency_percentile_ms(0) >= floor_ms - 1e-6


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    rate_ratio=st.floats(0.2, 2.0),
)
def test_same_seed_reproduces_exactly(seed, rate_ratio):
    a = _run(_query(), seed=seed, rate_ratio=rate_ratio, capacity=300.0)
    b = _run(_query(), seed=seed, rate_ratio=rate_ratio, capacity=300.0)
    assert a.batches_injected == b.batches_injected
    assert a.tuples_out == pytest.approx(b.tuples_out)
    assert a.avg_tuple_latency_ms == pytest.approx(b.avg_tuple_latency_ms)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_higher_rate_never_reduces_injected_batches(seed):
    low = _run(_query(), seed=seed, rate_ratio=0.5, capacity=400.0)
    high = _run(_query(), seed=seed, rate_ratio=2.0, capacity=400.0)
    # Same seed: the high-rate run compresses the same exponential draws,
    # so it injects at least as many batches.
    assert high.batches_injected >= low.batches_injected
