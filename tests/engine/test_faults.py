"""Fault injection: per-kind unit tests and chaos property tests."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Cluster, PhysicalPlan
from repro.engine import (
    FaultEvent,
    FaultSchedule,
    NetworkModel,
    RoutingDecision,
    SimNode,
    StreamSimulator,
)
from repro.engine.faults import (
    FaultError,
    monitor_dropout,
    network_degradation,
    network_partition,
    node_crash,
    node_slowdown,
)
from repro.engine.trace import SimulationTrace
from repro.engine.monitor import StatisticsMonitor
from repro.query import LogicalPlan, Operator, Query, StreamSchema
from repro.workloads import ConstantRate, Workload


def build_three_op_query() -> Query:
    """Example 1's shape, built inline so hypothesis can reuse it."""
    operators = (
        Operator(op_id=0, name="op1", cost_per_tuple=3.0, selectivity=0.6),
        Operator(op_id=1, name="op2", cost_per_tuple=2.0, selectivity=0.5),
        Operator(op_id=2, name="op3", cost_per_tuple=1.0, selectivity=0.4),
    )
    return Query("stock3", operators, (StreamSchema("S", base_rate=100.0),))


class FixedPlanStrategy:
    """Minimal strategy: one plan, one placement, no adaptation."""

    name = "fixed"

    def __init__(self, plan: LogicalPlan, placement: PhysicalPlan):
        self._plan = plan
        self._placement = placement

    @property
    def placement(self) -> PhysicalPlan:
        return self._placement

    def route(self, time, stats) -> RoutingDecision:
        return RoutingDecision(plan=self._plan)

    def on_tick(self, simulator, time) -> None:
        pass


@pytest.fixture
def scenario(three_op_query):
    cluster = Cluster.homogeneous(2, 500.0)
    placement = PhysicalPlan((frozenset({0}), frozenset({1, 2})))
    plan = LogicalPlan((2, 1, 0))
    workload = Workload(three_op_query, rate_profile=ConstantRate(1.0))
    return three_op_query, cluster, placement, plan, workload


def simulate(scenario, *, faults=None, duration=60.0, seed=3, network=None):
    query, cluster, placement, plan, workload = scenario
    strategy = FixedPlanStrategy(plan, placement)
    sim = StreamSimulator(
        query, cluster, strategy, workload, seed=seed, faults=faults, network=network
    )
    report = sim.run(duration)
    return sim, report


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(time=1.0, kind="meteor")

    def test_node_kinds_require_node(self):
        with pytest.raises(ValueError, match="requires a node"):
            FaultEvent(time=1.0, kind="crash")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="time"):
            FaultEvent(time=-1.0, kind="partition")

    def test_paired_builders_expand(self):
        crash, recover = node_crash(10.0, 1, 5.0)
        assert (crash.kind, recover.kind) == ("crash", "recover")
        assert recover.time == pytest.approx(15.0)
        slow, restore = node_slowdown(5.0, 0, 0.5, 10.0)
        assert restore.factor == 1.0
        assert {e.kind for e in network_partition(1.0, 2.0)} == {"partition", "heal"}
        assert {e.kind for e in monitor_dropout(1.0, 2.0)} == {
            "monitor_dropout",
            "monitor_restore",
        }
        degrade, heal = network_degradation(1.0, 4.0, 2.0)
        assert degrade.factor == 4.0 and heal.factor == 1.0


class TestFaultSchedule:
    def test_events_sorted_by_time(self):
        schedule = FaultSchedule(
            [
                FaultEvent(time=30.0, kind="heal"),
                FaultEvent(time=10.0, kind="partition"),
            ]
        )
        assert [e.time for e in schedule] == [10.0, 30.0]

    def test_validate_for_rejects_out_of_range_node(self):
        schedule = FaultSchedule(node_crash(1.0, 5, 1.0))
        with pytest.raises(ValueError, match="node 5"):
            schedule.validate_for(n_nodes=2)

    def test_random_is_deterministic_per_seed(self):
        a = FaultSchedule.random(4, 100.0, 7, crashes=2, partitions=1)
        b = FaultSchedule.random(4, 100.0, 7, crashes=2, partitions=1)
        c = FaultSchedule.random(4, 100.0, 8, crashes=2, partitions=1)
        assert a == b
        assert a != c

    def test_parse_explicit_entries(self):
        schedule = FaultSchedule.parse(
            "crash@60:node=1:for=30,partition@120:for=10,"
            "slowdown@40:node=0:factor=0.5:for=60,dropout@20:for=100",
            n_nodes=2,
            duration=300.0,
        )
        kinds = [e.kind for e in schedule]
        assert kinds == [
            "monitor_dropout",
            "slowdown",
            "crash",
            "recover",
            "slowdown",
            "partition",
            "monitor_restore",
            "heal",
        ]

    def test_parse_random_spec(self):
        schedule = FaultSchedule.parse(
            "random:crashes=2:dropouts=0:slowdowns=0", n_nodes=3, duration=100.0, seed=5
        )
        assert sorted(e.kind for e in schedule) == ["crash", "crash", "recover", "recover"]
        assert schedule == FaultSchedule.random(
            3, 100.0, 5, crashes=2, dropouts=0, slowdowns=0
        )

    def test_parse_random_spec_accepts_fraction_keys(self):
        schedule = FaultSchedule.parse(
            "random:crashes=1:slowdowns=0:dropouts=0:min_outage_fraction=0.1",
            n_nodes=3,
            duration=100.0,
            seed=5,
        )
        crash = schedule.events[0]
        recover = schedule.events[1]
        assert recover.time - crash.time >= 10.0  # 0.1 of the 100 s run

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultSchedule.parse("explode", n_nodes=2, duration=10.0)
        with pytest.raises(ValueError, match="unknown fault options"):
            FaultSchedule.parse("crash@1:node=0:frob=2", n_nodes=2, duration=10.0)
        with pytest.raises(ValueError, match="requires node"):
            FaultSchedule.parse("crash@1:for=2", n_nodes=2, duration=10.0)
        with pytest.raises(ValueError, match="unknown random-spec key"):
            FaultSchedule.parse("random:bogus=1", n_nodes=2, duration=10.0)
        with pytest.raises(ValueError, match="bad random-spec value"):
            FaultSchedule.parse("random:crashes=banana", n_nodes=2, duration=10.0)


class TestNodeFaultStates:
    def test_fail_wipes_backlog_and_refuses_work(self):
        node = SimNode(0, 100.0)
        node.submit(0.0, 500.0)  # 5 seconds of queued service
        node.fail(1.0)
        assert not node.online
        assert node.available_at == 1.0
        assert node.crash_epoch == 1
        with pytest.raises(RuntimeError, match="offline"):
            node.submit(1.5, 10.0)

    def test_recover_restores_service(self):
        node = SimNode(0, 100.0)
        node.fail(1.0)
        node.recover(4.0)
        assert node.online
        done = node.submit(2.0, 100.0)
        assert done == pytest.approx(5.0)  # starts at recovery, not arrival

    def test_slowdown_scales_service(self):
        node = SimNode(0, 100.0)
        assert node.service_seconds(100.0) == pytest.approx(1.0)
        node.set_speed(0.5)
        assert node.effective_capacity == pytest.approx(50.0)
        assert node.service_seconds(100.0) == pytest.approx(2.0)
        node.set_speed(1.0)
        assert node.service_seconds(100.0) == pytest.approx(1.0)


class TestCrashRecover:
    def test_crash_stalls_drops_and_recovers(self, three_op_query):
        # Node 0 (hosting the final operator) runs near saturation so
        # the crash is guaranteed to catch work in service.
        cluster = Cluster((65.0, 500.0))
        placement = PhysicalPlan((frozenset({0}), frozenset({1, 2})))
        plan = LogicalPlan((2, 1, 0))
        workload = Workload(three_op_query, rate_profile=ConstantRate(1.0))
        scenario = (three_op_query, cluster, placement, plan, workload)
        faults = FaultSchedule(node_crash(20.0, 0, 15.0))
        sim, report = simulate(scenario, faults=faults)
        # Work destined for node 0 parked while it was down...
        assert report.batch_stalls > 0
        # ...in-service batches died with the queue...
        assert report.batches_dropped > 0
        # ...and the outage is accounted exactly.
        assert report.node_downtime_seconds == pytest.approx(15.0)
        assert report.node_crashes == 1
        # After recovery the system keeps completing work.
        assert report.batches_completed > 0
        assert report.conservation_holds()

    def test_unrecovered_crash_counts_downtime_to_horizon(self, scenario):
        faults = FaultSchedule([FaultEvent(time=40.0, kind="crash", node=0)])
        sim, report = simulate(scenario, faults=faults, duration=60.0)
        assert report.node_downtime_seconds == pytest.approx(20.0)
        # Stalled batches are in flight, not lost from the ledger.
        assert report.batches_in_flight == sim.active_batches
        assert report.conservation_holds()

    def test_crash_of_unused_node_is_harmless(self, scenario):
        query, cluster, placement, plan, workload = scenario
        # Place everything on node 0 and crash node 1.
        placement = PhysicalPlan((frozenset({0, 1, 2}), frozenset()))
        faults = FaultSchedule(node_crash(20.0, 1, 10.0))
        baseline = simulate(
            (query, cluster, placement, plan, workload), faults=None
        )[1]
        faulty = simulate(
            (query, cluster, placement, plan, workload), faults=faults
        )[1]
        assert faulty.batches_dropped == 0
        assert faulty.batches_completed == baseline.batches_completed
        assert faulty.avg_tuple_latency_ms == pytest.approx(
            baseline.avg_tuple_latency_ms
        )


class TestSlowdown:
    def test_slowdown_inflates_latency(self, scenario):
        healthy = simulate(scenario)[1]
        faults = FaultSchedule(node_slowdown(10.0, 1, 0.25, 40.0))
        throttled = simulate(scenario, faults=faults)[1]
        assert (
            throttled.avg_tuple_latency_ms > healthy.avg_tuple_latency_ms
        )
        # Slowdowns degrade but never drop work.
        assert throttled.batches_dropped == 0
        assert throttled.conservation_holds()


class TestPartition:
    def test_partition_drops_cross_node_hops(self, scenario):
        faults = FaultSchedule(network_partition(20.0, 10.0))
        sim, report = simulate(scenario, faults=faults)
        assert report.batches_dropped > 0
        assert report.partition_seconds == pytest.approx(10.0)
        assert report.conservation_holds()
        # Tuples lost are tracked alongside the batch count.
        assert report.tuples_dropped > 0

    def test_single_node_pipeline_survives_partition(self, three_op_query):
        cluster = Cluster.homogeneous(1, 800.0)
        placement = PhysicalPlan((frozenset({0, 1, 2}),))
        plan = LogicalPlan((2, 1, 0))
        workload = Workload(three_op_query, rate_profile=ConstantRate(1.0))
        faults = FaultSchedule(network_partition(10.0, 30.0))
        sim, report = simulate(
            (three_op_query, cluster, placement, plan, workload), faults=faults
        )
        assert report.batches_dropped == 0  # no hop ever crosses nodes


class TestNetworkDegradation:
    def test_degrade_charges_more_network_time(self, scenario):
        network = NetworkModel()
        healthy = simulate(scenario, network=network)[1]
        faults = FaultSchedule(network_degradation(5.0, 50.0, 50.0))
        degraded = simulate(scenario, faults=faults, network=network)[1]
        assert degraded.network_seconds > healthy.network_seconds

    def test_degrade_without_model_attaches_default(self, scenario):
        faults = FaultSchedule(network_degradation(5.0, 10.0, 20.0))
        sim, report = simulate(scenario, faults=faults)
        assert report.network_seconds > 0.0


class TestMonitorDropout:
    def test_suspended_monitor_freezes_estimates(self, three_op_query):
        workload = Workload(three_op_query, rate_profile=ConstantRate(1.0))
        monitor = StatisticsMonitor(three_op_query, workload, seed=5)
        monitor.sample(0.0)
        frozen = dict(monitor.current())
        monitor.suspend()
        monitor.sample(1.0)
        monitor.sample(2.0)
        assert monitor.samples_dropped == 2
        assert dict(monitor.current()) == frozen
        monitor.resume()
        monitor.sample(3.0)
        assert monitor.samples_taken == 2

    def test_dropout_fault_reaches_report(self, scenario):
        faults = FaultSchedule(monitor_dropout(10.0, 30.0))
        sim, report = simulate(scenario, faults=faults)
        assert report.monitor_samples_dropped >= 29
        assert report.fault_events == 2


class TestReportFailureMetrics:
    def test_fault_free_run_has_clean_ledger(self, scenario):
        sim, report = simulate(scenario)
        assert report.batches_dropped == 0
        assert report.node_downtime_seconds == 0.0
        assert report.drop_fraction == 0.0
        assert report.availability == pytest.approx(1.0)
        assert report.conservation_holds()

    def test_availability_reflects_downtime(self, scenario):
        faults = FaultSchedule(node_crash(10.0, 0, 30.0))
        sim, report = simulate(scenario, faults=faults, duration=60.0)
        # 30s of one node down out of 2 nodes x 60s.
        assert report.availability == pytest.approx(1.0 - 30.0 / 120.0)
        summary = report.to_dict()
        assert summary["batches_dropped"] == report.batches_dropped
        assert summary["availability"] == pytest.approx(report.availability)


class FailingHookStrategy(FixedPlanStrategy):
    """Strategy whose on_fault always fails the sanctioned way."""

    name = "failing-hook"

    def on_fault(self, simulator, event) -> None:
        raise FaultError(f"cannot degrade for {event.kind}")


class RudeHookStrategy(FixedPlanStrategy):
    """Strategy whose on_fault raises an unsanctioned exception."""

    name = "rude-hook"

    def on_fault(self, simulator, event) -> None:
        raise RuntimeError("hook bug")


class TestFaultHookErrors:
    """Regression: the run and its accounting survive a failing hook.

    ``on_fault`` hooks may raise :class:`FaultError` (and only that);
    the simulator counts each in ``report.fault_hook_errors`` and keeps
    going — the fault it injected must still be measured.  The static
    counterpart is the ``fault-hook-raises`` audit pass.
    """

    def _run(self, scenario, strategy_cls, *, trace=None):
        query, cluster, placement, plan, workload = scenario
        strategy = strategy_cls(plan, placement)
        faults = FaultSchedule(node_crash(20.0, 0, 15.0))
        sim = StreamSimulator(
            query, cluster, strategy, workload, seed=3, faults=faults, trace=trace
        )
        return sim.run(60.0)

    def test_fault_error_is_counted_and_run_survives(self, scenario):
        trace = SimulationTrace()
        report = self._run(scenario, FailingHookStrategy, trace=trace)
        # The hook failed on both events (crash + recover)...
        assert report.fault_hook_errors == report.fault_events == 2
        # ...but the run finished and the ledger still balances.
        assert report.batches_completed > 0
        assert report.conservation_holds()
        assert report.to_dict()["fault_hook_errors"] == 2
        details = [e.detail for e in trace.filter(kind="fault_hook_error")]
        assert len(details) == 2
        assert "cannot degrade" in details[0]

    def test_clean_hook_leaves_counter_at_zero(self, scenario):
        report = self._run(scenario, FixedPlanStrategy)
        assert report.fault_hook_errors == 0

    def test_unsanctioned_exception_propagates(self, scenario):
        with pytest.raises(RuntimeError, match="hook bug"):
            self._run(scenario, RudeHookStrategy)


# ----------------------------------------------------------------------
# Chaos property tests: any seeded schedule, same invariants
# ----------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    fault_seed=st.integers(0, 10_000),
    crashes=st.integers(0, 2),
    slowdowns=st.integers(0, 2),
    partitions=st.integers(0, 1),
    dropouts=st.integers(0, 1),
)
def test_chaos_never_breaks_invariants(
    seed, fault_seed, crashes, slowdowns, partitions, dropouts
):
    """Under any random fault schedule the simulator terminates, batch
    accounting conserves (arrived = completed + dropped + in flight),
    and no latency is ever negative."""
    duration = 40.0
    query = build_three_op_query()
    cluster = Cluster.homogeneous(2, 500.0)
    placement = PhysicalPlan((frozenset({0}), frozenset({1, 2})))
    plan = LogicalPlan((2, 1, 0))
    workload = Workload(query, rate_profile=ConstantRate(1.0))
    faults = FaultSchedule.random(
        2,
        duration,
        fault_seed,
        crashes=crashes,
        slowdowns=slowdowns,
        partitions=partitions,
        dropouts=dropouts,
    )
    sim = StreamSimulator(
        query,
        cluster,
        FixedPlanStrategy(plan, placement),
        workload,
        seed=seed,
        faults=faults,
    )
    report = sim.run(duration)  # terminating at all = no deadlock

    assert report.conservation_holds()
    assert report.batches_in_flight == sim.active_batches
    assert 0 <= report.batches_dropped <= report.batches_injected
    assert report.tuples_dropped >= 0.0
    assert 0.0 <= report.node_downtime_seconds <= 2 * duration + 1e-9
    assert 0.0 <= report.partition_seconds <= duration + 1e-9
    if report.batches_completed:
        assert report.latency_percentile_ms(0) >= 0.0
        assert report.avg_tuple_latency_ms >= 0.0
    else:
        assert math.isnan(report.avg_tuple_latency_ms)
