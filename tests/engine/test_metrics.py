"""Tests for the simulation report."""

from __future__ import annotations

import math

import pytest

from repro.engine import SimulationReport


class TestLatency:
    def test_weighted_average(self):
        report = SimulationReport(duration=100.0)
        report.record_batch(0.0, 1.0, input_tuples=100.0, output_tuples=10.0)
        report.record_batch(0.0, 3.0, input_tuples=300.0, output_tuples=30.0)
        # (100·1 + 300·3)/400 = 2.5 s
        assert report.avg_tuple_latency_ms == pytest.approx(2500.0)

    def test_nan_when_nothing_completed(self):
        report = SimulationReport(duration=10.0)
        assert math.isnan(report.avg_tuple_latency_ms)

    def test_completion_before_creation_rejected(self):
        report = SimulationReport(duration=10.0)
        with pytest.raises(ValueError, match="completed before"):
            report.record_batch(5.0, 4.0, 10.0, 1.0)

    def test_percentiles(self):
        report = SimulationReport(duration=100.0)
        for latency in (1.0, 2.0, 3.0, 4.0):
            report.record_batch(0.0, latency, 10.0, 1.0)
        assert report.latency_percentile_ms(0) == pytest.approx(1000.0)
        assert report.latency_percentile_ms(100) == pytest.approx(4000.0)
        assert report.latency_percentile_ms(50) == pytest.approx(2500.0)

    def test_percentile_validation(self):
        report = SimulationReport(duration=10.0)
        with pytest.raises(ValueError):
            report.latency_percentile_ms(101)
        assert math.isnan(report.latency_percentile_ms(50))


class TestTimeline:
    def test_cumulative_output_series(self):
        report = SimulationReport(duration=180.0)
        report.record_output(30.0, 10.0)
        report.record_output(70.0, 20.0)
        report.record_output(130.0, 5.0)
        series = report.produced_timeline(60.0)
        assert series == [(60.0, 10.0), (120.0, 30.0), (180.0, 35.0)]

    def test_input_weighted_series(self):
        report = SimulationReport(duration=120.0)
        report.record_batch(0.0, 30.0, input_tuples=100.0, output_tuples=7.0)
        series = report.produced_timeline(60.0, weights="input")
        assert series == [(60.0, 100.0), (120.0, 100.0)]

    def test_invalid_interval(self):
        report = SimulationReport(duration=10.0)
        with pytest.raises(ValueError):
            report.produced_timeline(0.0)
        with pytest.raises(ValueError):
            report.produced_timeline(10.0, weights="bogus")


class TestOverheads:
    def test_overhead_fraction(self):
        report = SimulationReport(duration=10.0)
        report.processing_seconds = 50.0
        report.overhead_seconds = 1.0
        report.migration_stall_seconds = 0.5
        assert report.overhead_fraction == pytest.approx(0.03)

    def test_overhead_nan_without_processing(self):
        report = SimulationReport(duration=10.0)
        assert math.isnan(report.overhead_fraction)

    def test_utilization(self):
        report = SimulationReport(duration=10.0)
        report.node_busy_seconds = [5.0, 2.0]
        assert report.utilization() == [0.5, 0.2]
