"""Tests for the RLD runtime strategy (classifier + fixed placement)."""

from __future__ import annotations

import pytest

from repro.core import Cluster, RLDConfig, RLDOptimizer
from repro.core.physical import InfeasiblePlacementError
from repro.engine import StreamSimulator
from repro.runtime import RLDStrategy
from repro.workloads import RegimeSwitchSelectivity, Workload


@pytest.fixture
def solution(four_op_query):
    estimate = four_op_query.default_estimates({"sel:1": 1, "sel:2": 3, "rate": 2})
    cluster = Cluster.homogeneous(3, 400.0)
    return RLDOptimizer(
        four_op_query, cluster, config=RLDConfig(epsilon=0.1)
    ).solve(estimate)


class TestRLDStrategy:
    def test_routes_cheapest_supported_plan(self, solution):
        strategy = RLDStrategy(solution)
        model = solution.logical.cost_model
        point = solution.space.full_region().pnt_hi
        decision = strategy.route(0.0, point)
        best = min(
            model.plan_cost(p, point) for p in strategy.candidate_plans
        )
        assert model.plan_cost(decision.plan, point) == pytest.approx(best)

    def test_classification_overhead_charged(self, solution):
        strategy = RLDStrategy(solution, classify_overhead_fraction=0.02)
        point = solution.query.estimate_point()
        decision = strategy.route(0.0, point)
        assert decision.overhead_seconds > 0

    def test_zero_overhead_mode(self, solution):
        strategy = RLDStrategy(solution, classify_overhead_fraction=0.0)
        point = solution.query.estimate_point()
        assert strategy.route(0.0, point).overhead_seconds == 0.0

    def test_placement_matches_solution(self, solution):
        strategy = RLDStrategy(solution)
        assert strategy.placement == solution.physical.physical_plan

    def test_infeasible_solution_rejected(self, four_op_query):
        estimate = four_op_query.default_estimates({"sel:1": 1, "sel:2": 3})
        tiny_cluster = Cluster.homogeneous(1, 1.0)
        infeasible = RLDOptimizer(four_op_query, tiny_cluster).solve(estimate)
        assert not infeasible.feasible
        with pytest.raises(InfeasiblePlacementError):
            RLDStrategy(infeasible)

    def test_never_migrates_but_switches_plans(self, solution):
        query = solution.query
        strategy = RLDStrategy(solution)
        levels = {op.op_id: 3 for op in query.operators}
        workload = Workload(
            query,
            selectivity_profile=RegimeSwitchSelectivity(
                levels, period=30.0, mode="square"
            ),
        )
        sim = StreamSimulator(query, solution.cluster, strategy, workload, seed=6)
        report = sim.run(120.0)
        assert report.migrations == 0
        if len(strategy.candidate_plans) > 1:
            assert report.plan_switches > 0

    def test_measured_overhead_close_to_two_percent(self, solution):
        query = solution.query
        strategy = RLDStrategy(solution, classify_overhead_fraction=0.02)
        workload = Workload(query)
        sim = StreamSimulator(query, solution.cluster, strategy, workload, seed=6)
        report = sim.run(60.0)
        assert report.overhead_fraction == pytest.approx(0.02, abs=0.01)

    def test_invalid_fraction(self, solution):
        with pytest.raises(ValueError):
            RLDStrategy(solution, classify_overhead_fraction=1.5)
