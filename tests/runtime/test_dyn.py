"""Tests for the DYN baseline strategy."""

from __future__ import annotations

import pytest

from repro.core import Cluster
from repro.engine import StreamSimulator
from repro.engine.faults import FaultError, FaultEvent, FaultSchedule, node_crash
from repro.query import Operator, Query, StreamSchema
from repro.runtime import DYNStrategy
from repro.workloads import ConstantRate, RegimeSwitchSelectivity, Workload


@pytest.fixture
def skewed_query() -> Query:
    """A query whose load concentrates on one heavy operator.

    The estimate claims op0 is light, but at runtime its true
    selectivity upstream shifts the load — creating the imbalance DYN
    is designed to chase.
    """
    ops = (
        Operator(0, "heavy", cost_per_tuple=4.0, selectivity=0.9),
        Operator(1, "mid", cost_per_tuple=1.5, selectivity=0.6),
        Operator(2, "light", cost_per_tuple=0.5, selectivity=0.5),
    )
    return Query("skewed", ops, (StreamSchema("S", base_rate=100.0),))


class TestDYN:
    def test_fixed_logical_plan(self, skewed_query):
        strategy = DYNStrategy(skewed_query, Cluster.homogeneous(2, 600.0))
        stats = skewed_query.estimate_point()
        assert strategy.route(0.0, stats).plan == strategy.logical_plan
        assert strategy.route(50.0, stats).plan == strategy.logical_plan

    def test_migrates_under_imbalance(self, skewed_query):
        cluster = Cluster.homogeneous(3, 450.0)
        strategy = DYNStrategy(
            skewed_query,
            cluster,
            imbalance_threshold=0.05,
            cooldown_seconds=5.0,
        )
        levels = {op.op_id: 3 for op in skewed_query.operators}
        workload = Workload(
            skewed_query,
            rate_profile=ConstantRate(1.6),
            selectivity_profile=RegimeSwitchSelectivity(levels, period=40.0),
        )
        sim = StreamSimulator(
            skewed_query, cluster, strategy, workload, seed=3, tick_period=5.0
        )
        report = sim.run(120.0)
        assert report.migrations > 0
        assert report.migration_stall_seconds > 0

    def test_cooldown_limits_migration_rate(self, skewed_query):
        cluster = Cluster.homogeneous(3, 450.0)
        strategy = DYNStrategy(
            skewed_query, cluster, imbalance_threshold=0.01, cooldown_seconds=30.0
        )
        workload = Workload(skewed_query, rate_profile=ConstantRate(1.6))
        sim = StreamSimulator(
            skewed_query, cluster, strategy, workload, seed=3, tick_period=5.0
        )
        report = sim.run(120.0)
        # With a 30s cooldown at most ~4 migrations fit into 120s.
        assert report.migrations <= 4

    def test_no_migration_when_balanced(self, three_op_query):
        cluster = Cluster.homogeneous(2, 2000.0)
        strategy = DYNStrategy(three_op_query, cluster, imbalance_threshold=0.5)
        workload = Workload(three_op_query, rate_profile=ConstantRate(0.2))
        sim = StreamSimulator(three_op_query, cluster, strategy, workload, seed=2)
        report = sim.run(60.0)
        assert report.migrations == 0

    def test_invalid_parameters(self, three_op_query):
        cluster = Cluster.homogeneous(2, 500.0)
        with pytest.raises(ValueError):
            DYNStrategy(three_op_query, cluster, imbalance_threshold=0.0)
        with pytest.raises(ValueError):
            DYNStrategy(three_op_query, cluster, cooldown_seconds=0.0)


class _StubNode:
    def __init__(self, node_id: int, online: bool) -> None:
        self.node_id = node_id
        self.online = online
        self.busy_seconds = 0.0


class _ExplodingSimulator:
    """Duck-typed simulator whose migrate() fails mid-evacuation."""

    def __init__(self) -> None:
        self.nodes = [_StubNode(0, online=False), _StubNode(1, online=True)]
        self.now = 12.0

    @property
    def current_placement(self) -> dict[int, int]:
        return {0: 0, 1: 1, 2: 1}

    def migrate(self, op_id: int, node_id: int) -> None:
        raise RuntimeError("migration rejected mid-flight")


class TestDYNFaultHook:
    def test_evacuation_failure_becomes_fault_error(self, skewed_query):
        """Regression (found by `repro audit`): migrate() can raise
        RuntimeError/ValueError out of on_fault, past the engine's
        fault accounting.  The hook must convert to FaultError."""
        strategy = DYNStrategy(skewed_query, Cluster.homogeneous(2, 600.0))
        event = FaultEvent(time=12.0, kind="crash", node=0)
        with pytest.raises(FaultError, match="evacuation of node 0"):
            strategy.on_fault(_ExplodingSimulator(), event)

    def test_crash_evacuation_still_works_end_to_end(self, skewed_query):
        cluster = Cluster.homogeneous(2, 600.0)
        strategy = DYNStrategy(skewed_query, cluster)
        workload = Workload(skewed_query, rate_profile=ConstantRate(1.0))
        faults = FaultSchedule(node_crash(20.0, 0, 20.0))
        sim = StreamSimulator(
            skewed_query, cluster, strategy, workload, seed=3, faults=faults
        )
        report = sim.run(80.0)
        assert report.fault_hook_errors == 0
        assert report.batches_completed > 0
        assert report.conservation_holds()
