"""Tests for the strategy comparison harness."""

from __future__ import annotations

import pytest

from repro.core import Cluster
from repro.runtime import compare_strategies
from repro.runtime.comparison import build_standard_strategies
from repro.workloads import build_q1, stock_workload


@pytest.fixture(scope="module")
def scenario():
    query = build_q1()
    estimate = query.default_estimates(
        {op.selectivity_param: 3 for op in query.operators} | {"rate": 2}
    )
    cluster = Cluster.homogeneous(4, 380.0)
    strategies = build_standard_strategies(query, cluster, estimate=estimate)
    workload = stock_workload(query, uncertainty_level=3)
    return query, cluster, strategies, workload


class TestBuildStandardStrategies:
    def test_all_three_present(self, scenario):
        _, _, strategies, _ = scenario
        assert set(strategies) == {"ROD", "DYN", "RLD"}

    def test_reuses_precompiled_solution(self, scenario):
        query, cluster, _, _ = scenario
        from repro.core import RLDOptimizer

        estimate = query.default_estimates(
            {op.selectivity_param: 3 for op in query.operators}
        )
        solution = RLDOptimizer(query, cluster).solve(estimate)
        strategies = build_standard_strategies(
            query, cluster, estimate=estimate, rld_solution=solution
        )
        assert strategies["RLD"].placement == solution.physical.physical_plan


class TestCompareStrategies:
    def test_reports_for_each_strategy(self, scenario):
        query, cluster, strategies, workload = scenario
        result = compare_strategies(
            query, cluster, workload, strategies, duration=60.0, seed=11
        )
        assert set(result.reports) == {"ROD", "DYN", "RLD"}
        for report in result.reports.values():
            assert report.batches_injected > 0

    def test_accessors(self, scenario):
        query, cluster, strategies, workload = scenario
        result = compare_strategies(
            query, cluster, workload, strategies, duration=60.0, seed=11
        )
        assert result.latency_ms("RLD") == result.reports["RLD"].avg_tuple_latency_ms
        assert result.tuples_out("ROD") == result.reports["ROD"].tuples_out

    def test_summary_rows_complete(self, scenario):
        query, cluster, strategies, workload = scenario
        result = compare_strategies(
            query, cluster, workload, strategies, duration=30.0, seed=11
        )
        rows = result.summary_rows()
        assert len(rows) == 3
        for row in rows:
            assert {"strategy", "avg_latency_ms", "tuples_out"} <= set(row)

    def test_identical_arrivals_across_strategies(self, scenario):
        query, cluster, strategies, workload = scenario
        result = compare_strategies(
            query, cluster, workload, strategies, duration=60.0, seed=11
        )
        injected = {r.batches_injected for r in result.reports.values()}
        assert len(injected) == 1  # same seed → same arrival process

    def test_strategy_order_filter(self, scenario):
        query, cluster, strategies, workload = scenario
        result = compare_strategies(
            query,
            cluster,
            workload,
            strategies,
            duration=30.0,
            seed=11,
            strategy_order=("RLD",),
        )
        assert set(result.reports) == {"RLD"}
