"""Tests for the classifier's overload-aware (bottleneck) routing."""

from __future__ import annotations

import pytest

from repro.core import Cluster, RLDConfig, RLDOptimizer
from repro.runtime import RLDStrategy


@pytest.fixture(scope="module")
def solution():
    from repro.workloads import build_q1

    query = build_q1()
    estimate = query.default_estimates(
        {op.selectivity_param: 3 for op in query.operators} | {"rate": 2}
    )
    cluster = Cluster.homogeneous(4, 380.0)
    return RLDOptimizer(query, cluster, config=RLDConfig(epsilon=0.2)).solve(estimate)


class TestBottleneckRouting:
    def test_normal_load_routes_by_cost(self, solution):
        strategy = RLDStrategy(solution)
        model = solution.logical.cost_model
        point = solution.query.estimate_point()
        decision = strategy.route(0.0, point)
        cheapest = min(
            strategy.candidate_plans,
            key=lambda p: (model.plan_cost(p, point), p.order),
        )
        assert decision.plan == cheapest

    def test_overload_routes_by_bottleneck(self, solution):
        strategy = RLDStrategy(solution, overload_threshold=0.95)
        # 10× the estimate rate: every plan saturates some node, so the
        # classifier must pick the min-bottleneck plan instead.
        point = solution.query.estimate_point().replacing(rate=1000.0)
        decision = strategy.route(0.0, point)
        bottlenecks = {
            plan: strategy._bottleneck_utilization(plan, point)
            for plan in strategy.candidate_plans
        }
        assert bottlenecks[decision.plan] == pytest.approx(
            min(bottlenecks.values())
        )

    def test_bottleneck_utilization_consistent_with_placement(self, solution):
        strategy = RLDStrategy(solution)
        model = solution.logical.cost_model
        point = solution.query.estimate_point()
        plan = strategy.candidate_plans[0]
        # Recompute by hand from the placement.
        placement = strategy.placement
        capacities = solution.cluster.capacities
        node_loads = [0.0] * len(capacities)
        for op_id, load in model.operator_loads(plan, point).items():
            node_loads[placement.node_of(op_id)] += load
        expected = max(
            load / cap for load, cap in zip(node_loads, capacities)
        )
        assert strategy._bottleneck_utilization(plan, point) == pytest.approx(
            expected
        )

    def test_threshold_inf_disables_bottleneck_mode(self, solution):
        always_cost = RLDStrategy(solution, overload_threshold=float("inf"))
        model = solution.logical.cost_model
        point = solution.query.estimate_point().replacing(rate=1000.0)
        decision = always_cost.route(0.0, point)
        cheapest = min(
            always_cost.candidate_plans,
            key=lambda p: (model.plan_cost(p, point), p.order),
        )
        assert decision.plan == cheapest

    def test_invalid_threshold(self, solution):
        with pytest.raises(ValueError, match="overload_threshold"):
            RLDStrategy(solution, overload_threshold=0.0)


class TestReportExport:
    def test_to_dict_round_trips_through_json(self, solution):
        import json

        from repro.engine import StreamSimulator
        from repro.workloads import stock_workload

        strategy = RLDStrategy(solution)
        workload = stock_workload(solution.query, uncertainty_level=3)
        report = StreamSimulator(
            solution.query, solution.cluster, strategy, workload, seed=3
        ).run(30.0)
        payload = report.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["batches_injected"] == report.batches_injected
        assert payload["avg_tuple_latency_ms"] == pytest.approx(
            report.avg_tuple_latency_ms
        )
        assert len(payload["node_utilization"]) == solution.cluster.n_nodes

    def test_to_dict_nan_becomes_none(self):
        from repro.engine import SimulationReport

        empty = SimulationReport(duration=10.0)
        payload = empty.to_dict()
        assert payload["avg_tuple_latency_ms"] is None
        assert payload["overhead_fraction"] is None
