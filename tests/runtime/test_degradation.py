"""Graceful degradation under node failure — the robustness claim, chaotic.

The paper argues RLD stays robust where DYN pays migration penalties
and ROD stalls; here the stressor is a *crashed node* rather than
statistics drift.  RLD's placement never changes, but its classifier
falls back to a surviving candidate plan — one whose bottleneck is not
the dead node — so the stalled queue at the dead operator stays short
and drains quickly after recovery.  ROD keeps shoving full-size batches
at the dead node and its latency degrades; DYN evacuates by force-
migrating, paying the pauses.
"""

from __future__ import annotations

import pytest

from repro.core import Cluster, RLDConfig, RLDOptimizer
from repro.engine import FaultEvent, FaultSchedule
from repro.engine.faults import node_crash
from repro.runtime.comparison import build_standard_strategies, compare_strategies
from repro.runtime.rld_runtime import RLDStrategy
from repro.workloads import build_q1, stock_workload

CRASH_AT = 40.0
OUTAGE = 30.0
DURATION = 150.0


@pytest.fixture(scope="module")
def compiled():
    """One q1 scenario with a compiled RLD solution (compile is the
    expensive step; share it across the module's tests)."""
    query = build_q1()
    estimate = query.default_estimates(
        {op.selectivity_param: 3 for op in query.operators} | {"rate": 2}
    )
    cluster = Cluster.homogeneous(4, 420.0)
    solution = RLDOptimizer(query, cluster, config=RLDConfig(epsilon=0.2)).solve(
        estimate
    )
    return query, estimate, cluster, solution


def run_comparison(compiled, faults):
    query, estimate, cluster, solution = compiled
    workload = stock_workload(query, uncertainty_level=3)
    strategies = build_standard_strategies(
        query, cluster, estimate=estimate, rld_solution=solution
    )
    return compare_strategies(
        query,
        cluster,
        workload,
        strategies,
        duration=DURATION,
        seed=29,
        faults=faults,
    )


class TestSurvivingPlanFallback:
    """Unit-level: the classifier's reroute decision itself."""

    def test_route_avoids_dead_bottleneck(self, compiled):
        query, estimate, cluster, solution = compiled
        strategy = RLDStrategy(solution)
        stats = estimate.point

        preferred = strategy.route(0.0, stats).plan
        bottleneck = strategy.bottleneck_node(preferred, stats)

        strategy.on_fault(None, FaultEvent(time=10.0, kind="crash", node=bottleneck))
        fallback = strategy.route(10.0, stats).plan

        assert fallback != preferred
        assert strategy.bottleneck_node(fallback, stats) != bottleneck
        assert fallback in strategy.candidate_plans  # still a robust plan

    def test_recovery_restores_preferred_routing(self, compiled):
        query, estimate, cluster, solution = compiled
        strategy = RLDStrategy(solution)
        stats = estimate.point
        preferred = strategy.route(0.0, stats).plan
        bottleneck = strategy.bottleneck_node(preferred, stats)

        strategy.on_fault(None, FaultEvent(time=10.0, kind="crash", node=bottleneck))
        strategy.on_fault(None, FaultEvent(time=40.0, kind="recover", node=bottleneck))
        assert strategy.down_nodes == frozenset()
        assert strategy.route(40.0, stats).plan == preferred


class TestDegradationHeadToHead:
    """System-level: the three strategies under the identical crash."""

    @pytest.fixture(scope="class")
    def crashed(self, compiled):
        query, estimate, cluster, solution = compiled
        strategy = RLDStrategy(solution)
        stats = estimate.point
        # Crash the node RLD's preferred plan bottlenecks on — the
        # worst possible single-node failure for RLD's fixed placement.
        bottleneck = strategy.bottleneck_node(strategy.route(0.0, stats).plan, stats)
        faults = FaultSchedule(node_crash(CRASH_AT, bottleneck, OUTAGE))
        return run_comparison(compiled, faults)

    @pytest.fixture(scope="class")
    def healthy(self, compiled):
        return run_comparison(compiled, None)

    def test_all_strategies_complete_the_chaos_run(self, crashed):
        for name in ("ROD", "DYN", "RLD"):
            report = crashed.reports[name]
            assert report.batches_completed > 0
            assert report.conservation_holds()
            assert report.node_downtime_seconds == pytest.approx(OUTAGE)

    def test_rod_latency_degrades_under_crash(self, healthy, crashed):
        assert (
            crashed.latency_ms("ROD") > 1.5 * healthy.latency_ms("ROD")
        ), "a crashed node should visibly hurt the frozen placement"

    def test_rld_reroutes_and_beats_rod(self, crashed):
        rld = crashed.reports["RLD"]
        rod = crashed.reports["ROD"]
        # RLD degraded gracefully: rerouted (no migration), lower
        # latency than the strategy with no failure response at all.
        assert rld.migrations == 0
        assert rld.plan_switches > 0
        assert rld.avg_tuple_latency_ms < rod.avg_tuple_latency_ms

    def test_dyn_reacts_with_forced_migrations(self, crashed):
        dyn = crashed.reports["DYN"]
        assert dyn.migrations > 0
        assert dyn.migration_stall_seconds > 0.0
        # Evacuation means DYN stops queueing on the dead node...
        assert dyn.batch_stalls == 0
        # ...at the price of losing the in-service work it abandoned.
        assert dyn.batches_dropped > 0

    def test_rod_stalls_on_the_dead_node(self, crashed):
        assert crashed.reports["ROD"].batch_stalls > 0
