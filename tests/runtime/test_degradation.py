"""Graceful degradation under node failure — the robustness claim, chaotic.

The paper argues RLD stays robust where DYN pays migration penalties
and ROD stalls; here the stressor is a *crashed node* rather than
statistics drift.  RLD's placement never changes, but its classifier
falls back to a surviving candidate plan — one whose bottleneck is not
the dead node — so the stalled queue at the dead operator stays short
and drains quickly after recovery.  ROD keeps shoving full-size batches
at the dead node and its latency degrades; DYN evacuates by force-
migrating, paying the pauses.
"""

from __future__ import annotations

import pytest

from repro.core import Cluster, RLDConfig, RLDOptimizer
from repro.engine import FaultEvent, FaultSchedule
from repro.engine.faults import node_crash
from repro.runtime.comparison import build_standard_strategies, compare_strategies
from repro.runtime.rld_runtime import RLDStrategy
from repro.workloads import build_q1, stock_workload

CRASH_AT = 40.0
OUTAGE = 30.0
DURATION = 150.0


@pytest.fixture(scope="module")
def compiled():
    """One q1 scenario with a compiled RLD solution (compile is the
    expensive step; share it across the module's tests)."""
    query = build_q1()
    estimate = query.default_estimates(
        {op.selectivity_param: 3 for op in query.operators} | {"rate": 2}
    )
    cluster = Cluster.homogeneous(4, 420.0)
    solution = RLDOptimizer(query, cluster, config=RLDConfig(epsilon=0.2)).solve(
        estimate
    )
    return query, estimate, cluster, solution


def run_comparison(compiled, faults):
    query, estimate, cluster, solution = compiled
    workload = stock_workload(query, uncertainty_level=3)
    strategies = build_standard_strategies(
        query, cluster, estimate=estimate, rld_solution=solution
    )
    return compare_strategies(
        query,
        cluster,
        workload,
        strategies,
        duration=DURATION,
        seed=29,
        faults=faults,
    )


class TestSurvivingPlanFallback:
    """Unit-level: the classifier's reroute decision itself."""

    def test_route_avoids_dead_bottleneck(self, compiled):
        query, estimate, cluster, solution = compiled
        strategy = RLDStrategy(solution)
        stats = estimate.point

        preferred = strategy.route(0.0, stats).plan
        bottleneck = strategy.bottleneck_node(preferred, stats)

        strategy.on_fault(None, FaultEvent(time=10.0, kind="crash", node=bottleneck))
        fallback = strategy.route(10.0, stats).plan

        assert fallback != preferred
        assert strategy.bottleneck_node(fallback, stats) != bottleneck
        assert fallback in strategy.candidate_plans  # still a robust plan

    def test_recovery_restores_preferred_routing(self, compiled):
        query, estimate, cluster, solution = compiled
        strategy = RLDStrategy(solution)
        stats = estimate.point
        preferred = strategy.route(0.0, stats).plan
        bottleneck = strategy.bottleneck_node(preferred, stats)

        strategy.on_fault(None, FaultEvent(time=10.0, kind="crash", node=bottleneck))
        strategy.on_fault(None, FaultEvent(time=40.0, kind="recover", node=bottleneck))
        assert strategy.down_nodes == frozenset()
        assert strategy.route(40.0, stats).plan == preferred


class TestRoutingTableUnderFaults:
    """The precomputed argmin routing table and its fault-path wiring:
    ``on_fault`` must invalidate the table so post-crash routes are
    re-derived against the surviving plan set, and recovery must
    rebuild it back to the healthy decisions."""

    def test_on_grid_routes_hit_the_table(self, compiled):
        query, estimate, cluster, solution = compiled
        strategy = RLDStrategy(solution)
        assert strategy.routing_table_enabled
        stats = estimate.point  # the estimate midpoint is a grid point

        plan = strategy.route(0.0, stats).plan
        assert strategy.table_hits == 1
        assert strategy.table_misses == 0
        assert strategy.table_rebuilds == 1
        # Repeat routes reuse the table without rebuilding.
        assert strategy.route(1.0, stats).plan == plan
        assert strategy.table_hits == 2
        assert strategy.table_rebuilds == 1

    def test_off_grid_stats_fall_back_to_live_evaluation(self, compiled):
        query, estimate, cluster, solution = compiled
        strategy = RLDStrategy(solution)
        stats = estimate.point
        hi = solution.space.full_region().pnt_hi
        rate_dim = next(d for d in solution.space.dimensions if d.name == "rate")
        off_grid = stats.replacing(rate=hi["rate"] + rate_dim.cell_width)

        strategy.route(0.0, off_grid)
        assert strategy.table_hits == 0
        assert strategy.table_misses == 1

    def test_crash_invalidates_and_rebuilds_the_table(self, compiled):
        query, estimate, cluster, solution = compiled
        strategy = RLDStrategy(solution)
        stats = estimate.point

        preferred = strategy.route(0.0, stats).plan
        assert strategy.table_rebuilds == 1
        bottleneck = strategy.bottleneck_node(preferred, stats)

        strategy.on_fault(None, FaultEvent(time=10.0, kind="crash", node=bottleneck))
        fallback = strategy.route(10.0, stats).plan
        # The post-crash decision came from a *rebuilt* table, not a
        # live-path miss, and avoids the dead bottleneck.
        assert strategy.table_rebuilds == 2
        assert strategy.table_misses == 0
        assert fallback != preferred
        assert strategy.bottleneck_node(fallback, stats) != bottleneck

        strategy.on_fault(None, FaultEvent(time=40.0, kind="recover", node=bottleneck))
        assert strategy.route(40.0, stats).plan == preferred
        assert strategy.table_rebuilds == 3

    def test_rebuilt_table_matches_live_decisions(self, compiled):
        """The vectorized degraded-mode table must agree with the scalar
        live path at every grid point it covers."""
        query, estimate, cluster, solution = compiled
        tabled = RLDStrategy(solution)
        live = RLDStrategy(solution)
        stats = estimate.point
        bottleneck = tabled.bottleneck_node(tabled.route(0.0, stats).plan, stats)
        for strategy in (tabled, live):
            strategy.on_fault(
                None, FaultEvent(time=10.0, kind="crash", node=bottleneck)
            )
        space = solution.space
        for flat in range(0, space.n_points, max(1, space.n_points // 97)):
            point = space.point_at(space.index_of_flat(flat))
            assert tabled.route(10.0, point).plan == live._route_live(point)


class TestDegradationHeadToHead:
    """System-level: the three strategies under the identical crash."""

    @pytest.fixture(scope="class")
    def crashed(self, compiled):
        query, estimate, cluster, solution = compiled
        strategy = RLDStrategy(solution)
        stats = estimate.point
        # Crash the node RLD's preferred plan bottlenecks on — the
        # worst possible single-node failure for RLD's fixed placement.
        bottleneck = strategy.bottleneck_node(strategy.route(0.0, stats).plan, stats)
        faults = FaultSchedule(node_crash(CRASH_AT, bottleneck, OUTAGE))
        return run_comparison(compiled, faults)

    @pytest.fixture(scope="class")
    def healthy(self, compiled):
        return run_comparison(compiled, None)

    def test_all_strategies_complete_the_chaos_run(self, crashed):
        for name in ("ROD", "DYN", "RLD"):
            report = crashed.reports[name]
            assert report.batches_completed > 0
            assert report.conservation_holds()
            assert report.node_downtime_seconds == pytest.approx(OUTAGE)

    def test_rod_latency_degrades_under_crash(self, healthy, crashed):
        assert (
            crashed.latency_ms("ROD") > 1.5 * healthy.latency_ms("ROD")
        ), "a crashed node should visibly hurt the frozen placement"

    def test_rld_reroutes_and_beats_rod(self, crashed):
        rld = crashed.reports["RLD"]
        rod = crashed.reports["ROD"]
        # RLD degraded gracefully: rerouted (no migration), lower
        # latency than the strategy with no failure response at all.
        assert rld.migrations == 0
        assert rld.plan_switches > 0
        assert rld.avg_tuple_latency_ms < rod.avg_tuple_latency_ms

    def test_dyn_reacts_with_forced_migrations(self, crashed):
        dyn = crashed.reports["DYN"]
        assert dyn.migrations > 0
        assert dyn.migration_stall_seconds > 0.0
        # Evacuation means DYN stops queueing on the dead node...
        assert dyn.batch_stalls == 0
        # ...at the price of losing the in-service work it abandoned.
        assert dyn.batches_dropped > 0

    def test_rod_stalls_on_the_dead_node(self, crashed):
        assert crashed.reports["ROD"].batch_stalls > 0
