"""Tests for the ROD baseline strategy."""

from __future__ import annotations

import pytest

from repro.core import Cluster
from repro.core.physical import InfeasiblePlacementError
from repro.engine import StreamSimulator
from repro.query import make_optimizer
from repro.runtime import RODStrategy
from repro.workloads import ConstantRate, Workload


class TestROD:
    def test_plan_is_optimal_at_estimate(self, three_op_query):
        strategy = RODStrategy(three_op_query, Cluster.homogeneous(2, 500.0))
        expected = make_optimizer(three_op_query).optimize(
            three_op_query.estimate_point()
        )
        assert strategy.logical_plan == expected

    def test_route_is_constant(self, three_op_query):
        strategy = RODStrategy(three_op_query, Cluster.homogeneous(2, 500.0))
        stats = three_op_query.estimate_point()
        decision1 = strategy.route(0.0, stats)
        decision2 = strategy.route(100.0, stats.replacing(rate=500.0))
        assert decision1.plan == decision2.plan
        assert decision1.overhead_seconds == 0.0

    def test_placement_covers_query(self, three_op_query):
        strategy = RODStrategy(three_op_query, Cluster.homogeneous(2, 500.0))
        assert strategy.placement.covers(three_op_query.operator_ids)

    def test_infeasible_cluster_rejected(self, three_op_query):
        with pytest.raises(InfeasiblePlacementError):
            RODStrategy(three_op_query, Cluster.homogeneous(1, 1.0))

    def test_never_migrates(self, three_op_query):
        cluster = Cluster.homogeneous(2, 500.0)
        strategy = RODStrategy(three_op_query, cluster)
        workload = Workload(three_op_query, rate_profile=ConstantRate(1.0))
        sim = StreamSimulator(three_op_query, cluster, strategy, workload, seed=2)
        report = sim.run(30.0)
        assert report.migrations == 0
        assert report.plan_switches == 0
        assert report.overhead_seconds == 0.0
