"""Tests for the hybrid RLD + fallback-migration strategy."""

from __future__ import annotations

import pytest

from repro.core import Cluster, RLDConfig, RLDOptimizer
from repro.engine import StreamSimulator
from repro.query import StatPoint
from repro.runtime import RLDHybridStrategy, RLDStrategy
from repro.workloads import ConstantRate, Workload, build_q1, stock_workload


@pytest.fixture(scope="module")
def solution():
    query = build_q1()
    estimate = query.default_estimates(
        {op.selectivity_param: 3 for op in query.operators} | {"rate": 2}
    )
    cluster = Cluster.homogeneous(4, 380.0)
    return RLDOptimizer(query, cluster, config=RLDConfig(epsilon=0.2)).solve(estimate)


class TestSpaceMembership:
    def test_estimate_point_is_inside(self, solution):
        strategy = RLDHybridStrategy(solution)
        assert strategy.in_compiled_space(solution.query.estimate_point())

    def test_far_outside_rate_detected(self, solution):
        strategy = RLDHybridStrategy(solution)
        wild = solution.query.estimate_point().replacing(rate=1000.0)
        assert not strategy.in_compiled_space(wild)

    def test_tolerance_stretches_bounds(self, solution):
        hi_rate = max(
            d.hi for d in solution.space.dimensions if d.name == "rate"
        )
        slightly_out = solution.query.estimate_point().replacing(rate=hi_rate * 1.05)
        tight = RLDHybridStrategy(solution, space_tolerance=1.0)
        loose = RLDHybridStrategy(solution, space_tolerance=1.2)
        assert not tight.in_compiled_space(slightly_out)
        assert loose.in_compiled_space(slightly_out)

    def test_unknown_parameters_ignored(self, solution):
        strategy = RLDHybridStrategy(solution)
        partial = StatPoint({"something:else": 123.0})
        assert strategy.in_compiled_space(partial)

    def test_invalid_parameters(self, solution):
        with pytest.raises(ValueError):
            RLDHybridStrategy(solution, space_tolerance=0.9)
        with pytest.raises(ValueError):
            RLDHybridStrategy(solution, cooldown_seconds=0.0)


class TestRuntimeBehaviour:
    def test_no_migration_inside_space(self, solution):
        query = solution.query
        strategy = RLDHybridStrategy(solution)
        workload = stock_workload(query, uncertainty_level=3)
        report = StreamSimulator(
            query, solution.cluster, strategy, workload, seed=3
        ).run(120.0)
        assert report.migrations == 0

    def test_migrates_under_extreme_unexpected_load(self, solution):
        query = solution.query
        strategy = RLDHybridStrategy(
            solution, saturation_threshold=0.8, cooldown_seconds=10.0
        )
        # 4x the estimate rate: far outside the level-2 rate dimension.
        workload = Workload(query, rate_profile=ConstantRate(4.0))
        report = StreamSimulator(
            query, solution.cluster, strategy, workload, seed=3
        ).run(120.0)
        assert report.migrations >= 1

    def test_routing_identical_to_pure_rld(self, solution):
        pure = RLDStrategy(solution)
        hybrid = RLDHybridStrategy(solution)
        point = solution.query.estimate_point()
        assert hybrid.route(0.0, point).plan == pure.route(0.0, point).plan

    def test_hybrid_not_worse_than_pure_rld_outside_space(self, solution):
        query = solution.query
        workload = Workload(query, rate_profile=ConstantRate(4.0))
        pure_report = StreamSimulator(
            query, solution.cluster, RLDStrategy(solution), workload, seed=3
        ).run(120.0)
        hybrid_report = StreamSimulator(
            query,
            solution.cluster,
            RLDHybridStrategy(solution, saturation_threshold=0.8),
            workload,
            seed=3,
        ).run(120.0)
        assert (
            hybrid_report.batches_completed >= pure_report.batches_completed * 0.9
        )
