"""Tests for Table 2's distribution generator and moment summaries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import summarize, table2_distributions


class TestSummarize:
    def test_known_sample(self):
        summary = summarize("x", np.array([1.0, 2.0, 3.0, 4.0]))
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.variance == pytest.approx(1.25)
        assert summary.skew == pytest.approx(0.0, abs=1e-12)

    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            summarize("x", np.array([1.0]))

    def test_as_row_keys_match_table2(self):
        row = summarize("x", np.arange(10.0)).as_row()
        assert set(row) == {
            "min", "max", "med", "mean", "ave.dev", "st.dev", "var", "skew", "kurt",
        }


class TestTable2:
    @pytest.fixture(scope="class")
    def dists(self):
        return table2_distributions(n_samples=200_000, seed=2012)

    def test_uniform_moments_match_paper(self, dists):
        u = dists["Uniform"]
        # Table 2: mean 49.7, st.dev 29.14, skew 0.05, kurt −1.18.
        assert u.mean == pytest.approx(50.0, abs=0.5)
        assert u.standard_deviation == pytest.approx(28.87, abs=0.5)
        assert u.skew == pytest.approx(0.0, abs=0.05)
        assert u.kurtosis == pytest.approx(-1.2, abs=0.05)

    def test_poisson_moments_match_paper(self, dists):
        p = dists["Poisson"]
        # Table 2: mean 0.97, st.dev 1.01, var 1.02, skew 1.17, kurt 1.89.
        assert p.mean == pytest.approx(1.0, abs=0.02)
        assert p.variance == pytest.approx(1.0, abs=0.03)
        assert p.skew == pytest.approx(1.0, abs=0.05)
        assert p.median == 1.0

    def test_uniform_support(self, dists):
        u = dists["Uniform"]
        assert u.minimum >= 0.0
        assert u.maximum <= 100.0

    def test_deterministic(self):
        a = table2_distributions(n_samples=1000, seed=7)
        b = table2_distributions(n_samples=1000, seed=7)
        assert a["Uniform"].mean == b["Uniform"].mean
