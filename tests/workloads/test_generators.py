"""Tests for rate/selectivity profiles and the Workload bundle."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    ConstantRate,
    ConstantSelectivity,
    PeriodicRate,
    RandomWalkSelectivity,
    RegimeSwitchSelectivity,
    StepRate,
    Workload,
)


class TestRateProfiles:
    def test_constant(self):
        assert ConstantRate(2.0).multiplier(99.0) == 2.0

    def test_constant_invalid(self):
        with pytest.raises(ValueError):
            ConstantRate(0.0)

    def test_periodic_alternates(self):
        profile = PeriodicRate(high=2.0, low=0.5, period=10.0)
        assert profile.multiplier(3.0) == 2.0
        assert profile.multiplier(13.0) == 0.5
        assert profile.multiplier(23.0) == 2.0

    def test_periodic_equal_intervals(self):
        profile = PeriodicRate(high=3.0, low=1.0, period=5.0)
        highs = sum(1 for t in range(100) if profile.multiplier(t + 0.5) == 3.0)
        assert highs == 50

    def test_step_schedule(self):
        profile = StepRate(((0.0, 0.5), (20.0, 1.0), (40.0, 2.0)))
        assert profile.multiplier(5.0) == 0.5
        assert profile.multiplier(20.0) == 1.0
        assert profile.multiplier(100.0) == 2.0

    def test_step_validation(self):
        with pytest.raises(ValueError, match="ascending"):
            StepRate(((0.0, 1.0), (10.0, 2.0), (5.0, 3.0)))
        with pytest.raises(ValueError, match="t=0"):
            StepRate(((5.0, 1.0),))
        with pytest.raises(ValueError, match="at least one"):
            StepRate(())


class TestSelectivityProfiles:
    def test_constant_returns_base(self):
        assert ConstantSelectivity().value(0, 50.0, 0.42) == 0.42

    def test_regime_switch_stays_within_level_band(self):
        profile = RegimeSwitchSelectivity({0: 2, 1: 2}, period=30.0)
        for t in range(0, 120, 3):
            for op in (0, 1):
                value = profile.value(op, float(t), 0.5)
                assert 0.5 * 0.8 - 1e-9 <= value <= 0.5 * 1.2 + 1e-9

    def test_regime_switch_anti_phase(self):
        profile = RegimeSwitchSelectivity({0: 2, 1: 2}, period=40.0)
        # At the quarter-period peak, op0 is high while op1 is low.
        high = profile.value(0, 10.0, 0.5)
        low = profile.value(1, 10.0, 0.5)
        assert high > 0.5 > low

    def test_square_mode_is_two_valued(self):
        profile = RegimeSwitchSelectivity({0: 1}, period=10.0, mode="square")
        values = {round(profile.value(0, float(t), 0.5), 9) for t in range(40)}
        assert values <= {round(0.45, 9), round(0.55, 9)}

    def test_level_zero_operator_unchanged(self):
        profile = RegimeSwitchSelectivity({0: 2}, period=10.0)
        assert profile.value(7, 3.0, 0.4) == 0.4

    def test_invalid_mode(self):
        with pytest.raises(ValueError, match="mode"):
            RegimeSwitchSelectivity({0: 1}, mode="triangle")

    def test_random_walk_bounded_and_deterministic(self):
        a = RandomWalkSelectivity({0: 3}, seed=9)
        b = RandomWalkSelectivity({0: 3}, seed=9)
        for t in (0.0, 5.0, 50.0, 500.0):
            va = a.value(0, t, 0.5)
            assert va == b.value(0, t, 0.5)
            assert 0.5 * 0.7 - 1e-9 <= va <= 0.5 * 1.3 + 1e-9

    def test_random_walk_visits_both_sides(self):
        profile = RandomWalkSelectivity({0: 3}, step_fraction=0.3, seed=1)
        values = [profile.value(0, float(t), 0.5) for t in range(200)]
        assert min(values) < 0.5 < max(values)

    def test_random_walk_independent_of_query_order(self):
        """Regression: a single shared generator made each operator's
        walk depend on the order (and times) other operators were
        queried.  Per-operator child generators make every walk a pure
        function of the seed."""
        a = RandomWalkSelectivity({0: 3, 1: 3}, seed=9)
        b = RandomWalkSelectivity({0: 3, 1: 3}, seed=9)
        # a: op 0 first, then op 1; b: reversed, with extra interleaving.
        a_op0 = a.value(0, 50.0, 0.5)
        a_op1 = a.value(1, 50.0, 0.5)
        b.value(1, 200.0, 0.5)  # extend op 1's walk far ahead first
        b_op0 = b.value(0, 50.0, 0.5)
        b_op1 = b.value(1, 50.0, 0.5)
        assert a_op0 == b_op0
        assert a_op1 == b_op1

    def test_random_walk_accepts_generator_seed(self):
        import numpy as np

        a = RandomWalkSelectivity({0: 2, 1: 2}, seed=np.random.default_rng(5))
        b = RandomWalkSelectivity({0: 2, 1: 2}, seed=np.random.default_rng(5))
        assert a.value(0, 30.0, 0.5) == b.value(0, 30.0, 0.5)
        assert a.value(1, 30.0, 0.5) == b.value(1, 30.0, 0.5)


class TestWorkload:
    def test_rate_composition(self, three_op_query):
        workload = Workload(
            three_op_query, base_rate=100.0, rate_profile=ConstantRate(2.0)
        )
        assert workload.rate(0.0) == 200.0

    def test_default_base_rate_from_query(self, three_op_query):
        workload = Workload(three_op_query)
        assert workload.rate(0.0) == three_op_query.driving_rate

    def test_stat_point_covers_everything(self, three_op_query):
        workload = Workload(three_op_query)
        point = workload.stat_point(1.0)
        assert set(point) == {"rate", "sel:0", "sel:1", "sel:2"}

    def test_scaled_multiplies_base_rate(self, three_op_query):
        workload = Workload(three_op_query, base_rate=100.0)
        assert workload.scaled(4.0).rate(0.0) == pytest.approx(400.0)
        assert workload.rate(0.0) == pytest.approx(100.0)  # original intact

    def test_selectivity_defaults_to_estimates(self, three_op_query):
        workload = Workload(three_op_query)
        assert workload.selectivity(0, 12.0) == 0.6


@settings(max_examples=40)
@given(
    high=st.floats(1.0, 5.0),
    low=st.floats(0.1, 1.0),
    period=st.floats(1.0, 100.0),
    t=st.floats(0.0, 1e4),
)
def test_periodic_rate_always_high_or_low(high, low, period, t):
    """Property: a periodic profile only ever emits its two levels."""
    value = PeriodicRate(high=high, low=low, period=period).multiplier(t)
    assert value in (high, low)
