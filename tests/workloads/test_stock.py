"""Tests for the stock-market workload and tick generator."""

from __future__ import annotations

import itertools

import pytest

from repro.workloads import build_q1, generate_stock_ticks, stock_workload


class TestTickGenerator:
    def test_count_and_determinism(self):
        a = list(generate_stock_ticks(200, seed=5))
        b = list(generate_stock_ticks(200, seed=5))
        assert len(a) == 200
        assert a == b

    def test_prices_positive(self):
        for tick in generate_stock_ticks(500, seed=1):
            assert tick.price > 0

    def test_regime_flag_alternates_with_period(self):
        ticks = list(generate_stock_ticks(1000, seed=2, tick_seconds=1.0, regime_period=100.0))
        first_regime = [t.bullish for t in ticks[:100]]
        second_regime = [t.bullish for t in ticks[100:200]]
        assert all(first_regime)
        assert not any(second_regime)

    def test_sectors_consistent_per_symbol(self):
        by_symbol = {}
        for tick in generate_stock_ticks(300, seed=3):
            by_symbol.setdefault(tick.symbol, set()).add(tick.sector)
        assert all(len(sectors) == 1 for sectors in by_symbol.values())

    def test_bull_market_drifts_up(self):
        # Pure bull regime: long horizon, prices should trend upward.
        ticks = generate_stock_ticks(
            20_000, seed=7, tick_seconds=0.001, regime_period=1e9, volatility=0.001, drift=0.001
        )
        first, last = None, None
        totals = {}
        counts = {}
        for tick in ticks:
            totals.setdefault(tick.symbol, []).append(tick.price)
        rising = sum(
            1 for prices in totals.values() if prices[-1] > prices[0]
        )
        assert rising >= len(totals) * 0.7

    def test_timestamps_monotone(self):
        stamps = [t.timestamp for t in generate_stock_ticks(50, seed=4)]
        assert stamps == sorted(stamps)


class TestStockWorkload:
    def test_defaults_to_q1(self):
        workload = stock_workload()
        assert workload.query.name == "Q1"

    def test_selectivities_within_level_band(self):
        q = build_q1()
        workload = stock_workload(q, uncertainty_level=2)
        for t, op in itertools.product(range(0, 300, 7), q.operators):
            value = workload.selectivity(op.op_id, float(t))
            assert op.selectivity * 0.8 - 1e-9 <= value <= op.selectivity * 1.2 + 1e-9

    def test_regime_flips_optimal_ordering(self):
        from repro.query import make_optimizer

        q = build_q1()
        workload = stock_workload(q, uncertainty_level=3, regime_period=100.0)
        optimizer = make_optimizer(q)
        bull = optimizer.optimize(workload.stat_point(25.0))
        bear = optimizer.optimize(workload.stat_point(75.0))
        assert bull != bear

    def test_rate_pulses(self):
        workload = stock_workload(rate_high=1.5, rate_low=0.5, rate_period=30.0)
        rates = {workload.rate(t) for t in (10.0, 40.0)}
        assert len(rates) == 2
