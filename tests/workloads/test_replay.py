"""Tests for trace-replay workloads."""

from __future__ import annotations

import pytest

from repro.workloads import (
    RegimeSwitchSelectivity,
    ReplayWorkload,
    Workload,
    build_q1,
)


def _trace_samples(query, values_by_time):
    samples = []
    for t, (rate, sel) in values_by_time.items():
        mapping = {"rate": rate}
        mapping.update(
            {op.selectivity_param: sel for op in query.operators}
        )
        samples.append((t, mapping))
    return samples


class TestConstruction:
    def test_requires_all_parameters(self, three_op_query):
        with pytest.raises(ValueError, match="missing"):
            ReplayWorkload(three_op_query, [(0.0, {"rate": 100.0})])

    def test_requires_ascending_distinct_times(self, three_op_query):
        good = _trace_samples(three_op_query, {0.0: (100.0, 0.5), 5.0: (120.0, 0.6)})
        ReplayWorkload(three_op_query, good)
        bad_order = list(reversed(good))
        with pytest.raises(ValueError, match="ascending"):
            ReplayWorkload(three_op_query, bad_order)
        duplicate = [good[0], (0.0, good[1][1])]
        with pytest.raises(ValueError, match="distinct"):
            ReplayWorkload(three_op_query, duplicate)

    def test_invalid_interpolation(self, three_op_query):
        samples = _trace_samples(three_op_query, {0.0: (100.0, 0.5)})
        with pytest.raises(ValueError, match="interpolation"):
            ReplayWorkload(three_op_query, samples, interpolation="cubic")


class TestLookup:
    @pytest.fixture
    def replay(self, three_op_query):
        samples = _trace_samples(
            three_op_query, {0.0: (100.0, 0.4), 10.0: (200.0, 0.6)}
        )
        return ReplayWorkload(three_op_query, samples)

    def test_linear_interpolation(self, replay):
        assert replay.rate(5.0) == pytest.approx(150.0)
        assert replay.selectivity(0, 2.5) == pytest.approx(0.45)

    def test_clamped_outside_trace(self, replay):
        assert replay.rate(-5.0) == 100.0
        assert replay.rate(100.0) == 200.0

    def test_step_interpolation(self, three_op_query):
        samples = _trace_samples(
            three_op_query, {0.0: (100.0, 0.4), 10.0: (200.0, 0.6)}
        )
        replay = ReplayWorkload(three_op_query, samples, interpolation="step")
        assert replay.rate(9.99) == 100.0
        assert replay.rate(10.0) == 200.0

    def test_stat_point_complete(self, replay, three_op_query):
        point = replay.stat_point(5.0)
        assert set(point) == {"rate", "sel:0", "sel:1", "sel:2"}

    def test_duration(self, replay):
        assert replay.duration == 10.0


class TestRecord:
    def test_round_trip_of_synthetic_workload(self):
        query = build_q1()
        levels = {op.op_id: 2 for op in query.operators}
        original = Workload(
            query,
            selectivity_profile=RegimeSwitchSelectivity(levels, period=20.0),
        )
        replay = ReplayWorkload.record(original, duration=60.0, n_samples=600)
        for t in (0.0, 7.3, 33.1, 59.0):
            assert replay.rate(t) == pytest.approx(original.rate(t), rel=1e-6)
            for op in query.operators:
                assert replay.selectivity(op.op_id, t) == pytest.approx(
                    original.selectivity(op.op_id, t), rel=1e-2
                )

    def test_recorded_trace_drives_simulation(self, three_op_query):
        from repro.core import Cluster, PhysicalPlan
        from repro.engine import StreamSimulator
        from repro.engine.system import RoutingDecision
        from repro.query import LogicalPlan

        class Fixed:
            name = "fixed"
            placement = PhysicalPlan((frozenset({0, 1, 2}),))

            def route(self, time, stats):
                return RoutingDecision(plan=LogicalPlan((2, 1, 0)))

            def on_tick(self, simulator, time):
                pass

        original = Workload(three_op_query)
        replay = ReplayWorkload.record(original, duration=30.0)
        report = StreamSimulator(
            three_op_query, Cluster.homogeneous(1, 800.0), Fixed(), replay, seed=3
        ).run(30.0)
        assert report.batches_completed > 0

    def test_record_validation(self, three_op_query):
        workload = Workload(three_op_query)
        with pytest.raises(ValueError):
            ReplayWorkload.record(workload, duration=0.0)
        with pytest.raises(ValueError):
            ReplayWorkload.record(workload, duration=10.0, n_samples=0)
