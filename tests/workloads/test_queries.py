"""Tests for the Q1/Q2 builders and the N-way generator."""

from __future__ import annotations

import pytest

from repro.query import enumerate_plans, is_valid_order, make_optimizer
from repro.workloads import build_nway, build_q1, build_q2


class TestQ1:
    def test_five_operators(self):
        q = build_q1()
        assert len(q) == 5
        assert q.name == "Q1"

    def test_has_stock_stream(self):
        q = build_q1()
        assert q.streams[0].name == "Stocks"
        assert q.driving_rate == 100.0

    def test_orderings_fluctuation_sensitive(self):
        # Perturbing selectivities within ±20% changes the optimal order.
        q = build_q1()
        optimizer = make_optimizer(q)
        base = optimizer.optimize(q.estimate_point())
        perturbed_point = q.estimate_point().replacing(
            sel__0=q.operator(0).selectivity * 0.8,
            sel__2=q.operator(2).selectivity * 1.2,
        )
        perturbed = optimizer.optimize(perturbed_point)
        assert base != perturbed


class TestQ2:
    def test_ten_operators(self):
        q = build_q2()
        assert len(q) == 10

    def test_unique_costs(self):
        q = build_q2()
        costs = [op.cost_per_tuple for op in q.operators]
        assert len(set(costs)) == len(costs)


class TestNWay:
    def test_sizes(self):
        for n in (1, 3, 8, 15):
            assert len(build_nway(n)) == n

    def test_deterministic_from_seed(self):
        a = build_nway(6, seed=9)
        b = build_nway(6, seed=9)
        assert [op.cost_per_tuple for op in a.operators] == [
            op.cost_per_tuple for op in b.operators
        ]

    def test_different_seeds_differ(self):
        a = build_nway(6, seed=1)
        b = build_nway(6, seed=2)
        assert [op.cost_per_tuple for op in a.operators] != [
            op.cost_per_tuple for op in b.operators
        ]

    def test_chain_variant_constrains_orderings(self):
        q = build_nway(5, chain=True)
        assert not q.join_graph.is_unconstrained
        for plan in enumerate_plans(q, limit=20):
            assert is_valid_order(q, plan.order)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            build_nway(0)

    def test_state_size_scales_with_cost(self):
        q = build_nway(4)
        for op in q.operators:
            assert op.state_size == pytest.approx(2.0 * op.cost_per_tuple)
