"""Tests for the sensor workload and reading generator."""

from __future__ import annotations

import pytest

from repro.workloads import build_q2, generate_sensor_readings, sensor_workload
from repro.workloads.sensor import DiurnalRate


class TestDiurnalRate:
    def test_oscillates_around_one(self):
        profile = DiurnalRate(amplitude=0.3, day_seconds=100.0)
        values = [profile.multiplier(t) for t in range(0, 100, 5)]
        assert min(values) == pytest.approx(0.7, abs=0.01)
        assert max(values) == pytest.approx(1.3, abs=0.01)

    def test_period(self):
        profile = DiurnalRate(day_seconds=50.0)
        assert profile.multiplier(10.0) == pytest.approx(profile.multiplier(60.0))

    def test_invalid_amplitude(self):
        with pytest.raises(ValueError):
            DiurnalRate(amplitude=1.0)


class TestReadingGenerator:
    def test_count_and_determinism(self):
        a = list(generate_sensor_readings(150, seed=8))
        b = list(generate_sensor_readings(150, seed=8))
        assert len(a) == 150
        assert a == b

    def test_mote_ids_in_range(self):
        for reading in generate_sensor_readings(200, n_motes=10, seed=1):
            assert 0 <= reading.mote_id < 10

    def test_physical_plausibility(self):
        for reading in generate_sensor_readings(500, seed=2):
            assert reading.humidity >= 0
            assert reading.light >= 0
            assert 2.0 <= reading.voltage <= 3.0
            assert 5.0 <= reading.temperature <= 35.0

    def test_diurnal_temperature_cycle(self):
        readings = list(
            generate_sensor_readings(4000, seed=3, interval_seconds=0.5, day_seconds=400.0)
        )
        # Day peak (t ≈ 100) vs night trough (t ≈ 300).
        day = [r.temperature for r in readings if 50 <= r.timestamp <= 150]
        night = [r.temperature for r in readings if 250 <= r.timestamp <= 350]
        assert sum(day) / len(day) > sum(night) / len(night) + 3.0

    def test_bursts_occur(self):
        readings = list(
            generate_sensor_readings(5000, seed=4, burst_probability=0.05)
        )
        assert any(r.light > 400 for r in readings)


class TestSensorWorkload:
    def test_defaults_to_q2(self):
        assert sensor_workload().query.name == "Q2"

    def test_rate_follows_diurnal_cycle(self):
        workload = sensor_workload(day_seconds=100.0)
        assert workload.rate(25.0) > workload.rate(75.0)

    def test_selectivities_within_band(self):
        q = build_q2()
        workload = sensor_workload(q, uncertainty_level=2)
        for t in range(0, 500, 13):
            for op in q.operators:
                value = workload.selectivity(op.op_id, float(t))
                band = 0.1 * 2 * op.selectivity
                assert op.selectivity - band - 1e-9 <= value <= op.selectivity + band + 1e-9
