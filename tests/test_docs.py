"""Documentation consistency: the docs reference real artifacts."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


class TestDocsExist:
    @pytest.mark.parametrize(
        "name",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md",
         "docs/architecture.md", "docs/algorithms.md",
         "docs/static-analysis.md"],
    )
    def test_document_present_and_substantial(self, name):
        path = ROOT / name
        assert path.exists(), f"{name} missing"
        assert len(path.read_text()) > 1000, f"{name} looks like a stub"


class TestReferencesResolve:
    def _referenced_paths(self, text: str) -> set[str]:
        return set(re.findall(r"`(benchmarks/[\w./]+\.py)`", text)) | set(
            re.findall(r"`(repro/[\w./]+\.py)`", text)
        ) | set(re.findall(r"`(examples/[\w./]+\.py)`", text))

    @pytest.mark.parametrize("name", ["DESIGN.md", "EXPERIMENTS.md"])
    def test_every_referenced_file_exists(self, name):
        text = (ROOT / name).read_text()
        for ref in self._referenced_paths(text):
            candidates = [ROOT / ref, ROOT / "src" / ref]
            assert any(c.exists() for c in candidates), f"{name} references missing {ref}"

    def test_every_evaluation_figure_has_a_bench(self):
        bench_names = {p.name for p in (ROOT / "benchmarks").glob("test_*.py")}
        for required in (
            "test_table2_distributions.py",
            "test_fig10_optimizer_calls.py",
            "test_fig11_space_coverage.py",
            "test_fig12_dimensions.py",
            "test_fig13_compile_time.py",
            "test_fig14_phys_coverage.py",
            "test_fig15a_processing_time.py",
            "test_fig15b_throughput.py",
            "test_fig16a_nodes.py",
            "test_fig16b_period.py",
            "test_overhead.py",
        ):
            assert required in bench_names

    def test_experiments_covers_every_bench_figure(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for figure in ("Table 2", "Figure 10", "Figure 11", "Figure 12",
                       "Figure 13", "Figure 14", "Figure 15a", "Figure 15b",
                       "Figure 16a", "Figure 16b", "Runtime overhead"):
            assert figure in text, f"EXPERIMENTS.md lacks a section for {figure}"

    def test_examples_listed_in_readme_exist(self):
        text = (ROOT / "README.md").read_text()
        for ref in re.findall(r"python (examples/[\w.]+\.py)", text):
            assert (ROOT / ref).exists(), f"README references missing {ref}"
