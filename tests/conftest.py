"""Shared fixtures: small canonical queries, spaces, and clusters."""

from __future__ import annotations

import pytest

from repro.core import Cluster, ParameterSpace
from repro.query import Operator, Query, StreamSchema
from repro.workloads import build_q1, build_q2


@pytest.fixture
def three_op_query() -> Query:
    """Example 1's shape: three operators with distinct costs/selectivities."""
    operators = (
        Operator(op_id=0, name="op1", cost_per_tuple=3.0, selectivity=0.6),
        Operator(op_id=1, name="op2", cost_per_tuple=2.0, selectivity=0.5),
        Operator(op_id=2, name="op3", cost_per_tuple=1.0, selectivity=0.4),
    )
    streams = (StreamSchema("Stocks", ("symbol", "price"), base_rate=100.0),)
    return Query("stock3", operators, streams)


@pytest.fixture
def four_op_query() -> Query:
    """Four operators with clustered ranks (orderings fluctuation-sensitive)."""
    operators = (
        Operator(op_id=0, name="op0", cost_per_tuple=3.0, selectivity=0.55),
        Operator(op_id=1, name="op1", cost_per_tuple=2.0, selectivity=0.50),
        Operator(op_id=2, name="op2", cost_per_tuple=1.2, selectivity=0.60),
        Operator(op_id=3, name="op3", cost_per_tuple=0.9, selectivity=0.45),
    )
    streams = (StreamSchema("S", (), base_rate=100.0),)
    return Query("four", operators, streams)


@pytest.fixture
def q1() -> Query:
    """The paper's Q1 (5-way join)."""
    return build_q1()


@pytest.fixture
def q2() -> Query:
    """The paper's Q2 (10-way join)."""
    return build_q2()


@pytest.fixture
def space_2d(three_op_query: Query) -> ParameterSpace:
    """A 2-D parameter space over two of the query's selectivities."""
    estimate = three_op_query.default_estimates({"sel:0": 2, "sel:2": 2})
    return ParameterSpace.from_estimates(estimate, points_per_level=3)


@pytest.fixture
def small_cluster() -> Cluster:
    """Three homogeneous machines."""
    return Cluster.homogeneous(3, 250.0)
