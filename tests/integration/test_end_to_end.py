"""Integration tests: the full compile→simulate pipeline on Q1/Q2.

These exercise the paper's headline claims end-to-end on scaled-down
scenarios: ERP covers the space with far fewer optimizer calls than ES;
OptPrune matches exhaustive physical quality; and at runtime RLD beats
ROD and DYN on fluctuating streams while never migrating.
"""

from __future__ import annotations

import pytest

from repro.core import (
    Cluster,
    EarlyTerminatedRobustPartitioning,
    ExhaustiveSearch,
    NormalOccurrenceModel,
    ParameterSpace,
    PlanLoadTable,
    RLDConfig,
    RLDOptimizer,
    exhaustive_physical,
    grid_optimal_costs,
    measure_coverage,
    opt_prune,
)
from repro.query import PlanCostModel, make_optimizer
from repro.runtime import compare_strategies
from repro.runtime.comparison import build_standard_strategies
from repro.workloads import build_q1, stock_workload


@pytest.fixture(scope="module")
def q1_setup():
    # 2-D space over Q1's two near-unit-fanout joins, whose rank
    # crossings produce a genuinely multi-plan space at level 3.
    query = build_q1()
    estimate = query.default_estimates({"sel:1": 3, "sel:3": 3})
    space = ParameterSpace.from_estimates(estimate, points_per_level=2)
    return query, estimate, space


class TestLogicalPipeline:
    def test_erp_cheaper_than_es_with_comparable_coverage(self, q1_setup):
        query, _, space = q1_setup
        epsilon = 0.2
        erp = EarlyTerminatedRobustPartitioning(query, space, epsilon=epsilon).run()
        es = ExhaustiveSearch(query, space, epsilon=epsilon).run()
        assert erp.optimizer_calls < es.optimizer_calls

        oracle = make_optimizer(query)
        optimal = grid_optimal_costs(space, oracle)
        model = PlanCostModel(query)
        erp_coverage = measure_coverage(
            erp.solution.plans, space, model, optimal, epsilon
        )
        es_coverage = measure_coverage(
            es.solution.plans, space, model, optimal, epsilon
        )
        assert es_coverage == 1.0
        assert erp_coverage >= 0.85 * es_coverage

    def test_multiple_robust_plans_found(self, q1_setup):
        query, _, space = q1_setup
        result = EarlyTerminatedRobustPartitioning(query, space, epsilon=0.1).run()
        assert len(result.solution) >= 2


class TestPhysicalPipeline:
    def test_optprune_matches_exhaustive_quality(self, q1_setup):
        query, _, space = q1_setup
        logical = EarlyTerminatedRobustPartitioning(query, space, epsilon=0.2).run()
        occurrence = NormalOccurrenceModel(space)
        table = PlanLoadTable.from_solution(logical.solution, occurrence=occurrence)
        for n_nodes in (2, 3, 4):
            cluster = Cluster.homogeneous(n_nodes, 1000.0 / n_nodes * 1.4)
            pruned = opt_prune(table, cluster)
            optimal = exhaustive_physical(table, cluster)
            assert pruned.score == pytest.approx(optimal.score, abs=1e-9)

    def test_more_machines_support_more_plans(self, q1_setup):
        query, estimate, _ = q1_setup
        scores = []
        for n_nodes in (2, 4, 6):
            cluster = Cluster.homogeneous(n_nodes, 330.0)
            solution = RLDOptimizer(
                query, cluster, config=RLDConfig(epsilon=0.2)
            ).solve(estimate)
            scores.append(solution.physical.score)
        assert scores == sorted(scores)


class TestRuntimeComparison:
    @pytest.fixture(scope="class")
    def comparison(self, q1_setup):
        query, _, _ = q1_setup
        estimate = query.default_estimates(
            {op.selectivity_param: 3 for op in query.operators} | {"rate": 2}
        )
        cluster = Cluster.homogeneous(4, 380.0)
        strategies = build_standard_strategies(query, cluster, estimate=estimate)
        workload = stock_workload(query, uncertainty_level=3, regime_period=60.0)
        return compare_strategies(
            query, cluster, workload, strategies, duration=180.0, seed=13
        )

    def test_rld_never_migrates(self, comparison):
        assert comparison.reports["RLD"].migrations == 0

    def test_rld_beats_rod_on_fluctuating_stream(self, comparison):
        assert comparison.latency_ms("RLD") <= comparison.latency_ms("ROD")

    def test_rld_completes_at_least_as_much_work_as_baselines(self, comparison):
        # Completed source tuples measure throughput capacity; raw output
        # counts are additionally modulated by *when* each operator
        # samples its fluctuating selectivity, which differs across
        # pipeline speeds.
        rld_done = comparison.reports["RLD"].batches_completed
        assert rld_done >= comparison.reports["ROD"].batches_completed
        assert rld_done >= comparison.reports["DYN"].batches_completed

    def test_rld_overhead_small(self, comparison):
        assert comparison.reports["RLD"].overhead_fraction < 0.05

    def test_dyn_pays_migration_stalls(self, comparison):
        dyn = comparison.reports["DYN"]
        if dyn.migrations:
            assert dyn.migration_stall_seconds > 0
