"""CLI surface tests for ``repro lint``."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_lint_tree_exits_zero(capsys: pytest.CaptureFixture) -> None:
    assert main(["lint", "--root", str(REPO_ROOT)]) == 0
    assert "clean" in capsys.readouterr().out


def test_lint_finding_exits_one_and_renders_json(
    tmp_path: Path, capsys: pytest.CaptureFixture
) -> None:
    bad = tmp_path / "src" / "repro" / "engine" / "mod.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import random\n")
    code = main(["lint", "--root", str(tmp_path), "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    (diagnostic,) = payload["diagnostics"]
    assert diagnostic["rule"] == "no-unseeded-rng"
    assert diagnostic["path"] == "src/repro/engine/mod.py"


def test_lint_disable_silences_rule(tmp_path: Path, capsys: pytest.CaptureFixture) -> None:
    bad = tmp_path / "src" / "repro" / "engine" / "mod.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import random\n")
    code = main(
        ["lint", "--root", str(tmp_path), "--disable", "no-unseeded-rng"]
    )
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_lint_unknown_disable_is_an_error() -> None:
    with pytest.raises(SystemExit, match="unknown rule"):
        main(["lint", "--root", str(REPO_ROOT), "--disable", "not-a-rule"])


def test_lint_missing_path_is_an_error(tmp_path: Path) -> None:
    with pytest.raises(SystemExit, match="no such path"):
        main(["lint", "nope/", "--root", str(tmp_path)])


def test_lint_list_rules(capsys: pytest.CaptureFixture) -> None:
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in (
        "no-unseeded-rng",
        "no-wallclock",
        "no-float-eq",
        "no-cached-tensor-mutation",
        "no-mutable-default",
        "no-module-mutable-state",
    ):
        assert name in out
