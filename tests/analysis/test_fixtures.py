"""Fixture-corpus tests: each known-bad file triggers exactly its
intended rule, each known-good file lints clean.

Scopes are disabled (``respect_scopes=False``) so rules run on the
synthetic fixture paths; every default rule still sees every fixture,
which is what makes the "exactly its intended rule" assertion strong —
a fixture that accidentally tripped a *second* rule would fail here.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import LintRunner

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture name -> (exact rule set, exact finding count)
BAD_FIXTURES = {
    "bad_rng.py": ({"no-unseeded-rng"}, 3),
    "bad_wallclock.py": ({"no-wallclock"}, 3),
    "bad_floateq.py": ({"no-float-eq"}, 2),
    "bad_tensor_mutation.py": ({"no-cached-tensor-mutation"}, 4),
    "bad_mutable_default.py": ({"no-mutable-default"}, 2),
    "bad_module_state.py": ({"no-module-mutable-state"}, 2),
    "bad_syntax.py": ({"syntax-error"}, 1),
    # An unjustified suppression suppresses nothing: the original
    # finding surfaces alongside the bad-suppression audit finding.
    "suppressed_missing_why.py": ({"no-wallclock", "bad-suppression"}, 2),
    "suppressed_unknown_rule.py": ({"bad-suppression"}, 1),
    "suppressed_unused.py": ({"unused-suppression"}, 1),
}

GOOD_FIXTURES = [
    "good_rng.py",
    "good_wallclock.py",
    "good_floateq.py",
    "good_tensor_mutation.py",
    "good_mutable_default.py",
    "good_module_state.py",
    "suppressed_ok.py",
]


def _check(name: str):
    runner = LintRunner(respect_scopes=False, root=FIXTURES)
    context = runner.check_file(FIXTURES / name)
    assert context is not None
    return context


@pytest.mark.parametrize("name", sorted(BAD_FIXTURES))
def test_bad_fixture_triggers_exactly_its_rule(name: str) -> None:
    expected_rules, expected_count = BAD_FIXTURES[name]
    context = _check(name)
    assert {d.rule for d in context.diagnostics} == expected_rules
    assert len(context.diagnostics) == expected_count


@pytest.mark.parametrize("name", GOOD_FIXTURES)
def test_good_fixture_is_clean(name: str) -> None:
    assert _check(name).diagnostics == []


def test_corpus_is_exhaustive() -> None:
    """Every fixture on disk is claimed by exactly one expectation table."""
    on_disk = {p.name for p in FIXTURES.glob("*.py")}
    claimed = set(BAD_FIXTURES) | set(GOOD_FIXTURES)
    assert on_disk == claimed


def test_diagnostics_carry_usable_locations() -> None:
    context = _check("bad_rng.py")
    for diagnostic in context.diagnostics:
        assert diagnostic.line > 0
        assert diagnostic.col > 0
        assert diagnostic.path.endswith("bad_rng.py")
        assert diagnostic.message
