"""Audit fixture corpus: each bad package triggers exactly its pass.

Every package under ``fixtures/audit/`` is a minimal multi-module
program.  Bad packages each contain one cross-module defect class; the
assertions pin the exact rule set, finding count, *and* the files the
findings land in — a fixture that tripped a second pass, or reported in
the wrong module, fails here.  ``good_tree`` exercises the sanctioned
idiom for every pass at once and must stay silent.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import AuditRunner

FIXTURES = Path(__file__).parent / "fixtures" / "audit"

#: package -> (exact rule set, exact count, exact set of finding files)
BAD_PACKAGES = {
    "bad_escape": (
        {"tensor-escape"},
        2,
        {"bad_escape/cache.py", "bad_escape/user.py"},
    ),
    "bad_aliasing": (
        {"shared-node-state"},
        2,
        {"bad_aliasing/wiring.py"},
    ),
    "bad_faultpath": (
        {"fault-hook-raises"},
        1,
        {"bad_faultpath/strategy.py"},
    ),
    "bad_rng": (
        {"shared-rng"},
        2,
        {"bad_rng/sources.py", "bad_rng/wiring.py"},
    ),
}

GOOD_PACKAGES = ["good_tree"]


def _audit(package: str):
    runner = AuditRunner(respect_scopes=False, root=FIXTURES)
    return runner.run([FIXTURES / package])


@pytest.mark.parametrize("package", sorted(BAD_PACKAGES))
def test_bad_package_triggers_exactly_its_pass(package: str) -> None:
    expected_rules, expected_count, expected_files = BAD_PACKAGES[package]
    report = _audit(package)
    assert {d.rule for d in report.diagnostics} == expected_rules
    assert len(report.diagnostics) == expected_count
    assert {d.path for d in report.diagnostics} == expected_files
    assert report.exit_code == 1


@pytest.mark.parametrize("package", GOOD_PACKAGES)
def test_good_package_is_clean(package: str) -> None:
    report = _audit(package)
    assert report.diagnostics == []
    assert report.exit_code == 0


def test_corpus_is_exhaustive() -> None:
    on_disk = {p.name for p in FIXTURES.iterdir() if p.is_dir()}
    assert on_disk == set(BAD_PACKAGES) | set(GOOD_PACKAGES)


def test_finding_messages_carry_provenance() -> None:
    report = _audit("bad_faultpath")
    (finding,) = report.diagnostics
    # The chain names the function the exception actually comes from.
    assert "EvacuationError" in finding.message
    assert "relocate" in finding.message


def test_escape_finding_names_the_producer() -> None:
    report = _audit("bad_escape")
    consumer = [d for d in report.diagnostics if d.path.endswith("user.py")]
    assert len(consumer) == 1
    assert "tensor_of" in consumer[0].message


def test_suppression_absorbs_audit_finding(tmp_path: Path) -> None:
    package = tmp_path / "pkg"
    package.mkdir()
    (package / "__init__.py").write_text('"""pkg."""\n')
    (package / "nodes.py").write_text(
        '"""Nodes."""\n\n\n'
        "class CacheNode:\n"
        "    def __init__(self, table):\n"
        "        self.table = table\n"
    )
    (package / "wiring.py").write_text(
        '"""Wiring."""\n\n'
        "from pkg.nodes import CacheNode\n\n\n"
        "def build():\n"
        "    shared = {}\n"
        "    a = CacheNode(shared)\n"
        "    b = CacheNode(shared)  "
        "# repro-lint: disable=shared-node-state -- test shared ledger\n"
        "    return a, b\n"
    )
    runner = AuditRunner(respect_scopes=False, root=tmp_path)
    report = runner.run([package])
    assert report.diagnostics == []
