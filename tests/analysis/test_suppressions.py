"""Unit tests for the suppression grammar and its engine semantics."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import LintRunner
from repro.analysis.engine import parse_suppressions
from repro.analysis.rules import BAD_SUPPRESSION, UNUSED_SUPPRESSION


def test_trailing_comment_applies_to_its_own_line() -> None:
    source = "x = compute()  # repro-lint: disable=no-wallclock -- why\n"
    by_line = parse_suppressions(source)
    assert list(by_line) == [1]
    (suppression,) = by_line[1]
    assert suppression.rules == frozenset({"no-wallclock"})
    assert suppression.justification == "why"
    assert suppression.valid


def test_standalone_comment_applies_to_next_code_line() -> None:
    source = textwrap.dedent(
        """\
        # repro-lint: disable=no-float-eq -- pinned dims compare bitwise

        # an unrelated comment in between
        if lo == hi:
            pass
        """
    )
    by_line = parse_suppressions(source)
    assert list(by_line) == [4]
    (suppression,) = by_line[4]
    assert suppression.comment_line == 1


def test_multiple_rules_in_one_comment() -> None:
    source = "y = f()  # repro-lint: disable=no-wallclock, no-float-eq -- both\n"
    (suppression,) = parse_suppressions(source)[1]
    assert suppression.rules == frozenset({"no-wallclock", "no-float-eq"})


def test_missing_justification_is_invalid() -> None:
    (suppression,) = parse_suppressions(
        "z = g()  # repro-lint: disable=no-wallclock\n"
    )[1]
    assert not suppression.valid


def test_hash_inside_string_is_not_a_suppression() -> None:
    source = 's = "# repro-lint: disable=no-wallclock -- fake"\n'
    assert parse_suppressions(source) == {}


def test_unparsable_source_yields_no_suppressions() -> None:
    assert parse_suppressions("def broken(:\n") == {}


def _lint_snippet(tmp_path: Path, source: str):
    target = tmp_path / "snippet.py"
    target.write_text(source)
    runner = LintRunner(respect_scopes=False, root=tmp_path)
    context = runner.check_file(target)
    assert context is not None
    return context


def test_valid_suppression_absorbs_and_counts_as_used(tmp_path: Path) -> None:
    context = _lint_snippet(
        tmp_path,
        "import time\n"
        "\n"
        "def f() -> float:\n"
        "    return time.time()  # repro-lint: disable=no-wallclock -- test\n",
    )
    assert context.diagnostics == []


def test_suppression_only_absorbs_named_rules(tmp_path: Path) -> None:
    """A no-float-eq suppression does not silence a wall-clock finding
    on the same line — and then reports itself as unused."""
    context = _lint_snippet(
        tmp_path,
        "import time\n"
        "\n"
        "def f() -> float:\n"
        "    return time.time()  # repro-lint: disable=no-float-eq -- wrong rule\n",
    )
    assert {d.rule for d in context.diagnostics} == {
        "no-wallclock",
        UNUSED_SUPPRESSION,
    }


def test_unused_suppression_not_reported_for_inactive_rules(tmp_path: Path) -> None:
    """Disabling a rule must not turn its (now-unmatched) suppressions
    into unused-suppression noise, nor into unknown-rule errors."""
    from repro.analysis.rules import default_rules, resolve_rules

    target = tmp_path / "snippet.py"
    target.write_text(
        "import time\n"
        "\n"
        "def f() -> float:\n"
        "    return time.time()  # repro-lint: disable=no-wallclock -- test\n"
    )
    rules = resolve_rules(default_rules(), ["no-wallclock"])
    runner = LintRunner(rules, respect_scopes=False, root=tmp_path)
    context = runner.check_file(target)
    assert context is not None
    assert context.diagnostics == []


def test_bad_suppression_reported_at_comment_line(tmp_path: Path) -> None:
    context = _lint_snippet(
        tmp_path,
        "def f(x: int) -> int:\n"
        "    return x  # repro-lint: disable=no-float-eq\n",
    )
    (diagnostic,) = context.diagnostics
    assert diagnostic.rule == BAD_SUPPRESSION
    assert diagnostic.line == 2
