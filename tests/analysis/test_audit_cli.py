"""CLI surface tests for ``repro audit`` and the shared ``--diff`` flag."""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_audit_tree_exits_zero(capsys: pytest.CaptureFixture) -> None:
    assert main(["audit", "--root", str(REPO_ROOT)]) == 0
    assert "clean" in capsys.readouterr().out


def test_audit_list_passes(capsys: pytest.CaptureFixture) -> None:
    assert main(["audit", "--list-passes"]) == 0
    out = capsys.readouterr().out
    for name in (
        "tensor-escape",
        "shared-node-state",
        "fault-hook-raises",
        "shared-rng",
    ):
        assert name in out


def test_audit_finding_exits_one_and_renders_json(
    tmp_path: Path, capsys: pytest.CaptureFixture
) -> None:
    bad = tmp_path / "src" / "repro" / "engine" / "hook.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "class Strategy:\n"
        "    def on_fault(self, simulator, event):\n"
        "        raise ValueError('boom')\n"
    )
    code = main(["audit", "--root", str(tmp_path), "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    (diagnostic,) = payload["diagnostics"]
    assert diagnostic["rule"] == "fault-hook-raises"
    assert diagnostic["path"] == "src/repro/engine/hook.py"


def test_audit_disable_silences_pass(
    tmp_path: Path, capsys: pytest.CaptureFixture
) -> None:
    bad = tmp_path / "src" / "repro" / "engine" / "hook.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "class Strategy:\n"
        "    def on_fault(self, simulator, event):\n"
        "        raise ValueError('boom')\n"
    )
    code = main(["audit", "--root", str(tmp_path), "--disable", "fault-hook-raises"])
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_audit_unknown_disable_is_an_error() -> None:
    with pytest.raises(SystemExit, match="unknown rule"):
        main(["audit", "--root", str(REPO_ROOT), "--disable", "not-a-pass"])


# ----------------------------------------------------------------------
# --diff <rev>
# ----------------------------------------------------------------------

BAD_HOOK = (
    "class Strategy:\n"
    "    def on_fault(self, simulator, event):\n"
    "        raise ValueError('boom')\n"
)


def _git(repo: Path, *args: str) -> None:
    subprocess.run(
        ["git", "-C", str(repo), *args],
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "PATH": "/usr/bin:/bin:/usr/local/bin",
            "HOME": str(repo),
        },
    )


@pytest.fixture
def diff_repo(tmp_path: Path) -> Path:
    """A git repo with a committed finding and an uncommitted clean file."""
    pkg = tmp_path / "src" / "repro" / "engine"
    pkg.mkdir(parents=True)
    (pkg / "hook.py").write_text(BAD_HOOK)
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    return tmp_path


def test_diff_hides_findings_in_unchanged_files(
    diff_repo: Path, capsys: pytest.CaptureFixture
) -> None:
    # Nothing changed since HEAD: the committed finding is filtered out
    # (exit 0) but the file count still reflects the full analysis.
    code = main(["audit", "--root", str(diff_repo), "--diff", "HEAD", "--format", "json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["diagnostics"] == []
    assert payload["files_checked"] == 1


def test_diff_keeps_findings_in_changed_files(
    diff_repo: Path, capsys: pytest.CaptureFixture
) -> None:
    # Touch the offending file: its finding is reported again.
    hook = diff_repo / "src" / "repro" / "engine" / "hook.py"
    hook.write_text(BAD_HOOK + "\n# touched\n")
    code = main(["audit", "--root", str(diff_repo), "--diff", "HEAD"])
    assert code == 1
    assert "fault-hook-raises" in capsys.readouterr().out


def test_diff_sees_untracked_files(
    diff_repo: Path, capsys: pytest.CaptureFixture
) -> None:
    fresh = diff_repo / "src" / "repro" / "engine" / "fresh.py"
    fresh.write_text(BAD_HOOK)
    code = main(["audit", "--root", str(diff_repo), "--diff", "HEAD"])
    assert code == 1
    out = capsys.readouterr().out
    assert "fresh.py" in out
    assert "hook.py" not in out  # unchanged file stays filtered


def test_diff_bad_revision_is_an_error(diff_repo: Path) -> None:
    with pytest.raises(SystemExit, match="git"):
        main(["audit", "--root", str(diff_repo), "--diff", "no-such-rev"])


def test_diff_works_on_lint_too(
    diff_repo: Path, capsys: pytest.CaptureFixture
) -> None:
    bad = diff_repo / "src" / "repro" / "engine" / "mod.py"
    bad.write_text("import random\n")
    code = main(["lint", "--root", str(diff_repo), "--diff", "HEAD"])
    assert code == 1
    assert "no-unseeded-rng" in capsys.readouterr().out
