"""Known-bad fixture: unseeded RNG use — must trigger only no-unseeded-rng."""

import random

import numpy as np


def sample_noise(n: int) -> list[float]:
    values = [random.random() for _ in range(n)]
    jitter = np.random.normal(0.0, 1.0, size=n)
    return values + list(jitter)
