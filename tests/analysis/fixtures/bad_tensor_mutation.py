"""Known-bad fixture: in-place writes to cached tensors — must trigger
only no-cached-tensor-mutation.

One finding per mutation style: item store, augmented assignment,
in-place method on a row view, and re-enabling the write flag.
"""


def corrupt(cache, space):
    matrix = space.grid_matrix()
    matrix[0, 0] = 1.0
    tensor = cache.cost_tensor
    tensor += 1.0
    row = tensor[0]
    row.fill(0.0)
    tensor.setflags(write=True)
