"""Known-bad fixture: wall-clock reads — must trigger only no-wallclock.

Exercises the plain module call, the ``from``-import-with-alias form
(resolved through the import map), and a ``datetime`` classmethod.
"""

import time
from datetime import datetime
from time import perf_counter as clock


def stamp() -> float:
    started = clock()
    now = datetime.now()
    return time.time() + started + now.timestamp()
