"""Known-bad fixture: a suppression without the mandatory justification
suppresses nothing — both the original finding and bad-suppression fire."""

import time


def stamp() -> float:
    return time.time()  # repro-lint: disable=no-wallclock
