"""Known-good fixture: module-level registries as read-only views and
tuples — the sanctioned replacement for mutable module state."""

from types import MappingProxyType

__all__ = ["lookup"]

_REGISTRY = MappingProxyType({"identity": "identity"})
_NAMES = ("identity",)


def lookup(name: str) -> str:
    return _REGISTRY.get(name, name)
