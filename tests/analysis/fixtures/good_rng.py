"""Known-good fixture: randomness only through an injected, seeded generator.

The ``np.random.Generator`` *annotation* is a non-call reference and must
stay legal; only calls into the global ``random``/``np.random`` state are
invariant violations.
"""

import numpy as np


def sample_noise(rng: np.random.Generator, n: int) -> list[float]:
    return list(rng.normal(0.0, 1.0, size=n))
