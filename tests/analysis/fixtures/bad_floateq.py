"""Known-bad fixture: exact float comparison — must trigger only no-float-eq.

Covers the two inference paths: ``float``-annotated parameters and a
value produced by true division.
"""


def converged(error: float, threshold: float) -> bool:
    return error == threshold


def check(x: float) -> bool:
    ratio = x / 3.0
    return ratio != 0.5
