"""Known-bad fixture: a valid suppression that matches no finding is a
dead escape hatch — unused-suppression fires."""


def total(values: list) -> int:
    # repro-lint: disable=no-float-eq -- nothing here actually compares floats
    return sum(values)
