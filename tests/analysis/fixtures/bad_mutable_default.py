"""Known-bad fixture: mutable default arguments — must trigger only
no-mutable-default."""


def collect(item: int, into: list = []) -> list:
    into.append(item)
    return into


def register(name: str, registry: dict = {}) -> dict:
    registry[name] = name
    return registry
