"""Known-good fixture: a justified suppression absorbs its finding and
counts as used — the file lints clean."""

import time


def stamp() -> float:
    # repro-lint: disable=no-wallclock -- fixture exercising a justified escape hatch
    return time.time()
