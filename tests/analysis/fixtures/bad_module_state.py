"""Known-bad fixture: mutable module-level state — must trigger only
no-module-mutable-state.

``__all__`` is a list but dunder names are exempt; the two private
containers below are the findings.
"""

__all__ = ["lookup"]

_REGISTRY: dict = {}
_SEEN = []


def lookup(name: str) -> str:
    return _REGISTRY.get(name, name)
