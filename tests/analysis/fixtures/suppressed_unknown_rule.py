"""Known-bad fixture: a suppression naming a rule that does not exist —
bad-suppression fires."""


def identity(x: int) -> int:
    return x  # repro-lint: disable=not-a-rule -- this rule name does not exist
