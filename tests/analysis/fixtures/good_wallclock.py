"""Known-good fixture: time flows only through explicit simulation-clock
parameters, never from the host's wall clock."""


def advance(sim_time: float, dt: float) -> float:
    return sim_time + dt
