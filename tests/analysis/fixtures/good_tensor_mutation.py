"""Known-good fixture: mutating a private copy of a cached tensor is the
sanctioned pattern — ``.copy()`` breaks the taint."""


def scaled_copy(cache):
    tensor = cache.cost_tensor.copy()
    tensor *= 2.0
    tensor[0] = 0.0
    return tensor


def reduce_only(cache) -> float:
    return cache.cost_tensor.min()
