"""Known-good fixture: tolerance-based float comparison and integer
equality, neither of which the no-float-eq rule may flag."""

import math


def converged(error: float, threshold: float) -> bool:
    return math.isclose(error, threshold)


def same_count(a: int, b: int) -> bool:
    return a == b
