"""Known-good fixture: immutable defaults and the None-sentinel idiom,
neither of which the no-mutable-default rule may flag."""


def collect(item: int, into: tuple = ()) -> tuple:
    return into + (item,)


def register(name: str, registry: dict | None = None) -> dict:
    mapping = dict(registry or {})
    mapping[name] = name
    return mapping
