"""A node class that retains its constructor arguments by reference."""


class WorkerNode:
    def __init__(self, node_id, table):
        self.node_id = node_id
        self.table = table
