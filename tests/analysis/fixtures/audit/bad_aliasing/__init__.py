"""Fixture: the ``shared-node-state`` pass's two finding shapes."""
