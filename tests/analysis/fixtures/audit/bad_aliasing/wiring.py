"""Wiring that threads one mutable object into several nodes."""

from bad_aliasing.nodes import WorkerNode


def build_pair():
    shared = {"load": 0.0}
    # BAD: both instances retain the same dict — a hidden shared-memory
    # channel between 'distributed' nodes.
    left = WorkerNode(0, shared)
    right = WorkerNode(1, shared)
    return left, right


def build_ring(count):
    stats = {"seen": 0}
    # BAD: every instance the comprehension builds shares one dict.
    return [WorkerNode(i, stats) for i in range(count)]
