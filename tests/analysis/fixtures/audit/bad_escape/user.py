"""Consumer half: mutating an array aliased through a helper call."""

from bad_escape.access import tensor_of
from bad_escape.cache import LeakyCache


def clobber(cache: LeakyCache) -> None:
    grid = tensor_of(cache)
    # BAD: writes through the alias into the cache-backed array.
    grid[0, 0] = 1.0
