"""Fixture: the ``tensor-escape`` pass's two finding shapes."""
