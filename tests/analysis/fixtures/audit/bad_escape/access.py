"""A helper whose return value aliases the cache surface."""

from bad_escape.cache import LeakyCache


def tensor_of(cache: LeakyCache):
    return cache.cost_tensor()
