"""Producer half: a cache surface that never freezes its array."""

import numpy as np


class LeakyCache:
    def __init__(self) -> None:
        self._tensor = np.zeros((2, 2))

    def cost_tensor(self):
        # BAD: handed out by reference, never setflags(write=False).
        return self._tensor
