"""A helper two calls below the hook that raises."""

from bad_faultpath.errors import EvacuationError


def relocate(op_id):
    if op_id < 0:
        raise EvacuationError("no surviving home for operator")
