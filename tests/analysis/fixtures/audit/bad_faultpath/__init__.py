"""Fixture: the ``fault-hook-raises`` pass — an escaping exception."""
