"""The fixture program's own exception types."""


class EvacuationError(RuntimeError):
    pass
