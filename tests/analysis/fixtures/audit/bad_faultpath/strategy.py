"""An on_fault hook that lets a helper's exception escape."""

from bad_faultpath.helper import relocate


class PanickyStrategy:
    # BAD: relocate() can raise EvacuationError straight through the
    # engine's fault accounting; only FaultError is sanctioned.
    def on_fault(self, simulator, event):
        relocate(event.node)
