"""A component that stores the caller's generator by reference."""


class NoiseSource:
    def __init__(self, rng):
        # BAD: keeps a live alias of whatever stream the caller owns.
        self.rng = rng
