"""Fixture: the ``shared-rng`` pass's two finding shapes."""
