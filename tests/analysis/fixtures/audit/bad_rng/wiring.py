"""Wiring that feeds one generator to two retaining components."""

from bad_rng.sources import NoiseSource


def build(rng):
    # BAD: both sources draw from the same stream — their sequences
    # interleave depending on call order.
    first = NoiseSource(rng)
    second = NoiseSource(rng)
    return first, second
