"""An on_fault hook that converts everything to FaultError."""

from good_tree.errors import FaultError


class CarefulStrategy:
    def on_fault(self, simulator, event):
        try:
            self._evacuate(event)
        except FaultError:
            raise
        except Exception as exc:
            raise FaultError(str(exc)) from exc

    def _evacuate(self, event):
        if event is None:
            raise ValueError("no event to react to")
