"""Fixture: sanctioned idioms for every audit pass — must stay clean.

The re-export below also exercises resolution of ``from . import``
inside a package ``__init__`` (the anchor is this package, not its
parent).
"""

from .cache import FrozenCache

__all__ = ["FrozenCache"]
