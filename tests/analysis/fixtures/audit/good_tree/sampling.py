"""Per-instance child seeds instead of a shared generator."""


class NoiseChannel:
    def __init__(self, seed):
        self.seed = seed


def build_channels(rng, count):
    # Fine: each channel gets its own integer seed drawn once; no
    # instance retains the caller's generator.
    return [NoiseChannel(int(rng.integers(2**31))) for _ in range(count)]
