"""A cache surface that freezes before handing out."""

import numpy as np


class FrozenCache:
    def __init__(self) -> None:
        tensor = np.zeros((2, 2))
        tensor.setflags(write=False)
        self._tensor = tensor

    def cost_tensor(self):
        return self._tensor
