"""The fixture program's sanctioned hook exception."""


class FaultError(Exception):
    pass
