"""Consumers that copy before writing, nodes that copy on retain."""

from good_tree import FrozenCache


def snapshot(cache: FrozenCache):
    grid = cache.cost_tensor().copy()
    grid[0, 0] = 1.0  # fine: it is a private copy
    return grid


class ReportNode:
    def __init__(self, node_id, table):
        self.node_id = node_id
        self.table = dict(table)  # copy breaks retention


def build_nodes(count):
    shared = {"load": 0.0}
    # Fine: every instance copies, nothing is shared.
    return [ReportNode(i, shared) for i in range(count)]
