"""Known-bad fixture: does not parse — the runner must degrade to a
single syntax-error diagnostic instead of crashing."""


def broken(:
    return None
