"""Engine-level tests: scope handling, rule resolution, reporting,
and the tree-is-clean gate itself."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import LintRunner, lint_paths, render_json, render_text
from repro.analysis.rules import default_rules, resolve_rules

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_default_rules_catalog() -> None:
    rules = default_rules()
    assert [rule.name for rule in rules] == [
        "no-unseeded-rng",
        "no-wallclock",
        "no-float-eq",
        "no-cached-tensor-mutation",
        "no-mutable-default",
        "no-module-mutable-state",
    ]
    for rule in rules:
        assert rule.description


def test_resolve_rules_drops_and_validates() -> None:
    rules = resolve_rules(default_rules(), ["no-float-eq"])
    assert "no-float-eq" not in {rule.name for rule in rules}
    with pytest.raises(ValueError, match="unknown rule"):
        resolve_rules(default_rules(), ["not-a-rule"])


def test_scopes_respected_for_out_of_scope_files(tmp_path: Path) -> None:
    """The same violation is flagged inside a rule's scope and ignored
    outside it when scopes are respected."""
    inside = tmp_path / "src" / "repro" / "engine" / "mod.py"
    outside = tmp_path / "scripts" / "mod.py"
    for target in (inside, outside):
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text("import random\n")
    report = LintRunner(root=tmp_path).run([tmp_path])
    assert {d.rule for d in report.diagnostics} == {"no-unseeded-rng"}
    assert {d.path for d in report.diagnostics} == {"src/repro/engine/mod.py"}


def test_allowlisted_file_is_exempt(tmp_path: Path) -> None:
    rng_home = tmp_path / "src" / "repro" / "util" / "rng.py"
    rng_home.parent.mkdir(parents=True)
    rng_home.write_text("import random\n")
    report = LintRunner(root=tmp_path).run([tmp_path])
    assert report.diagnostics == []


def test_hidden_and_pycache_dirs_skipped(tmp_path: Path) -> None:
    for sub in (".hidden", "__pycache__"):
        bad = tmp_path / sub / "mod.py"
        bad.parent.mkdir()
        bad.write_text("import random\n")
    runner = LintRunner(respect_scopes=False, root=tmp_path)
    assert runner.run([tmp_path]).files_checked == 0


def test_report_renderers_and_exit_code(tmp_path: Path) -> None:
    target = tmp_path / "mod.py"
    target.write_text("import random\n")
    report = LintRunner(respect_scopes=False, root=tmp_path).run([tmp_path])
    assert report.exit_code == 1
    text = render_text(report)
    assert "mod.py:1:1" in text
    assert "no-unseeded-rng" in text
    payload = json.loads(render_json(report))
    assert payload["files_checked"] == 1
    assert payload["counts"] == {"no-unseeded-rng": 1}
    (diagnostic,) = payload["diagnostics"]
    assert diagnostic["rule"] == "no-unseeded-rng"
    assert diagnostic["line"] == 1


def test_clean_report_exit_code_zero(tmp_path: Path) -> None:
    (tmp_path / "mod.py").write_text("x = 1\n")
    report = LintRunner(respect_scopes=False, root=tmp_path).run([tmp_path])
    assert report.exit_code == 0
    assert "clean" in render_text(report)


def test_repo_tree_is_lint_clean() -> None:
    """The acceptance gate: the shipped tree has zero findings."""
    report = lint_paths([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)
    assert report.files_checked > 50
    offenders = [d.location() + f" {d.rule}" for d in report.diagnostics]
    assert offenders == []
