"""Unit tests for the whole-program graph substrate."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.graph import (
    NAME_FALLBACK_LIMIT,
    ClassInfo,
    FunctionInfo,
    ProgramGraph,
    build_graph,
    module_name_for,
)


def make_graph(tmp_path: Path, files: dict[str, str]) -> ProgramGraph:
    rows = []
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        rows.append((path, relpath, ast.parse(source), source))
    return build_graph(rows, tmp_path)


class TestModuleNames:
    def test_src_prefix_dropped(self, tmp_path: Path) -> None:
        path = tmp_path / "src" / "repro" / "engine" / "node.py"
        assert module_name_for(path, tmp_path) == "repro.engine.node"

    def test_package_init_is_the_package(self, tmp_path: Path) -> None:
        path = tmp_path / "pkg" / "sub" / "__init__.py"
        assert module_name_for(path, tmp_path) == "pkg.sub"


class TestBindings:
    def test_absolute_and_aliased_imports(self, tmp_path: Path) -> None:
        graph = make_graph(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "from pkg.other import Thing as Alias\n"
                ),
            },
        )
        bindings = graph.modules["mod"].bindings
        assert bindings["np"] == "numpy"
        assert bindings["Alias"] == "pkg.other.Thing"

    def test_relative_import_from_sibling(self, tmp_path: Path) -> None:
        graph = make_graph(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": "from .b import helper\n",
                "pkg/b.py": "def helper():\n    pass\n",
            },
        )
        assert graph.modules["pkg.a"].bindings["helper"] == "pkg.b.helper"

    def test_relative_import_inside_package_init(self, tmp_path: Path) -> None:
        # ``from .cache import X`` in pkg/__init__.py anchors at pkg
        # itself, not at pkg's parent.
        graph = make_graph(
            tmp_path,
            {
                "pkg/__init__.py": "from .cache import Cache\n",
                "pkg/cache.py": "class Cache:\n    pass\n",
            },
        )
        assert graph.modules["pkg"].bindings["Cache"] == "pkg.cache.Cache"

    def test_resolve_through_package_reexport(self, tmp_path: Path) -> None:
        graph = make_graph(
            tmp_path,
            {
                "pkg/__init__.py": "from .cache import Cache\n",
                "pkg/cache.py": "class Cache:\n    pass\n",
                "user.py": "from pkg import Cache\n",
            },
        )
        canonical = graph.modules["user"].bindings["Cache"]
        assert canonical == "pkg.Cache"
        assert graph.resolve(canonical) == "pkg.cache.Cache"
        assert graph.resolve(canonical) in graph.classes


class TestSymbolIndex:
    def test_attr_type_inference_from_ctor(self, tmp_path: Path) -> None:
        graph = make_graph(
            tmp_path,
            {
                "mod.py": (
                    "class Loop:\n"
                    "    def run(self):\n"
                    "        pass\n"
                    "\n"
                    "class Engine:\n"
                    "    def __init__(self):\n"
                    "        self._loop = Loop()\n"
                ),
            },
        )
        engine = graph.classes["mod.Engine"]
        assert engine.attr_types["_loop"] == "mod.Loop"

    def test_dataclass_init_params(self, tmp_path: Path) -> None:
        graph = make_graph(
            tmp_path,
            {
                "mod.py": (
                    "from dataclasses import dataclass\n"
                    "\n"
                    "@dataclass\n"
                    "class Row:\n"
                    "    key: int\n"
                    "    value: float = 0.0\n"
                ),
            },
        )
        row = graph.classes["mod.Row"]
        assert row.is_dataclass
        assert row.init_params() == ["key", "value"]

    def test_method_on_walks_program_bases(self, tmp_path: Path) -> None:
        graph = make_graph(
            tmp_path,
            {
                "base.py": "class Base:\n    def shared(self):\n        pass\n",
                "child.py": (
                    "from base import Base\n"
                    "\n"
                    "class Child(Base):\n"
                    "    pass\n"
                ),
            },
        )
        child = graph.classes["child.Child"]
        method = graph.method_on(child, "shared")
        assert method is not None
        assert method.qualname == "base.Base.shared"
        assert graph.inherits_from(child, "Base")


class TestCallResolution:
    def _calls_of(self, graph: ProgramGraph, qualname: str):
        return list(graph.resolved_calls(graph.functions[qualname]))

    def test_imported_function_call(self, tmp_path: Path) -> None:
        graph = make_graph(
            tmp_path,
            {
                "lib.py": "def helper():\n    pass\n",
                "app.py": (
                    "from lib import helper\n"
                    "\n"
                    "def run():\n"
                    "    helper()\n"
                ),
            },
        )
        (site,) = self._calls_of(graph, "app.run")
        (target,) = site.targets
        assert isinstance(target, FunctionInfo)
        assert target.qualname == "lib.helper"
        assert not site.via_fallback

    def test_method_call_via_annotation(self, tmp_path: Path) -> None:
        graph = make_graph(
            tmp_path,
            {
                "svc.py": "class Service:\n    def ping(self):\n        pass\n",
                "app.py": (
                    "from svc import Service\n"
                    "\n"
                    "def run(s: Service):\n"
                    "    s.ping()\n"
                ),
            },
        )
        (site,) = self._calls_of(graph, "app.run")
        (target,) = site.targets
        assert target.qualname == "svc.Service.ping"

    def test_self_attr_call_via_inferred_type(self, tmp_path: Path) -> None:
        graph = make_graph(
            tmp_path,
            {
                "mod.py": (
                    "class Loop:\n"
                    "    def run(self):\n"
                    "        pass\n"
                    "\n"
                    "class Engine:\n"
                    "    def __init__(self):\n"
                    "        self._loop = Loop()\n"
                    "    def start(self):\n"
                    "        self._loop.run()\n"
                ),
            },
        )
        sites = self._calls_of(graph, "mod.Engine.start")
        (site,) = sites
        (target,) = site.targets
        assert target.qualname == "mod.Loop.run"

    def test_constructor_call_targets_class(self, tmp_path: Path) -> None:
        graph = make_graph(
            tmp_path,
            {
                "mod.py": (
                    "class Widget:\n"
                    "    def __init__(self):\n"
                    "        pass\n"
                    "\n"
                    "def build():\n"
                    "    return Widget()\n"
                ),
            },
        )
        (site,) = self._calls_of(graph, "mod.build")
        (target,) = site.targets
        assert isinstance(target, ClassInfo)
        assert target.qualname == "mod.Widget"

    def test_name_fallback_for_untyped_receiver(self, tmp_path: Path) -> None:
        graph = make_graph(
            tmp_path,
            {
                "mod.py": (
                    "class Only:\n"
                    "    def frobnicate(self):\n"
                    "        pass\n"
                    "\n"
                    "def run(thing):\n"
                    "    thing.frobnicate()\n"
                ),
            },
        )
        (site,) = self._calls_of(graph, "mod.run")
        assert site.via_fallback
        (target,) = site.targets
        assert target.qualname == "mod.Only.frobnicate"

    def test_name_fallback_capped(self, tmp_path: Path) -> None:
        classes = "\n".join(
            f"class C{i}:\n    def common(self):\n        pass\n"
            for i in range(NAME_FALLBACK_LIMIT + 1)
        )
        graph = make_graph(
            tmp_path,
            {"mod.py": classes + "\ndef run(x):\n    x.common()\n"},
        )
        assert self._calls_of(graph, "mod.run") == []

    def test_external_calls_make_no_edges(self, tmp_path: Path) -> None:
        graph = make_graph(
            tmp_path,
            {
                "mod.py": (
                    "import numpy as np\n"
                    "\n"
                    "def run():\n"
                    "    return np.zeros(3)\n"
                ),
            },
        )
        assert self._calls_of(graph, "mod.run") == []
