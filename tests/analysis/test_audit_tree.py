"""Whole-tree audit gates: the real program is clean, and stays honest.

The mutation-style test guards against the audit going blind: it takes
the real ``cost_tensor.py``, *disables* its freezes (``write=False`` →
``write=True``), and demands the producer check notice.  If a refactor
ever made the tensor-escape pass vacuous, this test — not production —
is where it shows.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import AuditRunner, audit_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_real_tree_audits_clean() -> None:
    report = audit_paths([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)
    assert report.exit_code == 0, [
        f"{d.path}:{d.line}: [{d.rule}] {d.message}" for d in report.diagnostics
    ]
    assert report.files_checked > 50


def test_unfrozen_cost_tensor_is_caught(tmp_path: Path) -> None:
    original = (
        REPO_ROOT / "src" / "repro" / "core" / "cost_tensor.py"
    ).read_text(encoding="utf-8")
    assert "write=False" in original  # the real file does freeze
    mutated = original.replace("write=False", "write=True")
    target = tmp_path / "cost_tensor.py"
    target.write_text(mutated, encoding="utf-8")
    runner = AuditRunner(respect_scopes=False, root=tmp_path)
    report = runner.run([target])
    assert report.exit_code == 1
    assert {d.rule for d in report.diagnostics} == {"tensor-escape"}
    assert any("never frozen" in d.message for d in report.diagnostics)
