"""Tests for statistics estimation from samples."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import (
    calibrate_workload,
    estimate_from_samples,
    uncertainty_level_for,
)
from repro.workloads import RegimeSwitchSelectivity, Workload, build_q1


class TestUncertaintyLevel:
    def test_zero_std_is_exact(self):
        assert uncertainty_level_for(0.5, 0.0) == 0

    def test_level_covers_requested_sigmas(self):
        # mean 0.5, std 0.05 → 2σ = 0.1 → need 0.1·u·0.5 ≥ 0.1 → u = 2.
        assert uncertainty_level_for(0.5, 0.05) == 2

    def test_tiny_variation_gets_level_one(self):
        assert uncertainty_level_for(1.0, 0.001) == 1

    def test_clamped_at_max(self):
        assert uncertainty_level_for(0.5, 10.0, max_level=5) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            uncertainty_level_for(0.0, 0.1)
        with pytest.raises(ValueError):
            uncertainty_level_for(0.5, -0.1)


class TestEstimateFromSamples:
    def test_mean_is_point_estimate(self):
        est = estimate_from_samples({"sel:0": [0.4, 0.6]})
        assert est.estimates["sel:0"] == pytest.approx(0.5)

    def test_constant_samples_are_exact(self):
        est = estimate_from_samples({"sel:0": [0.5, 0.5, 0.5]})
        assert est.uncertainty.get("sel:0", 0) == 0

    def test_single_sample_treated_exact(self):
        est = estimate_from_samples({"rate": [100.0]})
        assert est.uncertainty == {}

    def test_fluctuating_samples_get_levels(self):
        rng = np.random.default_rng(5)
        noisy = (0.5 * (1 + 0.2 * rng.uniform(-1, 1, size=500))).tolist()
        est = estimate_from_samples({"sel:0": noisy})
        assert est.uncertainty["sel:0"] >= 2

    def test_validation(self):
        with pytest.raises(ValueError, match="not be empty"):
            estimate_from_samples({})
        with pytest.raises(ValueError, match="no samples"):
            estimate_from_samples({"x": []})
        with pytest.raises(ValueError, match="non-positive"):
            estimate_from_samples({"x": [1.0, -2.0]})

    @settings(max_examples=25)
    @given(
        mean=st.floats(0.1, 10.0),
        spread=st.floats(0.0, 0.4),
    )
    def test_band_covers_two_sigma_property(self, mean, spread):
        """Property: the derived level's band covers ≥ 2 sample σ."""
        rng = np.random.default_rng(11)
        samples = mean * (1 + spread * rng.uniform(-1, 1, size=400))
        est = estimate_from_samples({"x": samples.tolist()})
        level = est.uncertainty.get("x", 0)
        if level in (0, 5):
            return  # exact or clamped: the guarantee doesn't apply
        e = est.estimates["x"]
        band = 0.1 * level * e
        assert band >= 2.0 * float(samples.std(ddof=1)) - 1e-9


class TestCalibrateWorkload:
    def test_recovers_fluctuation_levels(self, three_op_query):
        levels = {op.op_id: 3 for op in three_op_query.operators}
        workload = Workload(
            three_op_query,
            selectivity_profile=RegimeSwitchSelectivity(levels, period=10.0),
        )
        est = calibrate_workload(workload, duration=100.0, n_samples=400)
        # A ±30% sinusoid has σ ≈ 0.3/√2 ≈ 0.21 of the mean → 2σ ≈ 0.42
        # of the mean → level ≈ 5 (clamped).
        for op in three_op_query.operators:
            assert est.uncertainty.get(op.selectivity_param, 0) >= 3

    def test_constant_workload_is_exact(self, three_op_query):
        workload = Workload(three_op_query)
        est = calibrate_workload(workload, duration=50.0)
        assert not est.uncertain_parameters()

    def test_estimates_near_defaults(self, three_op_query):
        workload = Workload(three_op_query)
        est = calibrate_workload(workload, duration=50.0)
        assert est.estimates["sel:0"] == pytest.approx(0.6)
        assert est.estimates["rate"] == pytest.approx(100.0)

    def test_feeds_rld_compile(self, three_op_query):
        """Calibration output plugs straight into the optimizer."""
        from repro.core import Cluster, RLDOptimizer

        levels = {op.op_id: 2 for op in three_op_query.operators}
        workload = Workload(
            three_op_query,
            selectivity_profile=RegimeSwitchSelectivity(levels, period=10.0),
        )
        est = calibrate_workload(workload, duration=60.0)
        solution = RLDOptimizer(
            three_op_query, Cluster.homogeneous(3, 500.0)
        ).solve(est)
        assert solution.feasible

    def test_validation(self, three_op_query):
        workload = Workload(three_op_query)
        with pytest.raises(ValueError):
            calibrate_workload(workload, duration=0.0)
        with pytest.raises(ValueError):
            calibrate_workload(workload, duration=10.0, n_samples=1)
