"""Tests for the plan cost model and cost-surface fitting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import (
    LogicalPlan,
    Operator,
    PlanCostModel,
    Query,
    StatPoint,
    StreamSchema,
    fit_cost_surface,
    multilinear_features,
)
from repro.query.cost import surface_for_plan


@pytest.fixture
def model(three_op_query) -> PlanCostModel:
    return PlanCostModel(three_op_query)


class TestPlanCost:
    def test_hand_computed_cost(self, model):
        # Plan op0->op1->op2 at defaults: rate=100, c=(3,2,1), σ=(0.6,0.5,0.4)
        # cost = 100·(3 + 0.6·2 + 0.6·0.5·1) = 100·4.5 = 450
        plan = LogicalPlan((0, 1, 2))
        assert model.plan_cost(plan, {}) == pytest.approx(450.0)

    def test_point_overrides_defaults(self, model):
        plan = LogicalPlan((0, 1, 2))
        cost = model.plan_cost(plan, StatPoint({"sel:0": 1.0, "rate": 10.0}))
        # 10·(3 + 1·2 + 1·0.5·1) = 55
        assert cost == pytest.approx(55.0)

    def test_cheaper_to_run_selective_cheap_op_first(self, model):
        # op2 (c=1, σ=0.4) first beats op0 (c=3, σ=0.6) first.
        point = {}
        assert model.plan_cost(LogicalPlan((2, 1, 0)), point) < model.plan_cost(
            LogicalPlan((0, 1, 2)), point
        )

    def test_operator_load_decomposition(self, model):
        plan = LogicalPlan((2, 1, 0))
        point = StatPoint({"rate": 100.0})
        loads = model.operator_loads(plan, point)
        assert sum(loads.values()) == pytest.approx(model.plan_cost(plan, point))
        assert model.operator_load(plan, 0, point) == pytest.approx(loads[0])

    def test_first_operator_load_is_rate_times_cost(self, model):
        plan = LogicalPlan((1, 0, 2))
        load = model.operator_load(plan, 1, StatPoint({"rate": 50.0}))
        assert load == pytest.approx(50.0 * 2.0)

    def test_cost_monotone_in_each_dimension(self, model):
        # §4.2 Principle 1: cost increases along each dimension.
        plan = LogicalPlan((0, 1, 2))
        base = StatPoint({"sel:0": 0.5, "sel:1": 0.5, "rate": 100.0})
        c0 = model.plan_cost(plan, base)
        assert model.plan_cost(plan, base.replacing(sel__0=0.6)) > c0
        assert model.plan_cost(plan, base.replacing(sel__1=0.6)) > c0
        assert model.plan_cost(plan, base.replacing(rate=120.0)) > c0


class TestGradient:
    def test_gradient_matches_finite_differences(self, model):
        plan = LogicalPlan((0, 1, 2))
        point = StatPoint({"sel:0": 0.5, "sel:2": 0.7, "rate": 90.0})
        grads = model.gradient(plan, point)
        h = 1e-6
        for name in point:
            bumped = point.updated({name: point[name] + h})
            fd = (model.plan_cost(plan, bumped) - model.plan_cost(plan, point)) / h
            assert grads[name] == pytest.approx(fd, rel=1e-4), name

    def test_gradient_only_for_present_params(self, model):
        plan = LogicalPlan((0, 1, 2))
        grads = model.gradient(plan, StatPoint({"sel:1": 0.5}))
        assert set(grads) == {"sel:1"}

    def test_last_operator_selectivity_has_zero_gradient(self, model):
        # σ of the last operator never multiplies any cost term.
        plan = LogicalPlan((0, 1, 2))
        grads = model.gradient(plan, StatPoint({"sel:2": 0.4}))
        assert grads["sel:2"] == pytest.approx(0.0)

    def test_slope_is_gradient_norm(self, model):
        plan = LogicalPlan((0, 1, 2))
        point = StatPoint({"sel:0": 0.5, "sel:1": 0.6})
        grads = model.gradient(plan, point)
        expected = np.sqrt(sum(g * g for g in grads.values()))
        assert model.slope(plan, point) == pytest.approx(expected)


class TestMultilinearFeatures:
    def test_two_dims(self):
        feats = multilinear_features([2.0, 3.0])
        assert feats.tolist() == [1.0, 2.0, 3.0, 6.0]

    def test_feature_count_is_power_of_two(self):
        assert len(multilinear_features([1.0] * 4)) == 16

    def test_zero_dims(self):
        assert multilinear_features([]).tolist() == [1.0]


class TestSurfaceFitting:
    def test_exact_fit_of_multilinear_cost(self, model, three_op_query):
        plan = LogicalPlan((0, 1, 2))
        dims = ("sel:0", "sel:1")
        grid = [
            StatPoint({"sel:0": a, "sel:1": b})
            for a in (0.3, 0.5, 0.7)
            for b in (0.2, 0.5, 0.8)
        ]
        surface = surface_for_plan(model, plan, dims, grid)
        probe = StatPoint({"sel:0": 0.44, "sel:1": 0.61})
        assert surface.evaluate(probe) == pytest.approx(
            model.plan_cost(plan, probe), rel=1e-9
        )

    def test_surface_gradient_matches_model(self, model):
        plan = LogicalPlan((2, 1, 0))
        dims = ("sel:1", "sel:2")
        grid = [
            StatPoint({"sel:1": a, "sel:2": b})
            for a in (0.3, 0.6)
            for b in (0.3, 0.6)
        ]
        surface = surface_for_plan(model, plan, dims, grid)
        probe = StatPoint({"sel:1": 0.5, "sel:2": 0.5})
        model_grads = model.gradient(plan, probe)
        surface_grads = surface.gradient(probe)
        for name in dims:
            assert surface_grads[name] == pytest.approx(model_grads[name], rel=1e-9)

    def test_underdetermined_fit_rejected(self):
        with pytest.raises(ValueError, match="at least 4 samples"):
            fit_cost_surface(("a", "b"), [{"a": 1.0, "b": 1.0}], [1.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="lengths differ"):
            fit_cost_surface(("a",), [{"a": 1.0}, {"a": 2.0}], [1.0])

    def test_wrong_coefficient_count_rejected(self):
        from repro.query.cost import PlanCostSurface

        with pytest.raises(ValueError, match="need 4 coefficients"):
            PlanCostSurface(("a", "b"), np.ones(3))


@settings(max_examples=30)
@given(
    costs=st.lists(st.floats(0.1, 5.0), min_size=2, max_size=5),
    sels=st.data(),
)
def test_plan_cost_invariant_total_equals_load_sum(costs, sels):
    """Property: Σ operator loads == plan cost for any pipeline."""
    n = len(costs)
    selectivities = [
        sels.draw(st.floats(0.05, 2.0), label=f"sel{i}") for i in range(n)
    ]
    ops = tuple(
        Operator(i, f"op{i}", costs[i], selectivities[i]) for i in range(n)
    )
    q = Query("prop", ops, (StreamSchema("S", base_rate=10.0),))
    model = PlanCostModel(q)
    plan = LogicalPlan(tuple(range(n)))
    point = q.estimate_point()
    loads = model.operator_loads(plan, point)
    assert sum(loads.values()) == pytest.approx(model.plan_cost(plan, point), rel=1e-9)
