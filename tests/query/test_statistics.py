"""Tests for statistics naming, points, and estimates."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.query import StatisticsEstimate, StatPoint, rate_param, selectivity_param
from repro.query.statistics import UNCERTAINTY_UNIT_STEP


class TestParamNames:
    def test_selectivity_param(self):
        assert selectivity_param(3) == "sel:3"

    def test_rate_param_default(self):
        assert rate_param() == "rate"

    def test_rate_param_stream(self):
        assert rate_param("News") == "rate:News"


class TestStatPoint:
    def test_mapping_protocol(self):
        point = StatPoint({"sel:0": 0.4, "rate": 100.0})
        assert point["sel:0"] == 0.4
        assert len(point) == 2
        assert set(point) == {"sel:0", "rate"}

    def test_equality_and_hash(self):
        a = StatPoint({"sel:0": 0.4})
        b = StatPoint({"sel:0": 0.4})
        assert a == b
        assert hash(a) == hash(b)

    def test_equality_against_plain_mapping(self):
        assert StatPoint({"rate": 1.0}) == {"rate": 1.0}

    def test_replacing_uses_dunder_colon_convention(self):
        point = StatPoint({"sel:0": 0.4, "rate": 100.0})
        replaced = point.replacing(sel__0=0.5)
        assert replaced["sel:0"] == 0.5
        assert point["sel:0"] == 0.4  # original untouched

    def test_updated_merges(self):
        point = StatPoint({"rate": 100.0})
        merged = point.updated({"sel:1": 0.7})
        assert merged["sel:1"] == 0.7
        assert merged["rate"] == 100.0

    def test_immutable(self):
        point = StatPoint({"rate": 100.0})
        with pytest.raises(TypeError):
            point._values["rate"] = 5.0  # type: ignore[index]


class TestStatisticsEstimate:
    def test_bounds_follow_algorithm_1(self):
        est = StatisticsEstimate({"sel:1": 0.4, "rate": 100.0}, {"sel:1": 2, "rate": 2})
        lo, hi = est.bounds("sel:1")
        assert lo == pytest.approx(0.32)
        assert hi == pytest.approx(0.48)
        lo, hi = est.bounds("rate")
        assert lo == pytest.approx(80.0)
        assert hi == pytest.approx(120.0)

    def test_exact_parameter_has_degenerate_bounds(self):
        est = StatisticsEstimate({"sel:0": 0.5})
        assert est.bounds("sel:0") == (0.5, 0.5)

    def test_uncertain_parameters_sorted_and_filtered(self):
        est = StatisticsEstimate(
            {"sel:2": 0.5, "sel:0": 0.4, "rate": 10.0},
            {"sel:2": 1, "sel:0": 2, "rate": 0},
        )
        assert est.uncertain_parameters() == ("sel:0", "sel:2")

    def test_unknown_uncertainty_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            StatisticsEstimate({"sel:0": 0.4}, {"sel:9": 1})

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError, match="non-negative int"):
            StatisticsEstimate({"sel:0": 0.4}, {"sel:0": -1})

    def test_non_positive_estimate_rejected(self):
        with pytest.raises(ValueError, match="must be > 0"):
            StatisticsEstimate({"sel:0": 0.0})

    def test_with_uncertainty_returns_updated_copy(self):
        est = StatisticsEstimate({"sel:0": 0.4, "rate": 10.0})
        updated = est.with_uncertainty(sel__0=3, rate=1)
        assert updated.uncertainty["sel:0"] == 3
        assert updated.uncertainty["rate"] == 1
        assert not est.uncertainty

    def test_point_property(self):
        est = StatisticsEstimate({"sel:0": 0.4})
        assert est.point == StatPoint({"sel:0": 0.4})

    @given(
        value=st.floats(min_value=1e-3, max_value=1e6),
        level=st.integers(min_value=0, max_value=9),
    )
    def test_bounds_symmetric_and_ordered(self, value, level):
        est = StatisticsEstimate({"x": value}, {"x": level})
        lo, hi = est.bounds("x")
        assert lo <= value <= hi
        width = UNCERTAINTY_UNIT_STEP * level * value
        assert hi - value == pytest.approx(width, rel=1e-9)
        assert value - lo == pytest.approx(width, rel=1e-9)
