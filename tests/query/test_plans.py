"""Tests for logical plans and plan enumeration."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.query import JoinGraph, LogicalPlan, Operator, Query, enumerate_plans, is_valid_order
from repro.query.plans import count_valid_orders


def _chain_query(n: int) -> Query:
    ops = tuple(Operator(i, f"op{i}", 1.0, 0.5) for i in range(n))
    return Query(f"chain{n}", ops, join_graph=JoinGraph.chain(range(n)))


class TestLogicalPlan:
    def test_label(self):
        assert LogicalPlan((2, 0, 1)).label == "op2->op0->op1"

    def test_position_and_prefix(self):
        plan = LogicalPlan((2, 0, 1))
        assert plan.position(0) == 1
        assert plan.prefix_before(1) == (2, 0)
        with pytest.raises(KeyError):
            plan.position(9)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicates"):
            LogicalPlan((0, 0, 1))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            LogicalPlan(())

    def test_value_semantics(self):
        assert LogicalPlan((0, 1)) == LogicalPlan((0, 1))
        assert hash(LogicalPlan((0, 1))) == hash(LogicalPlan((0, 1)))
        assert LogicalPlan((0, 1)) < LogicalPlan((1, 0))

    def test_iteration(self):
        assert list(LogicalPlan((2, 1, 0))) == [2, 1, 0]


class TestValidity:
    def test_unconstrained_accepts_all_permutations(self, three_op_query):
        assert is_valid_order(three_op_query, (2, 0, 1))
        assert is_valid_order(three_op_query, (0, 1, 2))

    def test_non_permutations_rejected(self, three_op_query):
        assert not is_valid_order(three_op_query, (0, 1))
        assert not is_valid_order(three_op_query, (0, 1, 1))
        assert not is_valid_order(three_op_query, (0, 1, 5))

    def test_chain_validity(self):
        q = _chain_query(4)
        assert is_valid_order(q, (1, 2, 0, 3))
        assert is_valid_order(q, (0, 1, 2, 3))
        assert not is_valid_order(q, (0, 2, 1, 3))  # 2 not adjacent to {0}


class TestEnumeration:
    def test_unconstrained_counts_factorial(self, three_op_query):
        plans = list(enumerate_plans(three_op_query))
        assert len(plans) == math.factorial(3)
        assert len(set(plans)) == len(plans)

    def test_limit(self, three_op_query):
        assert len(list(enumerate_plans(three_op_query, limit=4))) == 4

    def test_lexicographic_order(self, three_op_query):
        plans = list(enumerate_plans(three_op_query))
        assert plans == sorted(plans)

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_chain_counts(self, n):
        # A chain of n operators admits 2^(n-1) connected orderings.
        q = _chain_query(n)
        assert count_valid_orders(q) == 2 ** (n - 1)

    def test_all_enumerated_chain_plans_valid(self):
        q = _chain_query(5)
        for plan in enumerate_plans(q):
            assert is_valid_order(q, plan.order)

    def test_constrained_limit(self):
        q = _chain_query(6)
        assert len(list(enumerate_plans(q, limit=3))) == 3

    @given(st.integers(min_value=1, max_value=6))
    def test_enumeration_unique_and_complete(self, n):
        ops = tuple(Operator(i, f"op{i}", 1.0, 0.5) for i in range(n))
        q = Query("anon", ops)
        plans = list(enumerate_plans(q))
        assert len(plans) == math.factorial(n)
        assert len(set(plans)) == len(plans)
