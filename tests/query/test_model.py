"""Tests for streams, operators, join graphs, and queries."""

from __future__ import annotations

import pytest

from repro.query import JoinGraph, Operator, Query, StreamSchema


class TestStreamSchema:
    def test_valid(self):
        s = StreamSchema("Stocks", ("symbol",), base_rate=50.0)
        assert s.name == "Stocks"
        assert s.base_rate == 50.0

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="stream name"):
            StreamSchema("")

    def test_non_positive_rate_rejected(self):
        with pytest.raises(ValueError, match="base_rate"):
            StreamSchema("S", base_rate=0.0)


class TestOperator:
    def test_selectivity_param(self):
        op = Operator(3, "op3", 1.0, 0.5)
        assert op.selectivity_param == "sel:3"

    def test_join_fanout_selectivity_allowed(self):
        op = Operator(0, "join", 1.0, 2.5)
        assert op.selectivity == 2.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"op_id": -1, "name": "x", "cost_per_tuple": 1.0, "selectivity": 0.5},
            {"op_id": 0, "name": "x", "cost_per_tuple": 0.0, "selectivity": 0.5},
            {"op_id": 0, "name": "x", "cost_per_tuple": 1.0, "selectivity": 0.0},
            {"op_id": 0, "name": "x", "cost_per_tuple": 1.0, "selectivity": 0.5, "state_size": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Operator(**kwargs)


class TestJoinGraph:
    def test_unconstrained_allows_anything(self):
        graph = JoinGraph()
        assert graph.is_unconstrained
        assert graph.allows_after(5, [1, 2])

    def test_chain_constrains_order(self):
        graph = JoinGraph.chain([0, 1, 2, 3])
        assert graph.allows_after(1, [0])
        assert not graph.allows_after(3, [0, 1])
        assert graph.allows_after(3, [0, 1, 2])

    def test_star(self):
        graph = JoinGraph.star(0, [1, 2, 3])
        assert graph.allows_after(2, [0])
        assert not graph.allows_after(2, [1, 3])

    def test_first_operator_always_allowed(self):
        graph = JoinGraph.chain([0, 1, 2])
        assert graph.allows_after(2, [])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            JoinGraph([(1, 1)])

    def test_neighbors(self):
        graph = JoinGraph([(0, 1), (1, 2)])
        assert graph.neighbors(1) == {0, 2}
        assert graph.neighbors(9) == frozenset()


class TestQuery:
    def test_operator_lookup(self, three_op_query: Query):
        assert three_op_query.operator(1).name == "op2"
        with pytest.raises(KeyError):
            three_op_query.operator(99)

    def test_len_and_ids(self, three_op_query: Query):
        assert len(three_op_query) == 3
        assert three_op_query.operator_ids == (0, 1, 2)

    def test_duplicate_ids_rejected(self):
        ops = (
            Operator(0, "a", 1.0, 0.5),
            Operator(0, "b", 1.0, 0.5),
        )
        with pytest.raises(ValueError, match="duplicate operator ids"):
            Query("bad", ops)

    def test_empty_operators_rejected(self):
        with pytest.raises(ValueError, match="operators"):
            Query("empty", ())

    def test_driving_rate_from_first_stream(self, three_op_query: Query):
        assert three_op_query.driving_rate == 100.0

    def test_driving_rate_default_without_streams(self):
        q = Query("nostreams", (Operator(0, "a", 1.0, 0.5),))
        assert q.driving_rate == 100.0

    def test_default_estimates_cover_all_stats(self, three_op_query: Query):
        est = three_op_query.default_estimates({"sel:0": 2})
        assert est.estimates["rate"] == 100.0
        assert est.estimates["sel:1"] == 0.5
        assert est.uncertainty == {"sel:0": 2}

    def test_estimate_point(self, three_op_query: Query):
        point = three_op_query.estimate_point()
        assert point["sel:2"] == 0.4
        assert point["rate"] == 100.0
