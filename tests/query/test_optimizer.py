"""Tests for the plan-at-a-point optimizers (rank, DP, exhaustive)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import (
    DPOptimizer,
    ExhaustiveOrderOptimizer,
    JoinGraph,
    Operator,
    Query,
    RankOrderOptimizer,
    StatPoint,
    StreamSchema,
    make_optimizer,
)


def _query(costs, sels, graph=None) -> Query:
    ops = tuple(
        Operator(i, f"op{i}", float(c), float(s))
        for i, (c, s) in enumerate(zip(costs, sels))
    )
    return Query(
        "t", ops, (StreamSchema("S", base_rate=100.0),), join_graph=graph or JoinGraph()
    )


class TestCallAccounting:
    def test_calls_counted_and_resettable(self, three_op_query):
        opt = make_optimizer(three_op_query)
        assert opt.call_count == 0
        opt.optimize(three_op_query.estimate_point())
        opt.optimize(three_op_query.estimate_point())
        assert opt.call_count == 2
        opt.reset_calls()
        assert opt.call_count == 0

    def test_plan_cost_not_counted(self, three_op_query):
        opt = make_optimizer(three_op_query)
        plan = opt.optimize(three_op_query.estimate_point())
        opt.plan_cost(plan, three_op_query.estimate_point())
        assert opt.call_count == 1

    def test_memoized_calls_still_counted(self, three_op_query):
        opt = RankOrderOptimizer(three_op_query, memoize=True)
        point = three_op_query.estimate_point()
        a = opt.optimize(point)
        b = opt.optimize(point)
        assert a == b
        assert opt.call_count == 2


class TestRankOrder:
    def test_matches_exhaustive_on_fixture(self, three_op_query):
        point = three_op_query.estimate_point()
        rank = RankOrderOptimizer(three_op_query).optimize(point)
        brute = ExhaustiveOrderOptimizer(three_op_query).optimize(point)
        assert rank == brute

    def test_selective_cheap_operator_goes_first(self):
        q = _query([1.0, 1.0], [0.1, 0.9])
        plan = RankOrderOptimizer(q).optimize(q.estimate_point())
        assert plan.order == (0, 1)

    def test_rejects_constrained_query(self):
        q = _query([1.0, 1.0], [0.5, 0.5], JoinGraph.chain([0, 1]))
        with pytest.raises(ValueError, match="unconstrained"):
            RankOrderOptimizer(q)

    def test_uses_point_selectivities(self):
        q = _query([1.0, 1.0], [0.1, 0.9])
        # Flip the estimates at the probe point: op1 becomes selective.
        plan = RankOrderOptimizer(q).optimize(
            StatPoint({"sel:0": 0.9, "sel:1": 0.1})
        )
        assert plan.order == (1, 0)


class TestDPOptimizer:
    def test_matches_exhaustive_unconstrained(self, four_op_query):
        point = four_op_query.estimate_point()
        assert DPOptimizer(four_op_query).optimize(point) == ExhaustiveOrderOptimizer(
            four_op_query
        ).optimize(point)

    def test_matches_exhaustive_on_chain(self):
        q = _query([3.0, 1.0, 2.0, 0.5], [0.5, 0.9, 0.3, 0.7], JoinGraph.chain(range(4)))
        point = q.estimate_point()
        dp = DPOptimizer(q).optimize(point)
        brute = ExhaustiveOrderOptimizer(q).optimize(point)
        assert DPOptimizer(q).plan_cost(dp, point) == pytest.approx(
            ExhaustiveOrderOptimizer(q).plan_cost(brute, point)
        )
        assert dp == brute

    def test_chain_result_is_valid(self):
        from repro.query import is_valid_order

        q = _query([1.0] * 5, [0.5] * 5, JoinGraph.chain(range(5)))
        plan = DPOptimizer(q).optimize(q.estimate_point())
        assert is_valid_order(q, plan.order)

    def test_disconnected_graph_raises(self):
        # Edge only between 0-1; operator 2 can never connect... except as
        # first element; but then 0/1 cannot follow 2.  No valid order.
        q = _query([1.0, 1.0, 1.0], [0.5, 0.5, 0.5], JoinGraph([(0, 1)]))
        # Operator 2 is isolated: allows_after(2, placed) is False whenever
        # placed is non-empty, and nothing may follow a lone {2} either.
        with pytest.raises(ValueError, match="no valid complete ordering"):
            DPOptimizer(q).optimize(q.estimate_point())


class TestDeterminism:
    def test_tie_break_is_lexicographic(self):
        # Identical operators: every ordering costs the same; the
        # optimizer must return the identity ordering.
        q = _query([1.0, 1.0, 1.0], [0.5, 0.5, 0.5])
        for optimizer in (RankOrderOptimizer(q), DPOptimizer(q), ExhaustiveOrderOptimizer(q)):
            assert optimizer.optimize(q.estimate_point()).order == (0, 1, 2)


class TestFactory:
    def test_unconstrained_gets_rank(self, three_op_query):
        assert isinstance(make_optimizer(three_op_query), RankOrderOptimizer)

    def test_constrained_gets_dp(self):
        q = _query([1.0, 1.0], [0.5, 0.5], JoinGraph.chain([0, 1]))
        assert isinstance(make_optimizer(q), DPOptimizer)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=6),
    data=st.data(),
)
def test_rank_and_dp_match_exhaustive_property(n, data):
    """Property: all three optimizers agree on unconstrained pipelines."""
    costs = [data.draw(st.floats(0.1, 5.0), label=f"c{i}") for i in range(n)]
    sels = [data.draw(st.floats(0.05, 1.5), label=f"s{i}") for i in range(n)]
    q = _query(costs, sels)
    point = q.estimate_point()
    brute = ExhaustiveOrderOptimizer(q)
    best_cost = brute.plan_cost(brute.optimize(point), point)
    for optimizer in (RankOrderOptimizer(q), DPOptimizer(q)):
        plan = optimizer.optimize(point)
        assert optimizer.plan_cost(plan, point) == pytest.approx(best_cost, rel=1e-9)
