"""Equivalence anchor for the vectorized cost kernels.

The whole vectorized evaluation core (cost tensors, routing tables,
weight batches) is only safe because the batch kernels agree with the
scalar ``plan_cost``/``operator_loads``/``gradient`` path.  These
hypothesis properties pin that equivalence across random queries,
plans, parameter subsets, and evaluation points — and pin it *tightly*:
costs and loads must match bitwise (the kernels replicate the scalar
float-operation order), gradients within 1e-9 relative.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import (
    LogicalPlan,
    Operator,
    PlanCostModel,
    Query,
    StatPoint,
    StreamSchema,
)

#: Plausible statistic ranges per parameter kind.
SEL_RANGE = (0.05, 2.0)
RATE_RANGE = (1.0, 1000.0)


@st.composite
def batch_cases(draw):
    """A random (query, plan, names, points-matrix) evaluation case."""
    n_ops = draw(st.integers(min_value=2, max_value=6))
    operators = tuple(
        Operator(
            op_id=i,
            name=f"op{i}",
            cost_per_tuple=draw(
                st.floats(0.1, 10.0, allow_nan=False, allow_infinity=False)
            ),
            selectivity=draw(
                st.floats(*SEL_RANGE, allow_nan=False, allow_infinity=False)
            ),
        )
        for i in range(n_ops)
    )
    streams = (
        StreamSchema(
            "S",
            (),
            base_rate=draw(
                st.floats(*RATE_RANGE, allow_nan=False, allow_infinity=False)
            ),
        ),
    )
    query = Query("rand", operators, streams)
    plan = LogicalPlan(tuple(draw(st.permutations(range(n_ops)))))
    candidates = [op.selectivity_param for op in operators] + ["rate"]
    names = draw(
        st.lists(
            st.sampled_from(candidates),
            min_size=1,
            max_size=len(candidates),
            unique=True,
        )
    )
    n_points = draw(st.integers(min_value=1, max_value=8))
    rows = []
    for _ in range(n_points):
        row = []
        for name in names:
            lo, hi = RATE_RANGE if name == "rate" else SEL_RANGE
            row.append(
                draw(st.floats(lo, hi, allow_nan=False, allow_infinity=False))
            )
        rows.append(row)
    return query, plan, names, np.array(rows)


def _points(names, matrix):
    """Scalar StatPoints corresponding to the matrix rows."""
    return [
        StatPoint(dict(zip(names, row))) for row in np.asarray(matrix)
    ]


class TestBatchEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(case=batch_cases())
    def test_plan_costs_matches_scalar_bitwise(self, case):
        query, plan, names, matrix = case
        model = PlanCostModel(query)
        batch = model.plan_costs(plan, matrix, names)
        scalar = [model.plan_cost(plan, point) for point in _points(names, matrix)]
        assert batch.shape == (matrix.shape[0],)
        assert np.array_equal(batch, np.array(scalar))

    @settings(max_examples=60, deadline=None)
    @given(case=batch_cases())
    def test_operator_loads_batch_matches_scalar_bitwise(self, case):
        query, plan, names, matrix = case
        model = PlanCostModel(query)
        batch = model.operator_loads_batch(plan, matrix, names)
        assert set(batch) == set(plan)
        for k, point in enumerate(_points(names, matrix)):
            scalar = model.operator_loads(plan, point)
            for op_id, load in scalar.items():
                assert batch[op_id][k] == load

    @settings(max_examples=60, deadline=None)
    @given(case=batch_cases())
    def test_gradients_batch_matches_scalar(self, case):
        query, plan, names, matrix = case
        model = PlanCostModel(query)
        batch = model.gradients_batch(plan, matrix, names)
        assert batch.shape == (matrix.shape[0], len(names))
        for k, point in enumerate(_points(names, matrix)):
            scalar = model.gradient(plan, point)
            for j, name in enumerate(names):
                assert batch[k, j] == pytest.approx(
                    scalar[name], rel=1e-9, abs=1e-12
                ), name

    @settings(max_examples=30, deadline=None)
    @given(case=batch_cases())
    def test_slopes_batch_is_gradient_norm(self, case):
        query, plan, names, matrix = case
        model = PlanCostModel(query)
        grads = model.gradients_batch(plan, matrix, names)
        slopes = model.slopes_batch(plan, matrix, names)
        assert np.allclose(
            slopes, np.sqrt((grads * grads).sum(axis=1)), rtol=1e-12
        )
