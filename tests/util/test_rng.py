"""Tests for seeded randomness plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util import SeedSequenceFactory, derive_rng


class TestDeriveRng:
    def test_int_seed_is_deterministic(self):
        a = derive_rng(123).random(5)
        b = derive_rng(123).random(5)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        assert not np.allclose(derive_rng(1).random(5), derive_rng(2).random(5))

    def test_generator_passthrough(self):
        rng = np.random.default_rng(9)
        assert derive_rng(rng) is rng

    def test_none_returns_generator(self):
        assert isinstance(derive_rng(None), np.random.Generator)

    def test_numpy_integer_seed_accepted(self):
        a = derive_rng(np.int64(7)).random(3)
        b = derive_rng(7).random(3)
        assert np.allclose(a, b)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError, match="expected int seed"):
            derive_rng("not-a-seed")  # type: ignore[arg-type]


class TestSeedSequenceFactory:
    def test_children_are_independent_but_reproducible(self):
        f1 = SeedSequenceFactory(42)
        f2 = SeedSequenceFactory(42)
        a1, b1 = f1.child().random(4), f1.child().random(4)
        a2, b2 = f2.child().random(4), f2.child().random(4)
        assert np.allclose(a1, a2)
        assert np.allclose(b1, b2)
        assert not np.allclose(a1, b1)

    def test_spawn_counter(self):
        factory = SeedSequenceFactory(0)
        assert factory.spawned == 0
        factory.child()
        factory.child()
        assert factory.spawned == 2

    def test_root_entropy_recreates_factory(self):
        factory = SeedSequenceFactory(77)
        clone = SeedSequenceFactory(factory.root_entropy)
        assert np.allclose(factory.child().random(3), clone.child().random(3))
