"""Tests for argument-validation helpers."""

from __future__ import annotations

import pytest

from repro.util import (
    ensure_in_range,
    ensure_non_empty,
    ensure_positive,
    ensure_probability,
)


class TestEnsurePositive:
    def test_accepts_positive(self):
        assert ensure_positive(0.5, "x") == 0.5

    @pytest.mark.parametrize("bad", [0, -1, -0.001])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError, match="x must be > 0"):
            ensure_positive(bad, "x")


class TestEnsureInRange:
    def test_inclusive_bounds(self):
        assert ensure_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert ensure_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_exclusive_bounds_reject_edges(self):
        with pytest.raises(ValueError, match=r"\(0.0, 1.0\)"):
            ensure_in_range(0.0, "x", 0.0, 1.0, inclusive=False)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="x must be in"):
            ensure_in_range(1.5, "x", 0.0, 1.0)


class TestEnsureProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_valid(self, ok):
        assert ensure_probability(ok, "p") == ok

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_invalid(self, bad):
        with pytest.raises(ValueError):
            ensure_probability(bad, "p")


class TestEnsureNonEmpty:
    def test_accepts_non_empty(self):
        assert ensure_non_empty([1], "xs") == [1]

    @pytest.mark.parametrize("empty", [[], (), {}, ""])
    def test_rejects_empty(self, empty):
        with pytest.raises(ValueError, match="xs must not be empty"):
            ensure_non_empty(empty, "xs")
