"""Tests for JSON round-tripping of compiled solutions."""

from __future__ import annotations

import json

import pytest

from repro.core import (
    Cluster,
    RLDConfig,
    RLDOptimizer,
    load_solution,
    save_solution,
    solution_from_dict,
    solution_to_dict,
)
from repro.core.serialize import FORMAT_VERSION
from repro.workloads import build_q1


@pytest.fixture(scope="module")
def solution():
    query = build_q1()
    estimate = query.default_estimates({"sel:1": 3, "sel:3": 3, "rate": 2})
    cluster = Cluster.homogeneous(4, 380.0)
    return RLDOptimizer(query, cluster, config=RLDConfig(epsilon=0.2)).solve(estimate)


class TestDictRoundTrip:
    def test_dict_is_json_compatible(self, solution):
        payload = solution_to_dict(solution)
        text = json.dumps(payload)  # raises on non-primitive content
        assert json.loads(text) == payload

    def test_query_survives(self, solution):
        restored = solution_from_dict(solution_to_dict(solution))
        assert restored.query.name == solution.query.name
        assert restored.query.operator_ids == solution.query.operator_ids
        for op_id in solution.query.operator_ids:
            original = solution.query.operator(op_id)
            loaded = restored.query.operator(op_id)
            assert loaded.cost_per_tuple == original.cost_per_tuple
            assert loaded.selectivity == original.selectivity
            assert loaded.state_size == original.state_size

    def test_space_survives(self, solution):
        restored = solution_from_dict(solution_to_dict(solution))
        assert restored.space.names == solution.space.names
        assert restored.space.shape == solution.space.shape
        for a, b in zip(restored.space.dimensions, solution.space.dimensions):
            assert a.lo == pytest.approx(b.lo)
            assert a.hi == pytest.approx(b.hi)

    def test_plans_weights_and_loads_survive(self, solution):
        restored = solution_from_dict(solution_to_dict(solution))
        assert restored.load_table.plans == solution.load_table.plans
        for i, plan in enumerate(solution.load_table.plans):
            assert restored.load_table.weight_of(plan) == pytest.approx(
                solution.load_table.weight_of(plan)
            )
            for op_id in solution.load_table.operator_ids:
                assert restored.load_table.load(i, op_id) == pytest.approx(
                    solution.load_table.load(i, op_id)
                )

    def test_physical_plan_survives(self, solution):
        restored = solution_from_dict(solution_to_dict(solution))
        assert restored.physical.physical_plan == solution.physical.physical_plan
        assert restored.physical.score == pytest.approx(solution.physical.score)
        assert restored.supported_plans == solution.supported_plans

    def test_partitioning_diagnostics_survive(self, solution):
        restored = solution_from_dict(solution_to_dict(solution))
        assert (
            restored.partitioning.optimizer_calls
            == solution.partitioning.optimizer_calls
        )
        assert restored.logical.discoveries == solution.logical.discoveries

    def test_restored_solution_is_runnable(self, solution):
        # The acid test: a restored solution drives the runtime strategy.
        from repro.engine import StreamSimulator
        from repro.runtime import RLDStrategy
        from repro.workloads import stock_workload

        restored = solution_from_dict(solution_to_dict(solution))
        strategy = RLDStrategy(restored)
        workload = stock_workload(restored.query, uncertainty_level=3)
        report = StreamSimulator(
            restored.query, restored.cluster, strategy, workload, seed=3
        ).run(30.0)
        assert report.batches_completed > 0

    def test_version_mismatch_rejected(self, solution):
        payload = solution_to_dict(solution)
        payload["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="format version"):
            solution_from_dict(payload)


class TestFileRoundTrip:
    def test_save_and_load(self, solution, tmp_path):
        path = tmp_path / "solution.json"
        save_solution(solution, path)
        restored = load_solution(path)
        assert restored.physical.physical_plan == solution.physical.physical_plan
        assert restored.load_table.plans == solution.load_table.plans

    def test_file_is_readable_json(self, solution, tmp_path):
        path = tmp_path / "solution.json"
        save_solution(solution, path)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == FORMAT_VERSION
        assert payload["query"]["name"] == "Q1"
