"""Tests for LLF placement and the GreedyPhy algorithm."""

from __future__ import annotations

import pytest

from repro.core import Cluster, PlanLoadTable, greedy_phy, largest_load_first
from repro.query import LogicalPlan


def _table(loads_by_plan: dict[tuple[int, ...], dict[int, float]], weights=None):
    plans = [LogicalPlan(order) for order in loads_by_plan]
    loads = {LogicalPlan(order): table for order, table in loads_by_plan.items()}
    if weights is None:
        weights = {plan: 1.0 / len(plans) for plan in plans}
    else:
        weights = {LogicalPlan(o): w for o, w in weights.items()}
    return PlanLoadTable(plans, loads, weights)


class TestLLF:
    def test_balances_across_nodes(self):
        cluster = Cluster.homogeneous(2, 100.0)
        plan = largest_load_first({0: 60.0, 1: 50.0, 2: 40.0, 3: 30.0}, cluster)
        assert plan is not None
        node_loads = [
            sum({0: 60.0, 1: 50.0, 2: 40.0, 3: 30.0}[op] for op in ops)
            for ops in plan.assignment
        ]
        # LPT: 60→n0, 50→n1, 40→n1 (lighter), 30→n0 → perfectly balanced.
        assert sorted(node_loads) == [90.0, 90.0]

    def test_infeasible_returns_none(self):
        cluster = Cluster.homogeneous(2, 50.0)
        assert largest_load_first({0: 60.0}, cluster) is None

    def test_respects_heterogeneous_capacity(self):
        cluster = Cluster((100.0, 10.0))
        plan = largest_load_first({0: 90.0, 1: 9.0}, cluster)
        assert plan is not None
        assert plan.node_of(0) == 0

    def test_deterministic_tie_break(self):
        cluster = Cluster.homogeneous(2, 100.0)
        a = largest_load_first({0: 10.0, 1: 10.0, 2: 10.0}, cluster)
        b = largest_load_first({0: 10.0, 1: 10.0, 2: 10.0}, cluster)
        assert a == b

    def test_exact_fit_allowed(self):
        cluster = Cluster.homogeneous(1, 100.0)
        plan = largest_load_first({0: 60.0, 1: 40.0}, cluster)
        assert plan is not None
        assert plan.covers([0, 1])


class TestGreedyPhy:
    def test_supports_all_plans_when_resources_suffice(self):
        table = _table(
            {
                (0, 1, 2): {0: 30.0, 1: 20.0, 2: 10.0},
                (2, 1, 0): {0: 10.0, 1: 25.0, 2: 30.0},
            }
        )
        result = greedy_phy(table, Cluster.homogeneous(3, 100.0))
        assert result.feasible
        assert set(result.supported_plans) == set(table.plans)
        assert result.score == pytest.approx(1.0)

    def test_drops_least_weighted_plan_under_pressure(self):
        # Plan B's worst-case loads don't fit; plan A's do.
        table = _table(
            {
                (0, 1, 2): {0: 30.0, 1: 20.0, 2: 10.0},
                (2, 1, 0): {0: 90.0, 1: 90.0, 2: 90.0},
            },
            weights={(0, 1, 2): 0.9, (2, 1, 0): 0.1},
        )
        result = greedy_phy(table, Cluster.homogeneous(2, 60.0))
        assert result.feasible
        assert result.supported_plans == (LogicalPlan((0, 1, 2)),)
        assert result.score == pytest.approx(0.9)

    def test_infeasible_when_nothing_fits(self):
        table = _table({(0, 1): {0: 100.0, 1: 100.0}})
        result = greedy_phy(table, Cluster.homogeneous(1, 50.0))
        assert not result.feasible
        assert result.physical_plan is None
        assert result.score == 0.0

    def test_placement_is_complete_partition(self):
        table = _table(
            {
                (0, 1, 2): {0: 30.0, 1: 20.0, 2: 10.0},
                (2, 1, 0): {0: 10.0, 1: 25.0, 2: 30.0},
            }
        )
        result = greedy_phy(table, Cluster.homogeneous(2, 100.0))
        assert result.physical_plan is not None
        assert result.physical_plan.covers([0, 1, 2])

    def test_compile_time_recorded(self):
        table = _table({(0, 1): {0: 10.0, 1: 10.0}})
        result = greedy_phy(table, Cluster.homogeneous(2, 100.0))
        assert result.compile_seconds >= 0.0
        assert result.algorithm == "GreedyPhy"


class TestDropPolicy:
    def test_invalid_policy_rejected(self):
        table = _table({(0, 1): {0: 10.0, 1: 10.0}})
        with pytest.raises(ValueError, match="drop_policy"):
            greedy_phy(table, Cluster.homogeneous(1, 100.0), drop_policy="bogus")

    def test_policies_agree_when_no_drops_needed(self):
        table = _table(
            {
                (0, 1, 2): {0: 30.0, 1: 20.0, 2: 10.0},
                (2, 1, 0): {0: 10.0, 1: 25.0, 2: 30.0},
            }
        )
        cluster = Cluster.homogeneous(3, 100.0)
        a = greedy_phy(table, cluster, drop_policy="min-weight-max-ops")
        b = greedy_phy(table, cluster, drop_policy="min-weight")
        assert a.score == pytest.approx(b.score)
        assert a.physical_plan == b.physical_plan

    def test_paper_policy_breaks_weight_ties_by_load_domination(self):
        # Two equal-weight plans; plan B dominates the max-load table on
        # every operator, so the paper policy drops B first and salvages
        # the lighter plan A, while resources cannot host B at all.
        table = _table(
            {
                (0, 1): {0: 30.0, 1: 30.0},   # plan A: light
                (1, 0): {0: 90.0, 1: 90.0},   # plan B: dominates everywhere
            },
            weights={(0, 1): 0.5, (1, 0): 0.5},
        )
        cluster = Cluster.homogeneous(2, 40.0)
        result = greedy_phy(table, cluster, drop_policy="min-weight-max-ops")
        assert result.feasible
        from repro.query import LogicalPlan

        assert result.supported_plans == (LogicalPlan((0, 1)),)
