"""Regression tests: every cached array the pipeline shares is frozen.

The ``no-cached-tensor-mutation`` lint rule is the static layer of this
invariant; these tests pin the runtime layer — ``setflags(write=False)``
on :meth:`ParameterSpace.grid_matrix`, on :class:`CostTensorCache`'s
cost tensor, load tensors, and tie-break ranks — so any in-place write
raises immediately at the write site instead of corrupting every
downstream consumer (ERP coverage, weights, routing tables) at once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CostTensorCache, ParameterSpace
from repro.core.parameter_space import Dimension
from repro.query import LogicalPlan, PlanCostModel


@pytest.fixture
def space() -> ParameterSpace:
    return ParameterSpace(
        [
            Dimension("sel:0", 0.3, 0.9, 4),
            Dimension("rate", 80.0, 120.0, 3),
        ]
    )


@pytest.fixture
def cache(three_op_query, space) -> CostTensorCache:
    plans = [LogicalPlan((0, 1, 2)), LogicalPlan((2, 1, 0))]
    return CostTensorCache(space, PlanCostModel(three_op_query), plans)


class TestGridMatrixFrozen:
    def test_item_store_raises(self, space):
        grid = space.grid_matrix()
        assert not grid.flags.writeable
        with pytest.raises(ValueError):
            grid[0, 0] = 123.0

    def test_slice_store_raises(self, space):
        with pytest.raises(ValueError):
            space.grid_matrix()[:, 0] = 0.0

    def test_inplace_op_raises(self, space):
        grid = space.grid_matrix()
        with pytest.raises(ValueError):
            grid += 1.0  # repro-lint: disable=no-cached-tensor-mutation -- this test exists to prove the runtime freeze rejects exactly this write

    def test_views_inherit_freeze(self, space):
        # A view aliases the cache; NumPy propagates non-writeability.
        view = space.grid_matrix()[1:, :]
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[0, 0] = 9.0

    def test_copy_is_writable_and_detached(self, space):
        copy = space.grid_matrix().copy()
        original = space.grid_matrix()[0, 0]
        copy[0, 0] = original + 1.0
        assert space.grid_matrix()[0, 0] == original


class TestCostTensorCacheFrozen:
    def test_cost_tensor_store_raises(self, cache):
        tensor = cache.cost_tensor
        assert not tensor.flags.writeable
        with pytest.raises(ValueError):
            tensor[0, 0] = -1.0

    def test_load_tensor_vectors_raise(self, cache):
        for vector in cache.load_tensor(0).values():
            assert not vector.flags.writeable
            with pytest.raises(ValueError):
                vector[0] = -1.0

    def test_plan_ranks_store_raises(self, cache):
        ranks = cache.plan_ranks
        assert not ranks.flags.writeable
        with pytest.raises(ValueError):
            ranks[0] = 5

    def test_setflags_cannot_reopen_base_object(self, cache):
        # setflags(write=True) on the *same object* succeeds only for
        # arrays that own their data; the invariant we rely on is that
        # accidental writes raise by default.  Verify the default state
        # survives repeated property access (memoization returns the
        # same frozen object, not a fresh writable one).
        first = cache.cost_tensor
        second = cache.cost_tensor
        assert first is second
        assert not second.flags.writeable

    def test_derived_results_are_fresh_arrays(self, cache):
        # min_costs/best_plan_per_point allocate new output (callers may
        # mutate them freely) — they must not hand out cache views.
        mins = cache.min_costs()
        best = cache.best_plan_per_point()
        assert mins.flags.writeable
        assert best.flags.writeable
        mins[0] = -1.0
        best[0] = 0
        assert not np.shares_memory(mins, cache.cost_tensor)
