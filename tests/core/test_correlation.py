"""Tests for the correlated occurrence model (future-work extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Dimension, NormalOccurrenceModel, ParameterSpace
from repro.core.correlation import CorrelatedOccurrenceModel
from repro.core.parameter_space import Region


@pytest.fixture
def unit_space() -> ParameterSpace:
    return ParameterSpace(
        [Dimension("x", 0.0, 1.0, 9), Dimension("y", 0.0, 1.0, 9)]
    )


class TestAgainstIndependentModel:
    def test_zero_correlation_matches_independent_model(self, unit_space):
        independent = NormalOccurrenceModel(unit_space)
        correlated = CorrelatedOccurrenceModel(unit_space)  # identity corr
        for index in [(0, 0), (4, 4), (2, 7), (8, 1)]:
            assert correlated.cell_probability(index) == pytest.approx(
                independent.cell_probability(index), rel=1e-6, abs=1e-9
            )

    def test_total_mass_matches_independent_at_zero_rho(self, unit_space):
        independent = NormalOccurrenceModel(unit_space)
        correlated = CorrelatedOccurrenceModel(unit_space)
        assert correlated.total_mass() == pytest.approx(
            independent.total_mass(), rel=1e-6
        )


class TestCorrelationShapesMass:
    def test_positive_rho_concentrates_on_diagonal(self, unit_space):
        model = CorrelatedOccurrenceModel(
            unit_space, correlation=[[1.0, 0.9], [0.9, 1.0]]
        )
        independent = CorrelatedOccurrenceModel(unit_space)
        diagonal = model.cell_probability((6, 6))
        anti = model.cell_probability((6, 2))
        assert diagonal > anti
        # And more sharply than under independence.
        assert diagonal / anti > (
            independent.cell_probability((6, 6))
            / independent.cell_probability((6, 2))
        )

    def test_negative_rho_concentrates_on_anti_diagonal(self, unit_space):
        model = CorrelatedOccurrenceModel.anti_synchronized(unit_space, rho=-0.9)
        assert model.cell_probability((6, 2)) > model.cell_probability((6, 6))

    def test_region_mass_consistent_with_cells(self, unit_space):
        model = CorrelatedOccurrenceModel(
            unit_space, correlation=[[1.0, -0.5], [-0.5, 1.0]]
        )
        region = Region(unit_space, (2, 3), (4, 6))
        summed = sum(model.cell_probability(idx) for idx in region.indices())
        assert model.region_probability(region) == pytest.approx(summed, rel=1e-5)

    def test_cells_sum_to_total(self, unit_space):
        model = CorrelatedOccurrenceModel.anti_synchronized(unit_space, rho=-0.6)
        total = sum(
            model.cell_probability(idx) for idx in unit_space.grid_indices()
        )
        assert total == pytest.approx(model.total_mass(), rel=1e-5)


class TestPlanWeightsIntegration:
    def test_anti_synchronized_weights_shift_toward_regime_plans(self):
        """Under regime-style correlation the weights re-rank plans."""
        from repro.core import EarlyTerminatedRobustPartitioning
        from repro.workloads import build_q1

        query = build_q1()
        estimate = query.default_estimates({"sel:1": 4, "sel:3": 4})
        space = ParameterSpace.from_estimates(estimate, points_per_level=2)
        solution = EarlyTerminatedRobustPartitioning(
            query, space, epsilon=0.1
        ).run().solution
        independent = solution.plan_weights(NormalOccurrenceModel(space))
        correlated = solution.plan_weights(
            CorrelatedOccurrenceModel.anti_synchronized(space, rho=-0.9)
        )
        # Same plans, different masses — the distribution genuinely moved.
        assert set(independent) == set(correlated)
        shifts = [
            abs(correlated[p] - independent[p]) for p in independent
        ]
        assert max(shifts) > 0.01


class TestValidation:
    def test_wrong_shape_rejected(self, unit_space):
        with pytest.raises(ValueError, match="2x2"):
            CorrelatedOccurrenceModel(unit_space, correlation=[[1.0]])

    def test_asymmetric_rejected(self, unit_space):
        with pytest.raises(ValueError, match="symmetric"):
            CorrelatedOccurrenceModel(
                unit_space, correlation=[[1.0, 0.5], [0.2, 1.0]]
            )

    def test_bad_diagonal_rejected(self, unit_space):
        with pytest.raises(ValueError, match="diagonal"):
            CorrelatedOccurrenceModel(
                unit_space, correlation=[[2.0, 0.0], [0.0, 1.0]]
            )

    def test_non_psd_rejected(self):
        space = ParameterSpace(
            [Dimension(n, 0.0, 1.0, 5) for n in ("x", "y", "z")]
        )
        with pytest.raises(ValueError, match="equicorrelation"):
            CorrelatedOccurrenceModel.anti_synchronized(space, rho=-0.9)

    def test_pinned_dimensions_excluded(self):
        space = ParameterSpace(
            [Dimension("x", 0.0, 1.0, 5), Dimension("y", 0.5, 0.5, 1)]
        )
        model = CorrelatedOccurrenceModel(space)  # 1 varying dim: ok
        assert model.total_mass() > 0.9
