"""Tests for the end-to-end RLD optimizer facade."""

from __future__ import annotations

import pytest

from repro.core import Cluster, RLDConfig, RLDOptimizer


@pytest.fixture
def estimate(four_op_query):
    return four_op_query.default_estimates({"sel:1": 1, "sel:2": 3, "rate": 2})


class TestRLDConfig:
    def test_defaults(self):
        config = RLDConfig()
        assert config.epsilon == 0.2
        assert config.physical_algorithm == "optprune"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown physical_algorithm"):
            RLDConfig(physical_algorithm="magic")


class TestSolve:
    def test_produces_feasible_solution(self, four_op_query, estimate):
        cluster = Cluster.homogeneous(3, 400.0)
        solution = RLDOptimizer(four_op_query, cluster).solve(estimate)
        assert solution.feasible
        assert len(solution.logical) >= 1
        assert solution.physical.physical_plan.covers(four_op_query.operator_ids)

    def test_summary_mentions_plans(self, four_op_query, estimate):
        cluster = Cluster.homogeneous(3, 400.0)
        solution = RLDOptimizer(four_op_query, cluster).solve(estimate)
        text = solution.summary()
        assert "logical plans" in text
        assert "physical plan" in text

    def test_supported_plans_subset_of_logical(self, four_op_query, estimate):
        cluster = Cluster.homogeneous(3, 400.0)
        solution = RLDOptimizer(four_op_query, cluster).solve(estimate)
        assert set(solution.supported_plans) <= set(solution.logical.plans)

    def test_greedy_algorithm_selectable(self, four_op_query, estimate):
        cluster = Cluster.homogeneous(3, 400.0)
        config = RLDConfig(physical_algorithm="greedy")
        solution = RLDOptimizer(four_op_query, cluster, config=config).solve(estimate)
        assert solution.physical.algorithm == "GreedyPhy"

    def test_optprune_score_at_least_greedy(self, four_op_query, estimate):
        cluster = Cluster.homogeneous(2, 260.0)
        greedy = RLDOptimizer(
            four_op_query, cluster, config=RLDConfig(physical_algorithm="greedy")
        ).solve(estimate)
        optimal = RLDOptimizer(
            four_op_query, cluster, config=RLDConfig(physical_algorithm="optprune")
        ).solve(estimate)
        assert optimal.physical.score >= greedy.physical.score - 1e-12

    def test_uses_query_defaults_without_estimate(self, four_op_query):
        # No uncertainty declared → no space → a clear error.
        cluster = Cluster.homogeneous(3, 400.0)
        with pytest.raises(ValueError, match="uncertain parameters"):
            RLDOptimizer(four_op_query, cluster).solve()

    def test_cluster_recorded_in_solution(self, four_op_query, estimate):
        cluster = Cluster.homogeneous(3, 400.0)
        solution = RLDOptimizer(four_op_query, cluster).solve(estimate)
        assert solution.cluster is cluster

    def test_deterministic(self, four_op_query, estimate):
        cluster = Cluster.homogeneous(3, 400.0)
        a = RLDOptimizer(four_op_query, cluster).solve(estimate)
        b = RLDOptimizer(four_op_query, cluster).solve(estimate)
        assert a.logical.plans == b.logical.plans
        assert a.physical.physical_plan == b.physical.physical_plan
