"""Tests for the parameter space, dimensions, and regions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Dimension, ParameterSpace, Region
from repro.query import StatisticsEstimate


class TestDimension:
    def test_values_span_bounds(self):
        dim = Dimension("x", 0.0, 1.0, 5)
        assert dim.value(0) == 0.0
        assert dim.value(4) == 1.0
        assert dim.cell_width == pytest.approx(0.25)

    def test_pinned_dimension(self):
        dim = Dimension("x", 0.5, 0.5, 1)
        assert dim.value(0) == 0.5
        assert dim.cell_width == 0.0
        assert dim.nearest_index(99.0) == 0

    def test_out_of_range_index(self):
        with pytest.raises(IndexError):
            Dimension("x", 0.0, 1.0, 3).value(3)

    def test_nearest_index_rounds_and_clamps(self):
        dim = Dimension("x", 0.0, 1.0, 5)
        assert dim.nearest_index(0.13) == 1  # nearer to 0.25's neighbour 0.25? -> 0.13/0.25=0.52 -> 1
        assert dim.nearest_index(-5.0) == 0
        assert dim.nearest_index(5.0) == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": "", "lo": 0.0, "hi": 1.0, "steps": 2},
            {"name": "x", "lo": 1.0, "hi": 0.0, "steps": 2},
            {"name": "x", "lo": 0.0, "hi": 1.0, "steps": 0},
            {"name": "x", "lo": 0.0, "hi": 1.0, "steps": 1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Dimension(**kwargs)

    def test_nearest_index_at_exact_cell_boundaries(self):
        # Regression: a value exactly halfway between two grid values must
        # round the same way in the scalar (Python round, half-to-even) and
        # vectorized (np.rint, also half-to-even) paths, or the routing
        # table and live classifier could snap to different cells.
        dim = Dimension("x", 0.0, 1.0, 5)  # cells at 0, .25, .5, .75, 1
        assert dim.nearest_index(0.125) == 0  # midpoint 0/1 -> even 0
        assert dim.nearest_index(0.375) == 2  # midpoint 1/2 -> even 2
        assert dim.nearest_index(0.625) == 2  # midpoint 2/3 -> even 2
        assert dim.nearest_index(0.875) == 4  # midpoint 3/4 -> even 4

    def test_nearest_indices_matches_scalar_over_sweep(self):
        dim = Dimension("x", 0.2, 0.8, 7)
        values = np.linspace(-0.1, 1.1, 977)
        batch = dim.nearest_indices(values)
        scalar = np.array([dim.nearest_index(v) for v in values])
        assert np.array_equal(batch, scalar)

    def test_values_array_matches_value(self):
        dim = Dimension("x", 0.3, 0.9, 4)
        arr = dim.values_array()
        assert arr.shape == (4,)
        for i in range(dim.steps):
            assert arr[i] == dim.value(i)


class TestFromEstimates:
    def test_algorithm_1_bounds_and_level_scaled_steps(self):
        est = StatisticsEstimate(
            {"sel:0": 0.4, "rate": 100.0}, {"sel:0": 2, "rate": 3}
        )
        space = ParameterSpace.from_estimates(est, points_per_level=2)
        by_name = {d.name: d for d in space.dimensions}
        assert by_name["sel:0"].lo == pytest.approx(0.32)
        assert by_name["sel:0"].hi == pytest.approx(0.48)
        assert by_name["sel:0"].steps == 5  # 2·2 + 1
        assert by_name["rate"].steps == 7  # 2·3 + 1

    def test_exact_parameters_excluded(self):
        est = StatisticsEstimate({"a": 1.0, "b": 2.0}, {"a": 1, "b": 0})
        space = ParameterSpace.from_estimates(est)
        assert space.names == ("a",)

    def test_no_uncertain_parameters_rejected(self):
        est = StatisticsEstimate({"a": 1.0})
        with pytest.raises(ValueError, match="uncertain parameters"):
            ParameterSpace.from_estimates(est)


class TestParameterSpace:
    def test_grid_iteration_counts(self, space_2d):
        indices = list(space_2d.grid_indices())
        assert len(indices) == space_2d.n_points
        assert len(set(indices)) == len(indices)

    def test_point_at_round_trip(self, space_2d):
        for index in space_2d.grid_indices():
            point = space_2d.point_at(index)
            assert space_2d.nearest_index(point) == index

    def test_point_at_wrong_arity(self, space_2d):
        with pytest.raises(ValueError, match="components"):
            space_2d.point_at((0,))

    def test_duplicate_dimension_names_rejected(self):
        dims = [Dimension("x", 0, 1, 2), Dimension("x", 0, 1, 2)]
        with pytest.raises(ValueError, match="duplicate"):
            ParameterSpace(dims)

    def test_full_region_spans_space(self, space_2d):
        region = space_2d.full_region()
        assert region.n_points == space_2d.n_points
        assert region.area_fraction == 1.0

    def test_flat_index_follows_grid_order(self, space_2d):
        for flat, index in enumerate(space_2d.grid_indices()):
            assert space_2d.flat_index(index) == flat
            assert space_2d.index_of_flat(flat) == index
        with pytest.raises(IndexError):
            space_2d.index_of_flat(space_2d.n_points)

    def test_grid_matrix_rows_match_point_at(self, space_2d):
        matrix = space_2d.grid_matrix()
        assert matrix.shape == (space_2d.n_points, space_2d.n_dims)
        assert space_2d.grid_matrix() is matrix  # cached
        for flat, index in enumerate(space_2d.grid_indices()):
            point = space_2d.point_at(index)
            for col, name in enumerate(space_2d.names):
                assert matrix[flat, col] == point[name]
        with pytest.raises(ValueError):
            matrix[0, 0] = 99.0

    def test_points_matrix_subset(self, space_2d):
        indices = list(space_2d.grid_indices())[:: 3]
        matrix = space_2d.points_matrix(indices)
        full = space_2d.grid_matrix()
        flats = [space_2d.flat_index(i) for i in indices]
        assert np.array_equal(matrix, full[flats])

    def test_nearest_flat_index_on_grid(self, space_2d):
        for flat, index in enumerate(space_2d.grid_indices()):
            assert space_2d.nearest_flat_index(space_2d.point_at(index)) == flat

    def test_nearest_flat_index_off_grid(self):
        space = ParameterSpace(
            [Dimension("x", 0.0, 1.0, 5), Dimension("p", 0.5, 0.5, 1)]
        )
        # Missing dimension -> off-grid.
        assert space.nearest_flat_index({"x": 0.5}) is None
        # Beyond half a cell outside the box -> off-grid.
        assert space.nearest_flat_index({"x": 1.2, "p": 0.5}) is None
        assert space.nearest_flat_index({"x": -0.2, "p": 0.5}) is None
        # Within half a cell of the edge -> snapped in.
        assert space.nearest_flat_index({"x": 1.1, "p": 0.5}) == 4
        # Pinned dimension tolerates only tiny relative drift.
        assert space.nearest_flat_index({"x": 0.0, "p": 0.5 + 1e-12}) == 0
        assert space.nearest_flat_index({"x": 0.0, "p": 0.51}) is None


class TestRegion:
    def test_corners(self, space_2d):
        region = space_2d.full_region()
        lo, hi = region.pnt_lo, region.pnt_hi
        for dim in space_2d.dimensions:
            assert lo[dim.name] == pytest.approx(dim.lo)
            assert hi[dim.name] == pytest.approx(dim.hi)

    def test_contains(self, space_2d):
        region = Region(space_2d, (1, 1), (3, 4))
        assert region.contains((2, 3))
        assert not region.contains((0, 2))

    def test_is_cell(self, space_2d):
        assert Region(space_2d, (2, 2), (2, 2)).is_cell
        assert not Region(space_2d, (2, 2), (2, 3)).is_cell

    def test_invalid_bounds_rejected(self, space_2d):
        with pytest.raises(ValueError, match="invalid bounds"):
            Region(space_2d, (3, 0), (1, 0))
        with pytest.raises(ValueError, match="invalid bounds"):
            Region(space_2d, (0, 0), (0, 99))

    def test_split_tiles_region_exactly(self, space_2d):
        region = space_2d.full_region()
        pieces = region.split_at((2, 3))
        assert len(pieces) == 4
        all_indices = [idx for piece in pieces for idx in piece.indices()]
        assert sorted(all_indices) == sorted(region.indices())
        assert len(set(all_indices)) == len(all_indices)

    def test_split_at_edge_reduces_pieces(self, space_2d):
        region = space_2d.full_region()
        hi = region.hi
        # Splitting at hi on dim 1 only divides dim 0.
        pieces = region.split_at((2, hi[1]))
        assert len(pieces) == 2

    def test_split_outside_region_rejected(self, space_2d):
        region = Region(space_2d, (0, 0), (2, 2))
        with pytest.raises(ValueError, match="outside region"):
            region.split_at((5, 5))

    def test_non_dividing_split_rejected(self, space_2d):
        cell = Region(space_2d, (1, 1), (1, 1))
        with pytest.raises(ValueError, match="does not divide"):
            cell.split_at((1, 1))

    def test_can_split(self, space_2d):
        assert space_2d.full_region().can_split()
        assert not Region(space_2d, (0, 0), (0, 0)).can_split()


@settings(max_examples=50, deadline=None)
@given(
    shape=st.tuples(
        st.integers(min_value=2, max_value=6), st.integers(min_value=2, max_value=6)
    ),
    data=st.data(),
)
def test_split_partition_property(shape, data):
    """Property: any valid split tiles the region (disjoint + complete)."""
    dims = [Dimension(f"d{i}", 0.0, 1.0, steps) for i, steps in enumerate(shape)]
    space = ParameterSpace(dims)
    region = space.full_region()
    point = tuple(
        data.draw(st.integers(min_value=0, max_value=s - 2), label=f"p{i}")
        for i, s in enumerate(shape)
    )
    pieces = region.split_at(point)
    everything = [idx for piece in pieces for idx in piece.indices()]
    assert sorted(everything) == sorted(region.indices())
    assert sum(p.n_points for p in pieces) == region.n_points
