"""Tests for set-partition enumeration and the exhaustive physical search."""

from __future__ import annotations

import pytest

from repro.core import Cluster, PlanLoadTable, enumerate_partitions, exhaustive_physical
from repro.query import LogicalPlan

#: Bell numbers B(0)..B(6).
_BELL = [1, 1, 2, 5, 15, 52, 203]


def _table(loads_by_plan, weights=None):
    plans = [LogicalPlan(order) for order in loads_by_plan]
    loads = {LogicalPlan(order): table for order, table in loads_by_plan.items()}
    if weights is None:
        weights = {plan: 1.0 / len(plans) for plan in plans}
    else:
        weights = {LogicalPlan(o): w for o, w in weights.items()}
    return PlanLoadTable(plans, loads, weights)


class TestEnumeratePartitions:
    @pytest.mark.parametrize("n", range(7))
    def test_unbounded_blocks_give_bell_numbers(self, n):
        partitions = list(enumerate_partitions(n, max_blocks=n if n else 1))
        assert len(partitions) == _BELL[n]

    def test_block_limit_counts(self):
        # Partitions of 4 items into ≤ 2 blocks: S(4,1)+S(4,2) = 1+7 = 8.
        assert len(list(enumerate_partitions(4, max_blocks=2))) == 8

    def test_partitions_are_valid(self):
        for partition in enumerate_partitions(4, max_blocks=3):
            flat = [i for block in partition for i in block]
            assert sorted(flat) == [0, 1, 2, 3]
            assert len(partition) <= 3

    def test_no_duplicates(self):
        seen = set()
        for partition in enumerate_partitions(5, max_blocks=5):
            key = frozenset(frozenset(block) for block in partition)
            assert key not in seen
            seen.add(key)

    def test_zero_items(self):
        assert list(enumerate_partitions(0, max_blocks=2)) == [[]]


class TestExhaustivePhysical:
    def test_finds_known_optimum(self):
        table = _table(
            {
                (0, 1, 2): {0: 40.0, 1: 30.0, 2: 20.0},
                (2, 1, 0): {0: 20.0, 1: 30.0, 2: 40.0},
            }
        )
        result = exhaustive_physical(table, Cluster.homogeneous(2, 60.0))
        assert result.feasible
        # {0},{1,2} fits A (40|50) and B (20|70✗)... enumerate: the optimum
        # must support at least one plan; verify score via the table.
        assert result.score > 0
        mask = result.physical_plan.support_mask(table, Cluster.homogeneous(2, 60.0))
        assert table.score(mask) == pytest.approx(result.score)

    def test_prefers_fewer_nodes_on_tie(self):
        table = _table({(0, 1): {0: 10.0, 1: 10.0}})
        result = exhaustive_physical(table, Cluster.homogeneous(3, 100.0))
        assert result.physical_plan is not None
        assert result.physical_plan.nodes_used == 1

    def test_infeasible(self):
        table = _table({(0,): {0: 100.0}})
        result = exhaustive_physical(table, Cluster.homogeneous(2, 1.0))
        assert not result.feasible

    def test_partition_limit_enforced(self):
        table = _table({tuple(range(8)): {i: 1.0 for i in range(8)}})
        with pytest.raises(RuntimeError, match="exceeded"):
            exhaustive_physical(
                table, Cluster.homogeneous(8, 100.0), partition_limit=10
            )

    def test_explored_counts_partitions(self):
        table = _table({(0, 1): {0: 1.0, 1: 1.0}})
        result = exhaustive_physical(table, Cluster.homogeneous(2, 100.0))
        assert result.nodes_explored == 2  # {{0,1}} and {{0},{1}}
