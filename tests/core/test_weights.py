"""Tests for §4.2 weight assignment and inheritance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ParameterSpace, WeightAssigner
from repro.core.parameter_space import Region
from repro.query import LogicalPlan, PlanCostModel


@pytest.fixture
def setup(three_op_query):
    est = three_op_query.default_estimates({"sel:0": 3, "sel:1": 3})
    space = ParameterSpace.from_estimates(est, points_per_level=3)
    model = PlanCostModel(three_op_query)
    assigner = WeightAssigner(space, model)
    plan_lo = LogicalPlan((2, 1, 0))
    plan_hi = LogicalPlan((2, 0, 1))
    return space, assigner, plan_lo, plan_hi


class TestAssign:
    def test_shapes_match_region(self, setup):
        space, assigner, plan_lo, plan_hi = setup
        region = space.full_region()
        weights = assigner.assign(region, plan_lo, plan_hi)
        for dim, array in enumerate(weights.per_dim):
            assert len(array) == region.hi[dim] - region.lo[dim] + 1

    def test_weights_non_negative_and_finite(self, setup):
        space, assigner, plan_lo, plan_hi = setup
        weights = assigner.assign(space.full_region(), plan_lo, plan_hi)
        for array in weights.per_dim:
            assert np.all(array >= 0)
            assert np.all(np.isfinite(array))

    def test_point_weight_is_per_dim_sum(self, setup):
        space, assigner, plan_lo, plan_hi = setup
        region = space.full_region()
        weights = assigner.assign(region, plan_lo, plan_hi)
        index = (2, 3)
        expected = weights.per_dim[0][2] + weights.per_dim[1][3]
        assert weights.point_weight(index) == pytest.approx(expected)

    def test_point_weight_outside_region_rejected(self, setup):
        space, assigner, plan_lo, plan_hi = setup
        region = Region(space, (0, 0), (2, 2))
        weights = assigner.assign(region, plan_lo, plan_hi)
        with pytest.raises(ValueError, match="outside region"):
            weights.point_weight((5, 5))

    def test_computation_counter(self, setup):
        space, assigner, plan_lo, plan_hi = setup
        assert assigner.computations == 0
        assigner.assign(space.full_region(), plan_lo, plan_hi)
        assigner.assign(space.full_region(), plan_lo, plan_hi)
        assert assigner.computations == 2


class TestPartitionPoint:
    def test_partition_point_is_splittable(self, setup):
        space, assigner, plan_lo, plan_hi = setup
        region = space.full_region()
        weights = assigner.assign(region, plan_lo, plan_hi)
        point = weights.best_partition_point()
        assert point is not None
        pieces = region.split_at(point)
        assert len(pieces) >= 2

    def test_single_cell_has_no_partition_point(self, setup):
        space, assigner, plan_lo, plan_hi = setup
        cell = Region(space, (1, 1), (1, 1))
        weights = assigner.assign(cell, plan_lo, plan_hi)
        assert weights.best_partition_point() is None

    def test_flat_dimension_stays_at_lo(self, setup):
        space, assigner, plan_lo, plan_hi = setup
        strip = Region(space, (2, 0), (2, 4))
        weights = assigner.assign(strip, plan_lo, plan_hi)
        point = weights.best_partition_point()
        assert point is not None
        assert point[0] == 2


class TestInheritance:
    def test_slice_matches_recomputed_positions(self, setup):
        space, assigner, plan_lo, plan_hi = setup
        parent = space.full_region()
        weights = assigner.assign(parent, plan_lo, plan_hi)
        sub = Region(space, (1, 2), (4, 5))
        sliced = weights.slice_to(sub)
        for dim in range(2):
            offset = sub.lo[dim] - parent.lo[dim]
            length = sub.hi[dim] - sub.lo[dim] + 1
            expected = weights.per_dim[dim][offset : offset + length]
            assert np.allclose(sliced.per_dim[dim], expected)

    def test_skip_counter(self, setup):
        _, assigner, _, _ = setup
        assigner.record_skip()
        assigner.record_skip()
        assert assigner.skips == 2


class TestUniform:
    def test_uniform_peaks_at_midpoint(self, setup):
        space, assigner, _, _ = setup
        region = space.full_region()
        weights = assigner.uniform(region)
        point = weights.best_partition_point()
        assert point is not None
        for dim, p in enumerate(point):
            lo, hi = region.lo[dim], region.hi[dim]
            mid = (lo + hi) / 2
            assert abs(p - mid) <= 1.0
