"""Tests for robust logical solutions (plan routing, regions, weights)."""

from __future__ import annotations

import pytest

from repro.core import (
    NormalOccurrenceModel,
    ParameterSpace,
    RobustLogicalSolution,
)
from repro.core.logical import PlanDiscovery
from repro.query import LogicalPlan, PlanCostModel


@pytest.fixture
def setup(four_op_query):
    est = four_op_query.default_estimates({"sel:1": 1, "sel:2": 3})
    space = ParameterSpace.from_estimates(est, points_per_level=3)
    plans = [
        LogicalPlan((3, 2, 1, 0)),
        LogicalPlan((3, 1, 2, 0)),
    ]
    solution = RobustLogicalSolution(four_op_query, space, plans)
    return four_op_query, space, solution


class TestConstruction:
    def test_deduplicates_preserving_order(self, four_op_query, setup):
        _, space, _ = setup
        plans = [
            LogicalPlan((0, 1, 2, 3)),
            LogicalPlan((3, 2, 1, 0)),
            LogicalPlan((0, 1, 2, 3)),
        ]
        solution = RobustLogicalSolution(four_op_query, space, plans)
        assert solution.plans == (LogicalPlan((0, 1, 2, 3)), LogicalPlan((3, 2, 1, 0)))

    def test_empty_rejected(self, four_op_query, setup):
        _, space, _ = setup
        with pytest.raises(ValueError, match="at least one plan"):
            RobustLogicalSolution(four_op_query, space, [])

    def test_contains_and_len(self, setup):
        _, _, solution = setup
        assert len(solution) == 2
        assert LogicalPlan((3, 2, 1, 0)) in solution
        assert LogicalPlan((0, 1, 2, 3)) not in solution

    def test_discoveries_kept(self, four_op_query, setup):
        _, space, _ = setup
        plan = LogicalPlan((0, 1, 2, 3))
        solution = RobustLogicalSolution(
            four_op_query, space, [plan], discoveries=[PlanDiscovery(plan, 3)]
        )
        assert solution.discoveries[0].at_call == 3


class TestRouting:
    def test_best_plan_is_argmin_cost(self, setup):
        query, space, solution = setup
        model = PlanCostModel(query)
        for index in space.grid_indices():
            point = space.point_at(index)
            chosen = solution.best_plan_at(point)
            best_cost = min(model.plan_cost(p, point) for p in solution.plans)
            assert model.plan_cost(chosen, point) == pytest.approx(best_cost)

    def test_plan_cells_partition_grid(self, setup):
        _, space, solution = setup
        cells = solution.plan_cells()
        all_indices = [idx for cell in cells.values() for idx in cell]
        assert sorted(all_indices) == sorted(space.grid_indices())
        assert len(all_indices) == space.n_points

    def test_corner_plans_own_their_corners(self, setup):
        query, space, solution = setup
        lo_plan = solution.best_plan_at(space.full_region().pnt_lo)
        hi_plan = solution.best_plan_at(space.full_region().pnt_hi)
        # The fixture's two plans are the corner optima.
        assert lo_plan == LogicalPlan((3, 2, 1, 0))
        assert hi_plan == LogicalPlan((3, 1, 2, 0))


class TestWeights:
    def test_weights_sum_to_total_mass(self, setup):
        _, space, solution = setup
        occurrence = NormalOccurrenceModel(space)
        weights = solution.plan_weights(occurrence)
        assert sum(weights.values()) == pytest.approx(occurrence.total_mass(), rel=1e-9)

    def test_area_fractions_sum_to_one(self, setup):
        _, _, solution = setup
        fractions = solution.area_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_weights_default_occurrence(self, setup):
        _, _, solution = setup
        weights = solution.plan_weights()
        assert all(w >= 0 for w in weights.values())


class TestWorstCaseLoads:
    def test_loads_dominate_every_cell(self, setup):
        query, space, solution = setup
        model = PlanCostModel(query)
        for plan, cells in solution.plan_cells().items():
            worst = solution.worst_case_loads(plan)
            for index in cells:
                point = space.point_at(index)
                loads = model.operator_loads(plan, point)
                for op_id, load in loads.items():
                    assert worst[op_id] >= load - 1e-9

    def test_every_operator_present(self, setup):
        query, _, solution = setup
        worst = solution.worst_case_loads(solution.plans[0])
        assert set(worst) == set(query.operator_ids)

    def test_plan_without_cells_uses_space_corner(self, four_op_query, setup):
        _, space, _ = setup
        # A dominated plan (never cheapest) still gets conservative loads.
        dominated = LogicalPlan((0, 1, 2, 3))
        winner = LogicalPlan((3, 2, 1, 0))
        solution = RobustLogicalSolution(four_op_query, space, [winner, dominated])
        cells = solution.plan_cells()
        if not cells[dominated]:
            worst = solution.worst_case_loads(dominated)
            assert all(v > 0 for v in worst.values())
