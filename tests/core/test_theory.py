"""Tests for the Theorem 1/2 bound utilities and Monte-Carlo checks."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    aging_threshold,
    simulate_uniform_discovery,
    theorem1_threshold,
    theorem2_miss_probability_bound,
)


class TestFormulas:
    def test_theorem1_matches_partitioning_threshold(self):
        assert theorem1_threshold(0.25, 0.3) == aging_threshold(0.25, 0.3)

    def test_theorem2_decays_with_gamma(self):
        p1 = theorem2_miss_probability_bound(0.5, 0.25)
        p2 = theorem2_miss_probability_bound(1.0, 0.25)
        p3 = theorem2_miss_probability_bound(2.0, 0.25)
        assert p1 > p2 > p3

    def test_theorem2_known_value(self):
        # γ = 1, ε = 0.25: e^{-(1 + 2)} = e^{-3}.
        assert theorem2_miss_probability_bound(1.0, 0.25) == pytest.approx(
            math.exp(-3.0)
        )

    @pytest.mark.parametrize("gamma,eps", [(0.0, 0.25), (1.0, 0.0), (1.0, 1.0)])
    def test_invalid_arguments(self, gamma, eps):
        with pytest.raises(ValueError):
            theorem2_miss_probability_bound(gamma, eps)


class TestMonteCarlo:
    def test_large_area_plan_rarely_missed(self):
        check = simulate_uniform_discovery(
            [0.4, 0.3, 0.2, 0.1], target_index=0, trials=1000, seed=1
        )
        assert check.bound_holds
        assert check.empirical_miss_rate <= 0.05

    def test_theorem2_bound_holds_for_small_plans(self):
        # A 6%-area plan: γ = 0.2 at δ = 0.3 → bound e^{-0.6} ≈ 0.55.
        check = simulate_uniform_discovery(
            [0.06, 0.5, 0.3, 0.14], target_index=0, trials=2000, seed=2
        )
        assert check.bound_holds

    def test_theorem1_uncovered_area_within_delta(self):
        # With the default (ε=0.25, δ=0.3) stopping rule, the mean
        # uncovered area must sit well below δ.
        check = simulate_uniform_discovery(
            [0.3, 0.25, 0.2, 0.15, 0.1], trials=2000, seed=3
        )
        assert check.mean_uncovered_area <= 0.3

    def test_deterministic_under_seed(self):
        a = simulate_uniform_discovery([0.5, 0.5], trials=200, seed=9)
        b = simulate_uniform_discovery([0.5, 0.5], trials=200, seed=9)
        assert a.empirical_miss_rate == b.empirical_miss_rate

    def test_validation(self):
        with pytest.raises(ValueError, match="not be empty"):
            simulate_uniform_discovery([])
        with pytest.raises(ValueError, match="> 1"):
            simulate_uniform_discovery([0.9, 0.9])
        with pytest.raises(IndexError):
            simulate_uniform_discovery([0.5], target_index=3)


@settings(max_examples=10, deadline=None)
@given(
    area=st.floats(min_value=0.15, max_value=0.45),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_theorem2_bound_property(area, seed):
    """Property: the empirical miss rate never exceeds the Theorem 2 bound."""
    rest = 1.0 - area
    others = [rest * 0.5, rest * 0.3, rest * 0.2]
    check = simulate_uniform_discovery(
        [area] + others, target_index=0, trials=600, seed=seed
    )
    assert check.bound_holds
