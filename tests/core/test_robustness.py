"""Tests for ε-robustness checks and coverage measurement."""

from __future__ import annotations

import pytest

from repro.core import (
    ParameterSpace,
    RobustnessChecker,
    covered_indices,
    grid_optimal_costs,
    measure_coverage,
    robust_region_of_plan,
)
from repro.core.parameter_space import Region
from repro.query import PlanCostModel, make_optimizer


@pytest.fixture
def setup(three_op_query):
    est = three_op_query.default_estimates({"sel:0": 3, "sel:2": 3})
    space = ParameterSpace.from_estimates(est, points_per_level=3)
    optimizer = make_optimizer(three_op_query)
    return three_op_query, space, optimizer


class TestRobustnessChecker:
    def test_single_cell_trivially_robust(self, setup):
        query, space, optimizer = setup
        checker = RobustnessChecker(optimizer, epsilon=0.0)
        cell = Region(space, (0, 0), (0, 0))
        check = checker.check_region(cell)
        assert check.robust
        assert check.cost_ratio == 1.0

    def test_same_corner_plans_robust(self, setup):
        query, space, optimizer = setup
        checker = RobustnessChecker(optimizer, epsilon=0.0)
        # A tiny region around one point almost surely has one optimal plan.
        region = Region(space, (0, 0), (1, 0))
        check = checker.check_region(region)
        if check.plan == check.opt_hi:
            assert check.robust

    def test_check_honours_epsilon(self, setup):
        query, space, optimizer = setup
        region = space.full_region()
        strict = RobustnessChecker(make_optimizer(query), epsilon=0.0)
        loose = RobustnessChecker(make_optimizer(query), epsilon=10.0)
        strict_check = strict.check_region(region)
        loose_check = loose.check_region(region)
        assert loose_check.robust  # ε = 1000% forgives anything
        if strict_check.plan != strict_check.opt_hi:
            assert strict_check.cost_ratio > 1.0

    def test_corner_cache_saves_calls(self, setup):
        query, space, optimizer = setup
        checker = RobustnessChecker(optimizer, epsilon=0.2)
        region = space.full_region()
        checker.check_region(region)
        calls_after_first = optimizer.call_count
        # Sub-regions share corners with the parent.
        pieces = region.split_at((4, 4))
        for piece in pieces:
            checker.check_region(piece)
        # 4 sub-regions have 8 corners total, of which 2 coincide with the
        # parent's; at most 6 new optimizer calls.
        assert optimizer.call_count - calls_after_first <= 6

    def test_negative_epsilon_rejected(self, setup):
        _, _, optimizer = setup
        with pytest.raises(ValueError, match="epsilon"):
            RobustnessChecker(optimizer, epsilon=-0.1)

    def test_robust_plan_satisfies_definition_1(self, setup):
        query, space, optimizer = setup
        epsilon = 0.25
        checker = RobustnessChecker(optimizer, epsilon=epsilon)
        region = space.full_region()
        check = checker.check_region(region)
        pnt_hi = region.pnt_hi
        cost_plan = optimizer.plan_cost(check.plan, pnt_hi)
        cost_opt = optimizer.plan_cost(check.opt_hi, pnt_hi)
        assert check.robust == (cost_plan <= (1 + epsilon) * cost_opt)


class TestCoverage:
    def test_all_optimal_plans_give_full_coverage(self, setup):
        query, space, optimizer = setup
        oracle = make_optimizer(query)
        optimal_costs = grid_optimal_costs(space, oracle)
        plans = {oracle.optimize(space.point_at(i)) for i in space.grid_indices()}
        coverage = measure_coverage(
            plans, space, PlanCostModel(query), optimal_costs, epsilon=0.0
        )
        assert coverage == 1.0

    def test_empty_plan_set_covers_nothing(self, setup):
        query, space, optimizer = setup
        optimal_costs = grid_optimal_costs(space, make_optimizer(query))
        assert (
            measure_coverage([], space, PlanCostModel(query), optimal_costs, 0.2)
            == 0.0
        )

    def test_single_plan_coverage_grows_with_epsilon(self, setup):
        query, space, optimizer = setup
        oracle = make_optimizer(query)
        optimal_costs = grid_optimal_costs(space, oracle)
        plan = oracle.optimize(space.full_region().pnt_lo)
        model = PlanCostModel(query)
        tight = measure_coverage([plan], space, model, optimal_costs, 0.0)
        loose = measure_coverage([plan], space, model, optimal_costs, 0.5)
        assert loose >= tight
        assert loose > 0.0

    def test_covered_indices_subset_of_grid(self, setup):
        query, space, optimizer = setup
        oracle = make_optimizer(query)
        optimal_costs = grid_optimal_costs(space, oracle)
        plan = oracle.optimize(space.full_region().pnt_hi)
        covered = covered_indices(
            [plan], space, PlanCostModel(query), optimal_costs, 0.2
        )
        assert covered <= set(space.grid_indices())

    def test_robust_region_contains_optimality_region(self, setup):
        query, space, optimizer = setup
        oracle = make_optimizer(query)
        optimal_costs = grid_optimal_costs(space, oracle)
        plan = oracle.optimize(space.full_region().pnt_lo)
        region = robust_region_of_plan(
            plan, space, PlanCostModel(query), optimal_costs, epsilon=0.2
        )
        # Everywhere the plan is optimal it is also ε-robust.
        for index in space.grid_indices():
            if oracle.optimize(space.point_at(index)) == plan:
                assert index in region
