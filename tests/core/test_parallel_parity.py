"""Bitwise parity of the parallel compile pipeline with the serial path.

The `repro.core.parallel` subsystem promises that `--jobs N` changes
*when* the expensive leaf work runs (worker processes, speculatively)
but never *what* the compiler computes: logical solutions, discovery
logs, call accounting, the aging-counter stopping point, plan weights,
and physical plans must all be bitwise-identical to `--jobs 1`.  These
tests drive random queries, spaces, budgets, and epsilon values through
both paths and compare everything observable.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    Cluster,
    EarlyTerminatedRobustPartitioning,
    ParallelConfig,
    ParallelContext,
    RLDConfig,
    RLDOptimizer,
    WeightedRobustPartitioning,
)
from repro.core.parameter_space import ParameterSpace
from repro.core.parallel import SpeculativeOptimizer
from repro.query.optimizer import make_optimizer
from repro.workloads.queries import build_nway, build_q1

# Pool start-up dominates each example, so examples are few but each
# covers a full compile; deadline is disabled for the same reason.
_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _estimate(query, level: int, n_dims: int):
    """Uncertainty on the first ``n_dims`` selectivities."""
    uncertainty = {
        op.selectivity_param: level for op in query.operators[:n_dims]
    }
    return query.default_estimates(uncertainty)


def _partitioning_key(result):
    """Everything a partitioning run observably computes."""
    return (
        result.solution.plans,
        result.solution.discoveries,
        result.optimizer_calls,
        result.regions_processed,
        result.terminated_early,
        result.budget_exhausted,
        result.unresolved_regions,
        result.weight_computations,
        result.weight_skips,
        tuple(
            tuple(result.solution.verified_regions_of(plan))
            for plan in result.solution.plans
        ),
    )


def _run_erp(query, space, *, epsilon, max_calls, jobs, early=True):
    cls = (
        EarlyTerminatedRobustPartitioning if early else WeightedRobustPartitioning
    )
    if jobs == 1:
        partitioner = cls(
            query,
            space,
            optimizer=make_optimizer(query),
            epsilon=epsilon,
            max_calls=max_calls,
        )
        return partitioner.run()
    with ParallelContext(ParallelConfig(jobs=jobs)) as context:
        partitioner = cls(
            query,
            space,
            optimizer=make_optimizer(query),
            epsilon=epsilon,
            max_calls=max_calls,
            parallel=context,
        )
        return partitioner.run()


class TestERPParity:
    @_SETTINGS
    @given(
        n_ops=st.integers(min_value=3, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        chain=st.booleans(),
        n_dims=st.integers(min_value=1, max_value=2),
        level=st.integers(min_value=1, max_value=3),
        epsilon=st.sampled_from([0.1, 0.2, 0.35]),
        max_calls=st.sampled_from([None, 4, 9]),
        jobs=st.sampled_from([2, 4]),
    )
    def test_erp_bitwise_identical(
        self, n_ops, seed, chain, n_dims, level, epsilon, max_calls, jobs
    ):
        query = build_nway(n_ops, seed=seed, chain=chain)
        estimate = _estimate(query, level, n_dims)
        space = ParameterSpace.from_estimates(estimate, points_per_level=2)
        serial = _run_erp(
            query, space, epsilon=epsilon, max_calls=max_calls, jobs=1
        )
        parallel = _run_erp(
            query, space, epsilon=epsilon, max_calls=max_calls, jobs=jobs
        )
        assert _partitioning_key(parallel) == _partitioning_key(serial)

    def test_aging_counter_stop_identical(self):
        # A query/space where ERP demonstrably stops early: the parallel
        # run must stop at the same region count despite workers having
        # speculatively solved points beyond the stopping wave.
        query = build_q1()
        estimate = _estimate(query, 3, 3)
        space = ParameterSpace.from_estimates(estimate, points_per_level=2)
        serial = _run_erp(query, space, epsilon=0.02, max_calls=None, jobs=1)
        parallel = _run_erp(query, space, epsilon=0.02, max_calls=None, jobs=4)
        assert serial.terminated_early
        assert _partitioning_key(parallel) == _partitioning_key(serial)

    def test_budget_exhaustion_identical(self):
        query = build_q1()
        estimate = _estimate(query, 3, 3)
        space = ParameterSpace.from_estimates(estimate, points_per_level=2)
        serial = _run_erp(query, space, epsilon=0.02, max_calls=5, jobs=1)
        parallel = _run_erp(query, space, epsilon=0.02, max_calls=5, jobs=2)
        assert serial.budget_exhausted
        assert _partitioning_key(parallel) == _partitioning_key(serial)

    def test_prefetch_actually_hit(self):
        # Guard against the pool silently never being used: the wrapper
        # must have answered calls from the prefetch store.
        query = build_q1()
        estimate = _estimate(query, 3, 3)
        space = ParameterSpace.from_estimates(estimate, points_per_level=2)
        with ParallelContext(ParallelConfig(jobs=2)) as context:
            partitioner = EarlyTerminatedRobustPartitioning(
                query,
                space,
                optimizer=make_optimizer(query),
                epsilon=0.2,
                parallel=context,
            )
            partitioner.run()
            wrapper = partitioner.optimizer
            assert isinstance(wrapper, SpeculativeOptimizer)
            assert wrapper.prefetch_hits > 0
            assert context.worker_seconds.get("partitioning", 0.0) > 0.0


def _solution_key(solution):
    """Everything an RLD compile observably computes (no timings)."""
    table = solution.load_table
    return (
        solution.logical.plans,
        solution.logical.discoveries,
        solution.partitioning.optimizer_calls,
        solution.partitioning.terminated_early,
        solution.partitioning.unresolved_regions,
        tuple(table.weight_of(plan) for plan in table.plans),
        solution.physical.algorithm,
        solution.physical.physical_plan,
        solution.physical.supported_plans,
        solution.physical.score,
    )


class TestPipelineParity:
    @_SETTINGS
    @given(
        n_ops=st.integers(min_value=3, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_dims=st.integers(min_value=1, max_value=2),
        level=st.integers(min_value=1, max_value=2),
        jobs=st.sampled_from([2, 4]),
        nodes=st.integers(min_value=2, max_value=4),
    )
    def test_full_compile_bitwise_identical(
        self, n_ops, seed, n_dims, level, jobs, nodes
    ):
        query = build_nway(n_ops, seed=seed)
        estimate = _estimate(query, level, n_dims)
        cluster = Cluster.homogeneous(nodes, 420.0)
        serial = RLDOptimizer(
            query, cluster, config=RLDConfig()
        ).solve(estimate)
        parallel = RLDOptimizer(
            query,
            cluster,
            config=RLDConfig(parallel=ParallelConfig(jobs=jobs)),
        ).solve(estimate)
        assert _solution_key(parallel) == _solution_key(serial)

    def test_q1_jobs_sweep_identical(self):
        query = build_q1()
        cluster = Cluster.homogeneous(4, 420.0)
        estimate = _estimate(query, 3, len(query.operators))
        keys = []
        for jobs in (1, 2, 4):
            config = RLDConfig(parallel=ParallelConfig(jobs=jobs))
            solution = RLDOptimizer(query, cluster, config=config).solve(
                estimate
            )
            keys.append(_solution_key(solution))
            if jobs > 1:
                assert "workers:partitioning" in solution.stage_seconds
        assert keys[1] == keys[0]
        assert keys[2] == keys[0]

    def test_serial_config_adds_no_worker_stages(self):
        query = build_q1()
        cluster = Cluster.homogeneous(4, 420.0)
        estimate = _estimate(query, 2, 2)
        solution = RLDOptimizer(query, cluster).solve(estimate)
        assert not any(
            name.startswith("workers:") for name in solution.stage_seconds
        )


class TestParallelConfig:
    def test_rejects_bad_jobs(self):
        import pytest

        with pytest.raises(ValueError, match="jobs"):
            ParallelConfig(jobs=0)

    def test_rejects_unknown_start_method(self):
        import pytest

        with pytest.raises(ValueError, match="start_method"):
            ParallelConfig(jobs=2, start_method="not-a-method")

    def test_enabled_only_above_one_job(self):
        assert not ParallelConfig().enabled
        assert not ParallelConfig(jobs=1).enabled
        assert ParallelConfig(jobs=2).enabled

    def test_spawn_start_method_stays_deterministic(self):
        # Off the fork start method the shared incumbent bound is
        # unavailable; results must be identical regardless.
        query = build_nway(4, seed=11)
        estimate = _estimate(query, 2, 2)
        space = ParameterSpace.from_estimates(estimate, points_per_level=2)
        serial = _run_erp(query, space, epsilon=0.2, max_calls=None, jobs=1)
        with ParallelContext(
            ParallelConfig(jobs=2, start_method="spawn")
        ) as context:
            partitioner = EarlyTerminatedRobustPartitioning(
                query,
                space,
                optimizer=make_optimizer(query),
                epsilon=0.2,
                parallel=context,
            )
            parallel = partitioner.run()
        assert _partitioning_key(parallel) == _partitioning_key(serial)
