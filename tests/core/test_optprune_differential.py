"""Differential tests: OptPrune vs exhaustive ground truth, serial vs parallel.

On small instances (≤ 3 nodes, ≤ 6 operators) the whole search space is
enumerable, so three-way agreement is checkable exactly:

* ``opt_prune`` must match ``exhaustive_physical``'s optimal score
  (§6.4's optimality claim — Figure 14);
* ``opt_prune_heterogeneous`` must match brute force over all ``n^m``
  operator→node assignments;
* the sharded parallel search must reproduce the serial result
  *bitwise* — same plan, same supported set, same score — not merely
  the same score.
"""

from __future__ import annotations

from itertools import product as iter_product

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    Cluster,
    ParallelConfig,
    ParallelContext,
    PhysicalPlan,
    PlanLoadTable,
    exhaustive_physical,
)
from repro.core.optprune import opt_prune, opt_prune_heterogeneous
from repro.query import LogicalPlan

_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: One strategy draw = (n_ops, n_plans, rng seed); loads and weights
#: come from a seeded generator so examples shrink reproducibly.
_INSTANCES = st.tuples(
    st.integers(min_value=3, max_value=6),
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=0, max_value=2**31 - 1),
)


def _random_table(n_ops: int, n_plans: int, seed: int) -> PlanLoadTable:
    """A synthetic load table with distinct per-plan load profiles."""
    rng = np.random.default_rng(seed)
    orders = []
    base = tuple(range(n_ops))
    while len(orders) < n_plans:
        order = tuple(rng.permutation(n_ops).tolist())
        if order not in orders:
            orders.append(order)
    plans = [LogicalPlan(order) for order in orders]
    loads = {
        plan: {op: float(rng.uniform(5.0, 60.0)) for op in base}
        for plan in plans
    }
    raw = rng.uniform(0.1, 1.0, size=len(plans))
    weights = {
        plan: float(raw[i] / raw.sum()) for i, plan in enumerate(plans)
    }
    return PlanLoadTable(plans, loads, weights)


def _result_key(result):
    """The deterministic face of a PhysicalPlanResult (no timings)."""
    return (
        result.algorithm,
        result.physical_plan,
        result.supported_plans,
        result.score,
    )


def _brute_force_score(table: PlanLoadTable, cluster: Cluster) -> float:
    """Ground truth for heterogeneous clusters: all n^m assignments."""
    ops = list(table.operator_ids)
    best = 0.0
    for assignment in iter_product(range(cluster.n_nodes), repeat=len(ops)):
        blocks = [set() for _ in range(cluster.n_nodes)]
        for op_id, node in zip(ops, assignment):
            blocks[node].add(op_id)
        plan = PhysicalPlan(tuple(frozenset(b) for b in blocks))
        mask = plan.support_mask(table, cluster)
        best = max(best, table.score(mask))
    return best


class TestHomogeneousDifferential:
    @_SETTINGS
    @given(
        instance=_INSTANCES,
        n_nodes=st.integers(min_value=2, max_value=3),
        tightness=st.sampled_from([0.6, 1.0, 1.6]),
        jobs=st.sampled_from([2, 4]),
    )
    def test_serial_and_parallel_match_exhaustive(
        self, instance, n_nodes, tightness, jobs
    ):
        n_ops, n_plans, seed = instance
        table = _random_table(n_ops, n_plans, seed)
        # Capacity scaled around the mean per-node share so instances
        # range from mostly-infeasible to fully-feasible.
        total = float(table.load_matrix.sum(axis=1).max())
        capacity = tightness * total / n_nodes
        cluster = Cluster.homogeneous(n_nodes, capacity)

        serial = opt_prune(table, cluster)
        truth = exhaustive_physical(table, cluster)
        assert serial.score == truth.score
        assert set(serial.supported_plans) == set(truth.supported_plans)

        with ParallelContext(ParallelConfig(jobs=jobs)) as context:
            parallel = opt_prune(table, cluster, parallel=context)
        assert _result_key(parallel) == _result_key(serial)

    @_SETTINGS
    @given(instance=_INSTANCES, jobs=st.sampled_from([2, 4]))
    def test_parallel_matches_serial_without_rebalance(self, instance, jobs):
        # rebalance=False exposes the raw branch-and-bound winner — the
        # strictest check that the merge picks the *same* assignment,
        # not merely an equally-scored one.
        n_ops, n_plans, seed = instance
        table = _random_table(n_ops, n_plans, seed)
        total = float(table.load_matrix.sum(axis=1).max())
        cluster = Cluster.homogeneous(3, 0.8 * total / 3)
        serial = opt_prune(table, cluster, rebalance=False)
        with ParallelContext(ParallelConfig(jobs=jobs)) as context:
            parallel = opt_prune(
                table, cluster, rebalance=False, parallel=context
            )
        assert _result_key(parallel) == _result_key(serial)

    def test_infeasible_instance_stays_infeasible_in_parallel(self):
        table = _random_table(4, 3, seed=5)
        cluster = Cluster.homogeneous(2, 1.0)  # nothing fits
        serial = opt_prune(table, cluster)
        with ParallelContext(ParallelConfig(jobs=2)) as context:
            parallel = opt_prune(table, cluster, parallel=context)
        assert not serial.feasible
        assert _result_key(parallel) == _result_key(serial)


class TestHeterogeneousDifferential:
    @_SETTINGS
    @given(
        instance=_INSTANCES,
        capacity_profile=st.sampled_from(
            [(1.4, 0.5), (1.0, 0.8, 0.4), (0.9, 0.9)]
        ),
        jobs=st.sampled_from([2, 4]),
    )
    def test_serial_and_parallel_match_brute_force(
        self, instance, capacity_profile, jobs
    ):
        n_ops, n_plans, seed = instance
        if n_ops > 5:
            n_ops = 5  # keep the n^m brute force cheap
        table = _random_table(n_ops, n_plans, seed)
        total = float(table.load_matrix.sum(axis=1).max())
        share = total / len(capacity_profile)
        cluster = Cluster(tuple(f * share for f in capacity_profile))

        serial = opt_prune_heterogeneous(table, cluster)
        assert serial.score == _brute_force_score(table, cluster)

        with ParallelContext(ParallelConfig(jobs=jobs)) as context:
            parallel = opt_prune_heterogeneous(table, cluster, parallel=context)
        assert _result_key(parallel) == _result_key(serial)

    def test_equal_capacity_symmetry_break_matches_serial(self):
        # All-equal capacities exercise the empty-node symmetry skip in
        # both the shard expansion and the worker replay.
        table = _random_table(5, 3, seed=77)
        total = float(table.load_matrix.sum(axis=1).max())
        cluster = Cluster((total / 2,) * 3)
        serial = opt_prune_heterogeneous(table, cluster)
        with ParallelContext(ParallelConfig(jobs=4)) as context:
            parallel = opt_prune_heterogeneous(table, cluster, parallel=context)
        assert _result_key(parallel) == _result_key(serial)
