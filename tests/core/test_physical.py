"""Tests for clusters, plan load tables, and physical plans (Def. 3)."""

from __future__ import annotations

import pytest

from repro.core import Cluster, PhysicalPlan, PlanLoadTable
from repro.query import LogicalPlan


def _table(weights=(0.6, 0.4)) -> PlanLoadTable:
    """Two plans over three operators with hand-set loads."""
    plan_a = LogicalPlan((0, 1, 2))
    plan_b = LogicalPlan((2, 1, 0))
    loads = {
        plan_a: {0: 30.0, 1: 20.0, 2: 10.0},
        plan_b: {0: 10.0, 1: 25.0, 2: 30.0},
    }
    return PlanLoadTable(
        [plan_a, plan_b], loads, {plan_a: weights[0], plan_b: weights[1]}
    )


class TestCluster:
    def test_homogeneous_factory(self):
        cluster = Cluster.homogeneous(3, 100.0)
        assert cluster.n_nodes == 3
        assert cluster.is_homogeneous
        assert cluster.uniform_capacity == 100.0
        assert cluster.total_capacity == 300.0

    def test_heterogeneous_has_no_uniform_capacity(self):
        cluster = Cluster((100.0, 50.0))
        assert not cluster.is_homogeneous
        with pytest.raises(ValueError, match="heterogeneous"):
            _ = cluster.uniform_capacity

    @pytest.mark.parametrize("caps", [(), (0.0,), (100.0, -1.0)])
    def test_invalid_capacities(self, caps):
        with pytest.raises(ValueError):
            Cluster(tuple(caps))

    def test_invalid_node_count(self):
        with pytest.raises(ValueError, match="n_nodes"):
            Cluster.homogeneous(0, 10.0)


class TestPlanLoadTable:
    def test_plans_ordered_by_weight_desc(self):
        table = _table(weights=(0.2, 0.8))
        assert table.weight_of(table.plans[0]) == 0.8
        assert table.weight_of(table.plans[1]) == 0.2

    def test_mask_round_trip(self):
        table = _table()
        mask = table.mask_of([table.plans[1]])
        assert table.plans_in_mask(mask) == (table.plans[1],)

    def test_score_sums_weights(self):
        table = _table(weights=(0.6, 0.4))
        assert table.score(table.full_mask) == pytest.approx(1.0)
        assert table.score(0) == 0.0

    def test_config_load(self):
        table = _table()
        plan_a_index = table.plans.index(LogicalPlan((0, 1, 2)))
        assert table.config_load(plan_a_index, [0, 2]) == pytest.approx(40.0)

    def test_support_mask_respects_capacity(self):
        table = _table()
        # {0,1} costs 50 under plan A, 35 under plan B.
        mask_40 = table.support_mask([0, 1], capacity=40.0)
        supported = table.plans_in_mask(mask_40)
        assert supported == (LogicalPlan((2, 1, 0)),)
        assert table.support_mask([0, 1], capacity=60.0) == table.full_mask
        assert table.support_mask([0, 1], capacity=1.0) == 0

    def test_max_loads_is_per_operator_max(self):
        table = _table()
        peak = table.max_loads()
        assert peak == {0: 30.0, 1: 25.0, 2: 30.0}

    def test_max_loads_single_plan(self):
        table = _table()
        index = table.plans.index(LogicalPlan((0, 1, 2)))
        loads = table.max_loads(1 << index)
        assert loads == {0: 30.0, 1: 20.0, 2: 10.0}

    def test_max_loads_empty_mask_rejected(self):
        with pytest.raises(ValueError, match="empty plan mask"):
            _table().max_loads(0)

    def test_mismatched_operator_sets_rejected(self):
        plan_a = LogicalPlan((0, 1))
        plan_b = LogicalPlan((1, 0))
        loads = {plan_a: {0: 1.0, 1: 1.0}, plan_b: {0: 1.0}}
        with pytest.raises(ValueError, match="same operator set"):
            PlanLoadTable([plan_a, plan_b], loads, {plan_a: 0.5, plan_b: 0.5})


class TestPhysicalPlan:
    def test_valid_partition(self):
        plan = PhysicalPlan((frozenset({0, 1}), frozenset({2}), frozenset()))
        assert plan.covers([0, 1, 2])
        assert plan.node_of(2) == 1
        assert plan.nodes_used == 2

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="multiple nodes"):
            PhysicalPlan((frozenset({0, 1}), frozenset({1})))

    def test_covers_detects_missing_operator(self):
        plan = PhysicalPlan((frozenset({0}),))
        assert not plan.covers([0, 1])

    def test_node_of_unplaced_raises(self):
        plan = PhysicalPlan((frozenset({0}),))
        with pytest.raises(KeyError):
            plan.node_of(7)

    def test_support_mask_is_and_of_configs(self):
        table = _table()
        cluster = Cluster.homogeneous(2, 40.0)
        plan = PhysicalPlan((frozenset({0, 1}), frozenset({2})))
        # {0,1}: A=50 (too big), B=35 ok → only B.  {2}: A=10, B=30 both ok.
        mask = plan.support_mask(table, cluster)
        assert table.plans_in_mask(mask) == (LogicalPlan((2, 1, 0)),)

    def test_support_mask_empty_node_neutral(self):
        table = _table()
        cluster = Cluster.homogeneous(3, 100.0)
        plan = PhysicalPlan((frozenset({0, 1, 2}), frozenset(), frozenset()))
        assert plan.support_mask(table, cluster) == table.full_mask

    def test_support_mask_node_count_mismatch(self):
        table = _table()
        plan = PhysicalPlan((frozenset({0, 1, 2}),))
        with pytest.raises(ValueError, match="nodes"):
            plan.support_mask(table, Cluster.homogeneous(2, 100.0))
