"""Tests for plan diagrams, reduction, and rendering."""

from __future__ import annotations

import pytest

from repro.core import ParameterSpace
from repro.core.diagram import compute_plan_diagram
from repro.query import make_optimizer
from repro.workloads import build_q1


@pytest.fixture(scope="module")
def diagram():
    query = build_q1()
    estimate = query.default_estimates({"sel:1": 4, "sel:3": 4})
    space = ParameterSpace.from_estimates(estimate, points_per_level=2)
    return compute_plan_diagram(space, make_optimizer(query))


class TestComputeDiagram:
    def test_every_cell_assigned(self, diagram):
        assert len(diagram.assignment) == diagram.space.n_points
        assert set(diagram.assignment) == set(diagram.space.grid_indices())

    def test_assignment_is_pointwise_optimal(self, diagram):
        oracle = make_optimizer(build_q1())
        for index in list(diagram.space.grid_indices())[::7]:
            point = diagram.space.point_at(index)
            expected = oracle.optimize(point)
            assert diagram.assignment[index] == expected
            assert diagram.optimal_costs[index] == pytest.approx(
                oracle.plan_cost(expected, point)
            )

    def test_areas_sum_to_one(self, diagram):
        total = sum(diagram.area_of(plan) for plan in diagram.plans)
        assert total == pytest.approx(1.0)

    def test_plans_sorted_by_area(self, diagram):
        areas = [diagram.area_of(plan) for plan in diagram.plans]
        assert areas == sorted(areas, reverse=True)

    def test_multiple_plans_found(self, diagram):
        assert diagram.cardinality >= 3


class TestReduction:
    def test_reduction_never_increases_cardinality(self, diagram):
        reduced = diagram.reduce(0.1)
        assert reduced.cardinality <= diagram.cardinality

    def test_zero_epsilon_is_identity(self, diagram):
        # At ε = 0 a plan can only be swallowed by one with identical
        # costs on all its cells — which deterministic tie-breaking
        # already collapsed — so the diagram is unchanged.
        reduced = diagram.reduce(0.0)
        assert reduced.assignment == diagram.assignment

    def test_large_epsilon_collapses_to_one_plan(self, diagram):
        reduced = diagram.reduce(10.0)
        assert reduced.cardinality == 1

    def test_reduced_assignment_respects_epsilon(self, diagram):
        epsilon = 0.2
        reduced = diagram.reduce(epsilon)
        for index, plan in reduced.assignment.items():
            point = diagram.space.point_at(index)
            cost = diagram.cost_model.plan_cost(plan, point)
            assert cost <= (1 + epsilon) * diagram.optimal_costs[index] * (1 + 1e-9)

    def test_negative_epsilon_rejected(self, diagram):
        with pytest.raises(ValueError):
            diagram.reduce(-0.1)


class TestRender:
    def test_render_has_one_row_per_first_dim_step(self, diagram):
        text = diagram.render(legend=False)
        rows = text.splitlines()
        assert len(rows) == diagram.space.shape[0]
        assert all(len(row) == diagram.space.shape[1] for row in rows)

    def test_legend_lists_every_plan(self, diagram):
        text = diagram.render()
        for plan in diagram.plans:
            assert plan.label in text

    def test_non_2d_rejected(self):
        query = build_q1()
        estimate = query.default_estimates({"sel:1": 2})
        space = ParameterSpace.from_estimates(estimate)
        diagram_1d = compute_plan_diagram(space, make_optimizer(query))
        with pytest.raises(ValueError, match="2-D"):
            diagram_1d.render()
