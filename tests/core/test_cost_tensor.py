"""Tests for the shared dense cost/load tensor cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CostTensorCache, ParameterSpace, lexicographic_argmin
from repro.core.parameter_space import Dimension
from repro.query import LogicalPlan, PlanCostModel


@pytest.fixture
def space() -> ParameterSpace:
    return ParameterSpace(
        [
            Dimension("sel:0", 0.3, 0.9, 4),
            Dimension("sel:2", 0.2, 0.6, 3),
            Dimension("rate", 80.0, 120.0, 3),
        ]
    )


@pytest.fixture
def plans(three_op_query) -> list[LogicalPlan]:
    return [
        LogicalPlan((0, 1, 2)),
        LogicalPlan((2, 1, 0)),
        LogicalPlan((1, 2, 0)),
    ]


@pytest.fixture
def cache(three_op_query, space, plans) -> CostTensorCache:
    return CostTensorCache(space, PlanCostModel(three_op_query), plans)


class TestCostTensor:
    def test_matches_scalar_bitwise_in_grid_order(self, cache, three_op_query):
        model = PlanCostModel(three_op_query)
        tensor = cache.cost_tensor
        assert tensor.shape == (cache.n_plans, cache.n_points)
        for i, plan in enumerate(cache.plans):
            for flat, index in enumerate(cache.space.grid_indices()):
                point = cache.space.point_at(index)
                assert tensor[i, flat] == model.plan_cost(plan, point)

    def test_load_tensor_matches_scalar_bitwise(self, cache, three_op_query):
        model = PlanCostModel(three_op_query)
        for i, plan in enumerate(cache.plans):
            loads = cache.load_tensor(i)
            for flat, index in enumerate(cache.space.grid_indices()):
                scalar = model.operator_loads(plan, cache.space.point_at(index))
                for op_id, load in scalar.items():
                    assert loads[op_id][flat] == load

    def test_tensors_are_memoized_and_read_only(self, cache):
        assert cache.cost_tensor is cache.cost_tensor
        assert cache.load_tensor(0) is cache.load_tensor(0)
        with pytest.raises(ValueError):
            cache.cost_tensor[0, 0] = 1.0
        assert cache.build_seconds > 0.0

    def test_min_costs_is_the_dedup_helper(self, cache, three_op_query):
        model = PlanCostModel(three_op_query)
        best = cache.min_costs()
        for flat, index in enumerate(cache.space.grid_indices()):
            point = cache.space.point_at(index)
            assert best[flat] == min(
                model.plan_cost(plan, point) for plan in cache.plans
            )

    def test_min_costs_over_subset(self, cache):
        subset = cache.min_costs([0, 2])
        expected = np.minimum(cache.cost_tensor[0], cache.cost_tensor[2])
        assert np.array_equal(subset, expected)

    def test_best_plan_matches_scalar_tie_break(self, cache, three_op_query):
        model = PlanCostModel(three_op_query)
        best = cache.best_plan_per_point()
        for flat, index in enumerate(cache.space.grid_indices()):
            point = cache.space.point_at(index)
            winner = min(
                cache.plans,
                key=lambda p: (model.plan_cost(p, point), p.order),
            )
            assert cache.plans[best[flat]] == winner

    def test_best_plan_subset_returns_original_indices(self, cache):
        best = cache.best_plan_per_point([2, 1])
        assert set(np.unique(best)) <= {1, 2}

    def test_flat_indices_round_trip(self, cache):
        indices = list(cache.space.grid_indices())
        flats = cache.flat_indices(indices)
        assert np.array_equal(flats, np.arange(cache.n_points))

    def test_plan_index_lookup(self, cache, plans):
        assert cache.plan_index(plans[1]) == 1
        with pytest.raises(ValueError):
            cache.plan_index(LogicalPlan((0, 2, 1)))

    def test_empty_plan_set_rejected(self, three_op_query, space):
        with pytest.raises(ValueError):
            CostTensorCache(space, PlanCostModel(three_op_query), [])


class TestLexicographicArgmin:
    def test_single_key_with_rank_tie_break(self):
        keys = [np.array([[1.0, 5.0, 2.0], [1.0, 4.0, 2.0]])]
        ranks = np.array([1, 0])
        # col 0: exact tie -> rank 0 wins (row 1); col 1: row 1 smaller;
        # col 2: exact tie -> rank 0 wins (row 1).
        assert lexicographic_argmin(keys, ranks).tolist() == [1, 1, 1]

    def test_secondary_key_breaks_primary_ties(self):
        primary = np.array([[1.0, 1.0], [1.0, 2.0]])
        secondary = np.array([[9.0, 0.0], [3.0, 0.0]])
        ranks = np.array([0, 1])
        assert lexicographic_argmin(
            [primary, secondary], ranks
        ).tolist() == [1, 0]

    def test_matches_python_min_on_random_keys(self):
        rng = np.random.default_rng(3)
        keys = [
            rng.integers(0, 4, size=(5, 40)).astype(float) for _ in range(2)
        ]
        ranks = rng.permutation(5)
        result = lexicographic_argmin(keys, ranks)
        for col in range(40):
            expected = min(
                range(5),
                key=lambda p: (keys[0][p, col], keys[1][p, col], ranks[p]),
            )
            assert result[col] == expected

    def test_requires_a_key(self):
        with pytest.raises(ValueError):
            lexicographic_argmin([], np.array([0]))
