"""Tests for ES, RS, WRP, and ERP robust logical solution algorithms."""

from __future__ import annotations

import pytest

from repro.core import (
    EarlyTerminatedRobustPartitioning,
    ExhaustiveSearch,
    ParameterSpace,
    RandomSearch,
    WeightedRobustPartitioning,
    aging_threshold,
    grid_optimal_costs,
    measure_coverage,
)
from repro.query import PlanCostModel, make_optimizer


@pytest.fixture
def setup(four_op_query):
    # Asymmetric levels make op1/op2's ranks cross *between the space
    # corners*: the optimal ordering at pntLo is op3->op2->op1->op0 but
    # at pntHi it is op3->op1->op2->op0, so the space genuinely
    # contains multiple optimal/robust plans.
    est = four_op_query.default_estimates({"sel:1": 1, "sel:2": 3})
    space = ParameterSpace.from_estimates(est, points_per_level=3)
    return four_op_query, space


def _coverage(query, space, plans, epsilon):
    oracle = make_optimizer(query)
    optimal_costs = grid_optimal_costs(space, oracle)
    return measure_coverage(plans, space, PlanCostModel(query), optimal_costs, epsilon)


class TestAgingThreshold:
    def test_theorem_1_formula(self):
        # c0 = (1 + ε^{-1/2}) / δ with ε=0.25, δ=0.3 → (1+2)/0.3 = 10.
        assert aging_threshold(0.25, 0.3) == 10

    def test_rounds_up(self):
        assert aging_threshold(0.25, 0.4) == 8  # 7.5 → 8

    @pytest.mark.parametrize("eps,delta", [(0.0, 0.3), (1.0, 0.3), (0.25, 0.0), (0.25, 1.5)])
    def test_invalid_parameters(self, eps, delta):
        with pytest.raises(ValueError):
            aging_threshold(eps, delta)


class TestExhaustiveSearch:
    def test_one_call_per_grid_point(self, setup):
        query, space = setup
        result = ExhaustiveSearch(query, space, epsilon=0.2).run()
        assert result.optimizer_calls == space.n_points
        assert not result.terminated_early
        assert result.unresolved_regions == 0

    def test_full_coverage_at_epsilon_zero(self, setup):
        query, space = setup
        result = ExhaustiveSearch(query, space, epsilon=0.0).run()
        assert _coverage(query, space, result.solution.plans, 0.0) == 1.0

    def test_budget_limits_calls(self, setup):
        query, space = setup
        result = ExhaustiveSearch(query, space, epsilon=0.2, max_calls=10).run()
        assert result.optimizer_calls == 10
        assert result.budget_exhausted

    def test_discovery_log_monotone(self, setup):
        query, space = setup
        result = ExhaustiveSearch(query, space).run()
        calls = [d.at_call for d in result.solution.discoveries]
        assert calls == sorted(calls)
        assert len(calls) == len(result.solution)


class TestRandomSearch:
    def test_deterministic_with_seed(self, setup):
        query, space = setup
        a = RandomSearch(query, space, seed=3).run()
        b = RandomSearch(query, space, seed=3).run()
        assert a.solution.plans == b.solution.plans
        assert a.optimizer_calls == b.optimizer_calls

    def test_stops_after_patience(self, setup):
        query, space = setup
        result = RandomSearch(query, space, patience=5, seed=1).run()
        assert result.terminated_early
        # Last `patience` probes were all misses.
        assert result.optimizer_calls >= 5

    def test_budget_respected(self, setup):
        query, space = setup
        result = RandomSearch(query, space, max_calls=7, patience=10_000, seed=1).run()
        assert result.optimizer_calls <= 7

    def test_finds_subset_of_es_plans(self, setup):
        query, space = setup
        es_plans = set(ExhaustiveSearch(query, space).run().solution.plans)
        rs_plans = set(RandomSearch(query, space, seed=2).run().solution.plans)
        assert rs_plans <= es_plans


class TestWRP:
    def test_full_coverage_when_run_to_completion(self, setup):
        query, space = setup
        epsilon = 0.2
        result = WeightedRobustPartitioning(query, space, epsilon=epsilon).run()
        assert not result.terminated_early
        coverage = _coverage(query, space, result.solution.plans, epsilon)
        assert coverage == 1.0

    def test_fewer_calls_than_exhaustive(self, setup):
        query, space = setup
        wrp = WeightedRobustPartitioning(query, space, epsilon=0.2).run()
        es = ExhaustiveSearch(query, space, epsilon=0.2).run()
        assert wrp.optimizer_calls < es.optimizer_calls

    def test_verified_regions_recorded(self, setup):
        query, space = setup
        result = WeightedRobustPartitioning(query, space, epsilon=0.3).run()
        regions = [
            region
            for plan in result.solution.plans
            for region in result.solution.verified_regions_of(plan)
        ]
        assert regions
        total_points = sum(r.n_points for r in regions)
        assert total_points == space.n_points  # regions tile the space

    def test_weight_skips_counted(self, setup):
        query, space = setup
        result = WeightedRobustPartitioning(query, space, epsilon=0.0).run()
        # ε = 0 forces real partitioning, so weights must be computed.
        assert result.regions_processed > 1
        assert result.weight_computations + result.weight_skips > 0


class TestERP:
    def test_never_more_calls_than_wrp(self, setup):
        query, space = setup
        erp = EarlyTerminatedRobustPartitioning(
            query, space, epsilon=0.2, failure_probability=0.25, area_bound=0.3
        ).run()
        wrp = WeightedRobustPartitioning(query, space, epsilon=0.2).run()
        assert erp.optimizer_calls <= wrp.optimizer_calls

    def test_early_stop_flag_set_when_triggered(self, setup):
        query, space = setup
        result = EarlyTerminatedRobustPartitioning(
            query, space, epsilon=0.2, failure_probability=0.25, area_bound=0.9
        ).run()
        # Tiny threshold (c0 = ceil(3/0.9) = 4) almost surely triggers.
        if result.terminated_early:
            assert result.unresolved_regions >= 0

    def test_high_coverage_despite_early_stop(self, setup):
        query, space = setup
        epsilon = 0.2
        result = EarlyTerminatedRobustPartitioning(
            query, space, epsilon=epsilon
        ).run()
        coverage = _coverage(query, space, result.solution.plans, epsilon)
        assert coverage >= 0.7  # Theorem 1: missed area is bounded

    def test_deterministic(self, setup):
        query, space = setup
        a = EarlyTerminatedRobustPartitioning(query, space, epsilon=0.2).run()
        b = EarlyTerminatedRobustPartitioning(query, space, epsilon=0.2).run()
        assert a.solution.plans == b.solution.plans
        assert a.optimizer_calls == b.optimizer_calls

    def test_looser_epsilon_needs_fewer_plans(self, setup):
        query, space = setup
        tight = EarlyTerminatedRobustPartitioning(query, space, epsilon=0.05).run()
        loose = EarlyTerminatedRobustPartitioning(query, space, epsilon=0.5).run()
        assert len(loose.solution) <= len(tight.solution)

    def test_uniform_weight_ablation_runs(self, setup):
        query, space = setup
        result = EarlyTerminatedRobustPartitioning(
            query, space, epsilon=0.2, use_cost_weights=False
        ).run()
        assert len(result.solution) >= 1

    def test_max_calls_budget(self, setup):
        query, space = setup
        result = EarlyTerminatedRobustPartitioning(
            query, space, epsilon=0.0, max_calls=4
        ).run()
        # ε = 0 cannot finish in 4 calls on a multi-plan space, so the
        # budget must trip (a region check may add up to 2 calls).
        assert result.optimizer_calls <= 5
        assert result.budget_exhausted or result.terminated_early
