"""Tests for OptPrune: optimality, pruning, and edge cases."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Cluster,
    PlanLoadTable,
    enumerate_feasible_configs,
    exhaustive_physical,
    greedy_phy,
    opt_prune,
)
from repro.query import LogicalPlan


def _table(loads_by_plan, weights=None):
    plans = [LogicalPlan(order) for order in loads_by_plan]
    loads = {LogicalPlan(order): table for order, table in loads_by_plan.items()}
    if weights is None:
        weights = {plan: 1.0 / len(plans) for plan in plans}
    else:
        weights = {LogicalPlan(o): w for o, w in weights.items()}
    return PlanLoadTable(plans, loads, weights)


class TestFeasibleConfigs:
    def test_all_subsets_when_capacity_huge(self):
        table = _table({(0, 1, 2): {0: 1.0, 1: 1.0, 2: 1.0}})
        configs = enumerate_feasible_configs(table, capacity=100.0)
        assert len(configs) == 7  # 2^3 − 1 non-empty subsets

    def test_oversized_subsets_excluded(self):
        table = _table({(0, 1): {0: 40.0, 1: 40.0}})
        configs = enumerate_feasible_configs(table, capacity=50.0)
        # Singletons fit; the pair (80) does not.
        assert set(configs) == {0b01, 0b10}

    def test_mask_reflects_which_plans_fit(self):
        table = _table(
            {
                (0, 1): {0: 40.0, 1: 10.0},
                (1, 0): {0: 10.0, 1: 40.0},
            }
        )
        configs = enumerate_feasible_configs(table, capacity=30.0)
        # Subset {op0} fits plan with load 10 but not the one with 40.
        op0_bit = 0b01
        assert op0_bit in configs
        assert bin(configs[op0_bit]).count("1") == 1

    def test_too_many_operators_rejected(self):
        ops = {i: 1.0 for i in range(19)}
        table = _table({tuple(range(19)): ops})
        with pytest.raises(ValueError, match="at most 18"):
            enumerate_feasible_configs(table, capacity=100.0)


class TestOptPrune:
    def test_matches_exhaustive_on_small_instance(self):
        table = _table(
            {
                (0, 1, 2, 3): {0: 35.0, 1: 25.0, 2: 20.0, 3: 10.0},
                (3, 2, 1, 0): {0: 12.0, 1: 28.0, 2: 26.0, 3: 30.0},
                (1, 0, 2, 3): {0: 20.0, 1: 40.0, 2: 15.0, 3: 8.0},
            },
            weights={(0, 1, 2, 3): 0.5, (3, 2, 1, 0): 0.3, (1, 0, 2, 3): 0.2},
        )
        cluster = Cluster.homogeneous(2, 60.0)
        optimal = exhaustive_physical(table, cluster)
        pruned = opt_prune(table, cluster)
        assert pruned.score == pytest.approx(optimal.score)

    def test_never_worse_than_greedy(self):
        table = _table(
            {
                (0, 1, 2): {0: 45.0, 1: 35.0, 2: 25.0},
                (2, 1, 0): {0: 20.0, 1: 40.0, 2: 45.0},
            },
            weights={(0, 1, 2): 0.55, (2, 1, 0): 0.45},
        )
        cluster = Cluster.homogeneous(2, 70.0)
        greedy = greedy_phy(table, cluster)
        pruned = opt_prune(table, cluster)
        assert pruned.score >= greedy.score - 1e-12

    def test_perfect_score_short_circuits(self):
        table = _table(
            {
                (0, 1): {0: 10.0, 1: 10.0},
                (1, 0): {0: 10.0, 1: 10.0},
            }
        )
        result = opt_prune(table, Cluster.homogeneous(2, 100.0))
        assert result.score == pytest.approx(1.0)
        assert set(result.supported_plans) == set(table.plans)

    def test_infeasible_instance(self):
        table = _table({(0,): {0: 100.0}})
        result = opt_prune(table, Cluster.homogeneous(1, 10.0))
        assert not result.feasible
        assert result.score == 0.0

    def test_result_is_valid_partition(self):
        table = _table(
            {
                (0, 1, 2, 3): {0: 30.0, 1: 25.0, 2: 20.0, 3: 15.0},
                (3, 2, 1, 0): {0: 15.0, 1: 20.0, 2: 25.0, 3: 30.0},
            }
        )
        cluster = Cluster.homogeneous(3, 45.0)
        result = opt_prune(table, cluster)
        assert result.physical_plan is not None
        assert result.physical_plan.covers([0, 1, 2, 3])
        assert result.physical_plan.n_nodes == cluster.n_nodes

    def test_requires_homogeneous_cluster(self):
        table = _table({(0,): {0: 1.0}})
        with pytest.raises(ValueError, match="heterogeneous"):
            opt_prune(table, Cluster((10.0, 20.0)))


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_optprune_equals_exhaustive_property(data):
    """Property: OptPrune's score equals full enumeration on random instances."""
    n_ops = data.draw(st.integers(3, 5), label="n_ops")
    n_plans = data.draw(st.integers(1, 3), label="n_plans")
    n_nodes = data.draw(st.integers(1, 3), label="n_nodes")
    capacity = data.draw(st.floats(30.0, 120.0), label="capacity")

    orders = [tuple(range(n_ops))]
    if n_plans >= 2:
        orders.append(tuple(reversed(range(n_ops))))
    if n_plans >= 3:
        orders.append(tuple(range(1, n_ops)) + (0,))

    loads_by_plan = {}
    for order in orders:
        loads_by_plan[order] = {
            op: data.draw(st.floats(1.0, 50.0), label=f"load{order}{op}")
            for op in range(n_ops)
        }
    table = _table(loads_by_plan)
    cluster = Cluster.homogeneous(n_nodes, capacity)
    optimal = exhaustive_physical(table, cluster)
    pruned = opt_prune(table, cluster)
    assert pruned.score == pytest.approx(optimal.score, abs=1e-9)
