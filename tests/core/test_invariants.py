"""Cross-cutting property tests over randomly generated instances.

These pin the structural invariants the algorithms rely on, against
hypothesis-generated queries, spaces, and load tables — the places
where a subtle regression would silently corrupt results rather than
crash.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Cluster,
    EarlyTerminatedRobustPartitioning,
    ExhaustiveSearch,
    ParameterSpace,
    PlanLoadTable,
    WeightedRobustPartitioning,
    greedy_phy,
    grid_optimal_costs,
    measure_coverage,
    opt_prune,
)
from repro.query import LogicalPlan, Operator, PlanCostModel, Query, StreamSchema, make_optimizer


def _random_query(data, n_ops: int) -> Query:
    ops = tuple(
        Operator(
            op_id=i,
            name=f"op{i}",
            cost_per_tuple=data.draw(
                st.floats(0.2, 5.0), label=f"cost{i}"
            ),
            selectivity=data.draw(
                st.floats(0.2, 1.2), label=f"sel{i}"
            ),
        )
        for i in range(n_ops)
    )
    return Query("prop", ops, (StreamSchema("S", base_rate=100.0),))


class TestPartitioningInvariants:
    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_wrp_verified_regions_tile_space(self, data):
        """WRP's verified regions partition the grid exactly."""
        query = _random_query(data, data.draw(st.integers(3, 4), label="n"))
        level = data.draw(st.integers(1, 3), label="level")
        dims = {f"sel:0": level, f"sel:1": level}
        space = ParameterSpace.from_estimates(
            query.default_estimates(dims), points_per_level=2
        )
        result = WeightedRobustPartitioning(query, space, epsilon=0.15).run()
        regions = [
            region
            for plan in result.solution.plans
            for region in result.solution.verified_regions_of(plan)
        ]
        covered = [idx for region in regions for idx in region.indices()]
        assert sorted(covered) == sorted(space.grid_indices())

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_erp_never_more_calls_and_subset_of_es_plans(self, data):
        """ERP's plan set ⊆ ES's, at no more optimizer calls."""
        query = _random_query(data, 4)
        space = ParameterSpace.from_estimates(
            query.default_estimates({"sel:1": 2, "sel:2": 2}),
            points_per_level=2,
        )
        erp = EarlyTerminatedRobustPartitioning(query, space, epsilon=0.1).run()
        es = ExhaustiveSearch(query, space, epsilon=0.1).run()
        assert erp.optimizer_calls <= es.optimizer_calls
        assert set(erp.solution.plans) <= set(es.solution.plans)

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_es_full_coverage_at_its_own_epsilon(self, data):
        """The set of all pointwise optima always ε-covers the grid."""
        query = _random_query(data, 3)
        space = ParameterSpace.from_estimates(
            query.default_estimates({"sel:0": 2, "sel:2": 2}),
            points_per_level=2,
        )
        es = ExhaustiveSearch(query, space, epsilon=0.0).run()
        optimal = grid_optimal_costs(space, make_optimizer(query))
        coverage = measure_coverage(
            es.solution.plans, space, PlanCostModel(query), optimal, 0.0
        )
        assert coverage == 1.0


class TestLoadTableInvariants:
    def _table(self, data, n_ops: int, n_plans: int) -> PlanLoadTable:
        orders = [tuple(range(n_ops))]
        if n_plans >= 2:
            orders.append(tuple(reversed(range(n_ops))))
        if n_plans >= 3:
            orders.append(tuple(range(1, n_ops)) + (0,))
        loads = {
            LogicalPlan(order): {
                op: data.draw(st.floats(1.0, 60.0), label=f"l{order}{op}")
                for op in range(n_ops)
            }
            for order in orders
        }
        weights = {plan: 1.0 / len(loads) for plan in loads}
        return PlanLoadTable(list(loads), loads, weights)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_support_mask_antitone_in_operators(self, data):
        """Adding operators to a configuration never gains plans."""
        table = self._table(
            data, data.draw(st.integers(3, 5), label="ops"), 3
        )
        capacity = data.draw(st.floats(40.0, 150.0), label="cap")
        ops = list(table.operator_ids)
        small = ops[:2]
        large = ops[:3]
        small_mask = table.support_mask(small, capacity)
        large_mask = table.support_mask(large, capacity)
        assert large_mask & small_mask == large_mask

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_support_mask_monotone_in_capacity(self, data):
        """More capacity never loses plans."""
        table = self._table(data, 4, 2)
        ops = list(table.operator_ids)[:3]
        lo = table.support_mask(ops, 50.0)
        hi = table.support_mask(ops, 120.0)
        assert lo & hi == lo

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_greedy_never_beats_optprune(self, data):
        table = self._table(data, 4, 3)
        cluster = Cluster.homogeneous(
            data.draw(st.integers(1, 3), label="nodes"),
            data.draw(st.floats(40.0, 200.0), label="cap"),
        )
        greedy = greedy_phy(table, cluster)
        optimal = opt_prune(table, cluster)
        assert greedy.score <= optimal.score + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_optprune_result_is_valid_partition(self, data):
        table = self._table(data, 4, 2)
        cluster = Cluster.homogeneous(2, data.draw(st.floats(60.0, 250.0), label="cap"))
        result = opt_prune(table, cluster)
        if result.physical_plan is not None:
            assert result.physical_plan.covers(table.operator_ids)
            # The reported support matches a recomputation from scratch.
            mask = result.physical_plan.support_mask(table, cluster)
            assert table.plans_in_mask(mask) == result.supported_plans


class TestSolutionInvariants:
    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_plan_weights_nonnegative_and_bounded(self, data):
        query = _random_query(data, 3)
        space = ParameterSpace.from_estimates(
            query.default_estimates({"sel:0": 2, "sel:1": 2}),
            points_per_level=2,
        )
        result = EarlyTerminatedRobustPartitioning(query, space, epsilon=0.2).run()
        weights = result.solution.plan_weights()
        assert all(w >= 0 for w in weights.values())
        assert sum(weights.values()) <= 1.0 + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_worst_case_loads_dominate_typical(self, data):
        query = _random_query(data, 3)
        space = ParameterSpace.from_estimates(
            query.default_estimates({"sel:0": 2, "sel:1": 2}),
            points_per_level=2,
        )
        solution = EarlyTerminatedRobustPartitioning(
            query, space, epsilon=0.2
        ).run().solution
        for plan in solution.plans:
            worst = solution.worst_case_loads(plan)
            typical = solution.expected_loads(plan)
            for op_id in query.operator_ids:
                assert worst[op_id] >= typical[op_id] - 1e-9
