"""Tests for the heterogeneous-cluster OptPrune extension."""

from __future__ import annotations

from itertools import product as iter_product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Cluster, PhysicalPlan, PlanLoadTable
from repro.core.optprune import opt_prune, opt_prune_heterogeneous
from repro.query import LogicalPlan


def _table(loads_by_plan, weights=None):
    plans = [LogicalPlan(order) for order in loads_by_plan]
    loads = {LogicalPlan(order): table for order, table in loads_by_plan.items()}
    if weights is None:
        weights = {plan: 1.0 / len(plans) for plan in plans}
    else:
        weights = {LogicalPlan(o): w for o, w in weights.items()}
    return PlanLoadTable(plans, loads, weights)


def _brute_force_score(table: PlanLoadTable, cluster: Cluster) -> float:
    """Ground truth: every operator→node assignment, no pruning."""
    ops = list(table.operator_ids)
    best = 0.0
    for assignment in iter_product(range(cluster.n_nodes), repeat=len(ops)):
        blocks = [set() for _ in range(cluster.n_nodes)]
        for op_id, node in zip(ops, assignment):
            blocks[node].add(op_id)
        plan = PhysicalPlan(tuple(frozenset(b) for b in blocks))
        mask = plan.support_mask(table, cluster)
        best = max(best, table.score(mask))
    return best


class TestHeterogeneous:
    def test_exploits_the_big_machine(self):
        # One plan needs 70 units co-located; only node 0 can host it.
        table = _table({(0, 1): {0: 40.0, 1: 30.0}})
        cluster = Cluster((80.0, 20.0))
        result = opt_prune_heterogeneous(table, cluster)
        assert result.feasible
        assert result.physical_plan.node_of(0) == 0
        assert result.physical_plan.node_of(1) == 0

    def test_matches_brute_force_on_small_instances(self):
        table = _table(
            {
                (0, 1, 2): {0: 35.0, 1: 25.0, 2: 15.0},
                (2, 1, 0): {0: 15.0, 1: 30.0, 2: 40.0},
            },
            weights={(0, 1, 2): 0.7, (2, 1, 0): 0.3},
        )
        cluster = Cluster((60.0, 40.0, 25.0))
        result = opt_prune_heterogeneous(table, cluster)
        assert result.score == pytest.approx(_brute_force_score(table, cluster))

    def test_agrees_with_homogeneous_optprune(self):
        table = _table(
            {
                (0, 1, 2, 3): {0: 30.0, 1: 25.0, 2: 20.0, 3: 10.0},
                (3, 2, 1, 0): {0: 12.0, 1: 22.0, 2: 28.0, 3: 30.0},
            }
        )
        cluster = Cluster.homogeneous(2, 55.0)
        hetero = opt_prune_heterogeneous(table, cluster)
        homo = opt_prune(table, cluster)
        assert hetero.score == pytest.approx(homo.score)

    def test_infeasible_instance(self):
        table = _table({(0,): {0: 100.0}})
        result = opt_prune_heterogeneous(table, Cluster((10.0, 5.0)))
        assert not result.feasible

    def test_result_is_valid_partition(self):
        table = _table(
            {(0, 1, 2): {0: 20.0, 1: 20.0, 2: 20.0}}
        )
        cluster = Cluster((45.0, 25.0))
        result = opt_prune_heterogeneous(table, cluster)
        assert result.physical_plan is not None
        assert result.physical_plan.covers([0, 1, 2])
        assert result.algorithm == "OptPrune-hetero"


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_heterogeneous_optprune_matches_brute_force_property(data):
    """Property: score equals unpruned enumeration on random instances."""
    n_ops = data.draw(st.integers(2, 4), label="n_ops")
    orders = [tuple(range(n_ops)), tuple(reversed(range(n_ops)))]
    loads_by_plan = {
        order: {
            op: data.draw(st.floats(1.0, 40.0), label=f"l{order}{op}")
            for op in range(n_ops)
        }
        for order in orders
    }
    table = _table(loads_by_plan)
    n_nodes = data.draw(st.integers(1, 3), label="nodes")
    capacities = tuple(
        data.draw(st.floats(20.0, 120.0), label=f"cap{i}") for i in range(n_nodes)
    )
    cluster = Cluster(capacities)
    result = opt_prune_heterogeneous(table, cluster)
    assert result.score == pytest.approx(
        _brute_force_score(table, cluster), abs=1e-9
    )
