"""Tests for the normal occurrence-probability model (§5.2)."""

from __future__ import annotations

import pytest

from repro.core import Dimension, NormalOccurrenceModel, ParameterSpace, Region


@pytest.fixture
def unit_space() -> ParameterSpace:
    return ParameterSpace(
        [Dimension("x", 0.0, 1.0, 9), Dimension("y", 0.0, 1.0, 9)]
    )


class TestCellProbability:
    def test_cells_sum_to_region_mass(self, unit_space):
        model = NormalOccurrenceModel(unit_space)
        total = sum(
            model.cell_probability(idx) for idx in unit_space.grid_indices()
        )
        assert total == pytest.approx(
            model.region_probability(unit_space.full_region()), rel=1e-9
        )

    def test_center_cell_heaviest(self, unit_space):
        model = NormalOccurrenceModel(unit_space)
        center = model.cell_probability((4, 4))
        corner = model.cell_probability((0, 0))
        assert center > corner

    def test_symmetry_about_mean(self, unit_space):
        model = NormalOccurrenceModel(unit_space)
        assert model.cell_probability((1, 4)) == pytest.approx(
            model.cell_probability((7, 4)), rel=1e-9
        )

    def test_total_mass_below_one(self, unit_space):
        # The normal's tails extend past the modelled space.
        model = NormalOccurrenceModel(unit_space)
        assert 0.8 < model.total_mass() < 1.0

    def test_region_mass_matches_analytic_normal(self):
        # Example 5's setting: µ=0.5, σ=0.2 on a unit axis.  Indices 3..5
        # own the value interval [0.25, 0.55] (half-cell margins), whose
        # normal mass is Φ(0.25) − Φ(−1.25).
        import math

        space = ParameterSpace([Dimension("x", 0.0, 1.0, 11)])
        model = NormalOccurrenceModel(space, sigma_fraction=0.4)  # σ = 0.4·0.5 = 0.2
        region = Region(space, (3,), (5,))

        def phi(z: float) -> float:
            return 0.5 * (1 + math.erf(z / math.sqrt(2)))

        expected = phi((0.55 - 0.5) / 0.2) - phi((0.25 - 0.5) / 0.2)
        assert model.region_probability(region) == pytest.approx(expected, rel=1e-9)


class TestRegionProbability:
    def test_region_mass_factorizes(self, unit_space):
        # Independence: mass(box) · mass(space) == mass(x-strip) · mass(y-strip)
        # (the strips each carry the other dimension's full-space factor).
        model = NormalOccurrenceModel(unit_space)
        box = Region(unit_space, (1, 2), (4, 6))
        x_strip = Region(unit_space, (1, 0), (4, 8))
        y_strip = Region(unit_space, (0, 2), (8, 6))
        assert model.region_probability(box) * model.total_mass() == pytest.approx(
            model.region_probability(x_strip) * model.region_probability(y_strip),
            rel=1e-9,
        )

    def test_custom_means_shift_mass(self, unit_space):
        skewed = NormalOccurrenceModel(unit_space, means={"x": 0.1, "y": 0.1})
        low_corner = Region(unit_space, (0, 0), (3, 3))
        high_corner = Region(unit_space, (5, 5), (8, 8))
        assert skewed.region_probability(low_corner) > skewed.region_probability(
            high_corner
        )

    def test_pinned_dimension_mass_is_one(self):
        space = ParameterSpace(
            [Dimension("x", 0.0, 1.0, 5), Dimension("y", 0.5, 0.5, 1)]
        )
        model = NormalOccurrenceModel(space)
        full = space.full_region()
        only_x = NormalOccurrenceModel(ParameterSpace([Dimension("x", 0.0, 1.0, 5)]))
        assert model.region_probability(full) == pytest.approx(
            only_x.region_probability(only_x.space.full_region()), rel=1e-9
        )

    def test_invalid_sigma_fraction(self, unit_space):
        with pytest.raises(ValueError, match="sigma_fraction"):
            NormalOccurrenceModel(unit_space, sigma_fraction=0.0)
