"""How far do the strategies bend before they break? (mini Figure 15a)

Sweeps the input-rate fluctuation ratio from 50% to 400% of the
compile-time estimate and reports each strategy's average tuple
processing time.  Inside the compiled parameter space RLD is flat
(robust); far outside it (400%) resources are simply insufficient for a
single static placement and the migration-based DYN catches up — the
same crossover the paper reports.

Run:  python examples/fluctuation_tolerance.py
"""

from __future__ import annotations

import math

from repro import Cluster, RLDConfig, RLDOptimizer
from repro.runtime.comparison import build_standard_strategies, compare_strategies
from repro.workloads import build_q1, stock_workload

RATIOS = (0.5, 1.0, 2.0, 3.0, 4.0)


def main() -> None:
    query = build_q1()
    estimate = query.default_estimates(
        {op.selectivity_param: 3 for op in query.operators} | {"rate": 2}
    )
    cluster = Cluster.homogeneous(4, 420.0)
    solution = RLDOptimizer(
        query, cluster, config=RLDConfig(epsilon=0.2)
    ).solve(estimate)
    print(f"Compiled RLD: {len(solution.logical)} robust plans, "
          f"{len(solution.supported_plans)} supported by the physical plan\n")

    print(f"{'rate ratio':>10} | {'ROD':>10} | {'DYN':>10} | {'RLD':>10}   (avg ms/tuple)")
    print("-" * 55)
    for ratio in RATIOS:
        workload = stock_workload(query, uncertainty_level=3).scaled(ratio)
        strategies = build_standard_strategies(
            query, cluster, estimate=estimate, rld_solution=solution
        )
        comparison = compare_strategies(
            query, cluster, workload, strategies, duration=180.0, seed=29
        )
        cells = []
        for name in ("ROD", "DYN", "RLD"):
            value = comparison.latency_ms(name)
            cells.append("   stalled" if math.isnan(value) else f"{value:10.1f}")
        print(f"{ratio:>9.0%} | {cells[0]} | {cells[1]} | {cells[2]}")

    print("\nReading: RLD stays near-flat inside its compiled parameter "
          "space (the level-2 rate dimension covers ±20% around the "
          "estimate); beyond it every strategy saturates — the cluster "
          "simply lacks the resources — and the margins between the "
          "three collapse.")


if __name__ == "__main__":
    main()
