"""A production-shaped deployment workflow, end to end.

Walks the full operational loop a deployment of RLD would follow:

1. **Calibrate** — record a training window of live statistics and
   derive point estimates *and uncertainty levels* from it (§2.2's
   "representative training data set").
2. **Compile** — build the robust logical solution and physical plan.
3. **Ship** — serialize the compiled solution to JSON and reload it,
   as the executor nodes would at startup.
4. **Replay** — re-run the recorded trace against the reloaded
   solution with event tracing on, and audit one batch's journey
   through the cluster.

Run:  python examples/deploy_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import Cluster, RLDConfig, RLDOptimizer
from repro.core import load_solution, save_solution
from repro.engine import SimulationTrace, StreamSimulator
from repro.query import calibrate_workload
from repro.runtime import RLDStrategy
from repro.workloads import ReplayWorkload, build_q1, stock_workload


def main() -> None:
    query = build_q1()

    # ── 1. Calibrate from a training window ────────────────────────────
    live = stock_workload(query, uncertainty_level=3, regime_period=60.0)
    estimate = calibrate_workload(live, duration=300.0, n_samples=600)
    print("=== Calibrated estimates (from a 5-minute training window) ===")
    for name in sorted(estimate.estimates):
        level = estimate.uncertainty.get(name, 0)
        print(f"  {name:<8} estimate {estimate.estimates[name]:8.3f}   level U={level}")

    # ── 2. Compile ──────────────────────────────────────────────────────
    cluster = Cluster.homogeneous(4, 420.0)
    solution = RLDOptimizer(query, cluster, config=RLDConfig(epsilon=0.2)).solve(
        estimate
    )
    print(f"\nCompiled {len(solution.logical)} robust plans "
          f"({solution.partitioning.optimizer_calls} optimizer calls); "
          f"physical plan supports {len(solution.supported_plans)}.")

    # ── 3. Ship as JSON and reload ──────────────────────────────────────
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "rld_solution.json"
        save_solution(solution, path)
        size_kb = path.stat().st_size / 1024
        deployed = load_solution(path)
    print(f"Round-tripped through JSON ({size_kb:.1f} KiB); "
          f"placement intact: "
          f"{deployed.physical.physical_plan == solution.physical.physical_plan}")

    # ── 4. Replay the recorded trace with tracing on ────────────────────
    trace_workload = ReplayWorkload.record(live, duration=300.0, n_samples=600)
    trace = SimulationTrace()
    strategy = RLDStrategy(deployed)
    report = StreamSimulator(
        query, deployed.cluster, strategy, trace_workload, seed=71, trace=trace
    ).run(300.0)

    print(f"\n=== Replayed 5 minutes against the deployed solution ===")
    print(f"  avg latency : {report.avg_tuple_latency_ms:8.1f} ms "
          f"(p95 {report.latency_percentile_ms(95):.1f} ms)")
    print(f"  throughput  : {report.tuples_out:8.0f} tuples out, "
          f"{report.batches_completed} batches")
    print(f"  overhead    : {report.overhead_fraction:8.2%} (classification only)")
    print(f"  plan switches {report.plan_switches}, migrations {report.migrations}")
    print(f"  trace held {len(trace)} events: {trace.summary()}")

    # Audit one mid-run batch's journey.
    batch_id = report.batches_completed // 2
    journey = trace.batch_journey(batch_id)
    if journey:
        print(f"\nJourney of batch {batch_id}:")
        for event in journey:
            where = f" node {event.node}" if event.node is not None else ""
            what = f" op{event.op_id}" if event.op_id is not None else ""
            plan = f" via {event.plan_label}" if event.plan_label else ""
            print(f"  t={event.time:8.3f}s {event.kind:<9}{what}{where}{plan} "
                  f"{event.detail}")


if __name__ == "__main__":
    main()
